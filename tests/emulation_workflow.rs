//! §VII-B: the OpenStack live-migration emulation, end to end — the four
//! steps, the Shared Port restrictions, and address preservation.

use ib_cloud::scenarios::{paper_testbed, testbed_datacenter};
use ib_cloud::{
    Inventory, LiveMigrationWorkflow, NodeResources, PlacementPolicy, SpreadPolicy, VmFlavor,
};
use ib_core::{DataCenterConfig, VirtArch};
use ib_sim::SimTime;

fn config(arch: VirtArch) -> DataCenterConfig {
    DataCenterConfig {
        arch,
        vfs_per_hypervisor: 4,
        ..DataCenterConfig::default()
    }
}

#[test]
fn four_steps_execute_in_order_with_positive_durations() {
    let mut dc = testbed_datacenter(config(VirtArch::VSwitchPrepopulated)).unwrap();
    let vm = dc.create_vm("centos", 0).unwrap();
    let trace = LiveMigrationWorkflow::default()
        .execute(&mut dc, vm, 3)
        .unwrap();
    let names: Vec<&str> = trace.steps.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        names,
        vec![
            "1-detach-vf-and-start-migration",
            "2-signal-opensm",
            "3-opensm-reconfigures",
            "4-attach-vf-with-guid",
        ]
    );
    assert!(trace.steps.iter().all(|s| s.duration > SimTime::ZERO));
    assert!(trace.addresses_preserved);
}

#[test]
fn guid_follows_the_vm() {
    let mut dc = testbed_datacenter(config(VirtArch::VSwitchDynamic)).unwrap();
    let vm = dc.create_vm("centos", 1).unwrap();
    let vguid = dc.vm(vm).unwrap().vguid;
    let gid = dc.vm(vm).unwrap().gid();
    LiveMigrationWorkflow::default()
        .execute(&mut dc, vm, 4)
        .unwrap();
    let rec = dc.vm(vm).unwrap();
    assert_eq!(rec.vguid, vguid, "vGUID migrates with the VM");
    assert_eq!(rec.gid(), gid, "GID (prefix + vGUID) follows too");
}

#[test]
fn shared_port_allows_only_one_vm_per_node_to_move_safely() {
    let mut dc = testbed_datacenter(config(VirtArch::SharedPort)).unwrap();
    let a = dc.create_vm("a", 0).unwrap();
    let b = dc.create_vm("b", 0).unwrap();
    // Two VMs share hypervisor 0's LID: migrating either would break the
    // other — refused.
    assert!(dc.migrate_vm(a, 5).is_err());
    dc.destroy_vm(b).unwrap();
    // Alone, it may move to an empty node.
    let report = dc.migrate_vm(a, 5).unwrap();
    assert_eq!(report.lid_before, report.lid_after);
    dc.verify_connectivity().unwrap();
}

#[test]
fn shared_port_vm_count_is_lid_bound_vswitch_is_not() {
    // The testbed emulation had to cap VMs at one per node; the vSwitch
    // architectures run the full VF complement.
    let mut shared = testbed_datacenter(config(VirtArch::SharedPort)).unwrap();
    let mut prepop = testbed_datacenter(config(VirtArch::VSwitchPrepopulated)).unwrap();
    for h in 0..6 {
        for v in 0..4 {
            shared.create_vm(format!("s-{h}-{v}"), h).unwrap();
            prepop.create_vm(format!("p-{h}-{v}"), h).unwrap();
        }
    }
    // Shared port: 24 VMs but only 11 LIDs in the subnet (VMs share).
    assert_eq!(shared.num_vms(), 24);
    assert_eq!(shared.subnet.num_lids(), 11);
    // Prepopulated: every VM owns a LID.
    assert_eq!(prepop.subnet.num_lids(), 35);
    let lids: std::collections::HashSet<u16> = prepop.vms().iter().map(|r| r.lid.raw()).collect();
    assert_eq!(lids.len(), 24, "24 distinct VM LIDs");
    let shared_lids: std::collections::HashSet<u16> =
        shared.vms().iter().map(|r| r.lid.raw()).collect();
    assert_eq!(shared_lids.len(), 6, "one shared LID per node");
}

#[test]
fn scheduler_places_and_workflow_moves() {
    // Place VMs with the spread policy, then rebalance one with the
    // workflow — the OpenStack-like control loop.
    let mut dc = testbed_datacenter(config(VirtArch::VSwitchPrepopulated)).unwrap();
    let mut inv = Inventory::from_nodes(vec![
        NodeResources {
            cores: 8,
            ram_gb: 32,
        },
        NodeResources {
            cores: 8,
            ram_gb: 32,
        },
        NodeResources {
            cores: 8,
            ram_gb: 32,
        },
        NodeResources {
            cores: 8,
            ram_gb: 32,
        },
        NodeResources {
            cores: 4,
            ram_gb: 32,
        },
        NodeResources {
            cores: 4,
            ram_gb: 32,
        },
    ]);
    let mut policy = SpreadPolicy;
    let flavor = VmFlavor::medium();
    let mut placed = Vec::new();
    for i in 0..6 {
        let h = policy.choose(&dc, &inv, &flavor).expect("capacity");
        inv.allocate(h, &flavor).unwrap();
        placed.push((dc.create_vm(format!("vm{i}"), h).unwrap(), h));
    }
    // Spread put one VM per node.
    let mut hosts: Vec<usize> = placed.iter().map(|&(_, h)| h).collect();
    hosts.sort_unstable();
    hosts.dedup();
    assert_eq!(hosts.len(), 6);

    // Evacuate node 5 (the small box) via the workflow.
    let (vm, src) = placed[5];
    let trace = LiveMigrationWorkflow::default()
        .execute(&mut dc, vm, 0)
        .unwrap();
    inv.release(src, &flavor).unwrap();
    inv.allocate(0, &flavor).unwrap();
    assert!(trace.addresses_preserved);
    dc.verify_connectivity().unwrap();
}

#[test]
fn infra_nodes_keep_their_lids_out_of_the_vm_plane() {
    let built = paper_testbed().expect("testbed builds");
    let infra_count = built.subnet.num_hcas() - built.num_hosts();
    assert_eq!(infra_count, 3);
    let dc = testbed_datacenter(config(VirtArch::VSwitchDynamic)).unwrap();
    // 2 switches + 6 PFs + 3 infra = 11 LIDs, none of them VM LIDs.
    assert_eq!(dc.subnet.num_lids(), 11);
    assert_eq!(dc.num_vms(), 0);
}
