//! End-to-end fault injection on a 3-level fat tree: spine-link failure,
//! SMP loss during live migration, forced rollback, and switch death —
//! the resilient SM pipeline and the transactional migration working
//! together on one fabric.

use ib_core::{DataCenter, DataCenterConfig, VirtArch};
use ib_mad::SmpTransport;
use ib_observe::{FakeClock, Observer};
use ib_sm::{SweepKind, Trap};
use ib_subnet::topology::fattree;
use ib_subnet::{NodeId, Subnet};
use ib_types::Lid;

/// A 3-level fat tree (2 pods x 2 leaves x 2 hosts, 4 mids, 4 cores)
/// virtualized under `arch`, plus its switch levels.
fn build(arch: VirtArch) -> (DataCenter, Vec<Vec<NodeId>>) {
    let built = fattree::three_level(2, 2, 2, 2);
    let levels = built.switch_levels.clone();
    let dc = DataCenter::from_topology(
        built,
        DataCenterConfig {
            arch,
            vfs_per_hypervisor: 2,
            ..DataCenterConfig::default()
        },
    )
    .expect("3-level bring-up");
    (dc, levels)
}

/// Every (node, port, LID) assignment in the fabric, sorted.
fn lid_map(subnet: &Subnet) -> Vec<(usize, u8, Lid)> {
    let mut v = Vec::new();
    for node in subnet.nodes() {
        for (i, port) in node.ports.iter().enumerate() {
            if let Some(lid) = port.lid {
                v.push((node.id.index(), i as u8, lid));
            }
        }
    }
    v.sort_unstable();
    v
}

/// The first live link from `node` leading into `level`.
fn link_towards(subnet: &Subnet, node: NodeId, level: &[NodeId]) -> ib_types::PortNum {
    subnet
        .node(node)
        .connected_ports()
        .find(|(_, ep)| level.contains(&ep.node))
        .map(|(port, _)| port)
        .expect("fat-tree wiring has an uplink")
}

#[test]
fn spine_link_failure_resweeps_without_renumbering() {
    let (mut dc, levels) = build(VirtArch::VSwitchPrepopulated);
    let vm = dc.create_vm("vm", 0).expect("create");
    let before = lid_map(&dc.subnet);

    // Cut a mid-to-core (spine) link, then deliver the trap over a lossy
    // transport — the re-sweep itself must survive 5% SMP drop.
    let mid = levels[1][0];
    let port = link_towards(&dc.subnet, mid, &levels[2]);
    dc.subnet.set_link_down(mid, port).expect("cut spine link");

    let mut transport = SmpTransport::lossy(dc.sm.sm_node, 3, 0.05, 0);
    transport.retry.max_attempts = 8;
    let report = dc
        .sm
        .handle_trap(
            &mut dc.subnet,
            Trap::LinkStateChange { node: mid, port },
            &mut transport,
        )
        .expect("re-sweep");

    assert_eq!(
        report.kind,
        SweepKind::Light,
        "one lost spine link needs no discovery"
    );
    assert!(!report.escalated);
    assert!(report.pruned_lids.is_empty());
    assert!(
        report.failed_blocks.is_empty(),
        "distribution must converge"
    );
    assert_eq!(lid_map(&dc.subnet), before, "no endpoint may be renumbered");
    dc.subnet
        .validate_degraded()
        .expect("degraded fabric is consistent");
    dc.verify_connectivity()
        .expect("all pairs reconnect around the failure");
    assert_eq!(dc.vm(vm).unwrap().hypervisor, 0);
}

#[test]
fn migration_under_loss_converges_or_rolls_back_cleanly() {
    for arch in [VirtArch::VSwitchPrepopulated, VirtArch::VSwitchDynamic] {
        // Two identical degraded fabrics: one heals and migrates fault-free,
        // the other does the same under 5% SMP drop.
        let (mut reference, levels) = build(arch);
        let (mut lossy, _) = build(arch);
        let vm_ref = reference.create_vm("vm", 0).expect("create");
        let vm = lossy.create_vm("vm", 0).expect("create");

        for dc in [&mut reference, &mut lossy] {
            let mid = levels[1][0];
            let port = link_towards(&dc.subnet, mid, &levels[2]);
            dc.subnet.set_link_down(mid, port).expect("cut spine link");
            let mut perfect = SmpTransport::perfect(dc.sm.sm_node);
            dc.sm
                .handle_trap(
                    &mut dc.subnet,
                    Trap::LinkStateChange { node: mid, port },
                    &mut perfect,
                )
                .expect("re-sweep");
        }

        let mut perfect = SmpTransport::perfect(reference.sm.sm_node);
        let ref_report = reference
            .migrate_vm_resilient(vm_ref, 5, &mut perfect)
            .expect("fault-free migration");
        assert!(ref_report.committed);
        let fault_free_smps = reference
            .sm
            .ledger
            .phase_records(&format!("migrate-{vm_ref}"))
            .len();

        let pre_migration = lid_map(&lossy.subnet);
        let mut transport = SmpTransport::lossy(lossy.sm.sm_node, 17, 0.05, 0);
        transport.retry.max_attempts = 8;
        let report = lossy
            .migrate_vm_resilient(vm, 5, &mut transport)
            .expect("resilient migration");
        let attempts = lossy
            .sm
            .ledger
            .phase_records(&format!("migrate-{vm}"))
            .len();

        if report.committed {
            // Convergence: the lossy run lands on the exact fault-free LFTs,
            // paying only a bounded number of extra SMPs.
            for sw in reference.subnet.physical_switches() {
                assert_eq!(
                    lossy.subnet.lft(sw.id).unwrap(),
                    sw.lft().unwrap(),
                    "{arch}: committed LFTs must equal the fault-free result"
                );
            }
            assert!(
                attempts
                    <= fault_free_smps * usize::try_from(transport.retry.max_attempts).unwrap(),
                "{arch}: extra SMPs bounded by the retry policy"
            );
            assert_eq!(lossy.vm(vm).unwrap().hypervisor, 5);
        } else {
            assert_eq!(
                lid_map(&lossy.subnet),
                pre_migration,
                "{arch}: rollback must leave addressing untouched"
            );
            assert_eq!(lossy.vm(vm).unwrap().hypervisor, 0);
        }
        lossy
            .verify_connectivity()
            .expect("all pairs connected either way");
    }
}

#[test]
fn black_hole_migration_rolls_back_and_routing_survives() {
    let (mut dc, _) = build(VirtArch::VSwitchDynamic);
    let vm = dc.create_vm("vm", 0).expect("create");
    let before_lfts: Vec<_> = dc
        .subnet
        .physical_switches()
        .map(|n| (n.id, n.lft().unwrap().clone()))
        .collect();

    let mut transport =
        SmpTransport::with_channel(dc.sm.sm_node, ib_mad::LossyChannel::black_hole());
    let report = dc
        .migrate_vm_resilient(vm, 6, &mut transport)
        .expect("tx migration");

    assert!(!report.committed);
    // The very first hypervisor signal already fails persistently, so
    // nothing was delivered and no compensating SMP is owed.
    assert_eq!(report.hypervisor_smps, 0);
    for (id, before) in before_lfts {
        assert_eq!(
            dc.subnet.lft(id).unwrap(),
            &before,
            "pre-migration routing intact"
        );
    }
    assert_eq!(dc.vm(vm).unwrap().hypervisor, 0, "VM still at the source");
    dc.verify_connectivity().expect("all pairs still connected");
}

#[test]
fn migration_to_a_split_off_pod_aborts_before_any_smp() {
    let observer = Observer::with_clock(Box::new(FakeClock::new()));
    let built = fattree::three_level(2, 2, 2, 2);
    let levels = built.switch_levels.clone();
    let mut dc = DataCenter::from_topology_observed(
        built,
        DataCenterConfig {
            arch: VirtArch::VSwitchPrepopulated,
            vfs_per_hypervisor: 2,
            ..DataCenterConfig::default()
        },
        observer.clone(),
    )
    .expect("3-level bring-up");
    let vm = dc.create_vm("vm", 0).expect("create");

    // Sever the destination pod: every core uplink of the mids serving
    // hypervisor 5's leaf goes down, leaving pod 1 as its own component.
    let dest_leaf = dc.hypervisors[5].leaf;
    let pod_mids: Vec<NodeId> = dc
        .subnet
        .node(dest_leaf)
        .connected_ports()
        .filter(|(_, ep)| levels[1].contains(&ep.node))
        .map(|(_, ep)| ep.node)
        .collect();
    assert!(!pod_mids.is_empty(), "fat-tree wiring has pod mids");
    let mut cut = Vec::new();
    for &mid in &pod_mids {
        let uplinks: Vec<_> = dc
            .subnet
            .node(mid)
            .connected_ports()
            .filter(|(_, ep)| levels[2].contains(&ep.node))
            .map(|(port, _)| port)
            .collect();
        for port in uplinks {
            dc.subnet.set_link_down(mid, port).expect("cut core uplink");
            cut.push((mid, port));
        }
    }

    let before = lid_map(&dc.subnet);
    let mut transport = SmpTransport::perfect(dc.sm.sm_node);
    let report = dc
        .migrate_vm_resilient(vm, 5, &mut transport)
        .expect("pre-flight abort is a clean report, not an error");

    assert!(!report.committed, "nothing beyond a split may commit");
    assert_eq!(report.hypervisor_smps, 0, "no step (a) signal was sent");
    assert_eq!(report.lft.lft_smps, 0, "no step (b) LFT SMP was sent");
    assert_eq!(report.lft.switches_updated, 0);
    assert_eq!(report.tx.attempts, 0);
    assert_eq!(
        report.tx.rollback_smps, 0,
        "nothing delivered, nothing owed"
    );
    assert!(
        dc.sm
            .ledger
            .phase_records(&format!("migrate-{vm}"))
            .is_empty(),
        "not one data-path SMP toward the lost component (or anywhere)"
    );
    let snap = observer.snapshot().expect("enabled");
    assert_eq!(snap.counter("migration.abort.unreachable"), 1);
    assert_eq!(dc.vm(vm).unwrap().hypervisor, 0, "VM still at the source");
    assert_eq!(lid_map(&dc.subnet), before, "addressing untouched");

    // Heal the split and retry: the pre-flight only rejects genuinely
    // lost destinations, so the same migration now goes through.
    for &(mid, port) in &cut {
        dc.subnet.set_link_up(mid, port).expect("restore uplink");
    }
    let (mid, port) = cut[0];
    dc.sm
        .handle_trap(
            &mut dc.subnet,
            Trap::LinkStateChange { node: mid, port },
            &mut transport,
        )
        .expect("heal re-sweep");
    let report = dc
        .migrate_vm_resilient(vm, 5, &mut transport)
        .expect("post-heal migration");
    assert!(report.committed, "healed fabric migrates normally");
    assert_eq!(dc.vm(vm).unwrap().hypervisor, 5);
    assert_eq!(
        observer
            .snapshot()
            .expect("enabled")
            .counter("migration.abort.unreachable"),
        1,
        "the healed retry takes no unreachable abort"
    );
    dc.verify_connectivity().expect("all pairs connected");
}

#[test]
fn switch_death_heavy_sweep_prunes_only_the_dead_switch() {
    let (mut dc, levels) = build(VirtArch::VSwitchPrepopulated);
    let vm = dc.create_vm("vm", 0).expect("create");
    let core = levels[2][0];
    let core_lids: Vec<Lid> = dc.subnet.node(core).lids().collect();
    let survivors: Vec<(usize, u8, Lid)> = lid_map(&dc.subnet)
        .into_iter()
        .filter(|&(n, _, _)| n != core.index())
        .collect();

    let mut transport = SmpTransport::lossy(dc.sm.sm_node, 9, 0.05, 0);
    transport.retry.max_attempts = 8;
    let report = dc
        .sm
        .handle_trap(
            &mut dc.subnet,
            Trap::SwitchDeath { node: core },
            &mut transport,
        )
        .expect("heavy sweep");

    assert_eq!(report.kind, SweepKind::Heavy);
    assert_eq!(
        report.pruned_lids, core_lids,
        "only the dead switch loses its LID"
    );
    assert_eq!(report.removed_nodes, 1);
    assert!(report.failed_blocks.is_empty());
    assert!(!dc.subnet.is_alive(core));
    assert_eq!(
        lid_map(&dc.subnet),
        survivors,
        "survivors keep their LIDs verbatim"
    );
    dc.subnet
        .validate_degraded()
        .expect("degraded fabric is consistent");
    dc.verify_connectivity()
        .expect("all pairs route around the dead core");
    assert_eq!(dc.vm(vm).unwrap().hypervisor, 0);
}
