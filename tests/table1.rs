//! Reproduces Table I of the paper exactly: LIDs consumed, minimum LFT
//! blocks per switch, minimum SMPs for a full reconfiguration, and the
//! min/max SMPs of the vSwitch LID swap/copy, for all four fat-tree
//! topologies.
//!
//! Only discovery + LID assignment are needed (no routing), so even the
//! 11664-node fabric builds quickly.

use ib_core::cost::{Table1Row, PAPER_TABLE1};
use ib_mad::SmpLedger;
use ib_sm::{discovery, lids};
use ib_subnet::topology::fattree;
use ib_types::LidSpace;

fn derive_row(built: ib_subnet::topology::BuiltTopology) -> Table1Row {
    let mut subnet = built.subnet;
    let sm_host = built.hosts[0];
    let mut ledger = SmpLedger::new();
    let disc = discovery::sweep(&subnet, sm_host, &mut ledger).expect("sweep");
    let mut space = LidSpace::new();
    lids::assign_all(&mut subnet, &disc, &mut space, &mut ledger).expect("assign");
    Table1Row::for_subnet(&subnet)
}

#[test]
fn fat_tree_324_row() {
    let row = derive_row(fattree::paper_324());
    assert_eq!(
        (row.nodes, row.switches, row.lids),
        (324, 36, 360),
        "{row:?}"
    );
    assert_eq!(row.min_lft_blocks_per_switch, 6);
    assert_eq!(row.min_smps_full_rc, 216);
    assert_eq!(row.min_smps_vswitch, 1);
    assert_eq!(row.max_smps_vswitch, 72);
}

#[test]
fn fat_tree_648_row() {
    let row = derive_row(fattree::paper_648());
    assert_eq!((row.nodes, row.switches, row.lids), (648, 54, 702));
    assert_eq!(row.min_lft_blocks_per_switch, 11);
    assert_eq!(row.min_smps_full_rc, 594);
    assert_eq!(row.max_smps_vswitch, 108);
}

#[test]
fn fat_tree_5832_row() {
    let row = derive_row(fattree::paper_5832());
    assert_eq!((row.nodes, row.switches, row.lids), (5832, 972, 6804));
    assert_eq!(row.min_lft_blocks_per_switch, 107);
    assert_eq!(row.min_smps_full_rc, 104_004);
    assert_eq!(row.max_smps_vswitch, 1944);
}

#[test]
fn fat_tree_11664_row() {
    let row = derive_row(fattree::paper_11664());
    assert_eq!((row.nodes, row.switches, row.lids), (11664, 1620, 13_284));
    assert_eq!(row.min_lft_blocks_per_switch, 208);
    assert_eq!(row.min_smps_full_rc, 336_960);
    assert_eq!(row.max_smps_vswitch, 3240);
}

#[test]
fn derived_rows_match_published_constants() {
    // The static table in ib-core must agree with what the topologies
    // produce, tying the analytic module to the subnet model.
    for (i, build) in [fattree::paper_324, fattree::paper_648].iter().enumerate() {
        let row = derive_row(build());
        let (nodes, switches, lids, m, full, min_v, max_v) = PAPER_TABLE1[i];
        assert_eq!(row.nodes, nodes);
        assert_eq!(row.switches, switches);
        assert_eq!(row.lids, lids);
        assert_eq!(row.min_lft_blocks_per_switch, m);
        assert_eq!(row.min_smps_full_rc, full);
        assert_eq!(row.min_smps_vswitch, min_v);
        assert_eq!(row.max_smps_vswitch, max_v);
    }
}

#[test]
fn improvement_percentages_match_section_viic() {
    // 324 nodes: worst-case vSwitch = 33.3% of full (66.7% improvement);
    // 11664 nodes: 0.96% (99.04% improvement).
    let small = derive_row(fattree::paper_324());
    assert!((small.worst_case_ratio() * 100.0 - 33.3).abs() < 0.1);
    let large = Table1Row::from_counts(11664, 1620, 13_284);
    assert!((large.worst_case_ratio() * 100.0 - 0.96).abs() < 0.01);
}
