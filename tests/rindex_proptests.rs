//! Property-style tests over the reverse route index: after random
//! sequences of connectivity-preserving link faults (answered by the
//! incremental repair sweep), link restorations, live migrations, and
//! full sweeps, the index must agree with the two-row fabric scan
//! ([`ib_verify::affected_destinations`]) for **every** (switch, port) —
//! on the paper's 324-node fat tree under every tree engine and on a
//! wrapped torus under the VL-layering engines.
//!
//! Originally written with `proptest`; the offline build environment
//! cannot fetch it, so these are seeded randomized tests driven by the
//! vendored `rand` stub.

use ib_core::{DataCenter, DataCenterConfig};
use ib_mad::SmpTransport;
use ib_routing::EngineKind;
use ib_sm::{SmConfig, SubnetManager, Trap};
use ib_subnet::topology::fattree::paper_324;
use ib_subnet::topology::torus::torus_2d;
use ib_subnet::{NodeId, Subnet};
use ib_types::PortNum;
use ib_verify::affected_destinations;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every switch-to-switch cable, one entry per cable.
fn core_links(subnet: &Subnet) -> Vec<(NodeId, PortNum, NodeId)> {
    let mut out = Vec::new();
    for sw in subnet.physical_switches() {
        for (port, remote) in sw.cabled_ports() {
            if subnet.node(remote.node).is_physical_switch() && sw.id.index() < remote.node.index()
            {
                out.push((sw.id, port, remote.node));
            }
        }
    }
    out
}

/// Whether the switch core stays connected over up links with `skip` down.
fn connected_without(
    subnet: &Subnet,
    links: &[(NodeId, PortNum, NodeId)],
    skip: (NodeId, PortNum),
) -> bool {
    let switches: Vec<NodeId> = subnet.physical_switches().map(|n| n.id).collect();
    let Some(&start) = switches.first() else {
        return true;
    };
    let mut reached = vec![start];
    let mut frontier = vec![start];
    while let Some(cur) = frontier.pop() {
        for &(a, p, b) in links {
            if (a, p) == skip || !subnet.is_link_up(a, p) {
                continue;
            }
            for (from, to) in [(a, b), (b, a)] {
                if from == cur && !reached.contains(&to) {
                    reached.push(to);
                    frontier.push(to);
                }
            }
        }
    }
    switches.iter().all(|s| reached.contains(s))
}

/// Up links whose loss keeps the core connected.
fn safe_to_down(
    subnet: &Subnet,
    links: &[(NodeId, PortNum, NodeId)],
) -> Vec<(NodeId, PortNum, NodeId)> {
    links
        .iter()
        .copied()
        .filter(|&(a, p, _)| subnet.is_link_up(a, p) && connected_without(subnet, links, (a, p)))
        .collect()
}

/// All (switch, cabled port) pairs of the live fabric.
fn switch_ports(subnet: &Subnet) -> Vec<(NodeId, PortNum)> {
    subnet
        .physical_switches()
        .flat_map(|sw| sw.cabled_ports().map(move |(p, _)| (sw.id, p)))
        .collect()
}

/// The full property: the index's answer equals the two-row scan at
/// `pairs`, and the index as a whole mirrors the installed tables.
fn assert_index_matches_scan(sm: &SubnetManager, subnet: &Subnet, pairs: &[(NodeId, PortNum)]) {
    let mismatches = sm.verify_route_index(subnet);
    assert!(mismatches.is_empty(), "index drifted: {mismatches:?}");
    let idx = sm
        .route_index()
        .expect("index stays live across converged sweeps");
    for &(sw, port) in pairs {
        assert_eq!(
            idx.affected(subnet, sw, port),
            affected_destinations(subnet, sw, port),
            "index vs scan at ({sw:?}, {port})"
        );
    }
}

/// A seeded sample of (switch, port) pairs for the per-event spot check;
/// the full all-pairs sweep runs once per sequence at the end.
fn sample_pairs(rng: &mut StdRng, all: &[(NodeId, PortNum)], n: usize) -> Vec<(NodeId, PortNum)> {
    (0..n).map(|_| all[rng.gen_range(0..all.len())]).collect()
}

/// The tree arm: a virtualized 324-node fat tree under each tree-capable
/// engine, driven through random link-downs (repair sweeps), link-ups
/// (fold-back sweeps), live migrations (out-of-band column edits the SM
/// must be told about), and plain light sweeps.
#[test]
fn index_tracks_random_event_sequences_on_the_324_tree() {
    for engine in [EngineKind::FatTree, EngineKind::MinHop, EngineKind::UpDown] {
        for seed in [11u64, 42] {
            let mut dc = DataCenter::from_topology(
                paper_324(),
                DataCenterConfig {
                    engine,
                    ..DataCenterConfig::default()
                },
            )
            .expect("bring-up");
            dc.sm.set_repair(true);
            let hyps = dc.hypervisors.len();
            let vms: Vec<_> = (0..3)
                .map(|i| {
                    dc.create_vm(format!("vm{i}"), i * 7 % hyps)
                        .expect("create")
                })
                .collect();

            let links = core_links(&dc.subnet);
            let all_pairs = switch_ports(&dc.subnet);
            let mut rng = StdRng::seed_from_u64(seed ^ engine.name().len() as u64);
            let mut transport = SmpTransport::perfect(dc.sm.sm_node);
            let mut downed: Vec<(NodeId, PortNum)> = Vec::new();

            for _ in 0..10 {
                match rng.gen_range(0..4u8) {
                    // Connectivity-preserving link-down, answered by the
                    // incremental repair sweep.
                    0 => {
                        let cands = safe_to_down(&dc.subnet, &links);
                        if cands.is_empty() {
                            continue;
                        }
                        let (a, p, _) = cands[rng.gen_range(0..cands.len())];
                        dc.subnet.set_link_down(a, p).expect("down");
                        dc.sm
                            .handle_trap(
                                &mut dc.subnet,
                                Trap::LinkStateChange { node: a, port: p },
                                &mut transport,
                            )
                            .expect("repair");
                        downed.push((a, p));
                    }
                    // A downed link comes back: fold-back light sweep.
                    1 => {
                        let Some(i) = (!downed.is_empty()).then(|| rng.gen_range(0..downed.len()))
                        else {
                            continue;
                        };
                        let (a, p) = downed.swap_remove(i);
                        dc.subnet.set_link_up(a, p).expect("up");
                        dc.sm
                            .handle_trap(
                                &mut dc.subnet,
                                Trap::LinkStateChange { node: a, port: p },
                                &mut transport,
                            )
                            .expect("fold-back");
                    }
                    // Live migration: LID swap/copy edits installed
                    // columns behind the SM's routing pass.
                    2 => {
                        let vm = vms[rng.gen_range(0..vms.len())];
                        let cur = dc.vm(vm).expect("vm").hypervisor;
                        let dest = (cur + 1 + rng.gen_range(0..hyps - 1)) % hyps;
                        dc.migrate_vm(vm, dest).expect("migrate");
                    }
                    // A routine full sweep rebuilds the index outright.
                    _ => {
                        dc.sm
                            .light_sweep(&mut dc.subnet, &mut transport)
                            .expect("light sweep");
                    }
                }
                let spots = sample_pairs(&mut rng, &all_pairs, 8);
                assert_index_matches_scan(&dc.sm, &dc.subnet, &spots);
            }
            assert_index_matches_scan(&dc.sm, &dc.subnet, &all_pairs);
        }
    }
}

/// The torus arm: the VL-layering engines on a wrapped 4x4 torus, bare
/// SM, link-downs (both DFSSSP and LASH repair incrementally, so the
/// index advances by per-column splices), link-ups, and light sweeps.
#[test]
fn index_tracks_random_event_sequences_on_a_torus() {
    for engine in [EngineKind::Dfsssp, EngineKind::Lash] {
        for seed in [7u64, 23] {
            let mut t = torus_2d(4, 4, 1, true);
            let mut sm = SubnetManager::new(
                t.hosts[0],
                SmConfig {
                    engine,
                    repair: true,
                    ..SmConfig::default()
                },
            );
            sm.bring_up(&mut t.subnet).expect("bring-up");
            let links = core_links(&t.subnet);
            let all_pairs = switch_ports(&t.subnet);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut transport = SmpTransport::perfect(sm.sm_node);
            let mut downed: Vec<(NodeId, PortNum)> = Vec::new();

            for _ in 0..12 {
                match rng.gen_range(0..3u8) {
                    0 => {
                        let cands = safe_to_down(&t.subnet, &links);
                        if cands.is_empty() {
                            continue;
                        }
                        let (a, p, _) = cands[rng.gen_range(0..cands.len())];
                        t.subnet.set_link_down(a, p).expect("down");
                        sm.handle_trap(
                            &mut t.subnet,
                            Trap::LinkStateChange { node: a, port: p },
                            &mut transport,
                        )
                        .expect("repair");
                        downed.push((a, p));
                    }
                    1 => {
                        let Some(i) = (!downed.is_empty()).then(|| rng.gen_range(0..downed.len()))
                        else {
                            continue;
                        };
                        let (a, p) = downed.swap_remove(i);
                        t.subnet.set_link_up(a, p).expect("up");
                        sm.handle_trap(
                            &mut t.subnet,
                            Trap::LinkStateChange { node: a, port: p },
                            &mut transport,
                        )
                        .expect("fold-back");
                    }
                    _ => {
                        sm.light_sweep(&mut t.subnet, &mut transport)
                            .expect("light sweep");
                    }
                }
                let spots = sample_pairs(&mut rng, &all_pairs, 8);
                assert_index_matches_scan(&sm, &t.subnet, &spots);
            }
            assert_index_matches_scan(&sm, &t.subnet, &all_pairs);
        }
    }
}
