//! §V-A's LMC comparison: prepopulated VF LIDs imitate LID Mask Control —
//! multiple paths to one physical machine — "without being bound by the
//! limitation of the LMC that requires the LIDs to be sequential", which is
//! exactly what makes per-VM migration possible.

use ib_core::{DataCenter, DataCenterConfig, VirtArch};
use ib_routing::EngineKind;
use ib_sm::{SmConfig, SubnetManager};
use ib_subnet::topology::fattree::two_level;
use ib_types::{Lid, Lmc, PortNum};

#[test]
fn lmc_range_gives_path_diversity() {
    // Classic LMC multipathing: one host answers 4 sequential LIDs, and
    // the routing spreads them over distinct spines.
    let mut t = two_level(2, 2, 4);
    // Assign LIDs manually: switches 1..=6, host LIDs from 16 (aligned).
    for (i, &sw) in t.all_switches().iter().enumerate() {
        t.subnet
            .assign_switch_lid(sw, Lid::from_raw(i as u16 + 1))
            .unwrap();
    }
    let lmc = Lmc::new(2).unwrap();
    t.subnet
        .assign_lmc_range(t.hosts[0], PortNum::new(1), Lid::from_raw(16), lmc)
        .unwrap();
    for (i, &h) in t.hosts[1..].iter().enumerate() {
        t.subnet
            .assign_port_lid(h, PortNum::new(1), Lid::from_raw(24 + i as u16))
            .unwrap();
    }

    let tables = EngineKind::MinHop.build().compute(&t.subnet).unwrap();
    // From the *other* leaf, the 4 LIDs of host 0 should use more than one
    // uplink — the multipathing LMC exists for.
    let remote_leaf = t.switch_levels[0][1];
    let lft = &tables.lfts[&remote_leaf];
    let mut ports: Vec<u8> = (16..20)
        .map(|raw| lft.get(Lid::from_raw(raw)).unwrap().raw())
        .collect();
    ports.sort_unstable();
    ports.dedup();
    assert!(ports.len() >= 2, "LMC LIDs all on one uplink: {ports:?}");

    // And packets to every LID of the range land on host 0.
    tables.install(&mut t.subnet).unwrap();
    for raw in 16..20 {
        let path = t
            .subnet
            .trace_route(t.hosts[3], Lid::from_raw(raw), 16)
            .unwrap();
        assert_eq!(*path.last().unwrap(), t.hosts[0]);
    }
}

#[test]
fn lmc_is_structurally_sequential_prepopulated_is_not() {
    // The LMC constraint the paper escapes: ranges must be aligned and
    // sequential, so a single LID cannot be re-homed independently.
    let mut t = two_level(2, 2, 2);
    let lmc = Lmc::new(2).unwrap();
    // Misaligned base: structurally impossible.
    assert!(t
        .subnet
        .assign_lmc_range(t.hosts[0], PortNum::new(1), Lid::from_raw(18), lmc)
        .is_err());

    // The prepopulated vSwitch, by contrast, hands out *independent* LIDs:
    // after churn and migration they are provably non-sequential on a
    // hypervisor, yet each one can move alone.
    let mut dc = DataCenter::from_topology(
        two_level(2, 3, 2),
        DataCenterConfig {
            arch: VirtArch::VSwitchPrepopulated,
            vfs_per_hypervisor: 3,
            engine: EngineKind::FatTree,
            ..DataCenterConfig::default()
        },
    )
    .unwrap();
    let a = dc.create_vm("a", 0).unwrap();
    let b = dc.create_vm("b", 3).unwrap();
    // Move b onto hypervisor 0: its LID (a leaf-1 prepopulated LID) now
    // lives beside a's (a leaf-0 one) — almost certainly non-sequential.
    dc.migrate_vm(b, 0).unwrap();
    let la = dc.vm(a).unwrap().lid.raw();
    let lb = dc.vm(b).unwrap().lid.raw();
    assert_eq!(dc.vm(a).unwrap().hypervisor, dc.vm(b).unwrap().hypervisor);
    assert!(
        la.abs_diff(lb) > 1,
        "both VMs on one hypervisor with non-sequential LIDs {la}, {lb}"
    );
    dc.verify_connectivity().unwrap();

    // And each can still migrate independently — the per-VM mobility LMC
    // cannot offer.
    dc.migrate_vm(a, 4).unwrap();
    dc.verify_connectivity().unwrap();
}

#[test]
fn sm_bring_up_coexists_with_lmc_ranges() {
    // A fabric with one LMC-enabled host still brings up cleanly: the SM
    // skips pre-assigned LIDs and routes every registered LID.
    let mut t = two_level(2, 2, 2);
    let lmc = Lmc::new(1).unwrap();
    t.subnet
        .assign_lmc_range(t.hosts[0], PortNum::new(1), Lid::from_raw(32), lmc)
        .unwrap();
    let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
    let report = sm.bring_up(&mut t.subnet).unwrap();
    // 4 switches + 3 plain hosts get fresh LIDs; the 2 LMC LIDs existed.
    assert_eq!(report.lid_smps, 7);
    assert_eq!(t.subnet.num_lids(), 9);
    for raw in [32u16, 33] {
        let path = t
            .subnet
            .trace_route(t.hosts[2], Lid::from_raw(raw), 16)
            .unwrap();
        assert_eq!(*path.last().unwrap(), t.hosts[0]);
    }
}
