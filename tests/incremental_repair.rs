//! End-to-end checks for the SM's incremental repair sweep.
//!
//! The headline claim: answering a link-down with delta-routing — re-route
//! only the destination columns whose installed paths crossed the failed
//! link, splice, distribute the dirty blocks — sends strictly fewer SMPs
//! than a full reconfiguration on the paper's 648-node fat tree. The
//! equivalence suite then drives every routing engine through random
//! connectivity-preserving fault schedules with repair enabled and demands
//! a verifier-clean fabric (or an accounted fallback) every single time,
//! deterministically across worker counts.

use ib_mad::SmpTransport;
use ib_observe::Observer;
use ib_routing::{EngineKind, RoutingOptions};
use ib_sm::{SmConfig, SubnetManager, SweepKind, Trap};
use ib_subnet::topology::fattree::{paper_324, paper_648, two_level};
use ib_subnet::topology::torus::torus_2d;
use ib_subnet::topology::BuiltTopology;
use ib_subnet::{NodeId, Subnet};
use ib_types::PortNum;
use ib_verify::FabricVerifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every switch-to-switch cable, one entry per cable.
fn core_links(subnet: &Subnet) -> Vec<(NodeId, PortNum, NodeId)> {
    let mut out = Vec::new();
    for sw in subnet.physical_switches() {
        for (port, remote) in sw.cabled_ports() {
            if subnet.node(remote.node).is_physical_switch() && sw.id.index() < remote.node.index()
            {
                out.push((sw.id, port, remote.node));
            }
        }
    }
    out
}

/// Whether the switch core stays connected over up links with `skip` down.
fn connected_without(
    subnet: &Subnet,
    links: &[(NodeId, PortNum, NodeId)],
    skip: (NodeId, PortNum),
) -> bool {
    let switches: Vec<NodeId> = subnet.physical_switches().map(|n| n.id).collect();
    let Some(&start) = switches.first() else {
        return true;
    };
    let mut reached = vec![start];
    let mut frontier = vec![start];
    while let Some(cur) = frontier.pop() {
        for &(a, p, b) in links {
            if (a, p) == skip || !subnet.is_link_up(a, p) {
                continue;
            }
            for (from, to) in [(a, b), (b, a)] {
                if from == cur && !reached.contains(&to) {
                    reached.push(to);
                    frontier.push(to);
                }
            }
        }
    }
    switches.iter().all(|s| reached.contains(s))
}

/// Up links whose loss keeps the core connected.
fn safe_to_down(
    subnet: &Subnet,
    links: &[(NodeId, PortNum, NodeId)],
) -> Vec<(NodeId, PortNum, NodeId)> {
    links
        .iter()
        .copied()
        .filter(|&(a, p, _)| subnet.is_link_up(a, p) && connected_without(subnet, links, (a, p)))
        .collect()
}

fn bring_up(mut t: BuiltTopology, config: SmConfig) -> (BuiltTopology, SubnetManager) {
    let mut sm = SubnetManager::new(t.hosts[0], config);
    sm.set_observer(Observer::metrics());
    sm.bring_up(&mut t.subnet).expect("bring-up");
    (t, sm)
}

/// The acceptance criterion: on the paper's 648-node fat tree with a
/// single link fault, the incremental repair sends strictly fewer LFT
/// SMPs than a full reconfiguration of the same degraded fabric.
#[test]
fn repair_beats_full_reconfiguration_on_the_648_fat_tree() {
    // The same cable on two identically-built fabrics.
    let fault = |t: &BuiltTopology| {
        let links = core_links(&t.subnet);
        safe_to_down(&t.subnet, &links)[0]
    };

    // Arm A: incremental repair answers the trap.
    let (mut a, mut sm_a) = bring_up(
        paper_648(),
        SmConfig {
            repair: true,
            ..SmConfig::default()
        },
    );
    let (node, port, _) = fault(&a);
    a.subnet.set_link_down(node, port).expect("link down");
    let mut transport = SmpTransport::perfect(sm_a.sm_node);
    let report = sm_a
        .handle_trap(
            &mut a.subnet,
            Trap::LinkStateChange { node, port },
            &mut transport,
        )
        .expect("repair sweep");
    assert_eq!(report.kind, SweepKind::Repair, "the repair path ran");
    assert!(report.failed_blocks.is_empty());
    let repair_smps = report.distribution.lft_smps;

    let snap = sm_a.observer().snapshot().expect("metrics on");
    assert_eq!(snap.counter("repair.success"), 1);
    assert_eq!(snap.counter("repair.fallback"), 0);

    // Arm B: classic full reconfiguration of the same degraded fabric.
    let (mut b, mut sm_b) = bring_up(paper_648(), SmConfig::default());
    let (node_b, port_b, _) = fault(&b);
    assert_eq!((node_b, port_b), (node, port), "twin fabrics, same cable");
    b.subnet.set_link_down(node_b, port_b).expect("link down");
    let full = sm_b
        .full_reconfiguration(&mut b.subnet)
        .expect("full reconfiguration");
    let full_smps = full.distribution.lft_smps;

    assert!(
        repair_smps < full_smps,
        "incremental repair must send strictly fewer SMPs: {repair_smps} vs {full_smps}"
    );

    // Both fabrics converged to verifier-clean tables.
    for subnet in [&a.subnet, &b.subnet] {
        let r = FabricVerifier::new()
            .with_deadlock(false)
            .verify(subnet)
            .expect("verifier");
        assert!(r.is_clean(), "{}", r.summary());
    }
}

/// One repair-enabled fault schedule: `faults` seeded connectivity-
/// preserving link-downs, each answered through `handle_trap`. Returns the
/// installed LFT bytes and the repair counters.
fn run_schedule(
    build: fn() -> BuiltTopology,
    engine: EngineKind,
    seed: u64,
    faults: usize,
    workers: usize,
) -> (Vec<(NodeId, ib_subnet::Lft)>, u64, u64) {
    let (mut t, mut sm) = bring_up(
        build(),
        SmConfig {
            engine,
            repair: true,
            routing: RoutingOptions::default().with_workers(workers),
            ..SmConfig::default()
        },
    );
    let links = core_links(&t.subnet);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut transport = SmpTransport::perfect(sm.sm_node);
    for _ in 0..faults {
        let cands = safe_to_down(&t.subnet, &links);
        if cands.is_empty() {
            break;
        }
        let (a, p, _) = cands[rng.gen_range(0..cands.len())];
        t.subnet.set_link_down(a, p).expect("link down");
        let report = sm
            .handle_trap(
                &mut t.subnet,
                Trap::LinkStateChange { node: a, port: p },
                &mut transport,
            )
            .expect("trap");
        assert!(report.failed_blocks.is_empty(), "sweep converged");
        // Every repaired (or fallen-back) fabric is verifier-clean: no
        // black holes, no forwarding loops, sound addressing.
        let r = FabricVerifier::new()
            .with_deadlock(false)
            .verify(&t.subnet)
            .expect("verifier");
        assert!(r.is_clean(), "{engine:?} seed {seed}: {}", r.summary());
    }
    let snap = sm.observer().snapshot().expect("metrics on");
    let lfts = t
        .subnet
        .physical_switches()
        .map(|n| (n.id, n.lft().expect("installed LFT").clone()))
        .collect();
    (
        lfts,
        snap.counter("repair.attempts"),
        snap.counter("repair.fallback"),
    )
}

/// Every engine, on a topology it supports, survives random repair-enabled
/// fault schedules: the repair either verifies clean or falls back (both
/// leave a clean fabric), and the outcome is byte-identical across routing
/// worker counts.
#[test]
fn every_engine_survives_repair_schedules_deterministically() {
    let fat: fn() -> BuiltTopology = || two_level(4, 2, 3);
    let torus: fn() -> BuiltTopology = || torus_2d(3, 3, 1, true);
    let scenarios: [(EngineKind, fn() -> BuiltTopology); 5] = [
        (EngineKind::FatTree, fat),
        (EngineKind::MinHop, fat),
        (EngineKind::UpDown, fat),
        (EngineKind::Dfsssp, torus),
        (EngineKind::Lash, torus),
    ];
    for (engine, build) in scenarios {
        for seed in [7u64, 99] {
            let (lfts_1, attempts_1, fallbacks_1) = run_schedule(build, engine, seed, 3, 1);
            let (lfts_4, attempts_4, fallbacks_4) = run_schedule(build, engine, seed, 3, 4);
            assert!(attempts_1 > 0, "{engine:?}: schedule exercised repair");
            assert_eq!(
                attempts_1, attempts_4,
                "{engine:?} seed {seed}: same schedule for any worker count"
            );
            assert_eq!(
                fallbacks_1, fallbacks_4,
                "{engine:?} seed {seed}: same fallback decisions"
            );
            assert_eq!(
                lfts_1, lfts_4,
                "{engine:?} seed {seed}: installed tables are worker-invariant"
            );
        }
    }
}

/// Every routing engine in the matrix now repairs natively — none rides
/// the default full-recompute shim.
#[test]
fn every_engine_reports_native_incremental_repair() {
    for kind in EngineKind::all() {
        assert!(
            kind.build().incremental_repair(),
            "{kind:?} must implement native incremental repair"
        );
    }
}

/// The per-engine matrix acceptance criterion: each engine answers a
/// single-fault trap with its native repair on a topology it supports —
/// the paper's 324- and 648-node fat trees for the tree engines, the
/// wrapped 4x4 torus for the VL-layering engines — and the repair sends
/// no more SMPs than the classic full-recompute sweep, strictly fewer
/// than `full_reconfiguration`, falls back zero times, and leaves the
/// reverse route index in lockstep with the two-row scan.
#[test]
fn native_repair_beats_full_sweeps_across_the_engine_matrix() {
    let torus_4x4: fn() -> BuiltTopology = || torus_2d(4, 4, 1, true);
    let matrix: [(EngineKind, fn() -> BuiltTopology); 7] = [
        (EngineKind::FatTree, paper_324),
        (EngineKind::MinHop, paper_324),
        (EngineKind::UpDown, paper_324),
        (EngineKind::FatTree, paper_648),
        (EngineKind::UpDown, paper_648),
        (EngineKind::Dfsssp, torus_4x4),
        (EngineKind::Lash, torus_4x4),
    ];
    for (engine, build) in matrix {
        // The same cable on identically-built fabrics.
        let fault = |t: &BuiltTopology| {
            let links = core_links(&t.subnet);
            safe_to_down(&t.subnet, &links)[0]
        };
        let trap_arm = |repair: bool| {
            let (mut t, mut sm) = bring_up(
                build(),
                SmConfig {
                    engine,
                    repair,
                    ..SmConfig::default()
                },
            );
            let (node, port, _) = fault(&t);
            t.subnet.set_link_down(node, port).expect("link down");
            let mut transport = SmpTransport::perfect(sm.sm_node);
            let report = sm
                .handle_trap(
                    &mut t.subnet,
                    Trap::LinkStateChange { node, port },
                    &mut transport,
                )
                .expect("trap");
            assert!(report.failed_blocks.is_empty(), "{engine:?}: converged");
            if repair {
                assert_eq!(report.kind, SweepKind::Repair, "{engine:?}: repair ran");
            }
            (t, sm, report.distribution.lft_smps)
        };

        let (a, sm_a, repair_smps) = trap_arm(true);
        let snap = sm_a.observer().snapshot().expect("metrics on");
        assert_eq!(
            snap.counter(&format!("repair.success.{}", engine.name())),
            1,
            "{engine:?}: one tagged native repair"
        );
        assert_eq!(
            snap.counter("repair.fallback"),
            0,
            "{engine:?}: no fallback"
        );
        assert!(
            sm_a.verify_route_index(&a.subnet).is_empty(),
            "{engine:?}: index agrees with the scan after the splice"
        );
        let r = FabricVerifier::new()
            .with_deadlock(matches!(engine, EngineKind::Dfsssp | EngineKind::Lash))
            .verify_with_vls(&a.subnet, sm_a.installed_vls().expect("tables installed"))
            .expect("verifier");
        assert!(r.is_clean(), "{engine:?}: {}", r.summary());

        let (_, _, sweep_smps) = trap_arm(false);

        let (mut c, mut sm_c) = bring_up(
            build(),
            SmConfig {
                engine,
                ..SmConfig::default()
            },
        );
        let (node_c, port_c, _) = fault(&c);
        c.subnet.set_link_down(node_c, port_c).expect("link down");
        let full_rc_smps = sm_c
            .full_reconfiguration(&mut c.subnet)
            .expect("full reconfiguration")
            .distribution
            .lft_smps;

        assert!(
            repair_smps <= sweep_smps,
            "{engine:?}: repair must not exceed the full sweep: {repair_smps} vs {sweep_smps}"
        );
        // On the trees a single fault leaves most columns clean, so the
        // win is strict; the 16-switch torus is small enough that one
        // fault can dirty every block, making parity the floor there.
        let tree = matches!(
            engine,
            EngineKind::FatTree | EngineKind::MinHop | EngineKind::UpDown
        );
        assert!(
            if tree {
                repair_smps < full_rc_smps
            } else {
                repair_smps <= full_rc_smps
            },
            "{engine:?}: repair must beat full_reconfiguration: {repair_smps} vs {full_rc_smps}"
        );
    }
}

/// LASH's repair is an exact recompute of the dirty destination in-trees:
/// after a single-fault repair accepted by the CDG deadlock gate
/// (`verify: true`), the installed tables are byte-identical to a full
/// LASH reconfiguration of the same degraded torus, and the repaired
/// fabric passes the full deadlock-freedom check.
#[test]
fn lash_repair_matches_full_recompute_under_the_cdg_gate() {
    let build: fn() -> BuiltTopology = || torus_2d(4, 4, 1, true);
    let fault = |t: &BuiltTopology| {
        let links = core_links(&t.subnet);
        safe_to_down(&t.subnet, &links)[0]
    };

    // Arm A: native repair behind the deadlock-checking gate.
    let (mut a, mut sm_a) = bring_up(
        build(),
        SmConfig {
            engine: EngineKind::Lash,
            repair: true,
            verify: true,
            ..SmConfig::default()
        },
    );
    let (node, port, _) = fault(&a);
    a.subnet.set_link_down(node, port).expect("link down");
    let mut transport = SmpTransport::perfect(sm_a.sm_node);
    let report = sm_a
        .handle_trap(
            &mut a.subnet,
            Trap::LinkStateChange { node, port },
            &mut transport,
        )
        .expect("repair sweep");
    assert_eq!(report.kind, SweepKind::Repair, "the repair path ran");
    assert!(report.failed_blocks.is_empty());
    let snap = sm_a.observer().snapshot().expect("metrics on");
    assert_eq!(snap.counter("repair.success.lash"), 1);
    assert_eq!(
        snap.counter("repair.fallback"),
        0,
        "the CDG gate accepted the incremental lane re-assignment"
    );

    // Arm B: full LASH recompute of the same degraded fabric.
    let (mut b, mut sm_b) = bring_up(
        build(),
        SmConfig {
            engine: EngineKind::Lash,
            ..SmConfig::default()
        },
    );
    let (node_b, port_b, _) = fault(&b);
    assert_eq!((node_b, port_b), (node, port), "twin fabrics, same cable");
    b.subnet.set_link_down(node_b, port_b).expect("link down");
    sm_b.full_reconfiguration(&mut b.subnet)
        .expect("full reconfiguration");

    let tables = |s: &Subnet| -> Vec<(NodeId, ib_subnet::Lft)> {
        s.physical_switches()
            .map(|n| (n.id, n.lft().expect("installed LFT").clone()))
            .collect()
    };
    assert_eq!(
        tables(&a.subnet),
        tables(&b.subnet),
        "repair splice is byte-identical to the full recompute"
    );
    let r = FabricVerifier::new()
        .with_deadlock(true)
        .verify_with_vls(&a.subnet, sm_a.installed_vls().expect("tables installed"))
        .expect("verifier");
    assert!(r.is_clean(), "{}", r.summary());
}

/// The coalescing acceptance criterion: a 3-fault burst (seeded,
/// connectivity-preserving, every link down before any response — the
/// view a coalescing window hands the SM) repaired as one batched sweep
/// issues strictly fewer LFT SMPs and strictly fewer verifier passes
/// than repairing the same burst one trap at a time, with byte-identical
/// final tables on the paper's 648-node fat tree.
#[test]
fn batched_repair_beats_serial_on_a_648_tree_burst() {
    const FAULTS: usize = 3;
    let seed = 0x648_B57u64;
    let run = |batched: bool| {
        let (mut t, mut sm) = bring_up(
            paper_648(),
            SmConfig {
                repair: true,
                ..SmConfig::default()
            },
        );
        // Both arms re-derive the picks from the same seeded RNG over the
        // same evolving link state: identical cables, identical order.
        let links = core_links(&t.subnet);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut transport = SmpTransport::perfect(sm.sm_node);
        let mut downed = Vec::new();
        for _ in 0..FAULTS {
            let cands = safe_to_down(&t.subnet, &links);
            let (a, p, _) = cands[rng.gen_range(0..cands.len())];
            t.subnet.set_link_down(a, p).expect("link down");
            downed.push((a, p));
        }
        assert_eq!(downed.len(), FAULTS, "burst fully injected");
        let mut smps = 0;
        if batched {
            let report = sm
                .repair_sweep_batch(&mut t.subnet, &downed, &mut transport)
                .expect("batch repair");
            assert_eq!(report.kind, SweepKind::Repair);
            assert!(report.failed_blocks.is_empty());
            smps += report.distribution.lft_smps;
        } else {
            for &(a, p) in &downed {
                let report = sm
                    .handle_trap(
                        &mut t.subnet,
                        Trap::LinkStateChange { node: a, port: p },
                        &mut transport,
                    )
                    .expect("trap");
                // The scoped gate accepts each mid-burst repair despite
                // the other faults' pre-existing damage.
                assert_eq!(report.kind, SweepKind::Repair);
                assert!(report.failed_blocks.is_empty());
                smps += report.distribution.lft_smps;
            }
        }
        let snap = sm.observer().snapshot().expect("metrics on");
        assert_eq!(snap.counter("repair.fallback"), 0, "no arm fell back");
        let r = FabricVerifier::new()
            .with_deadlock(false)
            .verify(&t.subnet)
            .expect("verifier");
        assert!(r.is_clean(), "{}", r.summary());
        let lfts: Vec<(NodeId, ib_subnet::Lft)> = t
            .subnet
            .physical_switches()
            .map(|n| (n.id, n.lft().expect("installed LFT").clone()))
            .collect();
        (smps, snap.counter("verify.runs"), lfts)
    };

    let (batch_smps, batch_verifies, batch_lfts) = run(true);
    let (serial_smps, serial_verifies, serial_lfts) = run(false);
    assert!(
        batch_smps < serial_smps,
        "batch must send strictly fewer SMPs: {batch_smps} vs {serial_smps}"
    );
    assert_eq!(serial_verifies, FAULTS as u64, "one gate per serial repair");
    assert!(
        batch_verifies < serial_verifies,
        "batch must verify strictly fewer times: {batch_verifies} vs {serial_verifies}"
    );
    assert_eq!(batch_lfts, serial_lfts, "byte-identical final tables");
}
