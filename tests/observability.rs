//! The observability layer's two contracts, pinned end to end:
//!
//! 1. **Reconciliation** — every counter the `ib-observe` sink accumulates
//!    is derivable from the `SmpLedger`'s per-attempt ground truth, even
//!    under injected SMP loss, and the `TxStats` retry/attempt accounting
//!    sums exactly to the ledger's attempt records.
//! 2. **Zero cost** — a run with observation disabled is byte-identical
//!    (ledger records and installed LFTs) to the same run with a metrics
//!    sink attached: the observer is a side channel, never a participant.

use ib_core::{DataCenter, DataCenterConfig, VirtArch};
use ib_mad::SmpTransport;
use ib_observe::{FakeClock, Observer};
use ib_subnet::topology::fattree::two_level;

fn dc_observed(arch: VirtArch, observer: Observer) -> DataCenter {
    DataCenter::from_topology_observed(
        two_level(2, 3, 2),
        DataCenterConfig {
            arch,
            vfs_per_hypervisor: 3,
            ..DataCenterConfig::default()
        },
        observer,
    )
    .expect("bring-up")
}

fn fake_observer() -> Observer {
    Observer::with_clock(Box::new(FakeClock::new()))
}

#[test]
fn metrics_reconcile_with_ledger_under_smp_drops() {
    for arch in [VirtArch::VSwitchPrepopulated, VirtArch::VSwitchDynamic] {
        for seed in 0..8u64 {
            let observer = fake_observer();
            let mut dc = dc_observed(arch, observer.clone());
            let vm = dc.create_vm("vm", 0).expect("create");
            let mut transport = SmpTransport::lossy(dc.sm.sm_node, seed, 0.10, 0);
            transport.retry.max_attempts = 8;
            let report = dc
                .migrate_vm_resilient(vm, 4, &mut transport)
                .expect("resilient migration");

            let ledger = &dc.sm.ledger;
            let snap = observer.snapshot().expect("enabled");
            // Every SMP counter is the ledger aggregate, exactly.
            assert_eq!(snap.counter("smp.attempts"), ledger.total() as u64);
            assert_eq!(snap.counter("smp.retries"), ledger.retries() as u64);
            assert_eq!(
                snap.counter("smp.outcome.delivered"),
                ledger.delivered() as u64
            );
            assert_eq!(snap.counter("smp.outcome.dropped"), ledger.dropped() as u64);
            assert_eq!(
                snap.counter("smp.outcome.timed_out"),
                ledger.timed_out() as u64
            );
            // Per-phase counters match the phase slices.
            let phase = format!("migrate-{vm}");
            assert_eq!(
                snap.counter(&format!("phase.{phase}.smps")),
                ledger.phase_total(&phase) as u64
            );
            assert_eq!(
                snap.counter(&format!("phase.create-{vm}.smps")),
                ledger.phase_total(&format!("create-{vm}")) as u64
            );

            // TxStats accounting sums exactly to the ledger's attempt
            // records for the migration phase: every record is one send
            // attempt, retries are the records with attempt > 0, and for a
            // committed migration every SMP was eventually delivered (no
            // exhausted sends, no compensation traffic).
            let records = ledger.phase_records(&phase);
            let phase_retries = records.iter().filter(|r| r.attempt > 0).count();
            if report.committed {
                assert_eq!(report.tx.retries, phase_retries, "{arch} seed {seed}");
                assert_eq!(report.tx.attempts, records.len(), "{arch} seed {seed}");
                assert_eq!(
                    report.tx.attempts,
                    report.tx.retries + records.iter().filter(|r| r.status.is_delivered()).count(),
                    "{arch} seed {seed}: attempts = retries + delivered"
                );
            } else {
                // A rollback sends compensation SMPs that the ledger
                // records but TxStats books separately; the convention
                // retries <= attempts still holds.
                assert!(report.tx.retries <= report.tx.attempts);
                assert!(report.tx.attempts <= records.len());
            }
        }
    }
}

#[test]
fn zero_drop_resilient_migration_reports_zero_retries() {
    // Regression pin for the `harness faults` zero-drop row: a lossless
    // transport must report zero retries, and the attempt count must equal
    // the migration phase's ledger records (one delivered attempt each).
    for arch in [VirtArch::VSwitchPrepopulated, VirtArch::VSwitchDynamic] {
        for seed in [0u64, 7, 0xfeed] {
            let mut dc = dc_observed(arch, Observer::disabled());
            let vm = dc.create_vm("vm", 0).expect("create");
            let mut transport = SmpTransport::lossy(dc.sm.sm_node, seed, 0.0, 0);
            let report = dc
                .migrate_vm_resilient(vm, 4, &mut transport)
                .expect("resilient migration");
            assert!(report.committed);
            assert_eq!(report.tx.retries, 0, "{arch} seed {seed}");
            let phase = format!("migrate-{vm}");
            assert_eq!(report.tx.attempts, dc.sm.ledger.phase_total(&phase));
        }
    }
}

#[test]
fn observation_is_byte_identical_to_disabled_runs() {
    // Property over seeds and architectures: attaching a metrics sink must
    // not change a single ledger record or LFT row. Includes lossy seeds,
    // where the transport's RNG stream must be unaffected by observation.
    for arch in [VirtArch::VSwitchPrepopulated, VirtArch::VSwitchDynamic] {
        for seed in 0..6u64 {
            let run = |observer: Observer| {
                let mut dc = dc_observed(arch, observer);
                let vm = dc.create_vm("vm", 0).expect("create");
                let mut transport = SmpTransport::lossy(dc.sm.sm_node, seed, 0.08, 3);
                transport.retry.max_attempts = 8;
                dc.migrate_vm_resilient(vm, 4, &mut transport)
                    .expect("resilient migration");
                (dc, transport.clock_ns())
            };
            let (plain, plain_clock) = run(Observer::disabled());
            let (observed, observed_clock) = run(fake_observer());

            assert_eq!(
                plain.sm.ledger.records(),
                observed.sm.ledger.records(),
                "{arch} seed {seed}: ledger must be byte-identical"
            );
            assert_eq!(plain_clock, observed_clock, "{arch} seed {seed}");
            for sw in plain.subnet.physical_switches() {
                assert_eq!(
                    observed.subnet.lft(sw.id).expect("switch LFT"),
                    sw.lft().expect("switch LFT"),
                    "{arch} seed {seed}: LFTs must be byte-identical"
                );
            }
        }
    }
}

#[test]
fn bring_up_emits_pipeline_spans_and_sweep_metrics() {
    let observer = fake_observer();
    let dc = dc_observed(VirtArch::VSwitchPrepopulated, observer.clone());
    let snap = observer.snapshot().expect("enabled");

    for span in [
        "sm.discovery",
        "sm.lid_assignment",
        "sm.routing",
        "sweep.plan",
        "sweep.apply",
    ] {
        assert_eq!(snap.spans_named(span).len(), 1, "missing span {span}");
    }
    // Physical and virtual switches alike get LFTs on bring-up; the
    // ledger's distinct-target count is the ground truth.
    assert_eq!(
        snap.counter("sweep.switches_updated"),
        dc.sm.ledger.switches_updated() as u64
    );
    assert_eq!(
        snap.counter("planner.jobs"),
        dc.sm.ledger.switches_updated() as u64
    );
    // Dirty blocks planned == LFT-update SMPs delivered on a clean fabric.
    assert_eq!(
        snap.counter("sweep.dirty_blocks"),
        dc.sm.ledger.lft_updates() as u64
    );
}

#[test]
fn migration_commit_metrics_count_each_migration() {
    let observer = fake_observer();
    let mut dc = dc_observed(VirtArch::VSwitchPrepopulated, observer.clone());
    let a = dc.create_vm("a", 0).expect("create");
    let b = dc.create_vm("b", 1).expect("create");
    let mut transport = SmpTransport::perfect(dc.sm.sm_node);
    dc.migrate_vm_resilient(a, 4, &mut transport)
        .expect("migrate a");
    dc.migrate_vm_resilient(b, 5, &mut transport)
        .expect("migrate b");

    let snap = observer.snapshot().expect("enabled");
    assert_eq!(snap.counter("migration.tx.committed"), 2);
    assert_eq!(snap.counter("migration.tx.rolled_back"), 0);
    assert_eq!(snap.counter("migration.abort.step_a"), 0);
    let retries = snap.histogram("migration.tx.retries").expect("histogram");
    assert_eq!(retries.count, 2);
    assert_eq!(retries.sum, 0, "perfect transport retries nothing");
    assert_eq!(snap.spans_named("migration.step_b.swap").len(), 2);
}
