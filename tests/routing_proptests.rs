//! Property-style tests over the routing engines: on randomized topologies,
//! every engine must produce fully-reachable tables, and the
//! deadlock-free engines must honor their acyclicity contracts.
//!
//! Originally written with `proptest`; the offline build environment cannot
//! fetch it, so these are seeded randomized tests driven by the vendored
//! `rand` stub.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ib_routing::cdg::Cdg;
use ib_routing::dfsssp::verify_layers_acyclic;
use ib_routing::graph::SwitchGraph;
use ib_routing::lash::verify_pair_layers_acyclic;
use ib_routing::testutil::{assert_full_reachability, assign_lids};
use ib_routing::EngineKind;
use ib_subnet::topology::fattree::two_level;
use ib_subnet::topology::irregular::{irregular, IrregularSpec};
use ib_subnet::topology::torus::torus_2d;

fn engines_for_all_topologies() -> Vec<EngineKind> {
    vec![EngineKind::UpDown, EngineKind::Dfsssp, EngineKind::Lash]
}

/// Every engine routes every random small fat tree completely.
#[test]
fn engines_route_random_fat_trees() {
    let mut rng = StdRng::seed_from_u64(0xF7_01);
    for _ in 0..16 {
        let leaves = rng.gen_range(2usize..5);
        let hosts = rng.gen_range(1usize..4);
        let spines = rng.gen_range(1usize..4);
        for engine in EngineKind::all() {
            let mut t = two_level(leaves, hosts, spines);
            assign_lids(&mut t);
            let tables = engine.build().compute(&t.subnet).unwrap();
            assert_full_reachability(&t.subnet, &tables);
        }
    }
}

/// Deadlock-free engines stay deadlock-free on random irregular
/// fabrics, verified by re-deriving the CDGs per lane.
#[test]
fn deadlock_free_engines_on_random_irregular() {
    let mut rng = StdRng::seed_from_u64(0xF7_02);
    for _ in 0..16 {
        let seed = rng.gen_range(0u64..1000);
        let spec = IrregularSpec {
            num_switches: 7,
            num_hosts: 10,
            extra_links: 5,
            seed,
        };
        for engine in engines_for_all_topologies() {
            let mut t = irregular(spec);
            assign_lids(&mut t);
            let tables = engine.build().compute(&t.subnet).unwrap();
            assert_full_reachability(&t.subnet, &tables);
            match engine {
                EngineKind::UpDown => {
                    let g = SwitchGraph::build(&t.subnet).unwrap();
                    let cdg = Cdg::from_tables(&g, &tables, |_| true);
                    assert!(cdg.find_cycle().is_none(), "seed {seed}");
                }
                EngineKind::Dfsssp => {
                    verify_layers_acyclic(&t.subnet, &tables).unwrap();
                }
                EngineKind::Lash => {
                    verify_pair_layers_acyclic(&t.subnet, &tables).unwrap();
                }
                _ => {}
            }
        }
    }
}

/// Tori of random shape: reachability for all engines that accept
/// them, layer-acyclicity for dfsssp.
#[test]
fn engines_route_random_tori() {
    let mut rng = StdRng::seed_from_u64(0xF7_03);
    for _ in 0..8 {
        let rows = rng.gen_range(2usize..5);
        let cols = rng.gen_range(2usize..5);
        for engine in engines_for_all_topologies() {
            let mut t = torus_2d(rows, cols, 1, true);
            assign_lids(&mut t);
            let tables = engine.build().compute(&t.subnet).unwrap();
            assert_full_reachability(&t.subnet, &tables);
        }
        // The fat-tree engine must *reject* a torus rather than produce
        // wrong tables.
        let mut t = torus_2d(rows, cols, 1, true);
        assign_lids(&mut t);
        assert!(EngineKind::FatTree.build().compute(&t.subnet).is_err());
    }
}

/// Table outputs are deterministic: computing twice yields identical
/// LFTs (no hidden RNG, no iteration-order leakage).
#[test]
fn engines_are_deterministic() {
    let mut rng = StdRng::seed_from_u64(0xF7_04);
    for _ in 0..16 {
        let seed = rng.gen_range(0u64..200);
        let spec = IrregularSpec {
            num_switches: 6,
            num_hosts: 8,
            extra_links: 4,
            seed,
        };
        for engine in [EngineKind::MinHop, EngineKind::UpDown, EngineKind::Dfsssp] {
            let mut t = irregular(spec);
            assign_lids(&mut t);
            let a = engine.build().compute(&t.subnet).unwrap();
            let b = engine.build().compute(&t.subnet).unwrap();
            for (sw, lft) in &a.lfts {
                assert_eq!(&b.lfts[sw], lft, "{} differs", engine.name());
            }
        }
    }
}
