//! The Fig. 6 scenarios (§VI-D): how many switches a migration must touch
//! depends on how far — from an interconnection point of view — the VM
//! moves, and intra-leaf migrations need only the leaf switch.

use ib_core::concurrent::{schedule, PlannedMigration};
use ib_core::migration::MigrationOptions;
use ib_core::{affected, DataCenter, DataCenterConfig, VirtArch};
use ib_subnet::topology::basic::fig6_fabric;

fn build(shortcut: bool) -> DataCenter {
    DataCenter::from_topology(
        fig6_fabric(),
        DataCenterConfig {
            arch: VirtArch::VSwitchPrepopulated,
            vfs_per_hypervisor: 3,
            migration: MigrationOptions {
                intra_leaf_shortcut: shortcut,
                ..MigrationOptions::default()
            },
            ..DataCenterConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn fabric_matches_fig6_shape() {
    let dc = build(false);
    // 12 switches, hypervisors 1 and 2 share a leaf, hypervisor 4 is far.
    assert_eq!(dc.subnet.num_physical_switches(), 12);
    assert_eq!(dc.hypervisors[0].leaf, dc.hypervisors[1].leaf);
    assert_ne!(dc.hypervisors[0].leaf, dc.hypervisors[3].leaf);
}

#[test]
fn intra_leaf_migration_with_shortcut_touches_only_the_leaf() {
    // "if VM3 moves from Hypervisor 1 to Hypervisor 2, only switch 1 needs
    // to be updated."
    let mut dc = build(true);
    let vm = dc.create_vm("vm3", 0).unwrap();
    let report = dc.migrate_vm(vm, 1).unwrap();
    assert!(report.intra_leaf);
    assert!(report.used_leaf_shortcut);
    assert!(report.lft.switches_updated <= 1);
    dc.verify_connectivity().unwrap();
}

#[test]
fn deterministic_method_may_touch_more_switches_than_the_minimum() {
    // Without the shortcut, the deterministic full iteration updates every
    // switch whose rows differ — possibly more than one even for an
    // intra-leaf move (the Fig. 6 P1/P2 discussion).
    let mut dc = build(false);
    let vm = dc.create_vm("vm3", 0).unwrap();
    let report = dc.migrate_vm(vm, 1).unwrap();
    assert!(report.intra_leaf);
    assert!(!report.used_leaf_shortcut);
    // Never *wrong*, but possibly wasteful; in all cases bounded by n.
    assert!(report.lft.switches_updated <= dc.subnet.num_physical_switches());
    dc.verify_connectivity().unwrap();
}

#[test]
fn far_migration_touches_more_switches_than_near() {
    let mut dc = build(false);
    // Near: hyp 0 -> hyp 2 (adjacent leaf, same pod half).
    let near_vm = dc.create_vm("near", 0).unwrap();
    let near = dc.migrate_vm(near_vm, 2).unwrap();
    // Far: hyp 1 -> hyp 3 (opposite corner of the tree).
    let far_vm = dc.create_vm("far", 1).unwrap();
    let far = dc.migrate_vm(far_vm, 3).unwrap();
    assert!(
        far.lft.switches_updated >= near.lft.switches_updated,
        "far {} vs near {}",
        far.lft.switches_updated,
        near.lft.switches_updated
    );
    dc.verify_connectivity().unwrap();
}

#[test]
fn affected_set_prediction_enables_concurrent_intra_leaf_migrations() {
    // "In the case of live migrations within leaf switches we could have
    // as many concurrent migrations as there exists leaf switches."
    let dc = build(true);
    // Plan one intra-leaf migration per hypervisor pair that shares a
    // leaf: (0 -> 1) on leaf A. Plus a far migration that conflicts.
    let vm_lid_a = dc.hypervisors[0].vf_lid(&dc.subnet, 0).unwrap();
    let dest_lid_a = dc.hypervisors[1].vf_lid(&dc.subnet, 0).unwrap();
    let plan_a = PlannedMigration {
        tag: "intra-leaf-A",
        affected: vec![dc.hypervisors[0].leaf],
    };
    let _ = (vm_lid_a, dest_lid_a);

    let vm_lid_b = dc.hypervisors[2].vf_lid(&dc.subnet, 0).unwrap();
    let far_lid = dc.hypervisors[3].vf_lid(&dc.subnet, 0).unwrap();
    let affected_far = affected::affected_by_swap(&dc.subnet, vm_lid_b, far_lid).unwrap();
    let plan_far = PlannedMigration {
        tag: "far",
        affected: affected_far.clone(),
    };
    // A second far migration with the same affected set must serialize.
    let plan_far2 = PlannedMigration {
        tag: "far-2",
        affected: affected_far,
    };

    let batches = schedule(vec![plan_a, plan_far, plan_far2]);
    // The far migrations conflict with each other; the intra-leaf one
    // rides along with whichever batch it does not conflict with.
    assert!(batches.len() >= 2);
    let widths: Vec<usize> = batches.iter().map(Vec::len).collect();
    assert!(widths[0] >= 1);
}

#[test]
fn leaf_count_is_the_intra_leaf_concurrency_ceiling() {
    let dc = build(true);
    // Fig. 6 places hypervisors on three of the four leaves; only
    // endpoint-bearing switches count as leaves.
    assert_eq!(affected::max_concurrent_intra_leaf(&dc.subnet), 3);
}

#[test]
fn parallel_intra_leaf_migrations_execute_without_interference() {
    // Execute two intra-leaf migrations on different leaves back to back
    // and verify both fabrics' invariants hold (the §VI-D concurrency
    // claim, serialized here since the model is single-threaded).
    let mut dc = build(true);
    let vm_a = dc.create_vm("a", 0).unwrap(); // leaf A: hyp 0 <-> 1
    let vm_b = dc.create_vm("b", 2).unwrap(); // leaf B: hyp 2 is alone on
                                              // its leaf; move within pod
    let rep_a = dc.migrate_vm(vm_a, 1).unwrap();
    assert!(rep_a.used_leaf_shortcut);
    // hyp 2's leaf hosts only hypervisor 3? (fig6: hyp3 on leaf 1). Move b
    // to hyp 0 instead — inter-leaf, checking coexistence with rep_a.
    let rep_b = dc.migrate_vm(vm_b, 0).unwrap();
    assert!(!rep_b.intra_leaf);
    dc.verify_connectivity().unwrap();
}
