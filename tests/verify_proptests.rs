//! Property-style tests over the fabric invariant verifier: fault-free
//! sweeps by every routing engine must verify clean on the paper's
//! topologies, and deliberately corrupted LFT entries must be caught in
//! the right invariant class no matter where the corruption lands.
//!
//! Originally written with `proptest`; the offline build environment cannot
//! fetch it, so these are seeded randomized tests driven by the vendored
//! `rand` stub.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ib_core::migration::{swap_on_fabric, MigrationOptions};
use ib_mad::SmpLedger;
use ib_routing::testutil::{assign_lids, host_lid};
use ib_routing::EngineKind;
use ib_sm::{SmConfig, SubnetManager};
use ib_subnet::topology::fattree::{self, two_level};
use ib_subnet::topology::torus::torus_2d;
use ib_subnet::topology::BuiltTopology;
use ib_verify::{FabricVerifier, InvariantClass, LftSnapshot};

/// Computes and installs `engine`'s tables on `t`, returning the VL
/// layering for the verifier.
fn install(t: &mut BuiltTopology, engine: EngineKind) -> ib_routing::VlAssignment {
    assign_lids(t);
    let tables = engine.build().compute(&t.subnet).unwrap();
    tables.install(&mut t.subnet).unwrap();
    tables.vls
}

/// A managed min-hop fat tree for the corruption tests: LIDs assigned,
/// tables computed and installed.
fn minhop_fabric(leaves: usize, hosts_per_leaf: usize, spines: usize) -> BuiltTopology {
    let mut t = two_level(leaves, hosts_per_leaf, spines);
    install(&mut t, EngineKind::MinHop);
    t
}

// ---------------------------------------------------------------------
// Fault-free sweeps verify clean
// ---------------------------------------------------------------------

/// Every routing engine's fault-free tables on the paper's 324-node and
/// 648-node fat trees verify fully clean — black holes, forwarding
/// loops, addressing, *and* the per-lane CDG check.
///
/// Min-Hop and the fat-tree engine used to trip the deadlock invariant
/// here: spine-to-spine (switch LID) routes on a two-level tree must
/// descend and re-ascend — a valley — and neither engine made a VL
/// provision for that management traffic. Both now route switch-destined
/// columns up*/down*-legally on a dedicated lane, so all five engines
/// pass the full check.
#[test]
fn all_engines_verify_clean_on_paper_fat_trees() {
    let deadlock_free = EngineKind::all();
    for build in [
        fattree::paper_324 as fn() -> BuiltTopology,
        fattree::paper_648,
    ] {
        for engine in EngineKind::all() {
            let mut t = build();
            let vls = install(&mut t, engine);
            let report = FabricVerifier::new()
                .verify_with_vls(&t.subnet, &vls)
                .unwrap();
            let tag = format!("{} on {}", engine.name(), t.name);
            assert_eq!(
                report.count(InvariantClass::BlackHole),
                0,
                "{tag}: {report}"
            );
            assert_eq!(
                report.count(InvariantClass::ForwardingLoop),
                0,
                "{tag}: {report}"
            );
            assert_eq!(
                report.count(InvariantClass::Addressing),
                0,
                "{tag}: {report}"
            );
            if deadlock_free.contains(&engine) {
                assert!(report.is_clean(), "{tag}: {report}");
            }
            assert_eq!(report.switches, t.switch_levels.iter().map(Vec::len).sum());
        }
    }
}

/// The SM's own sweep-time verification gate (`SmConfig.verify`) passes
/// for every engine on a fault-free fat tree — bring-up succeeds instead
/// of erroring out. (The fat-tree engine's spine-to-spine valley used to
/// be rejected here; its switch-destined columns now ride a dedicated
/// up*/down*-legal lane. The gate's rejection path is exercised by
/// `minhop_on_wrapped_tori_always_trips_the_deadlock_invariant` below.)
#[test]
fn sm_sweep_verify_gate_passes_for_deadlock_free_engines() {
    for engine in EngineKind::all() {
        let mut t = two_level(4, 3, 2);
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                engine,
                verify: true,
                ..SmConfig::default()
            },
        );
        let report = sm.bring_up(&mut t.subnet).unwrap();
        assert_eq!(report.engine, engine.name());
    }
}

/// The deadlock-free engines verify clean on wrapped tori of random shape,
/// using the VL layering each engine produced.
#[test]
fn deadlock_free_engines_verify_clean_on_random_tori() {
    let mut rng = StdRng::seed_from_u64(0xFB_01);
    for _ in 0..6 {
        let rows = rng.gen_range(3usize..6);
        let cols = rng.gen_range(3usize..6);
        for engine in [EngineKind::UpDown, EngineKind::Dfsssp, EngineKind::Lash] {
            let mut t = torus_2d(rows, cols, 1, true);
            let vls = install(&mut t, engine);
            let report = FabricVerifier::new()
                .verify_with_vls(&t.subnet, &vls)
                .unwrap();
            assert!(
                report.is_clean(),
                "{} on {rows}x{cols} torus: {report}",
                engine.name()
            );
        }
    }
}

/// Min-hop on a wrapped torus is the canonical single-VL deadlock: the
/// verifier must report a CDG cycle (and nothing else), for any torus
/// shape, while the relaxed check stays clean.
#[test]
fn minhop_on_wrapped_tori_always_trips_the_deadlock_invariant() {
    let mut rng = StdRng::seed_from_u64(0xFB_02);
    for _ in 0..6 {
        let rows = rng.gen_range(4usize..7);
        let cols = rng.gen_range(4usize..7);
        let mut t = torus_2d(rows, cols, 1, true);
        install(&mut t, EngineKind::MinHop);
        let report = FabricVerifier::new().verify(&t.subnet).unwrap();
        assert!(
            report.count(InvariantClass::DeadlockCycle) >= 1,
            "{rows}x{cols}: {report}"
        );
        assert_eq!(report.count(InvariantClass::BlackHole), 0);
        assert_eq!(report.count(InvariantClass::ForwardingLoop), 0);
        let relaxed = FabricVerifier::new()
            .with_deadlock(false)
            .verify(&t.subnet)
            .unwrap();
        assert!(relaxed.is_clean(), "{relaxed}");
    }
    // And the SM's sweep gate refuses to install such tables at all.
    let mut t = torus_2d(4, 4, 1, true);
    let mut sm = SubnetManager::new(
        t.hosts[0],
        SmConfig {
            engine: EngineKind::MinHop,
            verify: true,
            ..SmConfig::default()
        },
    );
    let err = sm.bring_up(&mut t.subnet).unwrap_err();
    assert!(
        err.to_string().contains("deadlock-cycle"),
        "unexpected error: {err}"
    );
}

// ---------------------------------------------------------------------
// Corrupted tables are caught, wherever the corruption lands
// ---------------------------------------------------------------------

/// Misrouting a random victim's row on its own leaf to a neighbor host is
/// always caught as a black hole (wrong-endpoint delivery).
#[test]
fn random_misroutes_are_black_holes() {
    let mut rng = StdRng::seed_from_u64(0xFB_03);
    for _ in 0..12 {
        let mut t = minhop_fabric(4, 3, 2);
        let victim_host = rng.gen_range(0usize..t.hosts.len());
        let victim = host_lid(&t, victim_host);
        // The victim's leaf, and a port on it leading to a *different* host.
        let leaf = t.switch_levels[0][victim_host / 3];
        let (wrong_port, _) = t
            .subnet
            .node(leaf)
            .connected_ports()
            .find(|(_, r)| r.node != t.hosts[victim_host] && t.subnet.node(r.node).is_hca())
            .expect("leaf has another host");
        t.subnet.lft_mut(leaf).unwrap().set(victim, wrong_port);
        let report = FabricVerifier::new().verify(&t.subnet).unwrap();
        assert!(
            report.count(InvariantClass::BlackHole) >= 1,
            "host {victim_host}: {report}"
        );
        assert!(report.summary().contains("wrong endpoint"));
    }
}

/// Cross-pointing a random (leaf, spine) pair's rows for a victim hosted
/// elsewhere is always caught as a forwarding loop.
#[test]
fn random_cross_pointing_rows_are_forwarding_loops() {
    let mut rng = StdRng::seed_from_u64(0xFB_04);
    for _ in 0..12 {
        let mut t = minhop_fabric(4, 2, 3);
        // Victim lives on leaf 0; corrupt a different leaf so the loop
        // sits on the far side of the fabric from the endpoint.
        let victim = host_lid(&t, rng.gen_range(0usize..2));
        let leaf = t.switch_levels[0][rng.gen_range(1usize..4)];
        let spine = t.switch_levels[1][rng.gen_range(0usize..3)];
        let (to_spine, _) = t
            .subnet
            .node(leaf)
            .connected_ports()
            .find(|(_, r)| r.node == spine)
            .expect("leaf-spine cable");
        let (to_leaf, _) = t
            .subnet
            .node(spine)
            .connected_ports()
            .find(|(_, r)| r.node == leaf)
            .expect("spine-leaf cable");
        t.subnet.lft_mut(leaf).unwrap().set(victim, to_spine);
        t.subnet.lft_mut(spine).unwrap().set(victim, to_leaf);
        let report = FabricVerifier::new().verify(&t.subnet).unwrap();
        assert!(
            report.count(InvariantClass::ForwardingLoop) >= 1,
            "{report}"
        );
    }
}

/// Dropping a random victim's row from its own leaf is always caught as a
/// black hole (missing row), and an explicit drop entry likewise.
#[test]
fn random_dropped_rows_are_black_holes() {
    let mut rng = StdRng::seed_from_u64(0xFB_05);
    for round in 0..12 {
        let mut t = minhop_fabric(4, 3, 2);
        let victim_host = rng.gen_range(0usize..t.hosts.len());
        let victim = host_lid(&t, victim_host);
        let leaf = t.switch_levels[0][victim_host / 3];
        if round % 2 == 0 {
            t.subnet.lft_mut(leaf).unwrap().clear(victim);
        } else {
            t.subnet
                .lft_mut(leaf)
                .unwrap()
                .set(victim, ib_types::PortNum::DROP);
        }
        let report = FabricVerifier::new().verify(&t.subnet).unwrap();
        assert!(
            report.count(InvariantClass::BlackHole) >= 1,
            "host {victim_host}: {report}"
        );
        assert_eq!(report.count(InvariantClass::ForwardingLoop), 0);
    }
}

// ---------------------------------------------------------------------
// Algorithm-1 locality: a swap touches exactly the two swapped columns
// ---------------------------------------------------------------------

/// §V-C's locality claim as a property: a LID swap between two random
/// hosts changes the forwarding columns of exactly those two LIDs — every
/// uninvolved column is byte-identical — and swapping back restores the
/// original fingerprint of the whole fabric.
#[test]
fn algorithm1_swap_touches_only_the_swapped_columns() {
    let mut rng = StdRng::seed_from_u64(0xFB_06);
    for _ in 0..8 {
        let mut t = minhop_fabric(4, 3, 2);
        let sm_node = t.hosts[0];
        // Two hosts on different leaves, so their rows genuinely differ
        // somewhere and the swap is not a no-op.
        let ha = rng.gen_range(0usize..3);
        let hb = 3 + rng.gen_range(0usize..9);
        let (a, b) = (host_lid(&t, ha), host_lid(&t, hb));
        let opts = MigrationOptions::default();
        let mut ledger = SmpLedger::new();

        let before = LftSnapshot::capture(&t.subnet);
        swap_on_fabric(&mut t.subnet, sm_node, a, b, &opts, None, &mut ledger).unwrap();
        let after = LftSnapshot::capture(&t.subnet);

        let changed = before.diff(&after);
        assert_eq!(changed, vec![a.raw().min(b.raw()), a.raw().max(b.raw())]);
        assert!(before.verify_preserved(&after, &[a, b]).is_empty());
        let violations = before.verify_preserved(&after, &[]);
        assert_eq!(violations.len(), 2);
        assert!(violations
            .iter()
            .all(|v| v.class == InvariantClass::Addressing));

        // Swap back: the fabric fingerprint is restored exactly.
        swap_on_fabric(&mut t.subnet, sm_node, a, b, &opts, None, &mut ledger).unwrap();
        let restored = LftSnapshot::capture(&t.subnet);
        assert!(before.diff(&restored).is_empty());
    }
}
