//! The §V-A / §V-B balancing trade-off, measured.
//!
//! Prepopulated LIDs give every VM its own LFT rows, spread by the initial
//! routing like an LMC would spread paths; dynamic assignment stacks every
//! VM of a hypervisor onto the PF's rows. Link-load statistics and max-min
//! fair throughput make the difference concrete.

use ib_core::{DataCenter, DataCenterConfig, VirtArch};
use ib_routing::balance::LinkLoad;
use ib_routing::EngineKind;
use ib_sim::fairness::{max_min_fair, FairFlow};
use ib_subnet::topology::fattree::two_level;

fn dc(arch: VirtArch) -> DataCenter {
    let mut dc = DataCenter::from_topology(
        two_level(3, 3, 3),
        DataCenterConfig {
            arch,
            vfs_per_hypervisor: 3,
            engine: EngineKind::FatTree,
            ..DataCenterConfig::default()
        },
    )
    .unwrap();
    // Three VMs on each of the first three hypervisors (all on leaf 0).
    for h in 0..3 {
        for v in 0..3 {
            dc.create_vm(format!("vm-{h}-{v}"), h).unwrap();
        }
    }
    dc
}

#[test]
fn dynamic_stacks_vm_rows_onto_one_uplink() {
    // Six VMs all on hypervisor 0: under dynamic assignment their seven
    // LIDs (6 VMs + the PF) ride the PF's single spine choice, so a
    // remote leaf forwards all seven over ONE uplink; prepopulated VM
    // LIDs spread across the uplinks like any other destinations
    // (the LMC-imitation of §V-A).
    let build = |arch| {
        let mut dcx = DataCenter::from_topology(
            two_level(3, 3, 3),
            DataCenterConfig {
                arch,
                vfs_per_hypervisor: 6,
                engine: EngineKind::FatTree,
                ..DataCenterConfig::default()
            },
        )
        .unwrap();
        for v in 0..6 {
            dcx.create_vm(format!("vm-{v}"), 0).unwrap();
        }
        dcx
    };
    let per_port_max = |dcx: &DataCenter| -> usize {
        let lids: Vec<ib_types::Lid> = dcx
            .vms()
            .iter()
            .map(|r| r.lid)
            .chain(std::iter::once(
                dcx.hypervisors[0].pf_lid(&dcx.subnet).unwrap(),
            ))
            .collect();
        // Remote leaf: the leaf of hypervisor 3 (second leaf).
        let remote_leaf = dcx.hypervisors[3].leaf;
        let lft = dcx.subnet.lft(remote_leaf).unwrap();
        let mut counts: std::collections::HashMap<u8, usize> = std::collections::HashMap::new();
        for lid in lids {
            let p = lft.get(lid).unwrap();
            *counts.entry(p.raw()).or_insert(0) += 1;
        }
        counts.values().copied().max().unwrap()
    };

    let prepop = build(VirtArch::VSwitchPrepopulated);
    let dynamic = build(VirtArch::VSwitchDynamic);
    let p_max = per_port_max(&prepop);
    let d_max = per_port_max(&dynamic);
    assert_eq!(d_max, 7, "dynamic: all seven LIDs on the PF's uplink");
    assert!(
        p_max < 7,
        "prepopulated spreads the seven LIDs (max {p_max} on one uplink)"
    );
}

#[test]
fn prepopulated_doubles_throughput_under_spine_collision() {
    // 4 hypervisors per leaf over 3 spines: two leaf-0 PFs share a spine
    // (pigeonhole). Dynamic mode funnels both hypervisors' VM rows onto
    // that shared spine downlink; prepopulated VM LIDs spread, and the
    // max-min fair aggregate doubles.
    let build = |arch| {
        DataCenter::from_topology(
            two_level(2, 4, 3),
            DataCenterConfig {
                arch,
                vfs_per_hypervisor: 3,
                engine: EngineKind::FatTree,
                ..DataCenterConfig::default()
            },
        )
        .unwrap()
    };
    let run = |arch| -> f64 {
        let mut dcx = build(arch);
        let remote_leaf = dcx.hypervisors[4].leaf;
        let (a, b) = {
            let lft = dcx.subnet.lft(remote_leaf).unwrap();
            let mut by_port: std::collections::HashMap<u8, Vec<usize>> =
                std::collections::HashMap::new();
            for h in 0..4 {
                let pf = dcx.hypervisors[h].pf_lid(&dcx.subnet).unwrap();
                by_port
                    .entry(lft.get(pf).unwrap().raw())
                    .or_default()
                    .push(h);
            }
            let pair = by_port.values().find(|v| v.len() >= 2).unwrap();
            (pair[0], pair[1])
        };
        for v in 0..3 {
            dcx.create_vm(format!("vm-a{v}"), a).unwrap();
            dcx.create_vm(format!("vm-b{v}"), b).unwrap();
        }
        let flows: Vec<FairFlow> = dcx
            .vms()
            .iter()
            .enumerate()
            .map(|(i, vm)| FairFlow {
                src: dcx.hypervisors[4 + (i % 4)].pf,
                dst: vm.lid,
            })
            .collect();
        max_min_fair(&dcx.subnet, &flows).unwrap().aggregate
    };
    let prepop = run(VirtArch::VSwitchPrepopulated);
    let dynamic = run(VirtArch::VSwitchDynamic);
    assert!(
        (prepop - 2.0).abs() < 1e-9,
        "prepopulated fills both hypervisor uplinks: {prepop}"
    );
    assert!(
        (dynamic - 1.0).abs() < 1e-9,
        "dynamic is capped by the shared spine downlink: {dynamic}"
    );
}

#[test]
fn migration_storm_preserves_prepopulated_balance_but_not_dynamic() {
    let mut prepop = dc(VirtArch::VSwitchPrepopulated);
    let before = LinkLoad::from_subnet(&prepop.subnet)
        .unwrap()
        .load_multiset();
    // Shuffle three VMs across the fabric and back.
    let ids: Vec<_> = prepop.vms().iter().map(|r| r.id).take(3).collect();
    for (i, &vm) in ids.iter().enumerate() {
        prepop.migrate_vm(vm, 4 + i).unwrap();
    }
    // All three came from hypervisor 0, which now has three free slots.
    for &vm in &ids {
        prepop.migrate_vm(vm, 0).unwrap();
    }
    let after = LinkLoad::from_subnet(&prepop.subnet)
        .unwrap()
        .load_multiset();
    assert_eq!(before, after, "swap round-trips preserve the load multiset");
    prepop.verify_connectivity().unwrap();
}
