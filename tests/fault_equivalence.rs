//! The fault layer's zero-cost property: running any pipeline under an
//! empty [`FaultPlan`] is byte-identical to running without the fault
//! layer at all — same ledger records (per-attempt accounting included),
//! same LFT contents, same replayed timings — for any plan seed.

use ib_core::{DataCenter, DataCenterConfig, VirtArch};
use ib_mad::SmpTransport;
use ib_sim::{FaultPlan, SmpLatencyModel, SmpReplay};
use ib_sm::Trap;
use ib_subnet::topology::fattree::two_level;

fn dc(arch: VirtArch) -> DataCenter {
    DataCenter::from_topology(
        two_level(2, 3, 2),
        DataCenterConfig {
            arch,
            vfs_per_hypervisor: 2,
            ..DataCenterConfig::default()
        },
    )
    .expect("bring-up")
}

#[test]
fn empty_plan_migration_is_byte_identical_for_any_seed() {
    for arch in [VirtArch::VSwitchPrepopulated, VirtArch::VSwitchDynamic] {
        // The reference: the classic, fault-layer-free migration.
        let mut classic = dc(arch);
        let vm_c = classic.create_vm("vm", 0).expect("create");
        classic.migrate_vm(vm_c, 4).expect("classic migration");
        let phase = format!("migrate-{vm_c}");
        let reference = classic.sm.ledger.phase_records(&phase).to_vec();
        assert!(!reference.is_empty());

        // The seed must not matter when the drop probability is zero.
        for seed in [0u64, 1, 42, 0xdead_beef] {
            let plan = FaultPlan::lossy(seed, 0.0);
            assert!(plan.is_fault_free());
            let mut faulty = dc(arch);
            let vm = faulty.create_vm("vm", 0).expect("create");
            let mut transport = plan.transport(faulty.sm.sm_node);
            let report = faulty
                .migrate_vm_resilient(vm, 4, &mut transport)
                .expect("resilient migration");

            assert!(report.committed, "{arch}");
            assert_eq!(report.tx.retries, 0);
            assert_eq!(report.tx.rollback_smps, 0);
            // Ledger: identical records, attempt numbers and statuses included.
            assert_eq!(
                faulty.sm.ledger.phase_records(&phase),
                reference.as_slice(),
                "{arch} seed {seed}: ledger must be byte-identical"
            );
            // Fabric: identical installed LFTs.
            for sw in classic.subnet.physical_switches() {
                assert_eq!(
                    faulty.subnet.lft(sw.id).unwrap(),
                    sw.lft().unwrap(),
                    "{arch} seed {seed}: LFTs must be byte-identical"
                );
            }
            // Timings: the outcome-aware replay degenerates to the plain
            // replay, and the transport's virtual clock equals the serial
            // replay makespan (no jitter, no timeouts).
            let model = SmpLatencyModel::default();
            let plain = SmpReplay::run(&faulty.sm.ledger, Some(&phase), &model);
            let outcome_aware = SmpReplay::run_with_faults(
                &faulty.sm.ledger,
                Some(&phase),
                &model,
                &transport.retry,
            );
            assert_eq!(plain, outcome_aware);
            assert_eq!(transport.clock_ns(), plain.makespan.as_ns());
        }
    }
}

#[test]
fn empty_plan_resweep_matches_perfect_transport() {
    let (mut a, mut b) = (
        dc(VirtArch::VSwitchPrepopulated),
        dc(VirtArch::VSwitchPrepopulated),
    );
    // Same link failure on both fabrics.
    let cut = |dc: &DataCenter| {
        let leaf = dc.hypervisors[0].leaf;
        dc.subnet
            .node(leaf)
            .connected_ports()
            .find(|(_, ep)| dc.subnet.node(ep.node).is_switch())
            .map(|(port, _)| port)
            .expect("leaf uplink")
    };
    let (pa, pb) = (cut(&a), cut(&b));
    assert_eq!(pa, pb);
    let (la, lb) = (a.hypervisors[0].leaf, b.hypervisors[0].leaf);
    a.subnet.set_link_down(la, pa).expect("cut");
    b.subnet.set_link_down(lb, pb).expect("cut");

    let mut perfect = SmpTransport::perfect(a.sm.sm_node);
    let ra =
        a.sm.handle_trap(
            &mut a.subnet,
            Trap::LinkStateChange { node: la, port: pa },
            &mut perfect,
        )
        .expect("re-sweep");
    let mut planned = FaultPlan::none().transport(b.sm.sm_node);
    let rb =
        b.sm.handle_trap(
            &mut b.subnet,
            Trap::LinkStateChange { node: lb, port: pb },
            &mut planned,
        )
        .expect("re-sweep");

    assert_eq!(ra, rb, "re-sweep reports must match");
    assert_eq!(a.sm.ledger.records(), b.sm.ledger.records());
    for sw in a.subnet.physical_switches() {
        assert_eq!(b.subnet.lft(sw.id).unwrap(), sw.lft().unwrap());
    }
}

#[test]
fn empty_plan_driver_never_touches_the_subnet() {
    let mut dcx = dc(VirtArch::VSwitchDynamic);
    let before: Vec<_> = dcx
        .subnet
        .physical_switches()
        .map(|n| (n.id, n.lft().unwrap().clone()))
        .collect();
    let plan = FaultPlan::none();
    let mut driver = plan.driver();
    assert!(driver.is_done());
    assert_eq!(driver.next_fault_at(), None);
    let fired = driver
        .advance(&mut dcx.subnet, ib_sim::SimTime(u64::MAX))
        .expect("advance");
    assert!(fired.is_empty());
    for (id, lft) in before {
        assert_eq!(dcx.subnet.lft(id).unwrap(), &lft);
    }
    // (`validate(true)` would reject the dormant, uncabled VFs of dynamic
    // mode — the degraded validator checks exactly what matters here.)
    dcx.subnet
        .validate_degraded()
        .expect("untouched fabric still validates");
}
