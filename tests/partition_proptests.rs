//! Property-style tests for routing on *split* fabrics: sever a random
//! switch from each reference topology and demand, for every engine the
//! topology supports, exactly the partition contract the SM's degraded
//! mode relies on —
//!
//! * every intra-component (switch, destination) pair is routed, and the
//!   route walks hop-by-hop to its delivery switch;
//! * every cross-component forwarding row is an explicit `None` hole,
//!   never a stale port into the lost component;
//! * the tables are byte-identical whatever the worker count.
//!
//! Originally written with `proptest`; the offline build environment
//! cannot fetch it, so these are seeded randomized tests driven by the
//! vendored `rand` stub.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ib_observe::Observer;
use ib_routing::graph::SwitchGraph;
use ib_routing::testutil::assign_lids;
use ib_routing::{EngineKind, RoutingOptions};
use ib_subnet::topology::fattree::{paper_324, paper_648};
use ib_subnet::topology::torus::torus_2d;
use ib_subnet::topology::BuiltTopology;
use ib_subnet::Subnet;

/// Severs every switch-to-switch cable of the switch at graph index
/// `victim`, splitting the fabric into (at least) two components. The
/// victim keeps its hosts, so the small side still has destinations of
/// its own to route.
fn isolate_switch(subnet: &mut Subnet, victim_graph_index: usize) {
    let g = SwitchGraph::build(subnet).expect("switch graph");
    let victim = g.node_id(victim_graph_index);
    let cut: Vec<_> = subnet
        .node(victim)
        .connected_ports()
        .filter(|(_, r)| subnet.node(r.node).is_physical_switch())
        .map(|(p, _)| p)
        .collect();
    for p in cut {
        subnet.set_link_down(victim, p).expect("sever victim");
    }
}

/// Checks the partition contract for one engine on one split subnet:
/// intra-component pairs walk to delivery, cross-component rows are
/// holes, and worker counts 1 and 4 agree byte-for-byte.
fn assert_partition_contract(engine: EngineKind, subnet: &Subnet, what: &str) {
    let tables = engine
        .build()
        .compute_with(
            subnet,
            RoutingOptions::default().with_workers(1),
            &Observer::disabled(),
        )
        .unwrap_or_else(|e| panic!("{what}: {engine} failed on the split fabric: {e}"));

    let g = SwitchGraph::build(subnet).expect("switch graph");
    let comps = g.components();
    assert!(comps.is_partitioned(), "{what}: the cut did not split");

    for dest in g.destinations() {
        for s in 0..g.len() {
            let row = tables.lfts[&g.node_id(s)].get(dest.lid);
            if !comps.same(s, dest.switch) {
                assert_eq!(
                    row, None,
                    "{what}: {engine}: cross-component row {s} -> LID {} must be a hole",
                    dest.lid
                );
                continue;
            }
            // Intra-component: walk the installed rows to delivery.
            let mut cur = s;
            let mut hops = 0;
            while cur != dest.switch {
                let port = tables.lfts[&g.node_id(cur)]
                    .get(dest.lid)
                    .unwrap_or_else(|| {
                        panic!(
                            "{what}: {engine}: unrouted intra-component pair {cur} -> LID {}",
                            dest.lid
                        )
                    });
                cur = g
                    .neighbors(cur)
                    .iter()
                    .find(|&&(_, p)| p == port)
                    .map(|&(v, _)| v as usize)
                    .unwrap_or_else(|| {
                        panic!(
                            "{what}: {engine}: row at {cur} for LID {} exits a dead port {port}",
                            dest.lid
                        )
                    });
                hops += 1;
                assert!(
                    hops <= 4 * g.len(),
                    "{what}: {engine}: forwarding loop toward LID {}",
                    dest.lid
                );
            }
            assert_eq!(
                tables.lfts[&g.node_id(dest.switch)].get(dest.lid),
                Some(dest.port),
                "{what}: {engine}: wrong delivery row for LID {}",
                dest.lid
            );
        }
    }

    // Worker invariance: the same split fabric, fanned wider, must yield
    // byte-identical tables.
    let wide = engine
        .build()
        .compute_with(
            subnet,
            RoutingOptions::default().with_workers(4),
            &Observer::disabled(),
        )
        .expect("wide compute");
    for (sw, lft) in &tables.lfts {
        assert_eq!(
            &wide.lfts[sw], lft,
            "{what}: {engine}: tables differ across worker counts"
        );
    }
}

/// Runs `trials` random single-switch splits of `build()` under each
/// engine in `engines`.
fn random_splits(
    build: fn() -> BuiltTopology,
    engines: &[EngineKind],
    seed: u64,
    trials: usize,
    what: &str,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    for trial in 0..trials {
        let mut t = build();
        assign_lids(&mut t);
        let n = SwitchGraph::build(&t.subnet).expect("switch graph").len();
        let victim = rng.gen_range(0..n);
        isolate_switch(&mut t.subnet, victim);
        for &engine in engines {
            assert_partition_contract(
                engine,
                &t.subnet,
                &format!("{what} trial {trial} victim {victim}"),
            );
        }
    }
}

/// All five engines honor the partition contract on the paper's 324-host
/// fat tree with a random switch severed.
#[test]
fn all_engines_route_split_paper_324() {
    random_splits(paper_324, &EngineKind::all(), 0x5917_0324, 2, "paper_324");
}

/// The tree engines honor the contract on the 648-host tree (the heavy
/// per-pair engines are covered on the 324 tree and the torus, matching
/// the repair matrix's runtime budget).
#[test]
fn tree_engines_route_split_paper_648() {
    random_splits(
        paper_648,
        &[EngineKind::FatTree, EngineKind::MinHop, EngineKind::UpDown],
        0x5917_0648,
        2,
        "paper_648",
    );
}

/// The torus-capable engines honor the contract on a wrapped 4x4 torus
/// with a random switch severed. (The fat-tree engine refuses a torus
/// outright, split or not — covered below.)
#[test]
fn torus_engines_route_split_torus_4x4() {
    random_splits(
        || torus_2d(4, 4, 1, true),
        &[
            EngineKind::MinHop,
            EngineKind::UpDown,
            EngineKind::Dfsssp,
            EngineKind::Lash,
        ],
        0x5917_0404,
        3,
        "torus_4x4",
    );
}

/// A split torus is still a torus to the fat-tree engine: rejected, not
/// misrouted.
#[test]
fn fat_tree_still_rejects_a_split_torus() {
    let mut t = torus_2d(4, 4, 1, true);
    assign_lids(&mut t);
    isolate_switch(&mut t.subnet, 5);
    assert!(EngineKind::FatTree.build().compute(&t.subnet).is_err());
}
