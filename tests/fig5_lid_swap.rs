//! The Fig. 3/5 worked example: three hypervisors on two leaf switches,
//! LIDs laid out exactly as in the paper, VM1 (LID 2) migrated from
//! hypervisor 1 to hypervisor 3 by swapping LFT rows 2 and 12.

use ib_core::migration::{swap_on_fabric, MigrationOptions};
use ib_core::{DataCenter, DataCenterConfig, VirtArch};
use ib_mad::SmpLedger;
use ib_subnet::topology::basic::fig5_fabric;
use ib_types::{Lid, PortNum};

fn lid(raw: u16) -> Lid {
    Lid::from_raw(raw)
}

/// Builds the exact Fig. 3 state: hypervisor 1 = PF LID 1 + VF LIDs 2, 3,
/// 4; hypervisor 2 = 5..8; hypervisor 3 = 9..12 — all as extra LIDs on the
/// hypervisor HCA ports (the addressing is what matters for the LFTs), and
/// leaf LFTs as printed in Fig. 5.
fn fig3_subnet() -> (
    ib_subnet::Subnet,
    ib_subnet::NodeId,
    ib_subnet::NodeId,
    Vec<ib_subnet::NodeId>,
) {
    let t = fig5_fabric();
    let mut s = t.subnet;
    let leaf0 = t.switch_levels[0][0];
    let leaf1 = t.switch_levels[0][1];
    let hyps = t.hosts.clone();

    // Switch LIDs (outside Fig. 3's 1-12 endpoint range) so that
    // destination-routed SMPs can address the switches.
    s.assign_switch_lid(leaf0, lid(20)).unwrap();
    s.assign_switch_lid(leaf1, lid(21)).unwrap();

    // LID layout of Fig. 3. Each hypervisor's PF and VFs hang off one leaf
    // port, so from the switch's perspective they share a forwarding port.
    // Register all LIDs of hypervisor h on its HCA port.
    let hyp_lids: [&[u16]; 3] = [&[1, 2, 3, 4], &[5, 6, 7, 8], &[9, 10, 11, 12]];
    for (h, lids) in hyp_lids.iter().enumerate() {
        for &raw in *lids {
            // Multi-LID registration needs one port per LID in our model;
            // emulate by registering the first on port 1 and tracking the
            // rest through the LFTs only (the LFT mechanics are what Fig. 5
            // exercises).
            if raw == lids[0] {
                s.assign_port_lid(hyps[h], PortNum::new(1), lid(raw))
                    .unwrap();
            }
        }
    }

    // Fig. 5 "LFT Before Live Migration" for the upper-left switch
    // (leaf 0): LIDs 1-4 -> port 2 (hypervisor 1), 5-8 -> port 3
    // (hypervisor 2, the figure prints only the excerpt), 9-12 -> port 4
    // (the trunk towards leaf 1).
    {
        let lft = s.lft_mut(leaf0).unwrap();
        for raw in 1..=4 {
            lft.set(lid(raw), PortNum::new(2));
        }
        for raw in 5..=8 {
            lft.set(lid(raw), PortNum::new(3));
        }
        for raw in 9..=12 {
            lft.set(lid(raw), PortNum::new(4));
        }
    }
    // Leaf 1: 1-8 over the trunk (port 4), 9-12 local (port 2).
    {
        let lft = s.lft_mut(leaf1).unwrap();
        for raw in 1..=8 {
            lft.set(lid(raw), PortNum::new(4));
        }
        for raw in 9..=12 {
            lft.set(lid(raw), PortNum::new(2));
        }
    }
    (s, leaf0, leaf1, hyps)
}

#[test]
fn fig5_swap_updates_ports_exactly_as_printed() {
    let (mut s, leaf0, leaf1, hyps) = fig3_subnet();
    let mut ledger = SmpLedger::new();

    // Before: LID 2 -> port 2, LID 12 -> port 4 on the upper-left switch.
    assert_eq!(s.lft(leaf0).unwrap().get(lid(2)), Some(PortNum::new(2)));
    assert_eq!(s.lft(leaf0).unwrap().get(lid(12)), Some(PortNum::new(4)));

    let stats = swap_on_fabric(
        &mut s,
        hyps[0],
        lid(2),
        lid(12),
        &MigrationOptions::default(),
        None,
        &mut ledger,
    )
    .unwrap();

    // After: LID 2 -> port 4, LID 12 -> port 2 — the exact Fig. 5 rows.
    assert_eq!(s.lft(leaf0).unwrap().get(lid(2)), Some(PortNum::new(4)));
    assert_eq!(s.lft(leaf0).unwrap().get(lid(12)), Some(PortNum::new(2)));
    // Leaf 1 mirrors: 2 now local, 12 now over the trunk.
    assert_eq!(s.lft(leaf1).unwrap().get(lid(2)), Some(PortNum::new(2)));
    assert_eq!(s.lft(leaf1).unwrap().get(lid(12)), Some(PortNum::new(4)));

    // §V-C1: LIDs 2 and 12 share the 0-63 block, so each of the two
    // switches takes exactly ONE SMP.
    assert_eq!(stats.switches_updated, 2);
    assert_eq!(stats.max_blocks_per_switch, 1);
    assert_eq!(stats.lft_smps, 2);
    assert_eq!(ledger.lft_updates(), 2);
}

#[test]
fn fig5_cross_block_variant_needs_two_smps() {
    // "If the LID of VF3 on hypervisor 3 was 64 or greater, then two SMPs
    // would need to be sent" — rebuild with LID 70 in place of 12.
    let (mut s, leaf0, _, hyps) = fig3_subnet();
    s.lft_mut(leaf0).unwrap().set(lid(70), PortNum::new(4));
    let leaf1 = s
        .physical_switches()
        .map(|n| n.id)
        .find(|&id| id != leaf0)
        .unwrap();
    s.lft_mut(leaf1).unwrap().set(lid(70), PortNum::new(2));

    let mut ledger = SmpLedger::new();
    let stats = swap_on_fabric(
        &mut s,
        hyps[0],
        lid(2),
        lid(70),
        &MigrationOptions::default(),
        None,
        &mut ledger,
    )
    .unwrap();
    assert_eq!(stats.max_blocks_per_switch, 2);
    assert_eq!(stats.lft_smps, stats.switches_updated * 2);
}

#[test]
fn fig5_swap_to_same_leaf_lid_skips_remote_switch() {
    // §VI-B's n' example: swapping LID 2 with any of hypervisor 2's LIDs
    // (5-8) leaves the *remote* leaf untouched, because it already routes
    // both over the trunk.
    let (mut s, _leaf0, leaf1, hyps) = fig3_subnet();
    let before_leaf1 = s.lft(leaf1).unwrap().clone();
    let mut ledger = SmpLedger::new();
    let stats = swap_on_fabric(
        &mut s,
        hyps[0],
        lid(2),
        lid(6),
        &MigrationOptions::default(),
        None,
        &mut ledger,
    )
    .unwrap();
    assert_eq!(stats.switches_updated, 1, "only the local leaf changes");
    assert_eq!(s.lft(leaf1).unwrap(), &before_leaf1);
}

#[test]
fn fig5_full_datacenter_migration_end_to_end() {
    // The same scenario through the full stack: fig5 fabric virtualized
    // with 3 prepopulated VFs per hypervisor, VM on hypervisor 0 migrated
    // to hypervisor 2.
    let built = fig5_fabric();
    let mut dc = DataCenter::from_topology(
        built,
        DataCenterConfig {
            arch: VirtArch::VSwitchPrepopulated,
            vfs_per_hypervisor: 3,
            ..DataCenterConfig::default()
        },
    )
    .unwrap();
    // 2 switches + 3 PFs + 9 VFs = 14 LIDs (matching Fig. 3's 12 endpoint
    // LIDs plus our two switch LIDs).
    assert_eq!(dc.subnet.num_lids(), 14);

    let vm = dc.create_vm("vm1", 0).unwrap();
    let lid_before = dc.vm(vm).unwrap().lid;
    let report = dc.migrate_vm(vm, 2).unwrap();

    assert_eq!(report.lid_after, lid_before, "LID follows the VM");
    assert!(report.lft.max_blocks_per_switch <= 2);
    assert!(report.lft.switches_updated <= 2);
    assert!(!report.intra_leaf);
    dc.verify_connectivity().unwrap();

    // The swapped-back LID now belongs to hypervisor 0's VF pool: a new VM
    // there can boot with it immediately.
    let vm2 = dc.create_vm("vm2", 0).unwrap();
    assert_ne!(dc.vm(vm2).unwrap().lid, lid_before);
    dc.verify_connectivity().unwrap();
}
