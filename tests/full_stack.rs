//! Cross-crate integration: every routing engine brings up real fabrics,
//! every architecture survives migration storms, and the §V-A balance
//! claim holds — LID swaps preserve the link-load multiset of the initial
//! routing.

use ib_core::{DataCenter, DataCenterConfig, MigrationOptions, VirtArch};
use ib_routing::balance::LinkLoad;
use ib_routing::EngineKind;
use ib_sm::{SmConfig, SmpMode, SubnetManager};
use ib_subnet::topology::{basic, fattree, irregular, torus};

fn all_pairs_reachable(subnet: &ib_subnet::Subnet, hosts: &[ib_subnet::NodeId]) {
    for &a in hosts {
        for &b in hosts {
            let lid = subnet.node(b).ports[1].lid.unwrap();
            let path = subnet.trace_route(a, lid, 64).unwrap();
            assert_eq!(*path.last().unwrap(), b);
        }
    }
}

#[test]
fn every_engine_brings_up_a_fat_tree() {
    for engine in [
        EngineKind::MinHop,
        EngineKind::FatTree,
        EngineKind::UpDown,
        EngineKind::Dfsssp,
        EngineKind::Lash,
    ] {
        let mut t = fattree::two_level(4, 3, 2);
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                engine,
                smp_mode: SmpMode::Directed,
                ..SmConfig::default()
            },
        );
        let report = sm.bring_up(&mut t.subnet).unwrap();
        assert_eq!(report.engine, engine.name());
        all_pairs_reachable(&t.subnet, &t.hosts);
    }
}

#[test]
fn deadlock_free_engines_bring_up_a_torus() {
    for engine in [EngineKind::UpDown, EngineKind::Dfsssp, EngineKind::Lash] {
        let mut t = torus::torus_2d(3, 3, 1, true);
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                engine,
                smp_mode: SmpMode::Directed,
                ..SmConfig::default()
            },
        );
        sm.bring_up(&mut t.subnet).unwrap();
        all_pairs_reachable(&t.subnet, &t.hosts);
    }
}

#[test]
fn deadlock_free_engines_handle_exotic_topologies() {
    use ib_routing::cdg::Cdg;
    use ib_routing::graph::SwitchGraph;
    use ib_subnet::topology::dragonfly::{dragonfly, DragonflySpec};
    use ib_subnet::topology::hypercube::hypercube;

    let builds: Vec<(&str, ib_subnet::topology::BuiltTopology)> = vec![
        ("hypercube-3d", hypercube(3, 1)),
        ("dragonfly", dragonfly(DragonflySpec::default())),
        ("torus3d", torus::torus_3d(2, 2, 3, 1)),
    ];
    for (name, t) in builds {
        for engine in [EngineKind::UpDown, EngineKind::Dfsssp, EngineKind::Lash] {
            let mut t = t.clone();
            let mut sm = SubnetManager::new(
                t.hosts[0],
                SmConfig {
                    engine,
                    smp_mode: SmpMode::Directed,
                    ..SmConfig::default()
                },
            );
            sm.bring_up(&mut t.subnet).unwrap();
            all_pairs_reachable(&t.subnet, &t.hosts);
            if engine == EngineKind::UpDown {
                // Single-lane deadlock freedom is Up*/Down*'s contract on
                // *any* topology.
                let g = SwitchGraph::build(&t.subnet).unwrap();
                let tables = engine.build().compute(&t.subnet).unwrap();
                let cdg = Cdg::from_tables(&g, &tables, |_| true);
                assert!(cdg.find_cycle().is_none(), "{name}: up*/down* cyclic");
            }
        }
    }
}

#[test]
fn engines_handle_irregular_fabrics() {
    let spec = irregular::IrregularSpec {
        num_switches: 8,
        num_hosts: 12,
        extra_links: 5,
        seed: 7,
    };
    for engine in [EngineKind::MinHop, EngineKind::UpDown, EngineKind::Dfsssp] {
        let mut t = irregular::irregular(spec);
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                engine,
                smp_mode: SmpMode::Directed,
                ..SmConfig::default()
            },
        );
        sm.bring_up(&mut t.subnet).unwrap();
        all_pairs_reachable(&t.subnet, &t.hosts);
    }
}

#[test]
fn swap_migrations_preserve_the_load_multiset() {
    // §V-A: prepopulated LIDs keep the balancing of the initial routing —
    // a swap permutes LFT rows, so the multiset of per-channel loads is
    // invariant.
    let mut dc = DataCenter::from_topology(
        fattree::two_level(3, 3, 3),
        DataCenterConfig {
            arch: VirtArch::VSwitchPrepopulated,
            vfs_per_hypervisor: 2,
            engine: EngineKind::FatTree,
            ..DataCenterConfig::default()
        },
    )
    .unwrap();
    let before = LinkLoad::from_subnet(&dc.subnet).unwrap().load_multiset();

    let vm_a = dc.create_vm("a", 0).unwrap();
    let vm_b = dc.create_vm("b", 3).unwrap();
    dc.migrate_vm(vm_a, 8).unwrap();
    dc.migrate_vm(vm_b, 6).unwrap();
    dc.migrate_vm(vm_a, 1).unwrap();

    let after = LinkLoad::from_subnet(&dc.subnet).unwrap().load_multiset();
    assert_eq!(before, after, "LID swapping must preserve balance");
    dc.verify_connectivity().unwrap();
}

#[test]
fn dynamic_vm_rides_the_pf_path_by_construction() {
    // §V-B compromises balance: the VM's path *is* the PF's path. Check
    // the invariant directly after a chain of migrations.
    let mut dc = DataCenter::from_topology(
        fattree::two_level(3, 3, 3),
        DataCenterConfig {
            arch: VirtArch::VSwitchDynamic,
            vfs_per_hypervisor: 2,
            engine: EngineKind::FatTree,
            ..DataCenterConfig::default()
        },
    )
    .unwrap();
    let vm = dc.create_vm("wanderer", 0).unwrap();
    for dest in [4, 8, 2, 7] {
        dc.migrate_vm(vm, dest).unwrap();
        let lid = dc.vm(vm).unwrap().lid;
        let pf = dc.hypervisors[dest].pf_lid(&dc.subnet).unwrap();
        for sw in dc.subnet.physical_switches() {
            let lft = sw.lft().unwrap();
            assert_eq!(lft.get(lid), lft.get(pf), "VM path == PF path");
        }
        dc.verify_connectivity().unwrap();
    }
}

#[test]
fn migration_storm_under_every_architecture() {
    for arch in [VirtArch::VSwitchPrepopulated, VirtArch::VSwitchDynamic] {
        let mut dc = DataCenter::from_topology(
            fattree::two_level(3, 2, 2),
            DataCenterConfig {
                arch,
                vfs_per_hypervisor: 3,
                ..DataCenterConfig::default()
            },
        )
        .unwrap();
        let vms: Vec<_> = (0..4)
            .map(|i| dc.create_vm(format!("vm{i}"), i).unwrap())
            .collect();
        // 12 migrations round-robin across the fabric.
        for (round, &vm) in (0..3).flat_map(|r| vms.iter().map(move |v| (r, v))) {
            let dest = (dc.vm(vm).unwrap().hypervisor + round + 1) % dc.hypervisors.len();
            if dc.vm(vm).unwrap().hypervisor != dest {
                if let Ok(report) = dc.migrate_vm(vm, dest) {
                    assert!(report.lft.max_blocks_per_switch <= 2);
                }
            }
            dc.verify_connectivity().unwrap();
        }
        assert_eq!(dc.num_vms(), 4, "{arch}: no VM lost in the storm");
    }
}

#[test]
fn invalidate_first_variant_end_to_end() {
    let mut dc = DataCenter::from_topology(
        basic::fig5_fabric(),
        DataCenterConfig {
            arch: VirtArch::VSwitchPrepopulated,
            vfs_per_hypervisor: 2,
            migration: MigrationOptions {
                invalidate_first: true,
                ..MigrationOptions::default()
            },
            ..DataCenterConfig::default()
        },
    )
    .unwrap();
    let vm = dc.create_vm("vm", 0).unwrap();
    let report = dc.migrate_vm(vm, 2).unwrap();
    assert_eq!(
        report.lft.invalidation_smps, report.lft.switches_updated,
        "§VI-C: invalidation adds one SMP per updated switch"
    );
    dc.verify_connectivity().unwrap();
}

#[test]
fn smaller_initial_configuration_for_dynamic_mode() {
    // §V-B: the dynamic model's initial path computation covers only the
    // physical endpoints — measurably fewer decisions and SMPs.
    let build = || fattree::two_level(3, 3, 2);
    let prepop = DataCenter::from_topology(
        build(),
        DataCenterConfig {
            arch: VirtArch::VSwitchPrepopulated,
            vfs_per_hypervisor: 8,
            ..DataCenterConfig::default()
        },
    )
    .unwrap();
    let dynamic = DataCenter::from_topology(
        build(),
        DataCenterConfig {
            arch: VirtArch::VSwitchDynamic,
            vfs_per_hypervisor: 8,
            ..DataCenterConfig::default()
        },
    )
    .unwrap();
    assert!(dynamic.bring_up.decisions < prepop.bring_up.decisions);
    assert!(dynamic.bring_up.distribution.lft_smps <= prepop.bring_up.distribution.lft_smps);
    assert!(dynamic.subnet.num_lids() < prepop.subnet.num_lids());
}
