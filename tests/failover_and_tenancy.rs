//! Cross-crate scenarios around operational robustness: SM failover in the
//! middle of data-center life, and multi-tenant partitions riding along
//! with live migrations.

use ib_core::partition::{Membership, Tenancy};
use ib_core::{DataCenter, DataCenterConfig, VirtArch};
use ib_sm::failover::{SmGroup, SmState};
use ib_sm::{SmConfig, SubnetManager};
use ib_subnet::topology::fattree::two_level;

#[test]
fn failover_mid_datacenter_keeps_every_vm_reachable() {
    // Bring a data center up, run VMs, then replay an SM failover against
    // the same fabric: the standby adopts, and a subsequent migration
    // driven by the data center still works.
    let mut dc = DataCenter::from_topology(
        two_level(2, 3, 2),
        DataCenterConfig {
            arch: VirtArch::VSwitchPrepopulated,
            vfs_per_hypervisor: 2,
            ..DataCenterConfig::default()
        },
    )
    .unwrap();
    let vm = dc.create_vm("survivor", 0).unwrap();

    // A standby SM group watching the same subnet (the data center's own
    // SM is the implicit master; hosts 1 and 2's PFs run standbys).
    let mut group = SmGroup::new(
        SmConfig::default(),
        vec![(dc.hypervisors[1].pf, 8), (dc.hypervisors[2].pf, 4)],
    );
    group.elect(&dc.subnet).unwrap();
    assert_eq!(group.master().unwrap().node, dc.hypervisors[1].pf);

    // Master dies; the standby adopts the fabric without renumbering.
    let lids_before = dc.subnet.lids();
    let (new_master, takeover_smps) = group.fail_over(&mut dc.subnet).unwrap();
    assert_eq!(new_master, dc.hypervisors[2].pf);
    assert!(takeover_smps > 0);
    assert_eq!(dc.subnet.lids(), lids_before, "no renumbering on failover");

    // Life goes on: migrate the VM and verify.
    let report = dc.migrate_vm(vm, 5).unwrap();
    assert_eq!(report.lid_before, report.lid_after);
    dc.verify_connectivity().unwrap();

    // The adopted manager can run a full reconfiguration. The earlier
    // swap-based migration rearranged rows relative to what the engine
    // would compute, so some blocks are dirty — but the fabric must stay
    // consistent afterwards, with the VM still at its migrated home.
    let inst = group.master_mut().unwrap();
    let rep = inst.manager.full_reconfiguration(&mut dc.subnet).unwrap();
    assert!(
        rep.distribution.lft_smps
            <= rep.distribution.switches_updated * rep.min_blocks_per_switch.max(1)
    );
    dc.verify_connectivity().unwrap();
}

#[test]
fn not_active_members_never_win() {
    let t = two_level(2, 2, 2);
    let mut subnet = t.subnet;
    let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
    sm.bring_up(&mut subnet).unwrap();

    let mut group = SmGroup::new(SmConfig::default(), vec![(t.hosts[0], 1), (t.hosts[1], 9)]);
    group.elect(&subnet).unwrap();
    // Kill both; third election must fail.
    group.fail_over(&mut subnet).unwrap();
    assert!(group.fail_over(&mut subnet).is_err());
    assert!(group
        .members()
        .iter()
        .all(|&(_, s)| s == SmState::NotActive));
}

#[test]
fn tenancy_survives_defragmentation() {
    // Partitions keep their members straight while the defragmenter
    // shuffles VMs across the fabric.
    let mut dc = ib_cloud::scenarios::testbed_datacenter(DataCenterConfig {
        arch: VirtArch::VSwitchDynamic,
        vfs_per_hypervisor: 4,
        ..DataCenterConfig::default()
    })
    .unwrap();
    let mut tenancy = Tenancy::new();
    tenancy.create_partition(0x11, "red").unwrap();
    tenancy.create_partition(0x22, "blue").unwrap();

    let mut red = Vec::new();
    let mut blue = Vec::new();
    for h in 0..4 {
        let r = dc.create_vm(format!("red-{h}"), h).unwrap();
        tenancy.enroll(&mut dc, r, 0x11, Membership::Full).unwrap();
        red.push(r);
        let b = dc.create_vm(format!("blue-{h}"), h).unwrap();
        tenancy.enroll(&mut dc, b, 0x22, Membership::Full).unwrap();
        blue.push(b);
    }

    let reports = ib_cloud::scenarios::defragment(&mut dc).unwrap();
    for r in &reports {
        tenancy.after_migration(&mut dc, r.vm).unwrap();
    }
    dc.verify_connectivity().unwrap();

    // Isolation is intact after the shuffle.
    for &r in &red {
        for &r2 in &red {
            assert!(tenancy.can_communicate(r, r2));
        }
        for &b in &blue {
            assert!(!tenancy.can_communicate(r, b));
        }
    }
    assert_eq!(tenancy.members(0x11).len(), 4);
    assert_eq!(tenancy.members(0x22).len(), 4);
}

#[test]
fn pkey_tables_reprogrammed_once_per_migration() {
    let mut dc = DataCenter::from_topology(
        two_level(2, 2, 2),
        DataCenterConfig {
            arch: VirtArch::VSwitchPrepopulated,
            vfs_per_hypervisor: 2,
            ..DataCenterConfig::default()
        },
    )
    .unwrap();
    let mut tenancy = Tenancy::new();
    tenancy.create_partition(0x33, "green").unwrap();
    let vm = dc.create_vm("vm", 0).unwrap();
    tenancy.enroll(&mut dc, vm, 0x33, Membership::Full).unwrap();
    assert_eq!(tenancy.pkey_smps, 1);
    for (i, dest) in [2usize, 3, 1].into_iter().enumerate() {
        dc.migrate_vm(vm, dest).unwrap();
        tenancy.after_migration(&mut dc, vm).unwrap();
        assert_eq!(tenancy.pkey_smps, 2 + i);
    }
    dc.verify_connectivity().unwrap();
}
