//! Property-based tests over the core invariants.

use proptest::prelude::*;

use ib_core::{DataCenter, DataCenterConfig, VirtArch, VmId};
use ib_subnet::topology::fattree;
use ib_subnet::Lft;
use ib_types::{Lid, LidSpace, PortNum};

// ---------------------------------------------------------------------
// LFT primitives
// ---------------------------------------------------------------------

fn arb_lid() -> impl Strategy<Value = Lid> {
    (1u16..400).prop_map(Lid::from_raw)
}

fn arb_port() -> impl Strategy<Value = PortNum> {
    (0u8..37).prop_map(PortNum::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Swapping twice restores the original LFT, regardless of contents.
    #[test]
    fn lft_swap_is_involution(entries in proptest::collection::vec((arb_lid(), arb_port()), 0..40),
                              a in arb_lid(), b in arb_lid()) {
        let mut lft = Lft::new();
        for (lid, port) in &entries {
            lft.set(*lid, *port);
        }
        let before = lft.clone();
        lft.swap(a, b);
        lft.swap(a, b);
        prop_assert_eq!(lft, before);
    }

    /// A swap preserves the multiset of set entries (it only permutes two
    /// rows) — the §V-A balance argument in miniature.
    #[test]
    fn lft_swap_preserves_entry_multiset(entries in proptest::collection::vec((arb_lid(), arb_port()), 0..40),
                                         a in arb_lid(), b in arb_lid()) {
        let mut lft = Lft::new();
        for (lid, port) in &entries {
            lft.set(*lid, *port);
        }
        let mut before: Vec<u8> = lft.iter().map(|(_, p)| p.raw()).collect();
        before.sort_unstable();
        lft.swap(a, b);
        let mut after: Vec<u8> = lft.iter().map(|(_, p)| p.raw()).collect();
        after.sort_unstable();
        prop_assert_eq!(before, after);
    }

    /// Copy makes the destination row equal the source row, and dirty
    /// blocks against the original are at most one block.
    #[test]
    fn lft_copy_dirties_at_most_one_block(entries in proptest::collection::vec((arb_lid(), arb_port()), 1..40),
                                          dst in arb_lid()) {
        let mut lft = Lft::new();
        for (lid, port) in &entries {
            lft.set(*lid, *port);
        }
        let src = entries[0].0;
        prop_assume!(src != dst);
        let before = lft.clone();
        lft.copy(src, dst);
        prop_assert_eq!(lft.get(dst), lft.get(src));
        let dirty = before.dirty_blocks(&lft);
        prop_assert!(dirty.len() <= 1);
        if let Some(&blk) = dirty.first() {
            prop_assert_eq!(blk, dst.lft_block());
        }
    }

    /// Same-block math matches the m' rule.
    #[test]
    fn same_block_iff_same_64_range(a in arb_lid(), b in arb_lid()) {
        prop_assert_eq!(a.same_block(b), a.raw() / 64 == b.raw() / 64);
    }

    /// Padding covers exactly the blocks up to the topmost LID.
    #[test]
    fn padded_blocks_match_min_blocks(top in arb_lid()) {
        let lft = Lft::new().padded(top);
        prop_assert_eq!(lft.num_blocks(), ib_subnet::lft::min_blocks_for(top));
        prop_assert_eq!(lft.get(top), Some(PortNum::DROP));
    }
}

// ---------------------------------------------------------------------
// LID space
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any interleaving of allocations and releases keeps the accounting
    /// consistent, and the allocator always returns the lowest free LID.
    #[test]
    fn lid_space_accounting(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut space = LidSpace::new();
        let mut held: Vec<Lid> = Vec::new();
        for alloc in ops {
            if alloc || held.is_empty() {
                let lid = space.allocate().unwrap();
                // Lowest-free invariant: nothing below it is free.
                for raw in 1..lid.raw() {
                    prop_assert!(space.is_allocated(Lid::from_raw(raw)));
                }
                held.push(lid);
            } else {
                let lid = held.swap_remove(held.len() / 2);
                space.release(lid).unwrap();
            }
            prop_assert_eq!(space.in_use(), held.len());
        }
    }
}

// ---------------------------------------------------------------------
// Data-center lifecycle
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Op {
    Create(usize),
    Destroy(usize),
    Migrate(usize, usize),
}

fn arb_op(hyps: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..hyps).prop_map(Op::Create),
        (0usize..64).prop_map(Op::Destroy),
        ((0usize..64), (0..hyps)).prop_map(|(v, h)| Op::Migrate(v, h)),
    ]
}

fn check_invariants(dc: &DataCenter) {
    // Every VM LID is unique (vSwitch modes).
    if dc.config.arch != VirtArch::SharedPort {
        let mut lids: Vec<u16> = dc.vms().iter().map(|r| r.lid.raw()).collect();
        let n = lids.len();
        lids.sort_unstable();
        lids.dedup();
        assert_eq!(lids.len(), n, "duplicate VM LIDs");
    }
    // Every VM sits on a slot that points back at it.
    for rec in dc.vms() {
        let slot = &dc.hypervisors[rec.hypervisor].vfs[rec.vf_slot];
        assert_eq!(slot.attached, Some(rec.id), "slot/VM mismatch");
    }
    dc.verify_connectivity().expect("connectivity");
}

fn run_ops(arch: VirtArch, ops: &[Op]) {
    let mut dc = DataCenter::from_topology(
        fattree::two_level(3, 2, 2),
        DataCenterConfig {
            arch,
            vfs_per_hypervisor: 2,
            ..DataCenterConfig::default()
        },
    )
    .unwrap();
    let hyps = dc.hypervisors.len();
    let mut created = 0u64;
    for op in ops {
        match *op {
            Op::Create(h) => {
                if dc.create_vm(format!("vm{created}"), h % hyps).is_ok() {
                    created += 1;
                }
            }
            Op::Destroy(i) => {
                let ids: Vec<VmId> = dc.vms().iter().map(|r| r.id).collect();
                if !ids.is_empty() {
                    let _ = dc.destroy_vm(ids[i % ids.len()]);
                }
            }
            Op::Migrate(i, dest) => {
                let ids: Vec<VmId> = dc.vms().iter().map(|r| r.id).collect();
                if !ids.is_empty() {
                    let vm = ids[i % ids.len()];
                    let dest = dest % hyps;
                    if dc.vm(vm).unwrap().hypervisor != dest {
                        if let Ok(report) = dc.migrate_vm(vm, dest) {
                            assert!(report.lft.max_blocks_per_switch <= 2, "m' bound");
                            assert!(
                                report.lft.switches_updated
                                    <= dc.subnet.num_physical_switches(),
                                "n' bound"
                            );
                        }
                    }
                }
            }
        }
        check_invariants(&dc);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary create/destroy/migrate interleavings keep the fabric
    /// consistent under the prepopulated-LID architecture.
    #[test]
    fn prepopulated_lifecycle_fuzz(ops in proptest::collection::vec(arb_op(6), 1..25)) {
        run_ops(VirtArch::VSwitchPrepopulated, &ops);
    }

    /// ... and under dynamic LID assignment.
    #[test]
    fn dynamic_lifecycle_fuzz(ops in proptest::collection::vec(arb_op(6), 1..25)) {
        run_ops(VirtArch::VSwitchDynamic, &ops);
    }
}

// ---------------------------------------------------------------------
// Credit simulator conservation
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Packets are conserved: on a drained run every injected packet was
    /// either delivered or dropped, never duplicated or lost — for any
    /// flow matrix, credit budget, and timeout setting.
    #[test]
    fn credit_sim_conserves_packets(
        pairs in proptest::collection::vec((0usize..6, 0usize..6, 1u64..6), 1..12),
        credits in 1usize..4,
        timeout in proptest::option::of(16u32..64),
    ) {
        use ib_sim::credit::{run, CreditSimConfig, Flow};
        use ib_routing::tables::VlAssignment;
        use ib_sm::{SmConfig, SubnetManager};

        let mut t = fattree::two_level(2, 3, 2);
        let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
        sm.bring_up(&mut t.subnet).unwrap();

        let mut total = 0u64;
        let flows: Vec<Flow> = pairs
            .iter()
            .filter(|&&(a, b, _)| a != b)
            .map(|&(a, b, n)| {
                total += n;
                Flow {
                    src: t.hosts[a],
                    dst: t.subnet.node(t.hosts[b]).ports[1].lid.unwrap(),
                    packets: n,
                }
            })
            .collect();
        prop_assume!(!flows.is_empty());

        let report = run(
            &t.subnet,
            &flows,
            &VlAssignment::SingleVl,
            &CreditSimConfig {
                credits_per_channel: credits,
                timeout_rounds: timeout,
                ..CreditSimConfig::default()
            },
        )
        .unwrap();
        // Fat-tree shortest paths cannot deadlock, so the run drains.
        prop_assert!(report.drained, "{report:?}");
        prop_assert!(!report.deadlocked);
        prop_assert_eq!(report.delivered + report.dropped, total);
    }
}
