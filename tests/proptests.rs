//! Property-style tests over the core invariants.
//!
//! Originally written with `proptest`; the offline build environment cannot
//! fetch it, so these are seeded randomized tests driven by the vendored
//! `rand` stub. Every case derives from a fixed seed, so failures are
//! reproducible by construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ib_core::{DataCenter, DataCenterConfig, VirtArch, VmId};
use ib_subnet::topology::fattree;
use ib_subnet::Lft;
use ib_types::{Lid, LidSpace, PortNum};

fn rand_lid(rng: &mut StdRng) -> Lid {
    Lid::from_raw(rng.gen_range(1u16..400))
}

fn rand_port(rng: &mut StdRng) -> PortNum {
    PortNum::new(rng.gen_range(0u8..37))
}

fn rand_entries(rng: &mut StdRng, min: usize, max: usize) -> Vec<(Lid, PortNum)> {
    let n = rng.gen_range(min..max);
    (0..n).map(|_| (rand_lid(rng), rand_port(rng))).collect()
}

// ---------------------------------------------------------------------
// LFT primitives
// ---------------------------------------------------------------------

/// Swapping twice restores the original LFT, regardless of contents.
#[test]
fn lft_swap_is_involution() {
    let mut rng = StdRng::seed_from_u64(0x51_01);
    for _ in 0..64 {
        let entries = rand_entries(&mut rng, 0, 40);
        let (a, b) = (rand_lid(&mut rng), rand_lid(&mut rng));
        let mut lft = Lft::new();
        for (lid, port) in &entries {
            lft.set(*lid, *port);
        }
        let before = lft.clone();
        lft.swap(a, b);
        lft.swap(a, b);
        assert_eq!(lft, before);
    }
}

/// A swap preserves the multiset of set entries (it only permutes two
/// rows) — the §V-A balance argument in miniature.
#[test]
fn lft_swap_preserves_entry_multiset() {
    let mut rng = StdRng::seed_from_u64(0x51_02);
    for _ in 0..64 {
        let entries = rand_entries(&mut rng, 0, 40);
        let (a, b) = (rand_lid(&mut rng), rand_lid(&mut rng));
        let mut lft = Lft::new();
        for (lid, port) in &entries {
            lft.set(*lid, *port);
        }
        let mut before: Vec<u8> = lft.iter().map(|(_, p)| p.raw()).collect();
        before.sort_unstable();
        lft.swap(a, b);
        let mut after: Vec<u8> = lft.iter().map(|(_, p)| p.raw()).collect();
        after.sort_unstable();
        assert_eq!(before, after);
    }
}

/// Copy makes the destination row equal the source row, and dirty
/// blocks against the original are at most one block.
#[test]
fn lft_copy_dirties_at_most_one_block() {
    let mut rng = StdRng::seed_from_u64(0x51_03);
    for _ in 0..64 {
        let entries = rand_entries(&mut rng, 1, 40);
        let dst = rand_lid(&mut rng);
        let src = entries[0].0;
        if src == dst {
            continue;
        }
        let mut lft = Lft::new();
        for (lid, port) in &entries {
            lft.set(*lid, *port);
        }
        let before = lft.clone();
        lft.copy(src, dst);
        assert_eq!(lft.get(dst), lft.get(src));
        let dirty = before.dirty_blocks(&lft);
        assert!(dirty.len() <= 1);
        if let Some(&blk) = dirty.first() {
            assert_eq!(blk, dst.lft_block());
        }
    }
}

/// Same-block math matches the m' rule.
#[test]
fn same_block_iff_same_64_range() {
    let mut rng = StdRng::seed_from_u64(0x51_04);
    for _ in 0..256 {
        let (a, b) = (rand_lid(&mut rng), rand_lid(&mut rng));
        assert_eq!(a.same_block(b), a.raw() / 64 == b.raw() / 64);
    }
}

/// Padding covers exactly the blocks up to the topmost LID.
#[test]
fn padded_blocks_match_min_blocks() {
    let mut rng = StdRng::seed_from_u64(0x51_05);
    for _ in 0..64 {
        let top = rand_lid(&mut rng);
        let lft = Lft::new().padded(top);
        assert_eq!(lft.num_blocks(), ib_subnet::lft::min_blocks_for(top));
        assert_eq!(lft.get(top), Some(PortNum::DROP));
    }
}

// ---------------------------------------------------------------------
// LID space
// ---------------------------------------------------------------------

/// Any interleaving of allocations and releases keeps the accounting
/// consistent, and the allocator always returns the lowest free LID.
#[test]
fn lid_space_accounting() {
    let mut rng = StdRng::seed_from_u64(0x51_06);
    for _ in 0..32 {
        let num_ops = rng.gen_range(1usize..200);
        let mut space = LidSpace::new();
        let mut held: Vec<Lid> = Vec::new();
        for _ in 0..num_ops {
            let alloc = rng.gen_bool(0.5);
            if alloc || held.is_empty() {
                let lid = space.allocate().unwrap();
                // Lowest-free invariant: nothing below it is free.
                for raw in 1..lid.raw() {
                    assert!(space.is_allocated(Lid::from_raw(raw)));
                }
                held.push(lid);
            } else {
                let lid = held.swap_remove(held.len() / 2);
                space.release(lid).unwrap();
            }
            assert_eq!(space.in_use(), held.len());
        }
    }
}

// ---------------------------------------------------------------------
// Data-center lifecycle
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Op {
    Create(usize),
    Destroy(usize),
    Migrate(usize, usize),
}

fn rand_op(rng: &mut StdRng, hyps: usize) -> Op {
    match rng.gen_range(0u32..3) {
        0 => Op::Create(rng.gen_range(0..hyps)),
        1 => Op::Destroy(rng.gen_range(0usize..64)),
        _ => Op::Migrate(rng.gen_range(0usize..64), rng.gen_range(0..hyps)),
    }
}

fn check_invariants(dc: &DataCenter) {
    // Every VM LID is unique (vSwitch modes).
    if dc.config.arch != VirtArch::SharedPort {
        let mut lids: Vec<u16> = dc.vms().iter().map(|r| r.lid.raw()).collect();
        let n = lids.len();
        lids.sort_unstable();
        lids.dedup();
        assert_eq!(lids.len(), n, "duplicate VM LIDs");
    }
    // Every VM sits on a slot that points back at it.
    for rec in dc.vms() {
        let slot = &dc.hypervisors[rec.hypervisor].vfs[rec.vf_slot];
        assert_eq!(slot.attached, Some(rec.id), "slot/VM mismatch");
    }
    dc.verify_connectivity().expect("connectivity");
}

fn run_ops(arch: VirtArch, ops: &[Op]) {
    let mut dc = DataCenter::from_topology(
        fattree::two_level(3, 2, 2),
        DataCenterConfig {
            arch,
            vfs_per_hypervisor: 2,
            ..DataCenterConfig::default()
        },
    )
    .unwrap();
    let hyps = dc.hypervisors.len();
    let mut created = 0u64;
    for op in ops {
        match *op {
            Op::Create(h) => {
                if dc.create_vm(format!("vm{created}"), h % hyps).is_ok() {
                    created += 1;
                }
            }
            Op::Destroy(i) => {
                let ids: Vec<VmId> = dc.vms().iter().map(|r| r.id).collect();
                if !ids.is_empty() {
                    let _ = dc.destroy_vm(ids[i % ids.len()]);
                }
            }
            Op::Migrate(i, dest) => {
                let ids: Vec<VmId> = dc.vms().iter().map(|r| r.id).collect();
                if !ids.is_empty() {
                    let vm = ids[i % ids.len()];
                    let dest = dest % hyps;
                    if dc.vm(vm).unwrap().hypervisor != dest {
                        if let Ok(report) = dc.migrate_vm(vm, dest) {
                            assert!(report.lft.max_blocks_per_switch <= 2, "m' bound");
                            assert!(
                                report.lft.switches_updated <= dc.subnet.num_physical_switches(),
                                "n' bound"
                            );
                        }
                    }
                }
            }
        }
        check_invariants(&dc);
    }
}

fn lifecycle_fuzz(arch: VirtArch, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..12 {
        let n = rng.gen_range(1usize..25);
        let ops: Vec<Op> = (0..n).map(|_| rand_op(&mut rng, 6)).collect();
        run_ops(arch, &ops);
    }
}

/// Arbitrary create/destroy/migrate interleavings keep the fabric
/// consistent under the prepopulated-LID architecture.
#[test]
fn prepopulated_lifecycle_fuzz() {
    lifecycle_fuzz(VirtArch::VSwitchPrepopulated, 0x51_07);
}

/// ... and under dynamic LID assignment.
#[test]
fn dynamic_lifecycle_fuzz() {
    lifecycle_fuzz(VirtArch::VSwitchDynamic, 0x51_08);
}

// ---------------------------------------------------------------------
// Credit simulator conservation
// ---------------------------------------------------------------------

/// Packets are conserved: on a drained run every injected packet was
/// either delivered or dropped, never duplicated or lost — for any
/// flow matrix, credit budget, and timeout setting.
#[test]
fn credit_sim_conserves_packets() {
    use ib_routing::tables::VlAssignment;
    use ib_sim::credit::{run, CreditSimConfig, Flow};
    use ib_sm::{SmConfig, SubnetManager};

    let mut rng = StdRng::seed_from_u64(0x51_09);
    for _ in 0..16 {
        let num_pairs = rng.gen_range(1usize..12);
        let pairs: Vec<(usize, usize, u64)> = (0..num_pairs)
            .map(|_| {
                (
                    rng.gen_range(0usize..6),
                    rng.gen_range(0usize..6),
                    rng.gen_range(1u64..6),
                )
            })
            .collect();
        let credits = rng.gen_range(1usize..4);
        let timeout = if rng.gen_bool(0.5) {
            Some(rng.gen_range(16u32..64))
        } else {
            None
        };

        let mut t = fattree::two_level(2, 3, 2);
        let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
        sm.bring_up(&mut t.subnet).unwrap();

        let mut total = 0u64;
        let flows: Vec<Flow> = pairs
            .iter()
            .filter(|&&(a, b, _)| a != b)
            .map(|&(a, b, n)| {
                total += n;
                Flow {
                    src: t.hosts[a],
                    dst: t.subnet.node(t.hosts[b]).ports[1].lid.unwrap(),
                    packets: n,
                }
            })
            .collect();
        if flows.is_empty() {
            continue;
        }

        let report = run(
            &t.subnet,
            &flows,
            &VlAssignment::SingleVl,
            &CreditSimConfig {
                credits_per_channel: credits,
                timeout_rounds: timeout,
                ..CreditSimConfig::default()
            },
        )
        .unwrap();
        // Fat-tree shortest paths cannot deadlock, so the run drains.
        assert!(report.drained, "{report:?}");
        assert!(!report.deadlocked);
        assert_eq!(report.delivered + report.dropped, total);
    }
}

// ---------------------------------------------------------------------
// LFT dirty-block / equality coherence and sweep idempotence
// ---------------------------------------------------------------------

/// `dirty_blocks` and semantic equality must agree: two LFTs compare
/// equal exactly when no block differs — including when one side carries
/// trailing blocks that are allocated but entirely unset (growing a table
/// without setting anything is not a difference, so it must cost no SMPs).
#[test]
fn lft_equality_iff_no_dirty_blocks() {
    let mut rng = StdRng::seed_from_u64(0x51_07);
    for case in 0..200 {
        let entries = rand_entries(&mut rng, 0, 60);
        let mut a = Lft::new();
        for (lid, port) in &entries {
            a.set(*lid, *port);
        }
        let mut b = a.clone();

        // Half the cases: grow one side with trailing all-None blocks
        // (allocate via set + clear so no entry survives).
        if rng.gen_range(0u8..2) == 0 {
            let grow = Lid::from_raw(rng.gen_range(400u16..600));
            b.set(grow, PortNum::new(1));
            b.clear(grow);
        }
        assert_eq!(a, b, "case {case}: trailing unset blocks are not a diff");
        assert!(
            a.dirty_blocks(&b).is_empty(),
            "case {case}: equal tables must have no dirty blocks"
        );

        // Now perturb one entry; equality and dirty_blocks must both flip.
        let (lid, port) = (rand_lid(&mut rng), rand_port(&mut rng));
        if b.get(lid) == Some(port) {
            b.clear(lid);
        } else {
            b.set(lid, port);
        }
        assert_ne!(a, b, "case {case}: a one-entry diff must break equality");
        let dirty = a.dirty_blocks(&b);
        assert_eq!(
            dirty,
            vec![lid.lft_block()],
            "case {case}: exactly the touched block is dirty"
        );
    }
}

/// After any bring-up, an immediate second sweep with the same engine
/// finds every block clean and sends exactly zero LFT SMPs — on randomized
/// fat-tree shapes and engines, for both serial and parallel planning.
#[test]
fn second_sweep_sends_no_smps() {
    use ib_routing::EngineKind;
    use ib_sm::{SmConfig, SmpMode, SubnetManager, SweepOptions};

    let mut rng = StdRng::seed_from_u64(0x51_08);
    for _ in 0..12 {
        let spines = rng.gen_range(2usize..4);
        let leaves = rng.gen_range(2usize..5);
        let hosts = rng.gen_range(1usize..4);
        let engine = match rng.gen_range(0u8..3) {
            0 => EngineKind::FatTree,
            1 => EngineKind::MinHop,
            _ => EngineKind::Dfsssp,
        };
        let workers = [1usize, 2, 8][rng.gen_range(0usize..3)];
        let mut t = fattree::two_level(spines, leaves, hosts);
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                engine,
                smp_mode: SmpMode::Directed,
                sweep: SweepOptions::with_workers(workers),
                routing: ib_sm::RoutingOptions::default().with_workers(workers),
                ..SmConfig::default()
            },
        );
        let first = sm.bring_up(&mut t.subnet).expect("bring-up");
        assert!(first.distribution.lft_smps > 0);
        let again = sm.full_reconfiguration(&mut t.subnet).expect("resweep");
        assert_eq!(
            again.distribution.lft_smps, 0,
            "{spines}x{leaves}x{hosts} {engine:?} workers={workers}: idempotent sweep"
        );
        assert_eq!(again.distribution.switches_updated, 0);
    }
}
