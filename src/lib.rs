//! # ib-vswitch
//!
//! A from-scratch reproduction of *Towards the InfiniBand SR-IOV vSwitch
//! Architecture* (Tasoulas, Gran, Johnsen, Begnum, Skeie — IEEE CLUSTER
//! 2015): the vSwitch SR-IOV addressing architectures and their
//! topology-agnostic live-migration reconfiguration method, together with
//! every substrate they need — an InfiniBand subnet model, an OpenSM-analog
//! subnet manager, five routing engines, an SMP ledger and cost model, a
//! discrete-event simulator, and an OpenStack-like orchestration layer.
//!
//! ## Quick start
//!
//! ```
//! use ib_vswitch::prelude::*;
//!
//! // A 2-level fat tree of 36 hosts, every host virtualized into an
//! // SR-IOV hypervisor with prepopulated VF LIDs.
//! let built = ib_vswitch::topology::fattree::two_level(6, 6, 3);
//! let mut dc = DataCenter::from_topology(built, DataCenterConfig {
//!     arch: VirtArch::VSwitchPrepopulated,
//!     vfs_per_hypervisor: 4,
//!     ..DataCenterConfig::default()
//! }).unwrap();
//!
//! // Boot a VM and live-migrate it across the fabric: zero path
//! // recomputation, and only one or two SMPs per updated switch.
//! let vm = dc.create_vm("webserver", 0).unwrap();
//! let report = dc.migrate_vm(vm, 35).unwrap();
//! assert_eq!(report.lid_before, report.lid_after); // addresses follow the VM
//! assert!(report.lft.max_blocks_per_switch <= 2);  // m' ∈ {1, 2}
//! dc.verify_connectivity().unwrap();
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `ib-types` | LID/GUID/GID newtypes, LID space |
//! | [`subnet`] | `ib-subnet` | subnet graph, LFTs, topology builders |
//! | [`mad`] | `ib-mad` | SMPs, directed routes, ledger, cost model |
//! | [`observe`] | `ib-observe` | spans, counters, histograms, metrics export |
//! | [`routing`] | `ib-routing` | Min-Hop, Fat-Tree, Up*/Down*, DFSSSP, LASH, CDG |
//! | [`sm`] | `ib-sm` | discovery, LID assignment, LFT distribution |
//! | [`core`] | `ib-core` | **the paper**: vSwitch architectures + reconfiguration |
//! | [`sim`] | `ib-sim` | event queue, SMP replay, flows, downtime |
//! | [`cloud`] | `ib-cloud` | placement, §VII-B workflow, scenarios |
//! | [`verify`] | `ib-verify` | fabric invariant verifier over installed LFTs |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ib_cloud as cloud;
pub use ib_core as core;
pub use ib_mad as mad;
pub use ib_observe as observe;
pub use ib_routing as routing;
pub use ib_sim as sim;
pub use ib_sm as sm;
pub use ib_subnet as subnet;
pub use ib_types as types;
pub use ib_verify as verify;

/// Topology builders, re-exported at the top level for convenience.
pub use ib_subnet::topology;

/// The names almost every user needs.
pub mod prelude {
    pub use ib_cloud::{Inventory, LiveMigrationWorkflow, PlacementPolicy, VmFlavor};
    pub use ib_core::{
        DataCenter, DataCenterConfig, MigrationOptions, MigrationReport, VirtArch, VmId,
    };
    pub use ib_mad::{CostModel, SmpLedger};
    pub use ib_observe::Observer;
    pub use ib_routing::{EngineKind, RoutingEngine};
    pub use ib_sm::{SmConfig, SmpMode, SubnetManager};
    pub use ib_subnet::{topology::BuiltTopology, Subnet};
    pub use ib_types::{Gid, Guid, Lid, PortNum};
    pub use ib_verify::{FabricVerifier, VerifyReport};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        use crate::prelude::*;
        let _ = EngineKind::MinHop;
        let _ = VirtArch::SharedPort;
        let _ = CostModel::default();
        let _ = Lid::from_raw(1);
    }
}
