//! Vendored stand-in for the subset of the `criterion` API this workspace's
//! benches use (the build environment has no network access to crates.io).
//!
//! Supports `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `sample_size`, `BenchmarkId`, and
//! `Bencher::iter`. Each benchmark runs a short warmup followed by
//! `sample_size` timed samples and prints mean/min wall-clock time per
//! iteration. No outlier analysis, no HTML reports — just honest timings so
//! `cargo bench` keeps working offline.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's traditional name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("== group {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _c: self,
            name,
            sample_size,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_bench(&id.to_string(), self.default_sample_size, &mut f);
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_bench(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
    }

    pub fn finish(self) {}
}

/// Two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Passed to the benchmark closure; `iter` times the supplied routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

/// How `iter_batched` sizes its setup batches. The stub runs one setup per
/// timed call either way, so the variants only exist for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

impl Bencher {
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        // Untimed warmup (setup + routine), then one timed sample with the
        // setup cost excluded — matching real criterion's contract.
        hint::black_box(routine(setup()));
        let mut inputs: Vec<I> = Vec::with_capacity(self.iters_per_sample as usize);
        for _ in 0..self.iters_per_sample {
            inputs.push(setup());
        }
        let start = Instant::now();
        for input in inputs {
            hint::black_box(routine(input));
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }

    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup call, then one timed sample per invocation of
        // `iter` (the driver calls the closure `sample_size` times).
        hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            hint::black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        eprintln!("{label:60} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().unwrap();
    eprintln!(
        "{label:60} mean {:>12?}  min {:>12?}  ({} samples)",
        mean,
        min,
        b.samples.len()
    );
}

/// Builds the group-runner function criterion_main! expects.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point: runs each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 3 samples × (1 warmup + 1 timed) = 6 closure invocations.
        assert_eq!(runs, 6);
    }
}
