//! Vendored stand-in for the `rustc-hash` crate (the build environment has
//! no network access to crates.io). Implements the same Fx hash algorithm:
//! a multiply-and-rotate word hasher originally from Firefox, as used by
//! rustc. Drop-in for `FxHashMap`/`FxHashSet`/`FxHasher`/`FxBuildHasher`.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 26;

/// The Fx word hasher: `hash = (hash.rotate_left(26) ^ word) * SEED`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(99);
        assert!(s.contains(&99));
    }

    #[test]
    fn deterministic_across_hashers() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello world");
        b.write(b"hello world");
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }
}
