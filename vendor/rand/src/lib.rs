//! Vendored stand-in for the subset of the `rand` 0.8 API this workspace
//! uses (the build environment has no network access to crates.io).
//!
//! `StdRng` here is SplitMix64 — deterministic, seedable, and fast, with
//! the same `seed_from_u64` entry point the real crate offers. It makes no
//! attempt to be statistically equivalent to upstream `StdRng`; everything
//! in this repo that consumes randomness treats the stream as an opaque
//! deterministic function of the seed.

/// Core RNG trait: the subset of `rand::Rng` used by this workspace.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open, `start..end`).
    ///
    /// Panics if the range is empty, matching upstream.
    fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// Bernoulli sample with probability `p` of `true`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`, matching upstream.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        self.gen_f64() < p
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits, scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seeding trait: the subset of `rand::SeedableRng` used by this workspace.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable with [`Rng::gen_range`].
pub trait SampleRange: Copy + PartialOrd {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                // Debiased multiply-shift (Lemire); span is < 2^64 here so a
                // simple widening reduction is fine for simulation purposes.
                let v = (rng.next_u64() as u128 * span) >> 64;
                range.start + v as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + rng.gen_f64() * (range.end - range.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        for _ in 0..10_000 {
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.05)).count();
        assert!((4_000..6_000).contains(&hits), "5% drew {hits}/100000");
    }
}
