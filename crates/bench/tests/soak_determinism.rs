//! Seed determinism: the entire robustness pipeline — fault schedules,
//! quarantine decisions, migration outcomes, verifier verdicts — must be
//! a pure function of the seed, independent of run count and worker
//! count. A soak failure is only reproducible if this holds.

use ib_bench::soak::{run_soak, SoakConfig};
use ib_mad::fault::SmpTransport;
use ib_sim::faults::{FaultEvent, FaultPlan};
use ib_sim::SimTime;
use ib_subnet::topology::fattree::two_level;

fn config(seed: u64, workers: usize) -> SoakConfig {
    SoakConfig {
        seed,
        events: 60,
        workers,
        ..SoakConfig::default()
    }
}

#[test]
fn same_seed_gives_byte_identical_soak_reports() {
    let a = run_soak(&config(7, 1));
    let b = run_soak(&config(7, 1));
    assert!(a.is_clean(), "soak failed: {:?}", a.failure);
    assert_eq!(a, b, "two runs of the same seed diverged");
    // The verdict trail really is per-event.
    assert_eq!(a.verdicts.len(), a.events_run);
}

#[test]
fn soak_verdicts_are_worker_count_invariant() {
    // Routing tables are invariant under the engine worker count, so the
    // whole soak — which re-routes on every sweep — must be too.
    let one = run_soak(&config(11, 1));
    let three = run_soak(&config(11, 3));
    assert!(one.is_clean(), "soak failed: {:?}", one.failure);
    assert_eq!(one, three, "worker count leaked into the soak verdicts");
}

#[test]
fn different_seeds_give_different_schedules() {
    let a = run_soak(&config(1, 1));
    let b = run_soak(&config(2, 1));
    assert_ne!(
        a.verdicts, b.verdicts,
        "seeds 1 and 2 produced the same event trail"
    );
}

#[test]
fn fault_plan_schedule_and_transport_are_seed_deterministic() {
    // The ib-sim fault layer underneath the soak: same plan, same
    // topology => identical event application order and identical SMP
    // loss decisions (clock included).
    let t = two_level(3, 2, 2);
    let leaf = t.switch_levels[0][0];
    let (port, _) = t.subnet.node(leaf).connected_ports().next().unwrap();
    let plan = FaultPlan::lossy(99, 0.25)
        .with_event(SimTime(300), FaultEvent::LinkUp { node: leaf, port })
        .with_event(SimTime(100), FaultEvent::LinkDown { node: leaf, port });

    let run = || {
        let mut t = two_level(3, 2, 2);
        let mut driver = plan.driver();
        let fired = driver.advance(&mut t.subnet, SimTime(1_000)).unwrap();
        let mut transport: SmpTransport<_> = plan.transport(t.hosts[0]);
        let mut ledger = ib_mad::SmpLedger::new();
        let smp = ib_mad::Smp {
            method: ib_mad::SmpMethod::Get,
            attribute: ib_mad::SmpAttribute::NodeInfo,
            routing: ib_mad::SmpRouting::Directed(ib_mad::DirectedRoute::from_hops(vec![
                ib_types::PortNum::new(1),
            ])),
            target: leaf,
        };
        for _ in 0..48 {
            let _ = transport.send(&t.subnet, &smp, 1, &mut ledger);
        }
        (
            fired,
            transport.clock_ns(),
            ledger.total(),
            ledger.delivered(),
        )
    };
    assert_eq!(run(), run());
}
