//! Chaos-soak harness: long, seeded, randomized schedules interleaving
//! link faults, flap bursts, live migrations, and SM sweeps on a
//! virtualized fat tree — with the fabric invariant verifier run after
//! every convergence and the quarantine hold-down list checked against
//! the installed LFTs.
//!
//! Everything the soak does is a pure function of its [`SoakConfig`]
//! (seed included), so a failing run is reproducible from the seed the
//! failure message prints. The optional [`Inject`] mode corrupts an
//! installed LFT entry *after* a clean soak and demands the verifier
//! catch it — the harness's loud-failure self-test.

use ib_core::{DataCenter, DataCenterConfig, VirtArch};
use ib_mad::SmpTransport;
use ib_observe::Observer;
use ib_routing::{EngineKind, RoutingOptions};
use ib_sm::{QuarantineOptions, Trap};
use ib_subnet::topology::fattree;
use ib_subnet::{NodeId, Subnet};
use ib_types::{IbResult, PortNum};
use ib_verify::FabricVerifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deliberate LFT corruption applied after the event schedule, used to
/// prove the verifier fails loudly instead of rubber-stamping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inject {
    /// Redirect a VM's row on its own leaf to a wrong vSwitch.
    Misroute,
    /// Point the leaf row for a VM at a spine, whose row points back.
    Cycle,
    /// Clear a VM's forwarding row on its own leaf entirely.
    DropRow,
    /// Sever a leaf, let the SM clear the stranded columns, then
    /// resurrect one cleared row — a served switch pointing at a LID the
    /// fabric can no longer reach. The reachability-aware verifier must
    /// name it a stale route.
    StaleRoute,
}

impl std::str::FromStr for Inject {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "misroute" => Ok(Self::Misroute),
            "cycle" => Ok(Self::Cycle),
            "drop-row" => Ok(Self::DropRow),
            "stale-route" => Ok(Self::StaleRoute),
            other => Err(format!(
                "unknown injection `{other}` (want misroute|cycle|drop-row|stale-route)"
            )),
        }
    }
}

/// Soak scenario parameters. The defaults are the CI profile: a small
/// 2-level fat tree, 200 events, mild SMP loss on migrations.
#[derive(Clone, Copy, Debug)]
pub struct SoakConfig {
    /// Seed for the event schedule (and every derived RNG stream).
    pub seed: u64,
    /// How many top-level events to run.
    pub events: usize,
    /// Leaf switches in the fat tree.
    pub leaves: usize,
    /// Hypervisors per leaf.
    pub hosts_per_leaf: usize,
    /// Spine switches.
    pub spines: usize,
    /// VMs booted before the chaos starts.
    pub vms: usize,
    /// Per-hop SMP drop probability on migration transports.
    pub drop_probability: f64,
    /// Routing-engine worker threads (tables are invariant under this).
    pub workers: usize,
    /// Randomly (seeded coin per fault event) handle link-downs with the
    /// SM's incremental repair sweep instead of a full light sweep.
    pub repair: bool,
    /// Partition mode: the schedule trades single-link faults and flap
    /// bursts for whole-leaf severs and heals — the fabric repeatedly
    /// splits into two components and reconnects, with migrations and
    /// sweeps running throughout. The partial-fault events are dropped so
    /// every degraded shape stays an intact (sub-)fat-tree, which keeps
    /// the schedule deadlock-free under all five routing engines.
    pub partitions: bool,
    /// Routing engine for the SM's path computation. The default DFSSSP
    /// is the only engine whose tables stay deadlock-free on the degraded
    /// shapes the *default* (partial-fault) schedule produces; under
    /// `partitions` every engine is fair game.
    pub engine: EngineKind,
    /// Post-soak LFT corruption to throw at the verifier, if any.
    pub inject: Option<Inject>,
}

impl Default for SoakConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            events: 200,
            leaves: 4,
            hosts_per_leaf: 2,
            spines: 2,
            vms: 4,
            drop_probability: 0.05,
            workers: 1,
            repair: false,
            partitions: false,
            engine: EngineKind::Dfsssp,
            inject: None,
        }
    }
}

/// What a soak run did and concluded. Byte-for-byte deterministic for a
/// given [`SoakConfig`] — the regression tests compare whole reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SoakReport {
    /// The schedule seed (reproduces the run).
    pub seed: u64,
    /// Events actually executed (less than requested iff a failure stopped
    /// the run).
    pub events_run: usize,
    /// Single link-down events applied.
    pub link_downs: usize,
    /// Single link-up events applied.
    pub link_ups: usize,
    /// Flap bursts applied (each is several traps in quick succession).
    pub flap_bursts: usize,
    /// Unprompted light sweeps run.
    pub sweeps: usize,
    /// Resilient migrations attempted.
    pub migrations: usize,
    /// ... of which committed.
    pub commits: usize,
    /// ... of which rolled back cleanly under SMP loss.
    pub rollbacks: usize,
    /// Events that found no applicable action and did nothing.
    pub noops: usize,
    /// Links that entered quarantine hold-down.
    pub quarantines_entered: u64,
    /// Traps absorbed by flap damping without a re-sweep.
    pub traps_absorbed: u64,
    /// Links released from quarantine after their hold-down expired.
    pub quarantines_released: usize,
    /// Whole-leaf sever events applied (partition mode).
    pub partitions: usize,
    /// Heal events applied: every cut link restored, boundary trap
    /// delivered (partition mode).
    pub heals: usize,
    /// Heals the SM *proved*: sweeps that found every previously
    /// stranded forwarding column restored (`sm.healed`).
    pub healed: u64,
    /// Stale-route violations found by any verification pass
    /// (`verify.stale_routes`) — zero on a clean run.
    pub stale_route_violations: u64,
    /// Migrations rejected by the reachability pre-flight
    /// (`migration.abort.unreachable`).
    pub migration_aborts: u64,
    /// Incremental repair sweeps attempted (`repair.attempts`).
    pub repair_sweeps: u64,
    /// ... of which fell back to a full sweep (`repair.fallback`).
    pub repair_fallbacks: u64,
    /// The fallbacks keyed by engine name (`repair.fallback.<engine>`,
    /// sorted) — which engine degraded, not just that one did.
    pub repair_fallbacks_by_engine: Vec<(String, u64)>,
    /// Explicit post-event verifier runs (the SM's own sweep-time and
    /// migration-time verifications come on top).
    pub verify_runs: usize,
    /// One verdict line per event: `"<i>:<kind>:clean"` or the violation.
    pub verdicts: Vec<String>,
    /// The failure that stopped the run, with the reproducing seed.
    pub failure: Option<String>,
}

impl SoakReport {
    /// Whether the run converged with zero violations (and no injection).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.failure.is_none()
    }
}

/// Every switch-to-switch cable of the physical core, one entry per cable
/// (keyed at the end with the smaller node index).
pub(crate) fn core_links(subnet: &Subnet) -> Vec<(NodeId, PortNum, NodeId)> {
    let mut out = Vec::new();
    for sw in subnet.physical_switches() {
        for (port, remote) in sw.cabled_ports() {
            if subnet.node(remote.node).is_physical_switch() && sw.id.index() < remote.node.index()
            {
                out.push((sw.id, port, remote.node));
            }
        }
    }
    out
}

/// Whether every live physical switch can still reach every other over up
/// links, pretending `skip` (one cable, either end) is down.
pub(crate) fn connected_without(
    subnet: &Subnet,
    links: &[(NodeId, PortNum, NodeId)],
    skip: (NodeId, PortNum),
) -> bool {
    let switches: Vec<NodeId> = subnet
        .physical_switches()
        .filter(|n| n.is_alive())
        .map(|n| n.id)
        .collect();
    let Some(&start) = switches.first() else {
        return true;
    };
    let mut reached = vec![start];
    let mut frontier = vec![start];
    while let Some(cur) = frontier.pop() {
        for &(a, p, b) in links {
            if (a, p) == skip || !subnet.is_link_up(a, p) {
                continue;
            }
            for (from, to) in [(a, b), (b, a)] {
                if from == cur && !reached.contains(&to) {
                    reached.push(to);
                    frontier.push(to);
                }
            }
        }
    }
    switches.iter().all(|s| reached.contains(s))
}

/// Links currently up whose loss keeps the switch core connected.
pub(crate) fn safe_to_down(
    subnet: &Subnet,
    links: &[(NodeId, PortNum, NodeId)],
) -> Vec<(NodeId, PortNum, NodeId)> {
    links
        .iter()
        .copied()
        .filter(|&(a, p, _)| subnet.is_link_up(a, p) && connected_without(subnet, links, (a, p)))
        .collect()
}

/// Runs the soak. Infrastructure errors (a sweep that cannot converge, a
/// verification failure inside the SM, a violation found by the explicit
/// post-event check) all land in `report.failure` together with the
/// reproducing seed; the schedule stops at the first one.
#[must_use]
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    let observer = Observer::metrics();
    let mut dc = DataCenter::from_topology_observed(
        fattree::two_level(cfg.leaves, cfg.hosts_per_leaf, cfg.spines),
        DataCenterConfig {
            arch: VirtArch::VSwitchPrepopulated,
            vfs_per_hypervisor: 2,
            // Min-Hop is *not* deadlock-free once links drop (a lost
            // uplink forces down-up "valley" routes whose channel
            // dependencies close cycles — the sweep-time verifier
            // rejects exactly that). The default DFSSSP's lane layering
            // stays deadlock-free on every degraded shape the default
            // schedule produces; the partition schedule only ever severs
            // whole leaves, so there every engine qualifies.
            engine: cfg.engine,
            verify: true,
            quarantine: QuarantineOptions::enabled(),
            routing: RoutingOptions::default().with_workers(cfg.workers),
            ..DataCenterConfig::default()
        },
        observer.clone(),
    )
    .expect("soak bring-up");
    let hyps = dc.hypervisors.len();
    let mut vm_ids = Vec::with_capacity(cfg.vms);
    for i in 0..cfg.vms {
        vm_ids.push(
            dc.create_vm(format!("soak-vm{i}"), i % hyps)
                .expect("soak vm"),
        );
    }

    let links = core_links(&dc.subnet);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut traps = SmpTransport::perfect(dc.sm.sm_node);
    let mut now_ns: u64 = 0;
    let mut report = SoakReport {
        seed: cfg.seed,
        ..SoakReport::default()
    };

    // Partition-mode state: the leaves the schedule may sever (never the
    // SM's own — the master must keep a component to serve), and the
    // currently active cut, one `(leaf, leaf_port, spine, spine_port)`
    // per severed cable.
    let sm_leaf = dc.hypervisors[0].leaf;
    let mut victim_leaves: Vec<NodeId> = dc
        .hypervisors
        .iter()
        .map(|h| h.leaf)
        .filter(|&l| l != sm_leaf)
        .collect();
    victim_leaves.sort_unstable_by_key(|n| n.index());
    victim_leaves.dedup();
    let mut active_cut: Option<Vec<(NodeId, PortNum, NodeId, PortNum)>> = None;

    for i in 0..cfg.events {
        now_ns += 50_000_000 + rng.gen_range(0..150_000_000);
        let roll = rng.gen_range(0u32..100);
        let mut kind = "noop";
        let step: IbResult<()> = (|| {
            if cfg.partitions {
                if roll < 18 {
                    // Split: sever a whole victim leaf — every spine
                    // uplink at once — and let the served-side spines
                    // report it. The fabric is now two components; the
                    // SM's sweeps must degrade, not fail.
                    if active_cut.is_some() {
                        return Ok(());
                    }
                    let leaf = victim_leaves[rng.gen_range(0..victim_leaves.len())];
                    kind = "split";
                    report.partitions += 1;
                    let cut: Vec<(NodeId, PortNum, NodeId, PortNum)> = dc
                        .subnet
                        .node(leaf)
                        .connected_ports()
                        .filter(|(_, r)| dc.subnet.node(r.node).is_physical_switch())
                        .map(|(p, r)| (leaf, p, r.node, r.port))
                        .collect();
                    for &(l, p, _, _) in &cut {
                        dc.subnet.set_link_down(l, p)?;
                    }
                    for &(_, _, spine, sp) in &cut {
                        dc.sm.handle_trap_at(
                            &mut dc.subnet,
                            Trap::LinkStateChange {
                                node: spine,
                                port: sp,
                            },
                            &mut traps,
                            now_ns,
                        )?;
                        now_ns += 1_000_000;
                    }
                    active_cut = Some(cut);
                } else if roll < 36 {
                    // Heal: every cut cable comes back, and each end's
                    // link-up trap is delivered — the boundary signal the
                    // degraded SM must NOT absorb. The sweep it triggers
                    // has to restore every stranded forwarding column
                    // (the SM proves it and errors otherwise).
                    let Some(cut) = active_cut.take() else {
                        return Ok(());
                    };
                    kind = "heal";
                    report.heals += 1;
                    for &(l, p, _, _) in &cut {
                        dc.subnet.set_link_up(l, p)?;
                    }
                    for &(l, p, _, _) in &cut {
                        dc.sm.handle_trap_at(
                            &mut dc.subnet,
                            Trap::LinkStateChange { node: l, port: p },
                            &mut traps,
                            now_ns,
                        )?;
                        now_ns += 1_000_000;
                    }
                } else if roll < 80 {
                    // Resilient migration — the destination may sit in
                    // the lost component, in which case the pre-flight
                    // must abort it cleanly before any SMP.
                    let id = vm_ids[rng.gen_range(0..vm_ids.len())];
                    let cur = dc.vm(id).expect("soak vm record").hypervisor;
                    let dest = rng.gen_range(0..hyps);
                    let migration_seed = rng.gen_range(0..u64::MAX);
                    if dest == cur || dc.hypervisors[dest].free_slot().is_none() {
                        return Ok(());
                    }
                    kind = "migrate";
                    report.migrations += 1;
                    let mut transport =
                        SmpTransport::lossy(dc.sm.sm_node, migration_seed, cfg.drop_probability, 0);
                    transport.retry.max_attempts = 8;
                    let tx = dc.migrate_vm_resilient(id, dest, &mut transport)?;
                    if tx.committed {
                        report.commits += 1;
                    } else {
                        report.rollbacks += 1;
                    }
                } else {
                    // Unprompted light sweep — run degraded or whole.
                    kind = "sweep";
                    report.sweeps += 1;
                    dc.sm.light_sweep(&mut dc.subnet, &mut traps)?;
                }
                return Ok(());
            }
            if roll < 35 {
                // Link down (connectivity-preserving).
                let cands = safe_to_down(&dc.subnet, &links);
                if cands.is_empty() {
                    return Ok(());
                }
                let (a, p, _) = cands[rng.gen_range(0..cands.len())];
                kind = "down";
                report.link_downs += 1;
                // Seeded coin: half the faults take the incremental repair
                // path, half the classic full sweep. The `&&` keeps the
                // RNG stream untouched when repair is off, so default
                // schedules stay byte-identical.
                dc.sm.set_repair(cfg.repair && rng.gen_bool(0.5));
                dc.subnet.set_link_down(a, p)?;
                dc.sm.handle_trap_at(
                    &mut dc.subnet,
                    Trap::LinkStateChange { node: a, port: p },
                    &mut traps,
                    now_ns,
                )?;
            } else if roll < 60 {
                // Link up — never overriding a quarantine hold-down.
                let cands: Vec<_> = links
                    .iter()
                    .copied()
                    .filter(|&(a, p, _)| {
                        !dc.subnet.is_link_up(a, p)
                            && !dc.sm.quarantine.is_quarantined(&dc.subnet, a, p, now_ns)
                    })
                    .collect();
                if cands.is_empty() {
                    return Ok(());
                }
                let (a, p, _) = cands[rng.gen_range(0..cands.len())];
                kind = "up";
                report.link_ups += 1;
                dc.subnet.set_link_up(a, p)?;
                dc.sm.handle_trap_at(
                    &mut dc.subnet,
                    Trap::LinkStateChange { node: a, port: p },
                    &mut traps,
                    now_ns,
                )?;
            } else if roll < 75 {
                // Flap burst: down/up/down in quick succession. The third
                // trap trips the damper; the link ends administratively
                // down inside its hold-down window.
                let cands = safe_to_down(&dc.subnet, &links);
                if cands.is_empty() {
                    return Ok(());
                }
                let (a, p, _) = cands[rng.gen_range(0..cands.len())];
                kind = "flap";
                report.flap_bursts += 1;
                dc.sm.set_repair(cfg.repair && rng.gen_bool(0.5));
                for _ in 0..4 {
                    let held = dc.sm.quarantine.is_quarantined(&dc.subnet, a, p, now_ns);
                    if dc.subnet.is_link_up(a, p) {
                        dc.subnet.set_link_down(a, p)?;
                    } else if !held {
                        dc.subnet.set_link_up(a, p)?;
                    }
                    // A held link keeps flapping too — that trap must be
                    // absorbed by the damper, not trigger a re-sweep.
                    dc.sm.handle_trap_at(
                        &mut dc.subnet,
                        Trap::LinkStateChange { node: a, port: p },
                        &mut traps,
                        now_ns,
                    )?;
                    now_ns += 1_000_000;
                    if held {
                        break;
                    }
                }
            } else if roll < 92 {
                // Resilient migration over a lossy transport.
                let id = vm_ids[rng.gen_range(0..vm_ids.len())];
                let cur = dc.vm(id).expect("soak vm record").hypervisor;
                let dest = rng.gen_range(0..hyps);
                let migration_seed = rng.gen_range(0..u64::MAX);
                if dest == cur || dc.hypervisors[dest].free_slot().is_none() {
                    return Ok(());
                }
                kind = "migrate";
                report.migrations += 1;
                let mut transport =
                    SmpTransport::lossy(dc.sm.sm_node, migration_seed, cfg.drop_probability, 0);
                transport.retry.max_attempts = 8;
                let tx = dc.migrate_vm_resilient(id, dest, &mut transport)?;
                if tx.committed {
                    report.commits += 1;
                } else {
                    report.rollbacks += 1;
                }
            } else {
                // Unprompted light sweep (verified internally).
                kind = "sweep";
                report.sweeps += 1;
                dc.sm.light_sweep(&mut dc.subnet, &mut traps)?;
            }
            Ok(())
        })();
        if kind == "noop" {
            report.noops += 1;
        }
        report.events_run = i + 1;
        if let Err(e) = step {
            report.verdicts.push(format!("{i}:{kind}:error"));
            report.failure = Some(format!(
                "event {i} ({kind}): {e}; reproduce with --seed {}",
                cfg.seed
            ));
            break;
        }

        // Expired hold-downs release and fold back into routing.
        match dc
            .sm
            .release_quarantined(&mut dc.subnet, &mut traps, now_ns)
        {
            Ok(n) => report.quarantines_released += n,
            Err(e) => {
                report.failure = Some(format!(
                    "event {i} (release): {e}; reproduce with --seed {}",
                    cfg.seed
                ));
                break;
            }
        }

        // The soak's own convergence check: black holes, forwarding
        // loops, addressing, stale routes, plus the promise that no
        // installed row crosses a quarantined link — all scoped to the
        // component the SM can actually govern (the whole fabric except
        // mid-split, when the lost side's frozen tables are not the SM's
        // to answer for). Deadlock-freedom is checked at sweep time by
        // the SM itself (`SmConfig.verify`), which has the engine's
        // virtual-lane layering — a single-lane re-check here would
        // false-positive on DFSSSP's per-lane-acyclic tables.
        let mut problems: Vec<String> = match FabricVerifier::new()
            .with_deadlock(false)
            .with_viewpoint(dc.sm.sm_node)
            .verify(&dc.subnet)
        {
            Ok(r) => {
                report.verify_runs += 1;
                r.violations.iter().map(ToString::to_string).collect()
            }
            Err(e) => vec![format!("verifier error: {e}")],
        };
        problems.extend(dc.sm.quarantine.verify_absent_scoped(
            &dc.subnet,
            now_ns,
            Some(dc.sm.sm_node),
        ));
        // The reverse route index is derived state: prove it still mirrors
        // the installed rows after every event (repairs splice it, full
        // sweeps rebuild it, migrations refresh their columns).
        problems.extend(dc.sm.verify_route_index(&dc.subnet));
        if problems.is_empty() {
            report.verdicts.push(format!("{i}:{kind}:clean"));
        } else {
            report.verdicts.push(format!("{i}:{kind}:{}", problems[0]));
            report.failure = Some(format!(
                "event {i} ({kind}): {} violation(s), first: {}; reproduce with --seed {}",
                problems.len(),
                problems[0],
                cfg.seed
            ));
            break;
        }
    }

    if let Some(snap) = observer.snapshot() {
        report.quarantines_entered = snap.counter("quarantine.entered");
        report.traps_absorbed = snap.counter("quarantine.absorbed");
        report.healed = snap.counter("sm.healed");
        report.stale_route_violations = snap.counter("verify.stale_routes");
        report.migration_aborts = snap.counter("migration.abort.unreachable");
        report.repair_sweeps = snap.counter("repair.attempts");
        report.repair_fallbacks = snap.counter("repair.fallback");
        report.repair_fallbacks_by_engine = snap
            .counters
            .iter()
            .filter_map(|(n, v)| {
                n.strip_prefix("repair.fallback.")
                    .map(|engine| (engine.to_string(), *v))
            })
            .collect();
    }

    if report.failure.is_none() {
        if let Some(inject) = cfg.inject {
            report.failure = Some(run_injection(&mut dc, inject, cfg.seed));
            report.verify_runs += 1;
        }
    }
    report
}

/// Corrupts an installed LFT per `inject` and runs the verifier, which
/// must catch it. Returns the failure line either way — an injection run
/// always fails loudly; an *undetected* corruption is the worse failure.
fn run_injection(dc: &mut DataCenter, inject: Inject, seed: u64) -> String {
    let (lid, hyp) = {
        let vm = *dc.vms().first().expect("soak has VMs");
        (vm.lid, vm.hypervisor)
    };
    let leaf = dc.hypervisors[hyp].leaf;
    let what = match inject {
        Inject::Misroute => {
            // Point the row at a vSwitch that does not own the LID; its
            // only route for a foreign LID bounces back up the cable.
            let own = dc.subnet.node(leaf).lft().and_then(|l| l.get(lid));
            let (port, _) = dc
                .subnet
                .node(leaf)
                .connected_ports()
                .find(|&(p, r)| dc.subnet.node(r.node).is_vswitch() && Some(p) != own)
                .expect("leaf has a second vSwitch");
            dc.subnet.lft_mut(leaf).expect("leaf LFT").set(lid, port);
            format!("misroute of LID {lid} to a wrong vSwitch")
        }
        Inject::Cycle => {
            // Leaf row up to a spine whose own row necessarily descends
            // right back: a two-switch forwarding cycle.
            let (port, _) = dc
                .subnet
                .node(leaf)
                .connected_ports()
                .find(|&(_, r)| dc.subnet.node(r.node).is_physical_switch())
                .expect("leaf has an up spine link");
            dc.subnet.lft_mut(leaf).expect("leaf LFT").set(lid, port);
            format!("cross-pointing rows for LID {lid} (leaf <-> spine)")
        }
        Inject::DropRow => {
            dc.subnet.lft_mut(leaf).expect("leaf LFT").clear(lid);
            format!("dropped forwarding row for LID {lid}")
        }
        Inject::StaleRoute => {
            // Sever a victim leaf, sweep so the SM clears every stranded
            // column on the switches it still serves, then resurrect one
            // cleared row on the SM's own leaf: a served switch
            // forwarding toward a destination the fabric cannot reach.
            let sm_leaf = dc.hypervisors[0].leaf;
            let victim = dc
                .hypervisors
                .iter()
                .map(|h| h.leaf)
                .find(|&l| l != sm_leaf)
                .expect("soak fabric has a second leaf");
            let uplinks: Vec<PortNum> = dc
                .subnet
                .node(victim)
                .connected_ports()
                .filter(|(_, r)| dc.subnet.node(r.node).is_physical_switch())
                .map(|(p, _)| p)
                .collect();
            for &p in &uplinks {
                dc.subnet
                    .set_link_down(victim, p)
                    .expect("sever victim leaf");
            }
            let mut traps = SmpTransport::perfect(dc.sm.sm_node);
            dc.sm
                .light_sweep(&mut dc.subnet, &mut traps)
                .expect("degraded sweep");
            let lost = dc
                .subnet
                .node(victim)
                .lids()
                .next()
                .expect("leaf owns a LID");
            let (port, _) = dc
                .subnet
                .node(sm_leaf)
                .connected_ports()
                .next()
                .expect("sm leaf has a live port");
            dc.subnet
                .lft_mut(sm_leaf)
                .expect("leaf LFT")
                .set(lost, port);
            format!("stale route: resurrected the cleared row for lost LID {lost}")
        }
    };
    match FabricVerifier::new()
        .with_deadlock(false)
        .with_viewpoint(dc.sm.sm_node)
        .verify(&dc.subnet)
    {
        Ok(r) if r.is_clean() => {
            format!("injected {what} went UNDETECTED — verifier gap; reproduce with --seed {seed}")
        }
        Ok(r) => format!(
            "injected {what}: verifier caught it — {}; reproduce with --seed {seed}",
            r.summary()
        ),
        Err(e) => format!("injected {what}: verifier errored: {e}; reproduce with --seed {seed}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SoakConfig {
        SoakConfig {
            events: 40,
            ..SoakConfig::default()
        }
    }

    #[test]
    fn default_soak_converges_clean() {
        let report = run_soak(&quick());
        assert!(report.is_clean(), "soak failed: {:?}", report.failure);
        assert_eq!(report.events_run, 40);
        assert_eq!(report.verdicts.len(), 40);
        assert!(report.verdicts.iter().all(|v| v.ends_with(":clean")));
        // The mix actually exercised faults and migrations.
        assert!(report.link_downs > 0);
        assert!(report.migrations > 0);
        assert!(report.verify_runs == 40);
    }

    #[test]
    fn flap_bursts_enter_quarantine_and_later_release() {
        // A longer run reliably crosses the flap threshold and outlives
        // at least one hold-down window.
        let report = run_soak(&SoakConfig {
            events: 120,
            ..SoakConfig::default()
        });
        assert!(report.is_clean(), "soak failed: {:?}", report.failure);
        assert!(report.flap_bursts > 0);
        assert!(report.quarantines_entered > 0, "no link was quarantined");
        assert!(report.traps_absorbed > 0, "damping never absorbed a trap");
        assert!(
            report.quarantines_released > 0,
            "no hold-down expired in-run"
        );
    }

    #[test]
    fn repair_soak_converges_clean_and_exercises_repairs() {
        let report = run_soak(&SoakConfig {
            events: 80,
            repair: true,
            ..SoakConfig::default()
        });
        assert!(
            report.is_clean(),
            "repair soak failed: {:?}",
            report.failure
        );
        assert!(report.link_downs > 0);
        assert!(
            report.repair_sweeps > 0,
            "the coin never landed on the repair path"
        );
    }

    #[test]
    fn partition_soak_splits_heals_and_stays_clean() {
        let report = run_soak(&SoakConfig {
            events: 80,
            partitions: true,
            ..SoakConfig::default()
        });
        assert!(
            report.is_clean(),
            "partition soak failed: {:?}",
            report.failure
        );
        assert!(report.partitions > 0, "no split was scheduled");
        assert!(report.heals > 0, "no heal was scheduled");
        assert!(
            report.healed >= report.heals as u64,
            "the SM proved fewer heals ({}) than were applied ({})",
            report.healed,
            report.heals
        );
        assert_eq!(
            report.stale_route_violations, 0,
            "clean run grew a stale route"
        );
        assert!(report.migrations > 0);
        assert!(
            report.migration_aborts > 0,
            "no migration ever targeted the lost component"
        );
    }

    #[test]
    fn partition_soak_is_clean_under_every_engine() {
        for engine in EngineKind::all() {
            let report = run_soak(&SoakConfig {
                events: 40,
                partitions: true,
                engine,
                ..SoakConfig::default()
            });
            assert!(report.is_clean(), "{engine}: {:?}", report.failure);
            assert!(report.partitions > 0, "{engine}: no split was scheduled");
        }
    }

    #[test]
    fn partition_soak_is_worker_invariant() {
        let base = SoakConfig {
            events: 40,
            partitions: true,
            ..SoakConfig::default()
        };
        let one = run_soak(&base);
        let four = run_soak(&SoakConfig { workers: 4, ..base });
        assert_eq!(one, four, "schedule must not depend on worker count");
    }

    #[test]
    fn every_injection_fails_loudly_with_the_seed() {
        for inject in [
            Inject::Misroute,
            Inject::Cycle,
            Inject::DropRow,
            Inject::StaleRoute,
        ] {
            let report = run_soak(&SoakConfig {
                events: 10,
                inject: Some(inject),
                ..SoakConfig::default()
            });
            let failure = report.failure.expect("injection must fail the run");
            assert!(
                failure.contains("verifier caught it"),
                "{inject:?}: {failure}"
            );
            assert!(failure.contains("--seed"), "{inject:?}: {failure}");
        }
    }

    #[test]
    fn inject_parses_from_cli_names() {
        assert_eq!("misroute".parse(), Ok(Inject::Misroute));
        assert_eq!("cycle".parse(), Ok(Inject::Cycle));
        assert_eq!("drop-row".parse(), Ok(Inject::DropRow));
        assert_eq!("stale-route".parse(), Ok(Inject::StaleRoute));
        assert!("nope".parse::<Inject>().is_err());
    }
}
