//! Conversion of `ib-observe` snapshots into the `BENCH_*.json` pipeline.
//!
//! The registry's snapshot already sorts counters and histograms by name
//! and keeps spans in completion order, so the emitted document is stable
//! byte for byte for deterministic runs — the same property the other
//! `BENCH_*.json` files rely on.

use ib_observe::{HistogramSnapshot, MetricsSnapshot, SpanRecord};

use crate::json::Json;

/// Schema tag of the `BENCH_metrics.json` document.
pub const METRICS_SCHEMA: &str = "ib-vswitch/bench-metrics/v1";

/// The full `BENCH_metrics.json` document: schema tag, counters as one
/// object (sorted keys), histograms and spans as arrays.
#[must_use]
pub fn metrics_doc(snapshot: &MetricsSnapshot) -> Json {
    Json::obj(vec![
        ("schema", Json::from(METRICS_SCHEMA)),
        ("counters", counters_json(snapshot)),
        (
            "histograms",
            Json::Array(snapshot.histograms.iter().map(histogram_json).collect()),
        ),
        (
            "spans",
            Json::Array(snapshot.spans.iter().map(span_json).collect()),
        ),
    ])
}

fn counters_json(snapshot: &MetricsSnapshot) -> Json {
    Json::Object(
        snapshot
            .counters
            .iter()
            .map(|(name, value)| (name.clone(), Json::UInt(*value)))
            .collect(),
    )
}

fn histogram_json(h: &HistogramSnapshot) -> Json {
    Json::obj(vec![
        ("name", Json::from(h.name.as_str())),
        ("count", Json::from(h.count)),
        ("sum", Json::from(h.sum)),
        ("max", Json::from(h.max)),
        ("mean", Json::from(h.mean())),
        (
            "bounds",
            Json::Array(h.bounds.iter().map(|&b| Json::UInt(b)).collect()),
        ),
        (
            "bucket_counts",
            Json::Array(h.counts.iter().map(|&c| Json::UInt(c)).collect()),
        ),
    ])
}

fn span_json(s: &SpanRecord) -> Json {
    Json::obj(vec![
        ("name", Json::from(s.name.as_str())),
        ("start_ns", Json::from(s.start_ns)),
        ("duration_ns", Json::from(s.duration_ns)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_observe::{FakeClock, Observer};

    #[test]
    fn doc_carries_schema_counters_histograms_and_spans() {
        let clock = FakeClock::new();
        let observer = Observer::with_clock(Box::new(clock.clone()));
        observer.incr("smp.attempts");
        observer.incr("smp.attempts");
        observer.record("smp.hops", 3);
        {
            let span = observer.span("sm.discovery");
            clock.advance(42);
            span.end();
        }

        let doc = metrics_doc(&observer.snapshot().unwrap());
        let text = doc.to_string();
        assert!(text.starts_with(&format!(r#"{{"schema":"{METRICS_SCHEMA}""#)));
        assert!(text.contains(r#""smp.attempts":2"#));
        assert!(text.contains(r#""name":"smp.hops","count":1,"sum":3"#));
        assert!(text.contains(r#""name":"sm.discovery","start_ns":0,"duration_ns":42"#));
    }

    #[test]
    fn doc_is_deterministic_for_identical_runs() {
        let run = || {
            let observer = Observer::with_clock(Box::new(FakeClock::new()));
            observer.add("b.counter", 7);
            observer.incr("a.counter");
            observer.record("h", 100);
            metrics_doc(&observer.snapshot().unwrap()).pretty()
        };
        assert_eq!(run(), run());
    }
}
