//! A tiny hand-rolled JSON emitter for the `BENCH_*.json` pipeline.
//!
//! The workspace vendors its dependency tree, so instead of pulling in a
//! serializer the harness builds values from this minimal enum. Objects
//! keep insertion order, which is what makes the emitted schemas stable
//! byte for byte across runs and releases — the perf-trajectory files are
//! diffed by tooling, not just read by humans.

use std::fmt::{self, Write as _};

/// A JSON value. Construct with the `From` impls and [`Json::obj`] /
/// [`Json::array`]; render with `to_string()` (compact) or
/// [`Json::pretty`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (covers every count the harness emits).
    UInt(u64),
    /// A finite float; non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with stable (insertion) key order.
    Object(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Self::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Self::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Self::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Self::Array(v)
    }
}

impl Json {
    /// An object from `(key, value)` pairs, preserving order.
    #[must_use]
    pub fn obj<K: Into<String>, V: Into<Json>>(pairs: Vec<(K, V)>) -> Self {
        Self::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// An array from anything convertible to values.
    #[must_use]
    pub fn array<V: Into<Json>>(items: Vec<V>) -> Self {
        Self::Array(items.into_iter().map(Into::into).collect())
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// the on-disk format of every `BENCH_*.json`.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Self::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Self::Object(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => {
                let _ = write!(out, "{other}");
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Null => f.write_str("null"),
            Self::Bool(b) => write!(f, "{b}"),
            Self::UInt(v) => write!(f, "{v}"),
            Self::Float(v) if v.is_finite() => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    // Keep integral floats readable and schema-stable.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Self::Float(_) => f.write_str("null"),
            Self::Str(s) => {
                let mut buf = String::new();
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Self::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Self::Object(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::new();
                    write_escaped(&mut buf, key);
                    write!(f, "{buf}:{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Json::obj(vec![
            ("name", Json::from("ft-324")),
            ("seconds", Json::from(0.25_f64)),
            ("smps", Json::from(216_usize)),
            ("ok", Json::from(true)),
            ("tags", Json::array(vec!["a", "b"])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"ft-324","seconds":0.25,"smps":216,"ok":true,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn key_order_is_insertion_order() {
        let v = Json::obj(vec![("z", 1_u64), ("a", 2_u64)]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let v = Json::from("a\"b\\c\nd");
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::from(f64::NAN).to_string(), "null");
        assert_eq!(Json::from(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn integral_floats_keep_a_decimal() {
        assert_eq!(Json::from(2.0_f64).to_string(), "2.0");
    }

    #[test]
    fn pretty_round_trips_structure() {
        let v = Json::obj(vec![
            ("rows", Json::Array(vec![Json::obj(vec![("n", 1_u64)])])),
            ("empty", Json::Array(vec![])),
        ]);
        let pretty = v.pretty();
        assert!(pretty.starts_with("{\n  \"rows\": [\n    {\n      \"n\": 1\n    }\n  ],"));
        assert!(pretty.ends_with("\"empty\": []\n}\n"));
    }
}
