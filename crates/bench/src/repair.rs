//! Incremental-repair benchmark: the same seeded, connectivity-preserving
//! link-fault schedule is applied to triplet fabrics — one subnet manager
//! answering each trap with the incremental repair sweep, one with the
//! classic full-recompute light sweep, and one with the paper's
//! §VI-A `full_reconfiguration` — and the LFT SMP counts and wall time of
//! the arms are compared.
//!
//! Link state is the only input to the fault schedule and sweeps never
//! change link state, so a shared RNG seed makes every arm fail the exact
//! same cables in the exact same order: the SMP delta is purely the
//! repair path's doing.

use std::time::{Duration, Instant};

use ib_mad::SmpTransport;
use ib_observe::Observer;
use ib_routing::EngineKind;
use ib_sm::{SmConfig, SubnetManager, Trap};
use ib_subnet::topology::{fattree, torus, BuiltTopology};
use ib_subnet::Subnet;
use ib_types::{Lid, PortNum};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::soak::{core_links, safe_to_down};

/// How one arm of the comparison answers each link-down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Arm {
    /// `SmConfig.repair = true`: the incremental repair sweep.
    Repair,
    /// The classic trap path: full recompute, dirty-block distribution.
    Sweep,
    /// The paper's traditional `full_reconfiguration` (§VI-A).
    FullRc,
}

/// One cell: one topology at one fault count, all three arms.
#[derive(Clone, Debug)]
pub struct RepairRow {
    /// Topology name (e.g. `fat-tree-2L-648`).
    pub topology: String,
    /// Physical switch count.
    pub switches: usize,
    /// Routing engine every arm uses.
    pub engine: &'static str,
    /// Faults injected (one trap each, handled to convergence).
    pub faults: usize,
    /// LFT SMPs the repair arm sent answering the traps.
    pub repair_smps: usize,
    /// LFT SMPs the full-sweep arm sent answering the same traps.
    pub full_smps: usize,
    /// LFT SMPs `full_reconfiguration` sent for the same faults.
    pub full_rc_smps: usize,
    /// Wall time the repair arm spent inside trap handling.
    pub repair_wall: Duration,
    /// Wall time the full-sweep arm spent inside trap handling.
    pub full_wall: Duration,
    /// Wall time the `full_reconfiguration` arm spent.
    pub full_rc_wall: Duration,
    /// Repairs that fell back to a full sweep (`repair.fallback`).
    pub repair_fallbacks: u64,
    /// `repair_smps / full_smps` — below 1.0 means repair won.
    pub smp_ratio: f64,
    /// `repair_smps / full_rc_smps` — the acceptance-criterion ratio.
    pub smp_ratio_vs_full_rc: f64,
}

/// The benchmark topology set crossed with the engine matrix: the paper's
/// two 2-level fat trees under every tree-capable engine (fat-tree,
/// Min-Hop, Up*/Down*) plus a wrapped 2-D torus under both VL-layering
/// engines (DFSSSP, LASH — the shapes that force lane re-assignment into
/// the repair path). Level 0 drops the 648-node tree to keep debug runs
/// quick; the CI smoke run uses level 1.
fn repair_builders(level: u8) -> Vec<(fn() -> BuiltTopology, EngineKind)> {
    let tree_engines = [EngineKind::FatTree, EngineKind::MinHop, EngineKind::UpDown];
    let mut out: Vec<(fn() -> BuiltTopology, EngineKind)> = Vec::new();
    for engine in tree_engines {
        out.push((fattree::paper_324, engine));
    }
    out.push((torus_4x4, EngineKind::Dfsssp));
    out.push((torus_4x4, EngineKind::Lash));
    if level >= 1 {
        for engine in tree_engines {
            out.push((fattree::paper_648, engine));
        }
    }
    out
}

fn torus_4x4() -> BuiltTopology {
    torus::torus_2d(4, 4, 1, true)
}

/// Runs one arm: fresh fabric, bring-up, then `faults` seeded
/// connectivity-preserving link-downs each answered per `arm`.
/// Returns `(lft_smps, wall_in_responses, repair_fallbacks)`.
///
/// **Timer coverage.** Every arm's wall timer starts after the link-down
/// and covers route compute + LFT distribution + one invariant
/// verification per fault. The repair arm verifies *inside*
/// `handle_trap` (its acceptance gate); the full arms have no gate, so
/// they run the same verifier (deadlock check off, matching the gate's
/// default) explicitly inside the timer. Without that, the repair arm
/// would be billed for verification the other arms skip.
fn run_arm(
    build: fn() -> BuiltTopology,
    engine: EngineKind,
    faults: usize,
    seed: u64,
    arm: Arm,
) -> (usize, Duration, u64) {
    let mut t = build();
    let mut sm = SubnetManager::new(
        t.hosts[0],
        SmConfig {
            engine,
            repair: arm == Arm::Repair,
            ..SmConfig::default()
        },
    );
    sm.set_observer(Observer::metrics());
    sm.bring_up(&mut t.subnet).expect("bench bring-up");
    let links = core_links(&t.subnet);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut transport = SmpTransport::perfect(sm.sm_node);
    let mut smps = 0;
    let mut wall = Duration::ZERO;
    for _ in 0..faults {
        let cands = safe_to_down(&t.subnet, &links);
        if cands.is_empty() {
            break;
        }
        let (a, p, _) = cands[rng.gen_range(0..cands.len())];
        t.subnet.set_link_down(a, p).expect("bench link-down");
        let started = Instant::now();
        match arm {
            Arm::FullRc => {
                let report = sm
                    .full_reconfiguration(&mut t.subnet)
                    .expect("bench full reconfiguration");
                let _ = ib_verify::FabricVerifier::new()
                    .with_deadlock(false)
                    .verify(&t.subnet)
                    .expect("bench verify");
                wall += started.elapsed();
                smps += report.distribution.lft_smps;
            }
            Arm::Repair => {
                let report = sm
                    .handle_trap(
                        &mut t.subnet,
                        Trap::LinkStateChange { node: a, port: p },
                        &mut transport,
                    )
                    .expect("bench trap");
                wall += started.elapsed();
                assert!(
                    report.failed_blocks.is_empty(),
                    "bench sweep did not converge"
                );
                smps += report.distribution.lft_smps;
            }
            Arm::Sweep => {
                let report = sm
                    .handle_trap(
                        &mut t.subnet,
                        Trap::LinkStateChange { node: a, port: p },
                        &mut transport,
                    )
                    .expect("bench trap");
                let _ = ib_verify::FabricVerifier::new()
                    .with_deadlock(false)
                    .verify(&t.subnet)
                    .expect("bench verify");
                wall += started.elapsed();
                assert!(
                    report.failed_blocks.is_empty(),
                    "bench sweep did not converge"
                );
                smps += report.distribution.lft_smps;
            }
        }
    }
    // Read the per-engine tag rather than the aggregate: a single-engine
    // arm sees the same number either way, and this keeps the tagged
    // counters BENCH reports on exercised end to end.
    let fallbacks = sm.observer().snapshot().map_or(0, |s| {
        s.counter(&format!("repair.fallback.{}", engine.name()))
    });
    (smps, wall, fallbacks)
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Runs the whole grid: every benchmark topology at every fault count,
/// the repair arm vs both full arms on identical schedules.
#[must_use]
pub fn repair_grid(level: u8) -> Vec<RepairRow> {
    let fault_counts: &[usize] = if level >= 1 { &[1, 2, 4] } else { &[1, 2] };
    let mut rows = Vec::new();
    for (build, engine) in repair_builders(level) {
        let probe = build();
        let switches = probe.subnet.num_physical_switches();
        let name = probe.name.clone();
        drop(probe);
        for (fi, &faults) in fault_counts.iter().enumerate() {
            let seed = 0xFA_B1C ^ ((fi as u64) << 8);
            let (repair_smps, repair_wall, repair_fallbacks) =
                run_arm(build, engine, faults, seed, Arm::Repair);
            let (full_smps, full_wall, _) = run_arm(build, engine, faults, seed, Arm::Sweep);
            let (full_rc_smps, full_rc_wall, _) = run_arm(build, engine, faults, seed, Arm::FullRc);
            rows.push(RepairRow {
                topology: name.clone(),
                switches,
                engine: engine.name(),
                faults,
                repair_smps,
                full_smps,
                full_rc_smps,
                repair_wall,
                full_wall,
                full_rc_wall,
                repair_fallbacks,
                smp_ratio: ratio(repair_smps, full_smps),
                smp_ratio_vs_full_rc: ratio(repair_smps, full_rc_smps),
            });
        }
    }
    rows
}

/// One cell of the batched-vs-serial comparison: the same k-fault burst
/// (every link down before any response — the coalescing window's view)
/// answered once as a single `repair_sweep_batch` and once as k serial
/// repair sweeps.
#[derive(Clone, Debug)]
pub struct BatchRow {
    /// Topology name (e.g. `fat-tree-2L-648`).
    pub topology: String,
    /// Physical switch count.
    pub switches: usize,
    /// Routing engine both arms use.
    pub engine: &'static str,
    /// Burst size: link-downs coalesced into (or serialized over) repairs.
    pub faults: usize,
    /// LFT SMPs the one batched sweep sent.
    pub batched_smps: usize,
    /// LFT SMPs the k serial repair sweeps sent in total.
    pub serial_smps: usize,
    /// Verifier passes in the batched arm (one gate per burst).
    pub batched_verify_runs: u64,
    /// Verifier passes in the serial arm (one gate per fault).
    pub serial_verify_runs: u64,
    /// Wall time of the batched response.
    pub batched_wall: Duration,
    /// Wall time of the k serial responses, summed.
    pub serial_wall: Duration,
    /// `batched_smps / serial_smps` — below 1.0 means coalescing won.
    pub smp_ratio: f64,
    /// Final installed LFTs byte-identical across the two arms (must
    /// always hold: batching changes cost, never routes).
    pub identical_lfts: bool,
    /// Batched repairs that fell back to a full sweep.
    pub batched_fallbacks: u64,
}

/// Every node's installed `(destination, out-port)` rows in the subnet's
/// deterministic node order — the byte-identity fingerprint the batch
/// rows compare across arms.
type LftFingerprint = Vec<Vec<(Lid, PortNum)>>;

/// Collects the [`LftFingerprint`] of the fabric's installed tables.
fn installed_lfts(subnet: &Subnet) -> LftFingerprint {
    subnet
        .nodes()
        .map(|n| n.lft().map(|l| l.iter().collect()).unwrap_or_default())
        .collect()
}

/// One sub-arm of the batch comparison. All `faults` links go down
/// *before* any response runs (the burst a coalescing window collects),
/// then the arm answers: one `repair_sweep_batch` when `batched`, else
/// one repair sweep per trap in arrival order.
///
/// **Timer coverage.** The timer starts after the last link-down and
/// covers the responses only — engine splice(s), dirty-block
/// distribution(s), and the verifier gate(s) each sweep runs internally.
/// Bring-up and fault injection sit outside it, identically in both
/// sub-arms. Candidate links are re-picked from the same seeded RNG over
/// the same evolving link state, so both sub-arms down the identical
/// cables in the identical order.
///
/// Returns `(lft_smps, verify_runs, wall, fallbacks, lft_fingerprint)`.
fn run_batch_arm(
    build: fn() -> BuiltTopology,
    engine: EngineKind,
    faults: usize,
    seed: u64,
    batched: bool,
) -> (usize, u64, Duration, u64, LftFingerprint) {
    let mut t = build();
    let mut sm = SubnetManager::new(
        t.hosts[0],
        SmConfig {
            engine,
            repair: true,
            ..SmConfig::default()
        },
    );
    sm.set_observer(Observer::metrics());
    sm.bring_up(&mut t.subnet).expect("bench bring-up");
    let links = core_links(&t.subnet);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut transport = SmpTransport::perfect(sm.sm_node);
    let mut downed = Vec::new();
    for _ in 0..faults {
        let cands = safe_to_down(&t.subnet, &links);
        if cands.is_empty() {
            break;
        }
        let (a, p, _) = cands[rng.gen_range(0..cands.len())];
        t.subnet.set_link_down(a, p).expect("bench link-down");
        downed.push((a, p));
    }
    let mut smps = 0;
    let started = Instant::now();
    if batched {
        let report = sm
            .repair_sweep_batch(&mut t.subnet, &downed, &mut transport)
            .expect("bench batch repair");
        assert!(
            report.failed_blocks.is_empty(),
            "bench batch did not converge"
        );
        smps += report.distribution.lft_smps;
    } else {
        for &(a, p) in &downed {
            let report = sm
                .handle_trap(
                    &mut t.subnet,
                    Trap::LinkStateChange { node: a, port: p },
                    &mut transport,
                )
                .expect("bench trap");
            assert!(
                report.failed_blocks.is_empty(),
                "bench serial repair did not converge"
            );
            smps += report.distribution.lft_smps;
        }
    }
    let wall = started.elapsed();
    let snap = sm.observer().snapshot();
    let verify_runs = snap.as_ref().map_or(0, |s| s.counter("verify.runs"));
    let fallbacks = snap.as_ref().map_or(0, |s| {
        s.counter(&format!("repair.fallback.{}", engine.name()))
    });
    (
        smps,
        verify_runs,
        wall,
        fallbacks,
        installed_lfts(&t.subnet),
    )
}

/// The batched-vs-serial grid: every benchmark topology at burst sizes
/// of 2-3 faults (2-4 at level >= 1), one batched sweep vs k serial
/// repairs on identical fault schedules.
#[must_use]
pub fn batch_grid(level: u8) -> Vec<BatchRow> {
    let fault_counts: &[usize] = if level >= 1 { &[2, 3, 4] } else { &[2, 3] };
    let mut rows = Vec::new();
    for (build, engine) in repair_builders(level) {
        let probe = build();
        let switches = probe.subnet.num_physical_switches();
        let name = probe.name.clone();
        drop(probe);
        for (fi, &faults) in fault_counts.iter().enumerate() {
            let seed = 0xBA_7C4 ^ ((fi as u64) << 8);
            let (batched_smps, batched_verify_runs, batched_wall, batched_fallbacks, batch_lfts) =
                run_batch_arm(build, engine, faults, seed, true);
            let (serial_smps, serial_verify_runs, serial_wall, _, serial_lfts) =
                run_batch_arm(build, engine, faults, seed, false);
            rows.push(BatchRow {
                topology: name.clone(),
                switches,
                engine: engine.name(),
                faults,
                batched_smps,
                serial_smps,
                batched_verify_runs,
                serial_verify_runs,
                batched_wall,
                serial_wall,
                smp_ratio: ratio(batched_smps, serial_smps),
                identical_lfts: batch_lfts == serial_lfts,
                batched_fallbacks,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_topologies_and_repair_does_not_send_more() {
        let rows = repair_grid(0);
        assert!(rows.iter().any(|r| r.topology.contains("fat-tree")));
        // Every engine in the matrix gets native-repair rows.
        for kind in EngineKind::all() {
            assert!(
                rows.iter().any(|r| r.engine == kind.name()),
                "no rows for engine {}",
                kind.name()
            );
        }
        for row in &rows {
            assert!(row.faults > 0);
            // All five engines repair natively now: a fallback on the
            // bench grid means an engine degraded to the full sweep.
            assert_eq!(
                row.repair_fallbacks, 0,
                "{} engine={} faults={}: repair fell back",
                row.topology, row.engine, row.faults
            );
            assert!(row.full_smps > 0, "{}: full arm sent nothing", row.topology);
            // A clean repair never exceeds the full sweep's dirty-block
            // diff; a fallback degenerates to exactly the full sweep.
            assert!(
                row.repair_smps <= row.full_smps,
                "{} faults={}: repair sent {} vs full {}",
                row.topology,
                row.faults,
                row.repair_smps,
                row.full_smps
            );
            assert!(
                row.repair_smps <= row.full_rc_smps,
                "{} faults={}: repair sent {} vs full_rc {}",
                row.topology,
                row.faults,
                row.repair_smps,
                row.full_rc_smps
            );
        }
    }

    #[test]
    fn batched_repair_matches_serial_byte_for_byte_and_never_sends_more() {
        let rows = batch_grid(0);
        assert!(!rows.is_empty());
        for row in &rows {
            assert!(
                row.identical_lfts,
                "{} faults={}: batched and serial LFTs diverged",
                row.topology, row.faults
            );
            assert_eq!(
                row.batched_fallbacks, 0,
                "{} faults={}: batched arm fell back",
                row.topology, row.faults
            );
            assert!(
                row.batched_smps <= row.serial_smps,
                "{} faults={}: batch sent {} vs serial {}",
                row.topology,
                row.faults,
                row.batched_smps,
                row.serial_smps
            );
            assert!(
                row.batched_verify_runs < row.serial_verify_runs,
                "{} faults={}: batch verified {}x vs serial {}x",
                row.topology,
                row.faults,
                row.batched_verify_runs,
                row.serial_verify_runs
            );
        }
    }
}
