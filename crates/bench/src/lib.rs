//! Shared helpers for the benchmark harness and Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use ib_mad::SmpLedger;
use ib_routing::EngineKind;
use ib_sm::{discovery, lids};
use ib_subnet::topology::{fattree, BuiltTopology};
use ib_subnet::Subnet;
use ib_types::LidSpace;

/// A topology with LIDs assigned (switches first, then hosts) but no LFTs
/// distributed — the exact input a routing engine sees.
pub struct ManagedFabric {
    /// The subnet, LID-assigned.
    pub subnet: Subnet,
    /// Host nodes.
    pub hosts: Vec<ib_subnet::NodeId>,
    /// Topology name.
    pub name: String,
    /// Physical switch count.
    pub switches: usize,
}

/// Assigns LIDs the way the SM would (discovery sweep + dense assignment).
#[must_use]
pub fn manage(built: BuiltTopology) -> ManagedFabric {
    let mut subnet = built.subnet;
    let sm_host = built.hosts[0];
    let mut ledger = SmpLedger::new();
    let disc = discovery::sweep(&subnet, sm_host, &mut ledger).expect("sweep");
    let mut space = LidSpace::new();
    lids::assign_all(&mut subnet, &disc, &mut space, &mut ledger).expect("assign");
    let switches = subnet.num_physical_switches();
    ManagedFabric {
        subnet,
        hosts: built.hosts,
        name: built.name,
        switches,
    }
}

/// Times one engine run on a fabric, returning `(elapsed, decisions)`.
pub fn time_engine(fabric: &ManagedFabric, engine: EngineKind) -> (Duration, u64) {
    let e = engine.build();
    let started = Instant::now();
    let tables = e.compute(&fabric.subnet).expect("engine");
    (started.elapsed(), tables.decisions)
}

/// The Fig. 7 topology set, gated by size so debug/CI runs stay fast:
/// level 0 = the two 2-level trees; level 1 adds 5832; level 2 adds 11664.
#[must_use]
pub fn fig7_topologies(level: u8) -> Vec<ManagedFabric> {
    let mut out = vec![manage(fattree::paper_324()), manage(fattree::paper_648())];
    if level >= 1 {
        out.push(manage(fattree::paper_5832()));
    }
    if level >= 2 {
        out.push(manage(fattree::paper_11664()));
    }
    out
}

/// Which engines Fig. 7 runs at a given subnet size. The expensive
/// engines are capped by default, mirroring the paper's own data: LASH is
/// quadratic in switches with a cycle check per pair (39145 s at 11664
/// nodes in the paper) and runs on the 2-level trees only; DFSSSP's
/// virtual-lane layering takes minutes on the 3-level trees and is capped
/// at 600 switches. `force` lifts both caps.
#[must_use]
pub fn fig7_engines(switches: usize, force: bool) -> Vec<EngineKind> {
    let mut engines = vec![EngineKind::FatTree, EngineKind::MinHop];
    if switches <= 600 || force {
        engines.push(EngineKind::Dfsssp);
    }
    if switches <= 54 || force {
        engines.push(EngineKind::Lash);
    }
    engines
}

/// Reads a benchmark scale level from `IB_BENCH_LEVEL` (default 0).
#[must_use]
pub fn bench_level() -> u8 {
    std::env::var("IB_BENCH_LEVEL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}
