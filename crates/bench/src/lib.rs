//! Shared helpers for the benchmark harness and Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod repair;
pub mod soak;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use ib_mad::SmpLedger;
use ib_observe::Observer;
use ib_routing::{EngineKind, RoutingOptions};
use ib_sm::{discovery, lids};
use ib_subnet::lft::min_blocks_for;
use ib_subnet::topology::{fattree, BuiltTopology};
use ib_subnet::Subnet;
use ib_types::LidSpace;

/// A topology with LIDs assigned (switches first, then hosts) but no LFTs
/// distributed — the exact input a routing engine sees.
pub struct ManagedFabric {
    /// The subnet, LID-assigned.
    pub subnet: Subnet,
    /// Host nodes.
    pub hosts: Vec<ib_subnet::NodeId>,
    /// Topology name.
    pub name: String,
    /// Physical switch count.
    pub switches: usize,
}

/// Assigns LIDs the way the SM would (discovery sweep + dense assignment).
#[must_use]
pub fn manage(built: BuiltTopology) -> ManagedFabric {
    let mut subnet = built.subnet;
    let sm_host = built.hosts[0];
    let mut ledger = SmpLedger::new();
    let disc = discovery::sweep(&subnet, sm_host, &mut ledger).expect("sweep");
    let mut space = LidSpace::new();
    lids::assign_all(&mut subnet, &disc, &mut space, &mut ledger).expect("assign");
    let switches = subnet.num_physical_switches();
    ManagedFabric {
        subnet,
        hosts: built.hosts,
        name: built.name,
        switches,
    }
}

/// Timing statistics for repeated runs of one routing engine on one
/// fabric. Only `engine.compute` is inside the timed region — engine
/// construction, fabric construction, and any clones happen outside it.
#[derive(Clone, Copy, Debug)]
pub struct EngineTiming {
    /// Fastest run — the figure-of-merit (least scheduler noise).
    pub min: Duration,
    /// Median run.
    pub median: Duration,
    /// How many timed runs the stats summarize.
    pub runs: usize,
    /// Routing decisions taken (identical across runs).
    pub decisions: u64,
}

/// Times `runs` engine runs on a fabric (at least one), reporting the min
/// and median. The engine is built once, outside the timed region.
#[must_use]
pub fn time_engine_stats(fabric: &ManagedFabric, engine: EngineKind, runs: usize) -> EngineTiming {
    time_engine_stats_opts(fabric, engine, runs, RoutingOptions::default())
}

/// Like [`time_engine_stats`], but with explicit [`RoutingOptions`] — the
/// knob for timing an engine's own internal parallelism (as opposed to
/// [`fig7_grid`]'s `workers`, which runs whole cells concurrently).
#[must_use]
pub fn time_engine_stats_opts(
    fabric: &ManagedFabric,
    engine: EngineKind,
    runs: usize,
    routing: RoutingOptions,
) -> EngineTiming {
    let e = engine.build();
    let observer = Observer::disabled();
    let runs = runs.max(1);
    let mut samples = Vec::with_capacity(runs);
    let mut decisions = 0;
    for _ in 0..runs {
        let started = Instant::now();
        let tables = e
            .compute_with(&fabric.subnet, routing, &observer)
            .expect("engine");
        samples.push(started.elapsed());
        decisions = tables.decisions;
    }
    samples.sort_unstable();
    EngineTiming {
        min: samples[0],
        median: samples[runs / 2],
        runs,
        decisions,
    }
}

/// Times one engine run on a fabric, returning `(elapsed, decisions)`.
pub fn time_engine(fabric: &ManagedFabric, engine: EngineKind) -> (Duration, u64) {
    let stats = time_engine_stats(fabric, engine, 1);
    (stats.min, stats.decisions)
}

/// One cell of the Fig. 7 grid: a `(topology, engine)` pair with its
/// timing stats and the topology's full-reconfiguration SMP floor for
/// context.
#[derive(Clone, Debug)]
pub struct Fig7Cell {
    /// Topology name (e.g. `fat-tree-2L-324`).
    pub topology: String,
    /// Physical switch count.
    pub switches: usize,
    /// Engine name (e.g. `minhop`).
    pub engine: String,
    /// Path-computation timing stats.
    pub timing: EngineTiming,
    /// `n · m`: the minimum SMPs a full reconfiguration would then send.
    pub min_smps_full_rc: usize,
}

/// The topology constructors behind [`fig7_topologies`], so callers can
/// build the fabrics themselves (e.g. in parallel).
#[must_use]
pub fn fig7_builders(level: u8) -> Vec<fn() -> BuiltTopology> {
    let mut out: Vec<fn() -> BuiltTopology> = vec![fattree::paper_324, fattree::paper_648];
    if level >= 1 {
        out.push(fattree::paper_5832);
    }
    if level >= 2 {
        out.push(fattree::paper_11664);
    }
    out
}

/// The Fig. 7 topology set, gated by size so debug/CI runs stay fast:
/// level 0 = the two 2-level trees; level 1 adds 5832; level 2 adds 11664.
#[must_use]
pub fn fig7_topologies(level: u8) -> Vec<ManagedFabric> {
    fig7_builders(level)
        .into_iter()
        .map(|b| manage(b()))
        .collect()
}

/// Which engines Fig. 7 runs at a given subnet size. The expensive
/// engines are capped by default, mirroring the paper's own data: LASH is
/// quadratic in switches with a cycle check per pair (39145 s at 11664
/// nodes in the paper) and runs on the 2-level trees only; DFSSSP's
/// virtual-lane layering takes minutes on the 3-level trees and is capped
/// at 600 switches. `force` lifts both caps.
#[must_use]
pub fn fig7_engines(switches: usize, force: bool) -> Vec<EngineKind> {
    let mut engines = vec![EngineKind::FatTree, EngineKind::MinHop];
    if switches <= 600 || force {
        engines.push(EngineKind::Dfsssp);
    }
    if switches <= 54 || force {
        engines.push(EngineKind::Lash);
    }
    engines
}

/// Runs the whole Fig. 7 grid — every `(topology, engine)` cell — across
/// `workers` threads, `runs` timed repetitions per cell, with each engine
/// itself computing on `routing.workers` threads.
///
/// Fabric construction is parallelized first (one job per topology), then
/// the cells are pulled off a shared work queue. Each cell's timing runs
/// alone on its thread; cells on the same machine still contend for memory
/// bandwidth, which is why the per-cell *min* of several runs is the
/// number to trust. The returned vector is always in deterministic
/// `fig7_topologies` × `fig7_engines` order regardless of `workers`, and
/// the decision counts (and tables) are invariant under `routing.workers`.
#[must_use]
pub fn fig7_grid(
    level: u8,
    force: bool,
    workers: usize,
    runs: usize,
    routing: RoutingOptions,
) -> Vec<Fig7Cell> {
    let builders = fig7_builders(level);
    let fabrics = parallel_map(builders.len(), workers, |i| manage(builders[i]()));

    let mut cells: Vec<(usize, EngineKind)> = Vec::new();
    for (fi, fabric) in fabrics.iter().enumerate() {
        for engine in fig7_engines(fabric.switches, force) {
            cells.push((fi, engine));
        }
    }

    parallel_map(cells.len(), workers, |ci| {
        let (fi, engine) = cells[ci];
        let fabric = &fabrics[fi];
        Fig7Cell {
            topology: fabric.name.clone(),
            switches: fabric.switches,
            engine: engine.name().to_string(),
            timing: time_engine_stats_opts(fabric, engine, runs, routing),
            min_smps_full_rc: fabric.switches
                * fabric.subnet.topmost_lid().map_or(0, min_blocks_for),
        }
    })
}

/// Maps `run` over `0..jobs` on up to `workers` scoped threads, pulling
/// indices off a shared atomic queue. Results come back in index order, so
/// output is deterministic for any worker count.
fn parallel_map<T, F>(jobs: usize, workers: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.min(jobs).max(1);
    if workers <= 1 {
        return (0..jobs).map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        out.push((i, run(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench worker panicked"))
            .collect()
    });
    let mut indexed: Vec<(usize, T)> = parts.into_iter().flatten().collect();
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, v)| v).collect()
}

/// Reads a benchmark scale level from `IB_BENCH_LEVEL` (default 0).
#[must_use]
pub fn bench_level() -> u8 {
    std::env::var("IB_BENCH_LEVEL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_index_order() {
        for workers in [1, 2, 8] {
            let out = parallel_map(17, workers, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn time_engine_stats_clamps_runs_and_orders_quantiles() {
        let fabric = manage(fattree::two_level(2, 2, 2));
        let stats = time_engine_stats(&fabric, EngineKind::MinHop, 0);
        assert_eq!(stats.runs, 1);
        let stats = time_engine_stats(&fabric, EngineKind::MinHop, 3);
        assert_eq!(stats.runs, 3);
        assert!(stats.min <= stats.median);
        assert!(stats.decisions > 0);
    }

    #[test]
    fn fig7_grid_order_is_worker_independent() {
        // The grid on the small topologies: same cells, same order, same
        // decision counts for any worker count — grid workers *and*
        // per-engine routing workers.
        let seq = fig7_grid(0, false, 1, 1, RoutingOptions::default());
        let par = fig7_grid(0, false, 4, 1, RoutingOptions::default().with_workers(2));
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.topology, b.topology);
            assert_eq!(a.engine, b.engine);
            assert_eq!(a.timing.decisions, b.timing.decisions);
            assert_eq!(a.min_smps_full_rc, b.min_smps_full_rc);
        }
        // Table I cross-check: 36 switches x 6 blocks, 54 x 11.
        assert_eq!(seq[0].min_smps_full_rc, 216);
        let ft648 = seq.iter().find(|c| c.switches == 54).unwrap();
        assert_eq!(ft648.min_smps_full_rc, 594);
    }
}
