//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run --release -p ib-bench --bin harness -- all
//! cargo run --release -p ib-bench --bin harness -- fig7 --level 1 --workers 4
//! cargo run --release -p ib-bench --bin harness -- fig7 --json bench-out
//! ```
//!
//! Subcommands: `table1`, `fig7 [--level N] [--lash]`, `fig5`, `fig6`,
//! `cost-model`, `capacity`, `emulation`, `deadlock`, `sa-cache`,
//! `balance`, `faults`, `repair`, `soak`, `all`.
//!
//! `repair` compares the SM's incremental repair sweep against the full
//! recompute on identical seeded fault schedules (SMPs and wall time),
//! writing `BENCH_repair.json` under `--json`; `repair --batch` adds the
//! coalesced-burst comparison (one batched sweep vs k serial repairs of
//! the same all-down burst); `soak --repair` makes the chaos soak answer
//! a seeded half of its link faults with the repair path.
//!
//! `--workers N` spreads the Fig. 7 `(topology, engine)` grid over N
//! threads (default: the machine's available parallelism) and, unless
//! overridden by `--routing-workers N`, also fans each routing engine's
//! internal parallel phases over N threads; `--json <dir>`
//! makes `table1`, `fig7`, and `faults` additionally write
//! `BENCH_table1.json`, `BENCH_fig7.json`, and `BENCH_faults.json` — the
//! machine-readable perf-trajectory files EXPERIMENTS.md documents.
//! `--metrics <dir>` attaches an `ib-observe` metrics sink to the `faults`
//! sweep and writes the accumulated counters/histograms/spans as
//! `BENCH_metrics.json` (schema `ib-vswitch/bench-metrics/v1`), after
//! asserting the counters reconcile with the SMP ledgers.

use std::path::{Path, PathBuf};
use std::time::Instant;

use ib_bench::json::Json;
use ib_bench::metrics::metrics_doc;
use ib_bench::{fig7_grid, manage};
use ib_cloud::scenarios::testbed_datacenter;
use ib_cloud::LiveMigrationWorkflow;
use ib_core::capacity::{dynamic_lids_consumed, prepopulated_lids_consumed, prepopulated_limits};
use ib_core::cost::{Table1Row, PAPER_TABLE1};
use ib_core::{DataCenter, DataCenterConfig, MigrationOptions, VirtArch};
use ib_mad::CostModel;
use ib_observe::Observer;
use ib_routing::EngineKind;
use ib_routing::RoutingOptions;
use ib_subnet::topology::basic::{fig5_fabric, fig6_fabric};
use ib_subnet::topology::fattree;

/// How many timed repetitions back each Fig. 7 cell (min/median reported).
const FIG7_RUNS: usize = 3;

fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let level: u8 = flag_value(&args, "--level").unwrap_or_else(ib_bench::bench_level);
    let force_lash = args.iter().any(|a| a == "--lash" || a == "--force-engines");
    let workers: usize = flag_value(&args, "--workers").unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    let routing_workers: usize = flag_value(&args, "--routing-workers").unwrap_or(workers);
    let json_dir: Option<PathBuf> = flag_value(&args, "--json");
    let json = json_dir.as_deref();
    let metrics_dir: Option<PathBuf> = flag_value(&args, "--metrics");
    let metrics = metrics_dir.as_deref();
    let batch = args.iter().any(|a| a == "--batch");

    match cmd {
        "table1" => table1(json),
        "fig7" => fig7(level, force_lash, workers, routing_workers, json),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "cost-model" => cost_model(),
        "capacity" => capacity(),
        "emulation" => emulation(),
        "deadlock" => deadlock(),
        "sa-cache" => sa_cache(),
        "balance" => balance(),
        "faults" => faults(json, metrics),
        "repair" => repair(level, batch, json),
        "soak" => {
            let seed: u64 = flag_value(&args, "--seed").unwrap_or(0xC0FFEE);
            let events: usize = flag_value(&args, "--events").unwrap_or(200);
            let inject = flag_value::<ib_bench::soak::Inject>(&args, "--inject");
            let with_repair = args.iter().any(|a| a == "--repair");
            let partitions = args.iter().any(|a| a == "--partitions");
            let engine = flag_value::<String>(&args, "--engine").map(|name| {
                parse_engine(&name).unwrap_or_else(|| {
                    eprintln!("unknown engine `{name}` (want minhop|fat-tree|up-down|dfsssp|lash)");
                    std::process::exit(2);
                })
            });
            soak(seed, events, inject, with_repair, partitions, engine, json);
        }
        "dot" => dot(),
        "all" => {
            table1(json);
            fig7(level, force_lash, workers, routing_workers, json);
            fig5();
            fig6();
            cost_model();
            capacity();
            emulation();
            deadlock();
            sa_cache();
            balance();
            faults(json, metrics);
            repair(level, batch, json);
        }
        other => {
            eprintln!("unknown subcommand `{other}`");
            eprintln!("usage: harness [table1|fig7|fig5|fig6|cost-model|capacity|emulation|deadlock|sa-cache|balance|faults|repair|soak|dot|all] [--level N] [--force-engines] [--workers N] [--routing-workers N] [--seed N] [--events N] [--inject misroute|cycle|drop-row|stale-route] [--repair] [--partitions] [--engine minhop|fat-tree|up-down|dfsssp|lash] [--batch] [--json DIR] [--metrics DIR]");
            std::process::exit(2);
        }
    }
}

/// Writes one `BENCH_*.json` file under `dir`, creating the directory.
fn write_json(dir: &Path, file: &str, value: &Json) {
    std::fs::create_dir_all(dir).expect("create --json dir");
    let path = dir.join(file);
    std::fs::write(&path, value.pretty()).expect("write BENCH json");
    println!("wrote {}", path.display());
}

/// Table I: SMP counts for full vs vSwitch reconfiguration.
fn table1(json: Option<&Path>) {
    println!("\n===== TABLE I: reconfiguration SMPs (derived from real topologies) =====");
    println!(
        "{:>7} {:>9} {:>7} {:>14} {:>16} {:>13} {:>13}",
        "Nodes",
        "Switches",
        "LIDs",
        "MinBlocks/Sw",
        "MinSMPs FullRC",
        "MinSMPs Swap",
        "MaxSMPs Swap"
    );
    let builders: [fn() -> ib_subnet::topology::BuiltTopology; 4] = [
        fattree::paper_324,
        fattree::paper_648,
        fattree::paper_5832,
        fattree::paper_11664,
    ];
    let mut json_rows = Vec::new();
    for (i, build) in builders.iter().enumerate() {
        let fabric = manage(build());
        let row = Table1Row::for_subnet(&fabric.subnet);
        println!(
            "{:>7} {:>9} {:>7} {:>14} {:>16} {:>13} {:>13}   (improvement vs full: {:.2}%)",
            row.nodes,
            row.switches,
            row.lids,
            row.min_lft_blocks_per_switch,
            row.min_smps_full_rc,
            row.min_smps_vswitch,
            row.max_smps_vswitch,
            (1.0 - row.worst_case_ratio()) * 100.0,
        );
        let paper = PAPER_TABLE1[i];
        assert_eq!(
            (
                row.nodes,
                row.switches,
                row.lids,
                row.min_lft_blocks_per_switch,
                row.min_smps_full_rc,
                row.min_smps_vswitch,
                row.max_smps_vswitch
            ),
            paper,
            "derived row must match the published Table I"
        );
        json_rows.push(Json::obj(vec![
            ("topology", Json::from(fabric.name.as_str())),
            ("nodes", Json::from(row.nodes)),
            ("switches", Json::from(row.switches)),
            ("lids", Json::from(row.lids)),
            (
                "min_lft_blocks_per_switch",
                Json::from(row.min_lft_blocks_per_switch),
            ),
            ("min_smps_full_rc", Json::from(row.min_smps_full_rc)),
            ("min_smps_vswitch", Json::from(row.min_smps_vswitch)),
            ("max_smps_vswitch", Json::from(row.max_smps_vswitch)),
            (
                "improvement_pct",
                Json::from((1.0 - row.worst_case_ratio()) * 100.0),
            ),
        ]));
    }
    println!("(all four rows match the published Table I exactly)");
    if let Some(dir) = json {
        let doc = Json::obj(vec![
            ("schema", Json::from("ib-vswitch/bench-table1/v1")),
            ("rows", Json::Array(json_rows)),
        ]);
        write_json(dir, "BENCH_table1.json", &doc);
    }
}

/// Fig. 7: path-computation time per routing engine per topology. The
/// `(topology, engine)` grid runs across `workers` threads; each engine
/// computes on `routing_workers` threads internally; each cell is
/// timed [`FIG7_RUNS`] times and reports min and median.
fn fig7(level: u8, force_lash: bool, workers: usize, routing_workers: usize, json: Option<&Path>) {
    println!("\n===== FIG. 7: path computation time (this machine; paper shape: ftree < minhop << dfsssp << lash) =====");
    println!("level {level}: 324/648 always; 5832 at --level 1; 11664 at --level 2; LASH/DFSSSP capped at scale unless --force-engines");
    println!(
        "{workers} grid worker(s), {routing_workers} routing worker(s) per engine, min/median of {FIG7_RUNS} runs per cell; fabric construction untimed"
    );
    println!(
        "{:>18} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "topology", "engine", "sec (min)", "sec (med)", "decisions", "LID swap/copy"
    );
    let cells = fig7_grid(
        level,
        force_lash,
        workers,
        FIG7_RUNS,
        RoutingOptions::default().with_workers(routing_workers),
    );
    let mut json_cells = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        println!(
            "{:>18} {:>10} {:>12.4} {:>12.4} {:>14} {:>14}",
            cell.topology,
            cell.engine,
            cell.timing.min.as_secs_f64(),
            cell.timing.median.as_secs_f64(),
            cell.timing.decisions,
            "0 (none)"
        );
        // The vSwitch reconfiguration's path-computation time is zero by
        // construction — there is nothing to run. One line per topology,
        // after its last engine.
        if cells
            .get(i + 1)
            .is_none_or(|next| next.topology != cell.topology)
        {
            println!(
                "{:>18} {:>10} {:>12.4} {:>12.4} {:>14} {:>14}",
                cell.topology, "lid-swap", 0.0, 0.0, 0, "-"
            );
        }
        json_cells.push(Json::obj(vec![
            ("topology", Json::from(cell.topology.as_str())),
            ("switches", Json::from(cell.switches)),
            ("engine", Json::from(cell.engine.as_str())),
            ("seconds_min", Json::from(cell.timing.min.as_secs_f64())),
            (
                "seconds_median",
                Json::from(cell.timing.median.as_secs_f64()),
            ),
            ("decisions", Json::from(cell.timing.decisions)),
            ("min_smps_full_rc", Json::from(cell.min_smps_full_rc)),
        ]));
    }
    if let Some(dir) = json {
        let doc = Json::obj(vec![
            ("schema", Json::from("ib-vswitch/bench-fig7/v2")),
            ("level", Json::from(u64::from(level))),
            ("workers", Json::from(workers)),
            ("routing_workers", Json::from(routing_workers)),
            ("runs", Json::from(FIG7_RUNS)),
            ("cells", Json::Array(json_cells)),
        ]);
        write_json(dir, "BENCH_fig7.json", &doc);
    }
}

/// Fig. 5: the worked LID-swap example.
fn fig5() {
    println!("\n===== FIG. 5: LFT rows before/after the VM1 migration (LID 2 <-> LID 12) =====");
    let built = fig5_fabric();
    let mut dc = DataCenter::from_topology(
        built,
        DataCenterConfig {
            arch: VirtArch::VSwitchPrepopulated,
            vfs_per_hypervisor: 3,
            ..DataCenterConfig::default()
        },
    )
    .expect("fig5 bring-up");
    let vm = dc.create_vm("vm1", 0).expect("create");
    let vm_lid = dc.vm(vm).unwrap().lid;
    let leaf0 = dc.hypervisors[0].leaf;
    let dest_vf_lid = dc.hypervisors[2].vf_lid(&dc.subnet, 0).unwrap();

    let before_vm = dc.subnet.lft(leaf0).unwrap().get(vm_lid).unwrap();
    let before_vf = dc.subnet.lft(leaf0).unwrap().get(dest_vf_lid).unwrap();
    let report = dc.migrate_vm(vm, 2).expect("migrate");
    let after_vm = dc.subnet.lft(leaf0).unwrap().get(vm_lid).unwrap();
    let after_vf = dc.subnet.lft(leaf0).unwrap().get(dest_vf_lid).unwrap();

    println!("upper-left leaf switch, LFT excerpt:");
    println!("  {:>8} {:>12} {:>12}", "LID", "port before", "port after");
    println!(
        "  {:>8} {:>12} {:>12}   (the VM's LID)",
        vm_lid, before_vm, after_vm
    );
    println!(
        "  {:>8} {:>12} {:>12}   (the destination VF's LID)",
        dest_vf_lid, before_vf, after_vf
    );
    println!(
        "swap sent {} LFT SMPs over {} switches (same-block -> {} SMP per switch)",
        report.lft.lft_smps, report.lft.switches_updated, report.lft.max_blocks_per_switch
    );
    dc.verify_connectivity().expect("consistent");
    println!("connectivity verified after the swap");
}

/// Fig. 6: switches updated vs migration distance; concurrency ceiling.
fn fig6() {
    println!("\n===== FIG. 6: switches updated vs migration distance (min reconfiguration) =====");
    for (desc, from, to, shortcut) in [
        (
            "intra-leaf (hyp1 -> hyp2), shortcut on",
            0usize,
            1usize,
            true,
        ),
        ("intra-leaf (hyp1 -> hyp2), deterministic", 0, 1, false),
        ("near (hyp1 -> hyp3)", 0, 2, false),
        ("far (hyp1 -> hyp4)", 0, 3, false),
    ] {
        let mut dc = DataCenter::from_topology(
            fig6_fabric(),
            DataCenterConfig {
                arch: VirtArch::VSwitchPrepopulated,
                vfs_per_hypervisor: 3,
                migration: MigrationOptions {
                    intra_leaf_shortcut: shortcut,
                    ..MigrationOptions::default()
                },
                ..DataCenterConfig::default()
            },
        )
        .expect("fig6 bring-up");
        let vm = dc.create_vm("vm", from).expect("create");
        let report = dc.migrate_vm(vm, to).expect("migrate");
        println!(
            "  {:<42} n' = {:>2} of {:>2} switches, {} SMPs",
            desc,
            report.lft.switches_updated,
            dc.subnet.num_physical_switches(),
            report.lft.lft_smps
        );
        dc.verify_connectivity().expect("consistent");
    }
    let dc = DataCenter::from_topology(fig6_fabric(), DataCenterConfig::default()).unwrap();
    println!(
        "  concurrent intra-leaf migration ceiling: {} (one per occupied leaf)",
        ib_core::affected::max_concurrent_intra_leaf(&dc.subnet)
    );
}

/// Equations 1-5 as a sweep table.
fn cost_model() {
    println!("\n===== COST MODEL (equations 1-5), k = 5us, r = 4us =====");
    let model = CostModel {
        k_us: 5.0,
        r_us: 4.0,
    };
    println!(
        "{:>7} {:>9} {:>14} {:>14} {:>14} {:>14}",
        "Nodes", "Switches", "full n*m*(k+r)", "vsw 2n*(k+r)", "vsw 2n*k", "best-case k"
    );
    for &(nodes, switches, lids, ..) in &PAPER_TABLE1 {
        let row = Table1Row::from_counts(nodes, switches, lids);
        let full = model.full_distribution_us(row.switches, row.min_lft_blocks_per_switch);
        let e4 = model.vswitch_reconfig_directed_us(row.switches, 2);
        let e5 = model.vswitch_reconfig_destination_us(row.switches, 2);
        let best = model.vswitch_reconfig_destination_us(1, 1);
        println!(
            "{:>7} {:>9} {:>12.1}us {:>12.1}us {:>12.1}us {:>12.1}us",
            nodes, switches, full, e4, e5, best
        );
    }
    println!("(PCt comes on top of the full column and is minutes at scale — see fig7)");
}

/// §V-A/§V-B capacity arithmetic.
fn capacity() {
    println!("\n===== CAPACITY (sections V-A / V-B) =====");
    for vfs in [4usize, 16, 64, 126] {
        let lim = prepopulated_limits(vfs);
        println!(
            "  {vfs:>3} VFs/hypervisor: prepopulated max {:>5} hypervisors / {:>6} VMs",
            lim.max_hypervisors, lim.max_vms
        );
    }
    println!(
        "  paper example (16 VFs): {} hypervisors, {} VMs",
        prepopulated_limits(16).max_hypervisors,
        prepopulated_limits(16).max_vms
    );
    let prepop = prepopulated_lids_consumed(2891, 16, 0, 0);
    let dynamic = dynamic_lids_consumed(2891, 0, 0, 0);
    println!("  initial LIDs to route: prepopulated {prepop} vs dynamic {dynamic}");
}

/// §VII-B emulation workflow.
fn emulation() {
    println!("\n===== SECTION VII-B: live-migration workflow on the testbed replica =====");
    for arch in [
        VirtArch::SharedPort,
        VirtArch::VSwitchPrepopulated,
        VirtArch::VSwitchDynamic,
    ] {
        let mut dc = testbed_datacenter(DataCenterConfig {
            arch,
            vfs_per_hypervisor: 4,
            ..DataCenterConfig::default()
        })
        .expect("testbed");
        let vm = dc.create_vm("centos7", 0).expect("create");
        let started = Instant::now();
        let trace = LiveMigrationWorkflow::default()
            .execute(&mut dc, vm, 3)
            .expect("workflow");
        println!(
            "  {:<22} downtime {} | reconfig share {:.4}% | {} SMPs (n'={}, m'={}) | addresses preserved: {} | wall {:?}",
            arch.to_string(),
            trace.timeline.downtime,
            trace.timeline.reconfiguration_share() * 100.0,
            trace.report.total_smps(),
            trace.report.lft.switches_updated,
            trace.report.lft.max_blocks_per_switch,
            trace.addresses_preserved,
            started.elapsed(),
        );
    }
}

/// §VI-C: transition-deadlock demonstration via the credit simulator.
fn deadlock() {
    use ib_routing::EngineKind;
    use ib_sim::credit::{run, CreditSimConfig, Flow};
    use ib_sm::{SmConfig, SmpMode, SubnetManager};
    use ib_subnet::topology::torus;

    println!(
        "\n===== SECTION VI-C: deadlock occurrence and resolution (credit-gated 4x4 torus) ====="
    );
    let mut t = torus::torus_2d(4, 4, 1, true);
    let mut sm = SubnetManager::new(
        t.hosts[0],
        SmConfig {
            engine: EngineKind::MinHop,
            smp_mode: SmpMode::Directed,
            ..SmConfig::default()
        },
    );
    sm.bring_up(&mut t.subnet).expect("bring-up");
    let tables = EngineKind::MinHop
        .build()
        .compute(&t.subnet)
        .expect("routing");
    let mut flows = Vec::new();
    for &a in &t.hosts {
        for &b in &t.hosts {
            if a != b {
                flows.push(Flow {
                    src: a,
                    dst: t.subnet.node(b).ports[1].lid.unwrap(),
                    packets: 20,
                });
            }
        }
    }
    let base = CreditSimConfig {
        credits_per_channel: 1,
        ..CreditSimConfig::default()
    };
    let wedged = run(&t.subnet, &flows, &tables.vls, &base).expect("sim");
    println!(
        "  min-hop, 1 VL, no timeout : deadlocked={} delivered={} (of {})",
        wedged.deadlocked,
        wedged.delivered,
        flows.len() * 20
    );
    let recovered = run(
        &t.subnet,
        &flows,
        &tables.vls,
        &CreditSimConfig {
            timeout_rounds: Some(64),
            max_rounds: 2_000_000,
            ..base
        },
    )
    .expect("sim");
    println!(
        "  min-hop, 1 VL, IB timeout : deadlocked={} delivered={} dropped={} drained={}",
        recovered.deadlocked, recovered.delivered, recovered.dropped, recovered.drained
    );
    // A second fabric brought up with DFSSSP: its LFTs and its lanes.
    let mut t2 = torus::torus_2d(4, 4, 1, true);
    let mut sm2 = SubnetManager::new(
        t2.hosts[0],
        SmConfig {
            engine: EngineKind::Dfsssp,
            smp_mode: SmpMode::Directed,
            ..SmConfig::default()
        },
    );
    sm2.bring_up(&mut t2.subnet).expect("bring-up");
    let dtables = EngineKind::Dfsssp
        .build()
        .compute(&t2.subnet)
        .expect("routing");
    let mut flows2 = Vec::new();
    for &a in &t2.hosts {
        for &b in &t2.hosts {
            if a != b {
                flows2.push(Flow {
                    src: a,
                    dst: t2.subnet.node(b).ports[1].lid.unwrap(),
                    packets: 20,
                });
            }
        }
    }
    let clean = run(&t2.subnet, &flows2, &dtables.vls, &base).expect("sim");
    println!(
        "  dfsssp, {} VLs             : deadlocked={} delivered={} dropped={}",
        dtables.vls.lanes_used(),
        clean.deadlocked,
        clean.delivered,
        clean.dropped
    );
}

/// §I / reference [10]: SA query load with and without address-preserving
/// migration.
fn sa_cache() {
    use ib_sm::{PathRecordCache, SaService};
    use ib_subnet::topology::fattree;

    println!("\n===== SECTION I: SA PathRecord query load around a migration =====");
    let mut dc = DataCenter::from_topology(
        fattree::two_level(4, 4, 2),
        DataCenterConfig {
            arch: VirtArch::VSwitchPrepopulated,
            vfs_per_hypervisor: 2,
            ..DataCenterConfig::default()
        },
    )
    .expect("bring-up");
    let server = dc.create_vm("server", 0).expect("create");
    let gid = dc.vm(server).unwrap().gid();
    let mut sa = SaService::new();
    sa.register(gid, dc.vm(server).unwrap().lid);
    let mut caches: Vec<PathRecordCache> = (0..12).map(|_| PathRecordCache::new()).collect();
    let peers: Vec<_> = (1..13)
        .map(|h| dc.hypervisors[h].pf_lid(&dc.subnet).unwrap())
        .collect();
    for (c, &slid) in caches.iter_mut().zip(&peers) {
        c.resolve(&mut sa, &dc.subnet, slid, gid).expect("resolve");
    }
    let cold = sa.queries_served;
    dc.migrate_vm(server, 15).expect("migrate");
    let stale = caches
        .iter()
        .filter(|c| c.is_stale(&dc.subnet, gid))
        .count();
    for (c, &slid) in caches.iter_mut().zip(&peers) {
        c.resolve(&mut sa, &dc.subnet, slid, gid).expect("resolve");
    }
    println!("  cold-start queries: {cold}; stale caches after vSwitch migration: {stale}");
    println!(
        "  reconnection queries after migration: {} (addresses followed the VM)",
        sa.queries_served - cold
    );
}

/// §V-A vs §V-B: the balancing trade-off under skewed VM placement.
fn balance() {
    use ib_routing::EngineKind;
    use ib_sim::fairness::{max_min_fair, FairFlow};
    use ib_subnet::topology::fattree;

    println!("\n===== SECTIONS V-A/V-B: traffic balancing when PF spine choices collide =====");
    // 2 leaves x 4 hypervisors, 3 spines: by pigeonhole two hypervisors
    // on leaf 0 share a spine for their PF rows. Put three VMs on each of
    // those two: dynamic mode funnels all six VM rows onto the shared
    // spine downlink; prepopulated VM LIDs spread.
    let build = |arch| {
        DataCenter::from_topology(
            fattree::two_level(2, 4, 3),
            DataCenterConfig {
                arch,
                vfs_per_hypervisor: 3,
                engine: EngineKind::FatTree,
                ..DataCenterConfig::default()
            },
        )
        .expect("bring-up")
    };
    for arch in [VirtArch::VSwitchPrepopulated, VirtArch::VSwitchDynamic] {
        let mut dcx = build(arch);
        // Find two leaf-0 hypervisors whose PF rows at a remote leaf use
        // the same uplink.
        let remote_leaf = dcx.hypervisors[4].leaf;
        let (a, b) = {
            let lft = dcx.subnet.lft(remote_leaf).expect("leaf");
            let mut by_port: std::collections::HashMap<u8, Vec<usize>> =
                std::collections::HashMap::new();
            for h in 0..4 {
                let pf = dcx.hypervisors[h].pf_lid(&dcx.subnet).expect("pf");
                by_port
                    .entry(lft.get(pf).expect("row").raw())
                    .or_default()
                    .push(h);
            }
            let pair = by_port
                .values()
                .find(|v| v.len() >= 2)
                .expect("pigeonhole: 4 PFs over 3 spines");
            (pair[0], pair[1])
        };
        for v in 0..3 {
            dcx.create_vm(format!("vm-a{v}"), a).expect("create");
            dcx.create_vm(format!("vm-b{v}"), b).expect("create");
        }
        // Flows: remote PFs (hypervisors 4..8) -> the six VMs.
        let flows: Vec<FairFlow> = dcx
            .vms()
            .iter()
            .enumerate()
            .map(|(i, vm)| FairFlow {
                src: dcx.hypervisors[4 + (i % 4)].pf,
                dst: vm.lid,
            })
            .collect();
        let report = max_min_fair(&dcx.subnet, &flows).expect("fairness");
        let lft = dcx.subnet.lft(remote_leaf).expect("leaf");
        let mut counts: std::collections::HashMap<u8, usize> = std::collections::HashMap::new();
        for vm in dcx.vms() {
            *counts
                .entry(lft.get(vm.lid).expect("row").raw())
                .or_insert(0) += 1;
        }
        let max_rows = counts.values().copied().max().unwrap_or(0);
        println!(
            "  {:<22} VM aggregate throughput {:.3} | Jain {:.3} | max VM rows on one remote uplink: {}",
            arch.to_string(),
            report.aggregate,
            report.jain_index(),
            max_rows
        );
    }
    println!("  (prepopulated spreads VM LIDs like LMC paths; dynamic stacks them on colliding PF spines)");
}

/// Robustness sweep: the Algorithm-1 migration under SMP loss, with the
/// transactional transport (retry + rollback). One row per architecture
/// and per-hop drop probability, averaged over seeded trials. With
/// `metrics` set, every trial reports into one shared `ib-observe` sink
/// whose accumulated snapshot lands in `BENCH_metrics.json` — after the
/// counters are asserted to reconcile with the per-trial SMP ledgers.
fn faults(json: Option<&Path>, metrics: Option<&Path>) {
    use ib_mad::SmpTransport;
    use ib_subnet::topology::fattree::two_level;

    const TRIALS: u64 = 20;
    println!("\n===== ROBUSTNESS: transactional migration under SMP loss ({TRIALS} seeded trials per row) =====");
    println!(
        "{:>22} {:>8} {:>10} {:>10} {:>9} {:>10} {:>10}",
        "architecture", "drop %", "attempts", "extra", "retries", "rollbacks", "committed"
    );
    let observer = if metrics.is_some() {
        Observer::metrics()
    } else {
        Observer::disabled()
    };
    // Ledger ground truth accumulated across every trial, to reconcile the
    // observer's counters against at the end.
    let mut ledger_attempts = 0usize;
    let mut ledger_migration_smps = 0usize;
    let mut migration_phase = String::new();
    let mut json_rows = Vec::new();
    for arch in [VirtArch::VSwitchPrepopulated, VirtArch::VSwitchDynamic] {
        let mut baseline = 0.0f64;
        for pct in [0u32, 5, 10, 15, 20] {
            let p = f64::from(pct) / 100.0;
            let mut attempts = 0usize;
            let mut retries = 0usize;
            let mut rollbacks = 0usize;
            let mut committed = 0usize;
            for seed in 0..TRIALS {
                let mut dc = DataCenter::from_topology_observed(
                    two_level(2, 3, 2),
                    DataCenterConfig {
                        arch,
                        vfs_per_hypervisor: 3,
                        ..DataCenterConfig::default()
                    },
                    observer.clone(),
                )
                .expect("bring-up");
                let vm = dc.create_vm("mover", 0).expect("create");
                let mut transport = SmpTransport::lossy(dc.sm.sm_node, seed, p, 0);
                transport.retry.max_attempts = 8;
                let report = dc
                    .migrate_vm_resilient(vm, 4, &mut transport)
                    .expect("resilient migration");
                let phase = format!("migrate-{vm}");
                attempts += dc.sm.ledger.phase_records(&phase).len();
                retries += report.tx.retries;
                if report.committed {
                    committed += 1;
                } else {
                    rollbacks += 1;
                }
                ledger_attempts += dc.sm.ledger.total();
                ledger_migration_smps += dc.sm.ledger.phase_total(&phase);
                migration_phase = phase;
                dc.verify_connectivity().expect("consistent either way");
            }
            let avg_attempts = attempts as f64 / TRIALS as f64;
            if pct == 0 {
                baseline = avg_attempts;
            }
            println!(
                "{:>22} {:>8} {:>10.1} {:>10.1} {:>9.1} {:>10} {:>9}/{}",
                arch.to_string(),
                pct,
                avg_attempts,
                avg_attempts - baseline,
                retries as f64 / TRIALS as f64,
                rollbacks,
                committed,
                TRIALS,
            );
            json_rows.push(Json::obj(vec![
                ("architecture", Json::from(arch.to_string())),
                ("drop_pct", Json::from(u64::from(pct))),
                ("avg_attempts", Json::from(avg_attempts)),
                ("extra_attempts", Json::from(avg_attempts - baseline)),
                ("avg_retries", Json::from(retries as f64 / TRIALS as f64)),
                ("rollbacks", Json::from(rollbacks)),
                ("committed", Json::from(committed)),
            ]));
        }
    }
    println!("(attempts = SMPs on the wire incl. retries; extra = vs the fault-free run; every non-committed trial rolled back cleanly)");
    if let Some(dir) = json {
        let doc = Json::obj(vec![
            ("schema", Json::from("ib-vswitch/bench-faults/v1")),
            ("trials", Json::from(TRIALS)),
            ("rows", Json::Array(json_rows)),
        ]);
        write_json(dir, "BENCH_faults.json", &doc);
    }
    if let Some(dir) = metrics {
        let snap = observer.snapshot().expect("metrics observer is enabled");
        // The observer is a side channel over the ledgers; the two
        // accountings must agree exactly before the file is trusted.
        assert_eq!(
            snap.counter("smp.attempts"),
            ledger_attempts as u64,
            "observer SMP attempts must reconcile with the ledgers"
        );
        assert_eq!(
            snap.counter(&format!("phase.{migration_phase}.smps")),
            ledger_migration_smps as u64,
            "observer migration-phase SMPs must reconcile with the ledgers"
        );
        println!(
            "metrics reconciled: {} SMP attempts, {} in the migration phase, across every trial",
            ledger_attempts, ledger_migration_smps
        );
        write_json(dir, "BENCH_metrics.json", &metrics_doc(&snap));
    }
}

/// Incremental repair vs full recompute: identical seeded fault schedules
/// on triplet fabrics, one SM per arm. Reports LFT SMPs and trap-handling
/// wall time per topology and fault count, the SMP ratio against the full
/// trap sweep, and the ratio against the paper's `full_reconfiguration`
/// (below 1.0 means the delta-routing path won).
fn repair(level: u8, batch: bool, json: Option<&Path>) {
    use ib_bench::repair::{batch_grid, repair_grid};

    println!("\n===== REPAIR: incremental (delta-routing) sweep vs full recompute on identical fault schedules =====");
    println!(
        "level {level}: 324-node fat tree (fat-tree/minhop/up-down) + 4x4 torus (dfsssp/lash) always; 648-node fat tree x 3 engines at --level 1+"
    );
    println!(
        "{:>18} {:>10} {:>7} {:>12} {:>10} {:>11} {:>7} {:>9} {:>12} {:>10} {:>9}",
        "topology",
        "engine",
        "faults",
        "repair SMPs",
        "full SMPs",
        "fullRC SMPs",
        "ratio",
        "vs fullRC",
        "repair sec",
        "full sec",
        "fallbacks"
    );
    let rows = repair_grid(level);
    let mut json_rows = Vec::new();
    for row in &rows {
        println!(
            "{:>18} {:>10} {:>7} {:>12} {:>10} {:>11} {:>7.3} {:>9.3} {:>12.4} {:>10.4} {:>9}",
            row.topology,
            row.engine,
            row.faults,
            row.repair_smps,
            row.full_smps,
            row.full_rc_smps,
            row.smp_ratio,
            row.smp_ratio_vs_full_rc,
            row.repair_wall.as_secs_f64(),
            row.full_wall.as_secs_f64(),
            row.repair_fallbacks,
        );
        json_rows.push(Json::obj(vec![
            ("topology", Json::from(row.topology.as_str())),
            ("switches", Json::from(row.switches)),
            ("engine", Json::from(row.engine)),
            ("faults", Json::from(row.faults)),
            ("repair_smps", Json::from(row.repair_smps)),
            ("full_smps", Json::from(row.full_smps)),
            ("full_rc_smps", Json::from(row.full_rc_smps)),
            ("smp_ratio", Json::from(row.smp_ratio)),
            ("smp_ratio_vs_full_rc", Json::from(row.smp_ratio_vs_full_rc)),
            ("repair_seconds", Json::from(row.repair_wall.as_secs_f64())),
            ("full_seconds", Json::from(row.full_wall.as_secs_f64())),
            (
                "full_rc_seconds",
                Json::from(row.full_rc_wall.as_secs_f64()),
            ),
            ("repair_fallbacks", Json::from(row.repair_fallbacks)),
        ]));
    }
    println!("(SMPs cover only the fault responses; every arm diffs against installed blocks, so the gap is the repair path's column splicing)");
    let mut batch_json_rows = Vec::new();
    if batch {
        println!("\n----- REPAIR --batch: one coalesced sweep vs k serial repairs of the same all-down burst -----");
        println!(
            "{:>18} {:>10} {:>7} {:>11} {:>12} {:>7} {:>9} {:>10} {:>11} {:>10} {:>9}",
            "topology",
            "engine",
            "faults",
            "batch SMPs",
            "serial SMPs",
            "ratio",
            "verify b/s",
            "batch sec",
            "serial sec",
            "identical",
            "fallbacks"
        );
        for row in &batch_grid(level) {
            println!(
                "{:>18} {:>10} {:>7} {:>11} {:>12} {:>7.3} {:>5}/{:<3} {:>10.4} {:>11.4} {:>10} {:>9}",
                row.topology,
                row.engine,
                row.faults,
                row.batched_smps,
                row.serial_smps,
                row.smp_ratio,
                row.batched_verify_runs,
                row.serial_verify_runs,
                row.batched_wall.as_secs_f64(),
                row.serial_wall.as_secs_f64(),
                row.identical_lfts,
                row.batched_fallbacks,
            );
            assert!(
                row.identical_lfts,
                "{} faults={}: batched and serial LFTs diverged",
                row.topology, row.faults
            );
            batch_json_rows.push(Json::obj(vec![
                ("topology", Json::from(row.topology.as_str())),
                ("switches", Json::from(row.switches)),
                ("engine", Json::from(row.engine)),
                ("faults", Json::from(row.faults)),
                ("batched_smps", Json::from(row.batched_smps)),
                ("serial_smps", Json::from(row.serial_smps)),
                ("smp_ratio", Json::from(row.smp_ratio)),
                ("batched_verify_runs", Json::from(row.batched_verify_runs)),
                ("serial_verify_runs", Json::from(row.serial_verify_runs)),
                (
                    "batched_seconds",
                    Json::from(row.batched_wall.as_secs_f64()),
                ),
                ("serial_seconds", Json::from(row.serial_wall.as_secs_f64())),
                ("identical_lfts", Json::from(row.identical_lfts)),
                ("batched_fallbacks", Json::from(row.batched_fallbacks)),
            ]));
        }
        println!("(both arms answer the identical burst; byte-identical final LFTs are asserted — the batch saves shared blocks and k-1 verifier passes)");
    }
    if let Some(dir) = json {
        let doc = Json::obj(vec![
            // v3: the grid crosses every topology with its engine matrix
            // (per-engine rows for fat-tree/minhop/up-down on the trees,
            // dfsssp/lash on the torus); `repair_fallbacks` now reads the
            // per-engine `repair.fallback.<engine>` counter tag.
            ("schema", Json::from("ib-vswitch/bench-repair/v3")),
            ("level", Json::from(u64::from(level))),
            ("batched", Json::from(batch)),
            ("rows", Json::Array(json_rows)),
            ("batch_rows", Json::Array(batch_json_rows)),
        ]);
        write_json(dir, "BENCH_repair.json", &doc);
    }
}

/// The engine names the soak CLI accepts (the reports' names, plus the
/// common shorthands).
fn parse_engine(name: &str) -> Option<EngineKind> {
    match name {
        "minhop" | "min-hop" => Some(EngineKind::MinHop),
        "fat-tree" | "ftree" => Some(EngineKind::FatTree),
        "up-down" | "updn" => Some(EngineKind::UpDown),
        "dfsssp" => Some(EngineKind::Dfsssp),
        "lash" => Some(EngineKind::Lash),
        _ => None,
    }
}

/// Chaos soak: a long seeded schedule of link faults, flap bursts,
/// migrations, and sweeps with the fabric invariant verifier run after
/// every convergence. Exits non-zero — printing the reproducing seed and
/// the offending invariant — on any violation, and always under
/// `--inject`, which corrupts an installed LFT to prove the verifier
/// catches it.
///
/// `--partitions` swaps the schedule for seeded split-then-heal cycles
/// (whole-leaf severs) and runs it under *every* routing engine unless
/// `--engine` pins one; the JSON report then aggregates across engines.
fn soak(
    seed: u64,
    events: usize,
    inject: Option<ib_bench::soak::Inject>,
    repair: bool,
    partitions: bool,
    engine: Option<EngineKind>,
    json: Option<&Path>,
) {
    use ib_bench::soak::{run_soak, SoakConfig, SoakReport};

    println!("\n===== SOAK: randomized fault/migration/sweep schedule, verified each step =====");
    // The default schedule runs one engine (DFSSSP unless pinned); the
    // partition schedule sweeps all five unless pinned — graceful
    // degradation is an every-engine promise.
    let engines: Vec<EngineKind> = match (partitions, engine) {
        (_, Some(e)) => vec![e],
        (true, None) => EngineKind::all().to_vec(),
        (false, None) => vec![SoakConfig::default().engine],
    };
    let mut reports: Vec<(EngineKind, SoakReport)> = Vec::new();
    let started = Instant::now();
    for engine in engines {
        let config = SoakConfig {
            seed,
            events,
            inject,
            repair,
            partitions,
            engine,
            ..SoakConfig::default()
        };
        println!(
            "seed {seed}, {events} events on a 2-level fat tree ({} leaves x {} hypervisors, {} spines), engine: {engine}, partitions: {partitions}, injection: {inject:?}, repair sweeps: {repair}",
            config.leaves, config.hosts_per_leaf, config.spines
        );
        let report = run_soak(&config);
        print_soak_report(&report, partitions);
        reports.push((engine, report));
    }
    println!("  total: {:?}", started.elapsed());
    if let Some(dir) = json {
        write_soak_json(dir, events, partitions, &reports);
    }
    let failures: Vec<String> = reports
        .iter()
        .filter_map(|(e, r)| r.failure.as_ref().map(|f| format!("{e}: {f}")))
        .collect();
    if failures.is_empty() {
        println!("  verdict: CLEAN — zero violations across the whole schedule");
    } else {
        for failure in &failures {
            eprintln!("  verdict: FAILED — {failure}");
        }
        std::process::exit(1);
    }
}

/// The per-run console summary of one soak report.
fn print_soak_report(report: &ib_bench::soak::SoakReport, partitions: bool) {
    println!(
        "  events {:>4}  (down {} / up {} / flap {} / migrate {} / sweep {} / noop {})",
        report.events_run,
        report.link_downs,
        report.link_ups,
        report.flap_bursts,
        report.migrations,
        report.sweeps,
        report.noops,
    );
    println!(
        "  migrations: {} committed, {} rolled back under SMP loss",
        report.commits, report.rollbacks
    );
    println!(
        "  quarantine: {} entered hold-down, {} traps absorbed by damping, {} released",
        report.quarantines_entered, report.traps_absorbed, report.quarantines_released
    );
    if partitions {
        println!(
            "  partitions: {} splits, {} heals applied, {} heals proven restored, {} migrations aborted as unreachable",
            report.partitions, report.heals, report.healed, report.migration_aborts
        );
    }
    let by_engine = report
        .repair_fallbacks_by_engine
        .iter()
        .map(|(e, n)| format!("{e}={n}"))
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "  repair: {} incremental sweeps, {} fell back to a full sweep{}",
        report.repair_sweeps,
        report.repair_fallbacks,
        if by_engine.is_empty() {
            String::new()
        } else {
            format!(" (by engine: {by_engine})")
        }
    );
    println!(
        "  verifier: {} post-event runs, all four invariants + quarantine absence",
        report.verify_runs,
    );
}

/// Writes `BENCH_soak.json`: the run totals (summed when the partition
/// schedule sweeps several engines), the per-engine reports, and the
/// first failure. Same schema as before — the partition keys are
/// additive.
fn write_soak_json(
    dir: &Path,
    events: usize,
    partitions: bool,
    reports: &[(EngineKind, ib_bench::soak::SoakReport)],
) {
    let sum = |f: &dyn Fn(&ib_bench::soak::SoakReport) -> u64| -> u64 {
        reports.iter().map(|(_, r)| f(r)).sum()
    };
    let doc = Json::obj(vec![
        ("schema", Json::from("ib-vswitch/bench-soak/v2")),
        ("seed", Json::from(reports[0].1.seed)),
        ("events_requested", Json::from(events)),
        ("partition_schedule", Json::from(partitions)),
        (
            "engines",
            Json::Array(reports.iter().map(|(e, _)| Json::from(e.name())).collect()),
        ),
        ("events_run", Json::from(sum(&|r| r.events_run as u64))),
        ("link_downs", Json::from(sum(&|r| r.link_downs as u64))),
        ("link_ups", Json::from(sum(&|r| r.link_ups as u64))),
        ("flap_bursts", Json::from(sum(&|r| r.flap_bursts as u64))),
        ("sweeps", Json::from(sum(&|r| r.sweeps as u64))),
        ("migrations", Json::from(sum(&|r| r.migrations as u64))),
        ("commits", Json::from(sum(&|r| r.commits as u64))),
        ("rollbacks", Json::from(sum(&|r| r.rollbacks as u64))),
        (
            "quarantines_entered",
            Json::from(sum(&|r| r.quarantines_entered)),
        ),
        ("traps_absorbed", Json::from(sum(&|r| r.traps_absorbed))),
        (
            "quarantines_released",
            Json::from(sum(&|r| r.quarantines_released as u64)),
        ),
        ("partitions", Json::from(sum(&|r| r.partitions as u64))),
        ("heals", Json::from(sum(&|r| r.heals as u64))),
        ("healed", Json::from(sum(&|r| r.healed))),
        (
            "stale_route_violations",
            Json::from(sum(&|r| r.stale_route_violations)),
        ),
        ("migration_aborts", Json::from(sum(&|r| r.migration_aborts))),
        ("repair_sweeps", Json::from(sum(&|r| r.repair_sweeps))),
        ("repair_fallbacks", Json::from(sum(&|r| r.repair_fallbacks))),
        (
            "repair_fallbacks_by_engine",
            Json::Object(
                reports
                    .iter()
                    .flat_map(|(_, r)| r.repair_fallbacks_by_engine.iter())
                    .map(|(e, n)| (e.clone(), Json::from(*n)))
                    .collect(),
            ),
        ),
        ("verify_runs", Json::from(sum(&|r| r.verify_runs as u64))),
        (
            "verdicts",
            Json::Array(
                reports
                    .iter()
                    .flat_map(|(e, r)| {
                        r.verdicts
                            .iter()
                            .map(move |v| Json::from(format!("{e}:{v}")))
                    })
                    .collect(),
            ),
        ),
        (
            "failure",
            reports
                .iter()
                .find_map(|(e, r)| r.failure.as_ref().map(|f| Json::from(format!("{e}: {f}"))))
                .unwrap_or(Json::Null),
        ),
    ]);
    write_json(dir, "BENCH_soak.json", &doc);
}

/// Prints the Fig. 5 fabric (virtualized, one VM) as GraphViz dot.
fn dot() {
    let mut dc = DataCenter::from_topology(
        fig5_fabric(),
        DataCenterConfig {
            arch: VirtArch::VSwitchPrepopulated,
            vfs_per_hypervisor: 3,
            ..DataCenterConfig::default()
        },
    )
    .expect("fig5 bring-up");
    dc.create_vm("vm1", 0).expect("create");
    print!("{}", ib_subnet::dot::to_dot(&dc.subnet));
}
