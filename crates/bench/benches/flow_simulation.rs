//! Simulation-layer benchmarks: credit-gated forwarding (the §VI-C
//! deadlock instrument), the max-min fairness solver (the §V-A/B balance
//! instrument), and the event-driven SMP replay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ib_routing::EngineKind;
use ib_sim::credit::{run, CreditSimConfig, Flow};
use ib_sim::fairness::{max_min_fair, FairFlow};
use ib_sim::smp_sim::{SmpLatencyModel, SmpReplay};
use ib_sm::{SmConfig, SmpMode, SubnetManager};
use ib_subnet::topology::{fattree, torus};

fn sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_simulation");
    group.sample_size(10);

    // Credit sim: all-to-all on a managed fat tree (drains cleanly).
    {
        let mut t = fattree::two_level(4, 4, 2);
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                engine: EngineKind::FatTree,
                smp_mode: SmpMode::Directed,
                ..SmConfig::default()
            },
        );
        sm.bring_up(&mut t.subnet).expect("bring-up");
        let tables = EngineKind::FatTree
            .build()
            .compute(&t.subnet)
            .expect("routing");
        let mut flows = Vec::new();
        for &a in &t.hosts {
            for &b in &t.hosts {
                if a != b {
                    flows.push(Flow {
                        src: a,
                        dst: t.subnet.node(b).ports[1].lid.unwrap(),
                        packets: 3,
                    });
                }
            }
        }
        group.bench_function("credit_sim/fat-tree-all-to-all", |b| {
            b.iter(|| {
                let report =
                    run(&t.subnet, &flows, &tables.vls, &CreditSimConfig::default()).expect("sim");
                assert!(report.drained);
                black_box(report.rounds)
            });
        });
    }

    // Credit sim with timeout recovery on the deadlocking torus.
    {
        let mut t = torus::torus_2d(4, 4, 1, true);
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                engine: EngineKind::MinHop,
                smp_mode: SmpMode::Directed,
                ..SmConfig::default()
            },
        );
        sm.bring_up(&mut t.subnet).expect("bring-up");
        let tables = EngineKind::MinHop
            .build()
            .compute(&t.subnet)
            .expect("routing");
        let mut flows = Vec::new();
        for &a in &t.hosts {
            for &b in &t.hosts {
                if a != b {
                    flows.push(Flow {
                        src: a,
                        dst: t.subnet.node(b).ports[1].lid.unwrap(),
                        packets: 3,
                    });
                }
            }
        }
        group.bench_function("credit_sim/torus-with-timeouts", |b| {
            b.iter(|| {
                let report = run(
                    &t.subnet,
                    &flows,
                    &tables.vls,
                    &CreditSimConfig {
                        credits_per_channel: 1,
                        timeout_rounds: Some(64),
                        max_rounds: 2_000_000,
                        ..CreditSimConfig::default()
                    },
                )
                .expect("sim");
                assert!(report.drained);
                black_box(report.dropped)
            });
        });
    }

    // Max-min fairness solver on a loaded fat tree.
    {
        let mut t = fattree::two_level(4, 6, 3);
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                engine: EngineKind::FatTree,
                smp_mode: SmpMode::Directed,
                ..SmConfig::default()
            },
        );
        sm.bring_up(&mut t.subnet).expect("bring-up");
        let flows: Vec<FairFlow> = t
            .hosts
            .iter()
            .enumerate()
            .map(|(i, &h)| FairFlow {
                src: h,
                dst: t.subnet.node(t.hosts[(i + 7) % t.hosts.len()]).ports[1]
                    .lid
                    .unwrap(),
            })
            .collect();
        group.bench_function("fairness/24-flow-fat-tree", |b| {
            b.iter(|| black_box(max_min_fair(&t.subnet, &flows).expect("solve").aggregate));
        });
    }

    // SMP replay at Table I full-reconfiguration scale (336,960 SMPs).
    {
        let records: Vec<(usize, bool)> = (0..336_960).map(|i| (2 + i % 4, true)).collect();
        for depth in [1usize, 16] {
            let model = SmpLatencyModel {
                pipeline_depth: depth,
                ..SmpLatencyModel::default()
            };
            group.bench_with_input(
                BenchmarkId::new("smp_replay_table1_floor", depth),
                &model,
                |b, model| {
                    b.iter(|| black_box(SmpReplay::run_records(&records, model).makespan));
                },
            );
        }
    }

    group.finish();
}

criterion_group!(benches, sim);
criterion_main!(benches);
