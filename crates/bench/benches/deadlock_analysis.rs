//! §VI-C: the cost of deadlock analysis — CDG construction, cycle search,
//! and the R_old ∪ R_new transition check after a live migration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ib_bench::manage;
use ib_core::deadlock::{analyze_transition, LftSnapshot};
use ib_core::migration::{swap_on_fabric, MigrationOptions};
use ib_mad::SmpLedger;
use ib_routing::cdg::Cdg;
use ib_routing::graph::SwitchGraph;
use ib_routing::EngineKind;
use ib_sm::{distribution, SmpMode};
use ib_subnet::topology::{fattree, torus};

fn deadlock(c: &mut Criterion) {
    let mut group = c.benchmark_group("deadlock_analysis");
    group.sample_size(10);

    // CDG build + cycle search per engine on a cyclic topology.
    for engine in [EngineKind::MinHop, EngineKind::UpDown, EngineKind::Dfsssp] {
        let fabric = manage(torus::torus_2d(4, 4, 1, true));
        let tables = engine.build().compute(&fabric.subnet).expect("routing");
        let g = SwitchGraph::build(&fabric.subnet).expect("graph");
        group.bench_with_input(
            BenchmarkId::new("cdg_cycle_search", engine.name()),
            &(g, tables),
            |b, (g, tables)| {
                b.iter(|| {
                    let cdg = Cdg::from_tables(g, tables, |_| true);
                    black_box(cdg.find_cycle().is_some())
                });
            },
        );
    }

    // Transition analysis after a real swap on a 324-node fat tree.
    {
        let fabric = manage(fattree::paper_324());
        let mut subnet = fabric.subnet.clone();
        let tables = EngineKind::FatTree
            .build()
            .compute(&subnet)
            .expect("routing");
        let mut ledger = SmpLedger::new();
        distribution::distribute(
            &mut subnet,
            fabric.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut ledger,
        )
        .expect("distribute");
        let before = LftSnapshot::capture(&subnet);
        let a = subnet.node(fabric.hosts[1]).ports[1].lid.unwrap();
        let b_lid = subnet.node(fabric.hosts[200]).ports[1].lid.unwrap();
        swap_on_fabric(
            &mut subnet,
            fabric.hosts[0],
            a,
            b_lid,
            &MigrationOptions::default(),
            None,
            &mut ledger,
        )
        .expect("swap");

        group.bench_function("transition_union/fat-tree-324", |b| {
            b.iter(|| {
                let analysis = analyze_transition(&subnet, &before).expect("analysis");
                black_box(analysis.union_acyclic)
            });
        });
    }

    group.finish();
}

criterion_group!(benches, deadlock);
criterion_main!(benches);
