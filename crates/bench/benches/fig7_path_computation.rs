//! Fig. 7: path-computation time of the four routing engines on the
//! paper's fat-tree topologies.
//!
//! Defaults to the two 2-level trees; set `IB_BENCH_LEVEL=1` to add the
//! 5832-node tree and `IB_BENCH_LEVEL=2` for 11664 (minutes per engine,
//! as in the paper). LASH runs on the 2-level trees only — its per-pair
//! layer packing is the 39145-second outlier of Fig. 7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ib_bench::{bench_level, fig7_engines, fig7_topologies};

fn fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_path_computation");
    group.sample_size(10);

    for fabric in fig7_topologies(bench_level()) {
        for engine in fig7_engines(fabric.switches, false) {
            let built = engine.build();
            group.bench_with_input(
                BenchmarkId::new(engine.name(), &fabric.name),
                &fabric,
                |b, fabric| {
                    b.iter(|| {
                        let tables = built.compute(black_box(&fabric.subnet)).expect("engine");
                        black_box(tables.decisions)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
