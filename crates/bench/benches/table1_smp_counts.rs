//! Table I: SMP accounting — the cost of deriving the row from a live
//! subnet, the full-reconfiguration distribution, and the vSwitch swap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ib_bench::manage;
use ib_core::cost::Table1Row;
use ib_core::migration::{swap_on_fabric, MigrationOptions};
use ib_mad::SmpLedger;
use ib_routing::EngineKind;
use ib_sm::{distribution, SmpMode};
use ib_subnet::topology::fattree;
use ib_types::Lid;

fn table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_smp_counts");
    group.sample_size(10);

    // Row derivation is pure bookkeeping and must stay cheap even on the
    // 648-node fabric.
    for build in [fattree::paper_324 as fn() -> _, fattree::paper_648] {
        let fabric = manage(build());
        group.bench_with_input(
            BenchmarkId::new("derive_row", &fabric.name),
            &fabric,
            |b, f| b.iter(|| black_box(Table1Row::for_subnet(&f.subnet))),
        );
    }

    // Full distribution on a virgin 324-node fabric: exactly n*m = 216
    // LFT SMPs.
    let fabric = manage(fattree::paper_324());
    let tables = EngineKind::FatTree
        .build()
        .compute(&fabric.subnet)
        .expect("routing");
    group.bench_function("full_distribution/fat-tree-2L-324", |b| {
        b.iter_batched(
            || (fabric.subnet.clone(), SmpLedger::new()),
            |(mut subnet, mut ledger)| {
                let report = distribution::distribute(
                    &mut subnet,
                    fabric.hosts[0],
                    &tables,
                    SmpMode::Directed,
                    &mut ledger,
                )
                .expect("distribute");
                assert_eq!(report.lft_smps, 216);
                black_box(report.lft_smps)
            },
            criterion::BatchSize::LargeInput,
        );
    });

    // The vSwitch swap on the same fabric: at most 2 SMPs per switch.
    let mut routed = fabric.subnet.clone();
    let mut ledger = SmpLedger::new();
    distribution::distribute(
        &mut routed,
        fabric.hosts[0],
        &tables,
        SmpMode::Directed,
        &mut ledger,
    )
    .expect("distribute");
    let a = routed.node(fabric.hosts[1]).ports[1].lid.unwrap();
    let b_lid = routed.node(fabric.hosts[300]).ports[1].lid.unwrap();
    group.bench_function("lid_swap/fat-tree-2L-324", |b| {
        b.iter_batched(
            || (routed.clone(), SmpLedger::new()),
            |(mut subnet, mut ledger)| {
                let stats = swap_on_fabric(
                    &mut subnet,
                    fabric.hosts[0],
                    black_box(a),
                    black_box(b_lid),
                    &MigrationOptions::default(),
                    None,
                    &mut ledger,
                )
                .expect("swap");
                assert!(stats.lft_smps <= 72);
                black_box(stats.lft_smps)
            },
            criterion::BatchSize::LargeInput,
        );
    });

    let _ = Lid::from_raw(1);
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
