//! Ablations over the design choices DESIGN.md calls out:
//!
//! * swap vs copy reconfiguration,
//! * directed vs destination SMP routing (`r` on/off, eq. 4 vs 5),
//! * serial vs pipelined LFT distribution,
//! * deterministic vs leaf-restricted migration,
//! * prepopulated vs dynamic initial configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ib_core::migration::MigrationOptions;
use ib_core::{DataCenter, DataCenterConfig, VirtArch};
use ib_routing::EngineKind;
use ib_sim::smp_sim::{SmpLatencyModel, SmpReplay};
use ib_sm::SmpMode;
use ib_subnet::topology::fattree;

fn dc(arch: VirtArch, opts: MigrationOptions) -> DataCenter {
    DataCenter::from_topology(
        fattree::two_level(6, 6, 3),
        DataCenterConfig {
            arch,
            vfs_per_hypervisor: 4,
            engine: EngineKind::FatTree,
            migration: opts,
            ..DataCenterConfig::default()
        },
    )
    .expect("bring-up")
}

fn ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    // Swap (prepopulated) vs copy (dynamic) migration.
    for (label, arch) in [
        ("migrate/swap-prepopulated", VirtArch::VSwitchPrepopulated),
        ("migrate/copy-dynamic", VirtArch::VSwitchDynamic),
    ] {
        let mut d = dc(arch, MigrationOptions::default());
        let vm = d.create_vm("vm", 0).expect("create");
        let far = d.hypervisors.len() - 1;
        let mut at_far = false;
        group.bench_function(label, |b| {
            b.iter(|| {
                let dest = if at_far { 0 } else { far };
                at_far = !at_far;
                black_box(d.migrate_vm(vm, dest).expect("migrate").lft.lft_smps)
            });
        });
    }

    // Directed vs destination SMP addressing during migration.
    for (label, mode) in [
        ("smp_mode/directed", SmpMode::Directed),
        ("smp_mode/destination", SmpMode::Destination),
    ] {
        let mut d = dc(
            VirtArch::VSwitchPrepopulated,
            MigrationOptions {
                smp_mode: mode,
                ..MigrationOptions::default()
            },
        );
        let vm = d.create_vm("vm", 0).expect("create");
        let far = d.hypervisors.len() - 1;
        let mut at_far = false;
        group.bench_function(label, |b| {
            b.iter(|| {
                let dest = if at_far { 0 } else { far };
                at_far = !at_far;
                black_box(d.migrate_vm(vm, dest).expect("migrate").lft.lft_smps)
            });
        });
    }

    // Leaf shortcut vs deterministic for an intra-leaf move.
    for (label, shortcut) in [
        ("intra_leaf/deterministic", false),
        ("intra_leaf/shortcut", true),
    ] {
        let mut d = dc(
            VirtArch::VSwitchPrepopulated,
            MigrationOptions {
                intra_leaf_shortcut: shortcut,
                ..MigrationOptions::default()
            },
        );
        let vm = d.create_vm("vm", 0).expect("create");
        let mut at_one = false;
        group.bench_function(label, |b| {
            b.iter(|| {
                let dest = usize::from(!at_one);
                at_one = !at_one;
                black_box(d.migrate_vm(vm, dest).expect("migrate").lft.lft_smps)
            });
        });
    }

    // Serial vs pipelined SMP replay of a full distribution.
    let records: Vec<(usize, bool)> = (0..216).map(|i| (2 + i % 3, true)).collect();
    for depth in [1usize, 4, 16] {
        let model = SmpLatencyModel {
            pipeline_depth: depth,
            ..SmpLatencyModel::default()
        };
        group.bench_with_input(
            BenchmarkId::new("smp_replay_depth", depth),
            &model,
            |b, model| {
                b.iter(|| black_box(SmpReplay::run_records(&records, model).makespan));
            },
        );
    }

    // Prepopulated vs dynamic initial configuration (bring-up end to end).
    for (label, arch) in [
        ("bring_up/prepopulated", VirtArch::VSwitchPrepopulated),
        ("bring_up/dynamic", VirtArch::VSwitchDynamic),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let d = dc(arch, MigrationOptions::default());
                black_box(d.bring_up.decisions)
            });
        });
    }

    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
