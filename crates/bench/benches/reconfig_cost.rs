//! Reconfiguration cost head-to-head (§VI, equations 1-5): a live
//! migration under the vSwitch method vs a traditional full
//! reconfiguration, both measured on a running data center.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ib_core::{DataCenter, DataCenterConfig, VirtArch};
use ib_mad::CostModel;
use ib_routing::EngineKind;
use ib_subnet::topology::fattree;

fn build_dc() -> DataCenter {
    DataCenter::from_topology(
        fattree::paper_324(),
        DataCenterConfig {
            arch: VirtArch::VSwitchPrepopulated,
            vfs_per_hypervisor: 4,
            engine: EngineKind::FatTree,
            ..DataCenterConfig::default()
        },
    )
    .expect("bring-up")
}

fn reconfig(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconfig_cost");
    group.sample_size(10);

    // vSwitch migration: swap + endpoint moves, zero path computation.
    {
        let mut dc = build_dc();
        let vm = dc.create_vm("mover", 0).expect("create");
        let far = dc.hypervisors.len() - 1;
        let mut at_far = false;
        group.bench_function("vswitch_migration/324", |b| {
            b.iter(|| {
                let dest = if at_far { 0 } else { far };
                at_far = !at_far;
                let report = dc.migrate_vm(vm, dest).expect("migrate");
                black_box(report.lft.lft_smps)
            });
        });
    }

    // Traditional: full path recomputation + dirty-block redistribution
    // (LFTs cleared each round so every block is dirty — the n*m floor).
    {
        let dc = build_dc();
        group.bench_function("traditional_full_rc/324", |b| {
            b.iter_batched(
                || {
                    let mut fresh = build_dc();
                    let switches: Vec<_> = fresh.subnet.physical_switches().map(|n| n.id).collect();
                    for sw in switches {
                        *fresh.subnet.lft_mut(sw).unwrap() = Default::default();
                    }
                    fresh
                },
                |mut fresh| {
                    let report = fresh
                        .sm
                        .full_reconfiguration(&mut fresh.subnet)
                        .expect("full rc");
                    black_box(report.distribution.lft_smps)
                },
                criterion::BatchSize::PerIteration,
            );
        });
        let _ = dc;
    }

    // The analytic model itself (pure arithmetic, here for completeness).
    group.bench_function("cost_model_eval", |b| {
        let model = CostModel::default();
        b.iter(|| {
            let mut acc = 0.0;
            for n in [36usize, 54, 972, 1620] {
                for m in [6usize, 11, 107, 208] {
                    acc += model.traditional_reconfig_us(black_box(1e6), n, m);
                    acc += model.vswitch_reconfig_destination_us(n, 2);
                }
            }
            black_box(acc)
        });
    });

    group.finish();
}

criterion_group!(benches, reconfig);
criterion_main!(benches);
