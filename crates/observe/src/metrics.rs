//! Counters, histograms, spans, and the registry that owns them.
//!
//! Metric updates stay on the atomic fast path; the registry's mutexes are
//! only taken to *resolve a name* to its metric (callers hold the returned
//! `Arc` if they update in a loop) and to append finished spans.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::Clock;

/// Bucket upper bounds shared by every histogram: powers of four from 1 to
/// 4·10⁹ (plus an implicit overflow bucket). One fixed geometry covers the
/// small-count metrics (retry numbers, dirty blocks) and the nanosecond
/// durations (up to ~4.3 s) without per-metric configuration, and keeps the
/// exported schema stable.
pub const BUCKET_BOUNDS: [u64; 17] = [
    1,
    4,
    16,
    64,
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
    67_108_864,
    268_435_456,
    1_073_741_824,
    4_294_967_296,
];

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` samples (counts or nanoseconds).
/// Buckets use [`BUCKET_BOUNDS`]; a sample lands in the first bucket whose
/// bound it does not exceed, or the overflow bucket.
#[derive(Debug)]
pub struct Histogram {
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    total: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: (0..=BUCKET_BOUNDS.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            sum: AtomicU64::new(0),
            total: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, value: u64) {
        let idx = BUCKET_BOUNDS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (0 if empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            bounds: BUCKET_BOUNDS.to_vec(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
        }
    }
}

/// One completed span: a named scope with start time and duration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, e.g. `sweep.plan` or `migration.step_a`.
    pub name: String,
    /// Clock reading when the span opened (ns).
    pub start_ns: u64,
    /// How long the span lasted (ns).
    pub duration_ns: u64,
}

/// Point-in-time copy of one histogram, for export.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Bucket upper bounds (the overflow bucket is implicit).
    pub bounds: Vec<u64>,
    /// Per-bucket sample counts; one longer than `bounds` (overflow last).
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0.0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Point-in-time copy of every metric in a registry. Counters and
/// histograms are sorted by name; spans are in completion order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Every histogram, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Every completed span, in completion order.
    pub spans: Vec<SpanRecord>,
}

impl MetricsSnapshot {
    /// Value of a counter, or 0 if it was never touched.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// A histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Completed spans with a given name.
    #[must_use]
    pub fn spans_named(&self, name: &str) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }
}

/// Owns every metric and the clock. Shared via `Arc` by all instrumented
/// components; all mutation is through `&self`.
pub struct MetricsRegistry {
    clock: Box<dyn Clock>,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    spans: Mutex<Vec<SpanRecord>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

impl MetricsRegistry {
    /// A registry reading time from `clock`.
    #[must_use]
    pub fn new(clock: Box<dyn Clock>) -> Self {
        Self {
            clock,
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Current clock reading in nanoseconds.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// The counter with this name, created on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// The histogram with this name, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::default());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Adds `n` to a named counter.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Records one sample into a named histogram.
    pub fn observe(&self, name: &str, value: u64) {
        self.histogram(name).observe(value);
    }

    /// Appends a completed span.
    pub fn push_span(&self, record: SpanRecord) {
        self.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(record);
    }

    /// Copies every metric out.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(n, h)| h.snapshot(n))
            .collect();
        let spans = self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone();
        MetricsSnapshot {
            counters,
            histograms,
            spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;

    #[test]
    fn counters_accumulate_and_sort() {
        let reg = MetricsRegistry::new(Box::new(FakeClock::new()));
        reg.add("z.second", 2);
        reg.add("a.first", 1);
        reg.add("z.second", 3);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.first".to_string(), 1), ("z.second".to_string(), 5)]
        );
        assert_eq!(snap.counter("z.second"), 5);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = Histogram::default();
        h.observe(0); // bucket 0 (<= 1)
        h.observe(1); // bucket 0
        h.observe(5); // bucket 2 (<= 16)
        h.observe(u64::MAX); // overflow
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), u64::MAX);
        let snap = h.snapshot("x");
        assert_eq!(snap.counts[0], 2);
        assert_eq!(snap.counts[2], 1);
        assert_eq!(snap.counts[BUCKET_BOUNDS.len()], 1);
        assert_eq!(snap.counts.len(), BUCKET_BOUNDS.len() + 1);
    }

    #[test]
    fn histogram_mean() {
        let reg = MetricsRegistry::new(Box::new(FakeClock::new()));
        reg.observe("d", 10);
        reg.observe("d", 30);
        let snap = reg.snapshot();
        let h = snap.histogram("d").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 40);
        assert!((h.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn spans_keep_completion_order() {
        let reg = MetricsRegistry::new(Box::new(FakeClock::new()));
        reg.push_span(SpanRecord {
            name: "b".into(),
            start_ns: 0,
            duration_ns: 5,
        });
        reg.push_span(SpanRecord {
            name: "a".into(),
            start_ns: 5,
            duration_ns: 7,
        });
        let snap = reg.snapshot();
        assert_eq!(snap.spans[0].name, "b");
        assert_eq!(snap.spans[1].name, "a");
        assert_eq!(snap.spans_named("a").len(), 1);
    }
}
