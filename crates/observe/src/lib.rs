//! # ib-observe
//!
//! Structured observability for the subnet-management pipeline: phase-scoped
//! spans, atomic counters, and fixed-bucket histograms, collected into a
//! [`MetricsRegistry`] and exported as a plain [`MetricsSnapshot`].
//!
//! The design constraints mirror the rest of the workspace:
//!
//! * **Zero dependencies.** The build is offline; everything here is `std`
//!   (atomics, `Mutex`, `BTreeMap`), hand-rolled the way
//!   `ib-bench`'s JSON emitter is.
//! * **No-op when disabled.** The [`Observer`] handle every instrumented
//!   component holds is an `Option<Arc<MetricsRegistry>>`; the disabled
//!   default does no allocation and no atomic traffic, so an uninstrumented
//!   run is byte-identical (ledgers, LFTs) to one before this crate existed.
//! * **Deterministic in tests.** Time comes from a pluggable [`Clock`]:
//!   binaries use the monotonic wall clock, tests use [`FakeClock`] and
//!   advance it by hand, so span durations are exact and reproducible.
//!
//! The registry is shared by cheap cloning; all mutation goes through
//! `&self` (atomics or short mutex sections), so one observer can be held by
//! the SM, its transport, its ledger, and the parallel sweep workers at the
//! same time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod observer;

pub use clock::{Clock, FakeClock, MonotonicClock};
pub use metrics::{
    Counter, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, SpanRecord,
};
pub use observer::{Observer, Span};
