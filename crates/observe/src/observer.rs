//! The [`Observer`] handle instrumented components hold.
//!
//! An `Observer` is an `Option<Arc<MetricsRegistry>>` behind a unit-cost
//! clone. The disabled default (what every constructor in the workspace
//! produces unless observation is asked for) does *nothing*: no allocation,
//! no atomics, no clock reads. That property is what lets the rest of the
//! stack thread observers through `SmpLedger` and `SmpTransport` while
//! guaranteeing uninstrumented runs stay byte-identical.
//!
//! Callers that build dynamic metric names (e.g. per-phase counters) should
//! gate the `format!` behind [`Observer::is_enabled`] so the disabled path
//! stays allocation-free.

use std::sync::Arc;

use crate::clock::{Clock, MonotonicClock};
use crate::metrics::{MetricsRegistry, MetricsSnapshot, SpanRecord};

/// A cheap-clone handle to a shared [`MetricsRegistry`], or a no-op.
#[derive(Clone, Default)]
pub struct Observer {
    inner: Option<Arc<MetricsRegistry>>,
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "Observer(enabled)"
        } else {
            "Observer(disabled)"
        })
    }
}

impl Observer {
    /// The no-op observer (same as `Default`).
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled observer timing spans with the monotonic wall clock —
    /// what binaries use.
    #[must_use]
    pub fn metrics() -> Self {
        Self::with_clock(Box::new(MonotonicClock::new()))
    }

    /// An enabled observer with an explicit clock — tests pass a
    /// [`crate::FakeClock`] for deterministic span durations.
    #[must_use]
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        Self {
            inner: Some(Arc::new(MetricsRegistry::new(clock))),
        }
    }

    /// Whether metrics are being collected.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The shared registry, if enabled.
    #[must_use]
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.inner.as_ref()
    }

    /// Adds 1 to a named counter.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to a named counter.
    pub fn add(&self, name: &str, n: u64) {
        if let Some(reg) = &self.inner {
            reg.add(name, n);
        }
    }

    /// Records one sample into a named histogram.
    pub fn record(&self, name: &str, value: u64) {
        if let Some(reg) = &self.inner {
            reg.observe(name, value);
        }
    }

    /// Current clock reading in nanoseconds (0 when disabled).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |reg| reg.now_ns())
    }

    /// Opens a span; it closes (and records its duration) when the returned
    /// guard drops. The name is only materialized when enabled.
    pub fn span(&self, name: &str) -> Span {
        Span {
            inner: self.inner.as_ref().map(|reg| {
                let start_ns = reg.now_ns();
                (Arc::clone(reg), name.to_string(), start_ns)
            }),
        }
    }

    /// Copies every metric out, or `None` when disabled.
    #[must_use]
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|reg| reg.snapshot())
    }
}

/// Guard for an open span; records a [`SpanRecord`] on drop.
#[must_use = "a span measures the scope it lives in — bind it to a variable"]
pub struct Span {
    inner: Option<(Arc<MetricsRegistry>, String, u64)>,
}

impl Span {
    /// Closes the span now (sugar for dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((reg, name, start_ns)) = self.inner.take() {
            let duration_ns = reg.now_ns().saturating_sub(start_ns);
            reg.push_span(SpanRecord {
                name,
                start_ns,
                duration_ns,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;

    #[test]
    fn disabled_observer_is_inert() {
        let obs = Observer::disabled();
        assert!(!obs.is_enabled());
        obs.incr("c");
        obs.record("h", 9);
        let span = obs.span("s");
        drop(span);
        assert_eq!(obs.now_ns(), 0);
        assert!(obs.snapshot().is_none());
        assert_eq!(format!("{obs:?}"), "Observer(disabled)");
    }

    #[test]
    fn span_durations_use_the_injected_clock() {
        let clock = FakeClock::new();
        let obs = Observer::with_clock(Box::new(clock.clone()));
        clock.advance(100);
        {
            let _span = obs.span("phase");
            clock.advance(250);
        }
        let snap = obs.snapshot().unwrap();
        assert_eq!(
            snap.spans,
            vec![SpanRecord {
                name: "phase".into(),
                start_ns: 100,
                duration_ns: 250,
            }]
        );
    }

    #[test]
    fn clones_share_one_registry() {
        let obs = Observer::with_clock(Box::new(FakeClock::new()));
        let other = obs.clone();
        obs.incr("shared");
        other.add("shared", 2);
        assert_eq!(obs.snapshot().unwrap().counter("shared"), 3);
        assert_eq!(format!("{obs:?}"), "Observer(enabled)");
    }

    #[test]
    fn explicit_end_closes_a_span() {
        let clock = FakeClock::new();
        let obs = Observer::with_clock(Box::new(clock.clone()));
        let span = obs.span("early");
        clock.advance(40);
        span.end();
        clock.advance(1_000);
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.spans[0].duration_ns, 40);
    }
}
