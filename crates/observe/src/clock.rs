//! Time sources for span measurement.
//!
//! Spans only ever subtract two readings of the same clock, so the absolute
//! origin is arbitrary: the monotonic clock reports nanoseconds since its
//! own construction, the fake clock reports whatever the test set.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond source. Implementations must be cheap and
/// thread-safe — spans read the clock twice per scope, possibly from sweep
/// worker threads.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary fixed origin.
    fn now_ns(&self) -> u64;
}

/// Wall-clock time from [`Instant`], anchored at construction. The default
/// clock in binaries.
#[derive(Clone, Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    #[must_use]
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // A u64 of nanoseconds spans ~584 years; saturate rather than wrap.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A deterministic clock for tests: time only moves when the test calls
/// [`FakeClock::advance`]. Clones share the same underlying time, so a test
/// can keep one handle and give another to an [`crate::Observer`].
#[derive(Clone, Debug, Default)]
pub struct FakeClock {
    now: Arc<AtomicU64>,
}

impl FakeClock {
    /// A clock starting at 0 ns.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }

    /// Sets the absolute time in nanoseconds.
    pub fn set(&self, ns: u64) {
        self.now.store(ns, Ordering::SeqCst);
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_nondecreasing() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_moves_only_on_advance() {
        let c = FakeClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(250);
        assert_eq!(c.now_ns(), 250);
        let shared = c.clone();
        shared.advance(50);
        assert_eq!(c.now_ns(), 300);
        c.set(7);
        assert_eq!(shared.now_ns(), 7);
    }
}
