//! Compute-node resources and VM flavors.

use ib_types::{IbError, IbResult};

/// A compute node's resource envelope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeResources {
    /// CPU cores.
    pub cores: u32,
    /// RAM in GiB.
    pub ram_gb: u32,
}

/// A VM sizing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VmFlavor {
    /// Flavor name (`"small"`, ...).
    pub name: String,
    /// Cores requested.
    pub cores: u32,
    /// RAM requested (GiB).
    pub ram_gb: u32,
}

impl VmFlavor {
    /// A 1-core / 2 GiB flavor.
    #[must_use]
    pub fn small() -> Self {
        Self {
            name: "small".into(),
            cores: 1,
            ram_gb: 2,
        }
    }

    /// A 2-core / 8 GiB flavor.
    #[must_use]
    pub fn medium() -> Self {
        Self {
            name: "medium".into(),
            cores: 2,
            ram_gb: 8,
        }
    }
}

#[derive(Clone, Debug)]
struct NodeState {
    total: NodeResources,
    used: NodeResources,
}

/// Resource accounting across compute nodes, indexed by hypervisor index.
#[derive(Clone, Debug)]
pub struct Inventory {
    nodes: Vec<NodeState>,
}

impl Inventory {
    /// Uniform inventory: every hypervisor gets the same envelope.
    #[must_use]
    pub fn uniform(hypervisors: usize, per_node: NodeResources) -> Self {
        Self {
            nodes: vec![
                NodeState {
                    total: per_node,
                    used: NodeResources {
                        cores: 0,
                        ram_gb: 0
                    },
                };
                hypervisors
            ],
        }
    }

    /// Heterogeneous inventory from explicit envelopes.
    #[must_use]
    pub fn from_nodes(nodes: Vec<NodeResources>) -> Self {
        Self {
            nodes: nodes
                .into_iter()
                .map(|total| NodeState {
                    total,
                    used: NodeResources {
                        cores: 0,
                        ram_gb: 0,
                    },
                })
                .collect(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether there are no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `flavor` fits on node `idx` right now.
    #[must_use]
    pub fn fits(&self, idx: usize, flavor: &VmFlavor) -> bool {
        let n = &self.nodes[idx];
        n.used.cores + flavor.cores <= n.total.cores
            && n.used.ram_gb + flavor.ram_gb <= n.total.ram_gb
    }

    /// Free cores on node `idx`.
    #[must_use]
    pub fn free_cores(&self, idx: usize) -> u32 {
        self.nodes[idx].total.cores - self.nodes[idx].used.cores
    }

    /// Claims `flavor` on node `idx`.
    pub fn allocate(&mut self, idx: usize, flavor: &VmFlavor) -> IbResult<()> {
        if !self.fits(idx, flavor) {
            return Err(IbError::Capacity(format!(
                "flavor {} does not fit node {idx}",
                flavor.name
            )));
        }
        self.nodes[idx].used.cores += flavor.cores;
        self.nodes[idx].used.ram_gb += flavor.ram_gb;
        Ok(())
    }

    /// Releases `flavor` from node `idx`.
    pub fn release(&mut self, idx: usize, flavor: &VmFlavor) -> IbResult<()> {
        let n = &mut self.nodes[idx];
        if n.used.cores < flavor.cores || n.used.ram_gb < flavor.ram_gb {
            return Err(IbError::Capacity(format!(
                "releasing more than allocated on node {idx}"
            )));
        }
        n.used.cores -= flavor.cores;
        n.used.ram_gb -= flavor.ram_gb;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_release_roundtrip() {
        let mut inv = Inventory::uniform(
            2,
            NodeResources {
                cores: 4,
                ram_gb: 32,
            },
        );
        let f = VmFlavor::medium();
        assert!(inv.fits(0, &f));
        inv.allocate(0, &f).unwrap();
        assert_eq!(inv.free_cores(0), 2);
        inv.allocate(0, &f).unwrap();
        assert!(!inv.fits(0, &f), "node full");
        assert!(inv.allocate(0, &f).is_err());
        inv.release(0, &f).unwrap();
        assert!(inv.fits(0, &f));
    }

    #[test]
    fn over_release_rejected() {
        let mut inv = Inventory::uniform(
            1,
            NodeResources {
                cores: 4,
                ram_gb: 8,
            },
        );
        assert!(inv.release(0, &VmFlavor::small()).is_err());
    }

    #[test]
    fn heterogeneous_nodes() {
        // The paper's testbed: 8-core and 4-core HP compute nodes.
        let inv = Inventory::from_nodes(vec![
            NodeResources {
                cores: 8,
                ram_gb: 32,
            },
            NodeResources {
                cores: 4,
                ram_gb: 32,
            },
        ]);
        assert_eq!(inv.free_cores(0), 8);
        assert_eq!(inv.free_cores(1), 4);
    }
}
