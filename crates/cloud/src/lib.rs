//! # ib-cloud
//!
//! The cloud-orchestration layer of the reproduction — the stand-in for the
//! OpenStack deployment of the paper's §VII testbed:
//!
//! * [`inventory`] — compute-node resources (cores, RAM) and VM flavors;
//! * [`placement`] — spread / pack / round-robin schedulers;
//! * [`workflow`] — the §VII-B four-step SR-IOV live-migration workflow
//!   (detach VF → migrate & signal the SM → reconfigure → re-attach VF),
//!   with a simulated timeline;
//! * [`scenarios`] — the paper's testbed replica plus defragmentation and
//!   evacuation scenarios (§V-B's "optimization of fragmented networks"
//!   and "disaster recovery" motivations).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod inventory;
pub mod placement;
pub mod scenarios;
pub mod topology_aware;
pub mod workflow;

pub use inventory::{Inventory, NodeResources, VmFlavor};
pub use placement::{PackPolicy, PlacementPolicy, RoundRobinPolicy, SpreadPolicy};
pub use topology_aware::{migrate_cheapest, rank_destinations, MigrationCandidate};
pub use workflow::{LiveMigrationWorkflow, ResilientWorkflowTrace, WorkflowTrace};
