//! Topology-aware migration planning.
//!
//! §VI-D shows that the number of switches a migration must reconfigure
//! depends on how far the VM moves *from an interconnection point of
//! view*, and that disjoint-footprint migrations can run concurrently.
//! This module turns that observation into a planner: given a VM and a set
//! of candidate destinations, rank them by the *predicted* reconfiguration
//! footprint (via [`ib_core::affected`]) before a single SMP is sent.

use ib_core::{affected, DataCenter, VirtArch, VmId};
use ib_types::{IbError, IbResult};

/// A ranked migration candidate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationCandidate {
    /// Destination hypervisor index.
    pub hypervisor: usize,
    /// Predicted switches to update (the paper's `n'`).
    pub switches_to_update: usize,
    /// Whether the move stays within the source's leaf switch.
    pub intra_leaf: bool,
}

/// Ranks every feasible destination for migrating `vm`, cheapest
/// reconfiguration first (ties: intra-leaf first, then lowest index).
pub fn rank_destinations(dc: &DataCenter, vm: VmId) -> IbResult<Vec<MigrationCandidate>> {
    let rec = dc
        .vm(vm)
        .ok_or_else(|| IbError::Virtualization(format!("{vm} does not exist")))?;
    let src_leaf = dc.hypervisors[rec.hypervisor].leaf;

    let mut out = Vec::new();
    for hyp in &dc.hypervisors {
        if hyp.index == rec.hypervisor {
            continue;
        }
        let Some(slot) = hyp.free_slot() else {
            continue;
        };
        // The predictions now fail exactly where the fabric ops would
        // (missing LFT or PF row, e.g. mid-bring-up): such a destination
        // is not admissible — the migration would abort mid-pass — so it
        // is skipped rather than ranked. On a healthy fabric every
        // prediction succeeds and the ranking is unchanged.
        let predicted = match dc.config.arch {
            VirtArch::VSwitchPrepopulated => {
                let Some(dest_lid) = hyp.vf_lid(&dc.subnet, slot) else {
                    continue;
                };
                let Ok(set) = affected::affected_by_swap(&dc.subnet, rec.lid, dest_lid) else {
                    continue;
                };
                set.len()
            }
            VirtArch::VSwitchDynamic => {
                let pf_lid = hyp.pf_lid(&dc.subnet)?;
                let Ok(set) = affected::affected_by_copy(&dc.subnet, pf_lid, rec.lid) else {
                    continue;
                };
                set.len()
            }
            VirtArch::SharedPort => {
                // The emulation swaps node LIDs; predict with the swap set.
                let src_pf = dc.hypervisors[rec.hypervisor].pf_lid(&dc.subnet)?;
                let dst_pf = hyp.pf_lid(&dc.subnet)?;
                let Ok(set) = affected::affected_by_swap(&dc.subnet, src_pf, dst_pf) else {
                    continue;
                };
                set.len()
            }
        };
        out.push(MigrationCandidate {
            hypervisor: hyp.index,
            switches_to_update: predicted,
            intra_leaf: hyp.leaf == src_leaf,
        });
    }
    out.sort_by_key(|c| (c.switches_to_update, !c.intra_leaf, c.hypervisor));
    Ok(out)
}

/// Migrates `vm` to the destination with the smallest predicted
/// reconfiguration footprint. Returns the chosen candidate and the actual
/// migration report so callers can check prediction vs reality.
pub fn migrate_cheapest(
    dc: &mut DataCenter,
    vm: VmId,
) -> IbResult<(MigrationCandidate, ib_core::MigrationReport)> {
    let ranked = rank_destinations(dc, vm)?;
    let best = ranked
        .into_iter()
        .next()
        .ok_or_else(|| IbError::Capacity("no feasible migration destination".into()))?;
    let report = dc.migrate_vm(vm, best.hypervisor)?;
    Ok((best, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_core::DataCenterConfig;
    use ib_subnet::topology::fattree::two_level;

    fn dc(arch: VirtArch) -> DataCenter {
        DataCenter::from_topology(
            two_level(3, 3, 2),
            DataCenterConfig {
                arch,
                vfs_per_hypervisor: 2,
                ..DataCenterConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn ranking_prefers_cheap_intra_leaf_moves() {
        let mut dc = dc(VirtArch::VSwitchPrepopulated);
        let vm = dc.create_vm("vm", 0).unwrap();
        let ranked = rank_destinations(&dc, vm).unwrap();
        assert_eq!(ranked.len(), 8);
        // The cheapest candidates should be on the same leaf (hyps 1, 2).
        assert!(ranked[0].intra_leaf, "{ranked:?}");
        // Ordering is by predicted n'.
        for w in ranked.windows(2) {
            assert!(w[0].switches_to_update <= w[1].switches_to_update);
        }
    }

    /// Pin: on a healthy fabric the ranking is byte-identical to the
    /// pre-`IbResult` predicates — every candidate admitted, ordered by
    /// `(n', !intra_leaf, hypervisor)` with the exact predicted sets.
    #[test]
    fn ranking_is_byte_identical_on_healthy_fabric() {
        let mut dc = dc(VirtArch::VSwitchPrepopulated);
        let vm = dc.create_vm("vm", 0).unwrap();
        let rec_lid = dc.vm(vm).unwrap().lid;
        let src_leaf = dc.hypervisors[0].leaf;
        let mut expected = Vec::new();
        for hyp in &dc.hypervisors {
            if hyp.index == 0 {
                continue;
            }
            let slot = hyp.free_slot().unwrap();
            let dest_lid = hyp.vf_lid(&dc.subnet, slot).unwrap();
            expected.push(MigrationCandidate {
                hypervisor: hyp.index,
                switches_to_update: affected::affected_by_swap(&dc.subnet, rec_lid, dest_lid)
                    .unwrap()
                    .len(),
                intra_leaf: hyp.leaf == src_leaf,
            });
        }
        expected.sort_by_key(|c| (c.switches_to_update, !c.intra_leaf, c.hypervisor));
        assert_eq!(rank_destinations(&dc, vm).unwrap(), expected);
    }

    #[test]
    fn prediction_matches_reality() {
        let mut dc = dc(VirtArch::VSwitchPrepopulated);
        let vm = dc.create_vm("vm", 0).unwrap();
        let (best, report) = migrate_cheapest(&mut dc, vm).unwrap();
        assert_eq!(best.switches_to_update, report.lft.switches_updated);
        dc.verify_connectivity().unwrap();
    }

    #[test]
    fn dynamic_mode_prediction_matches_too() {
        let mut dc = dc(VirtArch::VSwitchDynamic);
        let vm = dc.create_vm("vm", 0).unwrap();
        let (best, report) = migrate_cheapest(&mut dc, vm).unwrap();
        assert_eq!(best.switches_to_update, report.lft.switches_updated);
        dc.verify_connectivity().unwrap();
    }

    #[test]
    fn full_fabric_has_no_candidates() {
        let mut dc = dc(VirtArch::VSwitchPrepopulated);
        // Fill every slot everywhere.
        for h in 0..dc.hypervisors.len() {
            for s in 0..2 {
                dc.create_vm(format!("vm-{h}-{s}"), h).unwrap();
            }
        }
        let victim = dc.vms()[0].id;
        assert!(migrate_cheapest(&mut dc, victim).is_err());
    }
}
