//! Canned scenarios: the paper's testbed and the fleet-management moves
//! (§V-B) that motivate fast reconfiguration.

use ib_core::{DataCenter, DataCenterConfig, MigrationReport, VmId};
use ib_subnet::topology::BuiltTopology;
use ib_subnet::Subnet;
use ib_types::{IbResult, PortNum};

/// Replica of the §VII-A testbed fabric: two 36-port switches joined by a
/// trunk, six compute nodes (the HP ProLiant machines) spread three per
/// switch, and three infrastructure nodes (the SUN Fire controller /
/// network / storage machines) that carry LIDs but are never virtualized.
pub fn paper_testbed() -> IbResult<BuiltTopology> {
    let mut subnet = Subnet::new();
    let sw0 = subnet.add_switch("dcs36-0", 36);
    let sw1 = subnet.add_switch("dcs36-1", 36);
    subnet.connect(sw0, PortNum::new(36), sw1, PortNum::new(36))?;

    let mut hosts = Vec::new();
    for i in 0..6 {
        let host = subnet.add_hca(format!("compute-{i}"));
        let sw = if i < 3 { sw0 } else { sw1 };
        let port = PortNum::new((i % 3) as u8 + 1);
        subnet.connect(sw, port, host, PortNum::new(1))?;
        hosts.push(host);
    }
    for (i, name) in ["controller", "network", "storage"].iter().enumerate() {
        let infra = subnet.add_hca(format!("sunfire-{name}"));
        let sw = if i < 2 { sw0 } else { sw1 };
        let port = PortNum::new(10 + i as u8);
        subnet.connect(sw, port, infra, PortNum::new(1))?;
        // Infra nodes are deliberately NOT in `hosts`, so the data center
        // never virtualizes them — they just consume LIDs like real ones.
    }

    let built = BuiltTopology {
        subnet,
        hosts,
        switch_levels: vec![vec![sw0, sw1]],
        name: "paper-testbed".into(),
    };
    debug_assert!(built.subnet.validate(true).is_ok());
    Ok(built)
}

/// Builds the testbed data center in one call.
pub fn testbed_datacenter(config: DataCenterConfig) -> IbResult<DataCenter> {
    DataCenter::from_topology(paper_testbed()?, config)
}

/// Consolidates VMs onto the fewest hypervisors: repeatedly moves a VM
/// from the least-loaded non-empty hypervisor to the most-loaded one with
/// room. Returns the executed migrations. This is §V-B's "optimization of
/// fragmented networks" put into code.
pub fn defragment(dc: &mut DataCenter) -> IbResult<Vec<MigrationReport>> {
    let mut reports = Vec::new();
    loop {
        let loads: Vec<(usize, usize, bool)> = dc
            .hypervisors
            .iter()
            .map(|h| (h.index, h.active_vms(), h.free_slot().is_some()))
            .collect();
        // Donor: fewest VMs but nonzero. Receiver: most VMs with room.
        let Some(&(donor, donor_load, _)) = loads
            .iter()
            .filter(|&&(_, vms, _)| vms > 0)
            .min_by_key(|&&(i, vms, _)| (vms, i))
        else {
            break;
        };
        let Some(&(receiver, recv_load, _)) = loads
            .iter()
            .filter(|&&(i, _, room)| room && i != donor)
            .max_by_key(|&&(i, vms, _)| (vms, usize::MAX - i))
        else {
            break;
        };
        // Moving from donor to receiver only helps if the receiver is at
        // least as loaded (strictly packing).
        if recv_load < donor_load || (recv_load == 0 && donor_load <= 1) {
            break;
        }
        // `donor_load > 0` means a VM exists, but degrade gracefully if
        // the inventory shifted under us rather than panicking.
        let Some(vm): Option<VmId> = dc
            .vms()
            .iter()
            .find(|r| r.hypervisor == donor)
            .map(|r| r.id)
        else {
            break;
        };
        reports.push(dc.migrate_vm(vm, receiver)?);
    }
    Ok(reports)
}

/// Evacuates every VM from hypervisor `hyp` (maintenance / disaster
/// recovery), spreading them across the other hypervisors.
pub fn evacuate(dc: &mut DataCenter, hyp: usize) -> IbResult<Vec<MigrationReport>> {
    let mut reports = Vec::new();
    while let Some(vm) = dc.vms().iter().find(|r| r.hypervisor == hyp).map(|r| r.id) {
        let dest = dc
            .hypervisors
            .iter()
            .filter(|h| h.index != hyp && h.free_slot().is_some())
            .min_by_key(|h| (h.active_vms(), h.index))
            .map(|h| h.index)
            .ok_or_else(|| {
                ib_types::IbError::Capacity("no hypervisor can absorb the evacuation".into())
            })?;
        reports.push(dc.migrate_vm(vm, dest)?);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_core::VirtArch;

    fn config(arch: VirtArch) -> DataCenterConfig {
        DataCenterConfig {
            arch,
            vfs_per_hypervisor: 4,
            ..DataCenterConfig::default()
        }
    }

    #[test]
    fn testbed_shape_matches_section_viia() {
        let t = paper_testbed().unwrap();
        assert_eq!(t.num_hosts(), 6);
        assert_eq!(t.num_switches(), 2);
        // 9 HCAs total: 6 compute + 3 infra.
        assert_eq!(t.subnet.num_hcas(), 9);
        t.subnet.validate(true).unwrap();
    }

    #[test]
    fn testbed_datacenter_only_virtualizes_compute() {
        let dc = testbed_datacenter(config(VirtArch::VSwitchPrepopulated)).unwrap();
        assert_eq!(dc.hypervisors.len(), 6);
        // LIDs: 2 switches + 6 PFs + 3 infra + 24 VFs = 35.
        assert_eq!(dc.subnet.num_lids(), 35);
        dc.verify_connectivity().unwrap();
    }

    #[test]
    fn defragment_packs_vms() {
        let mut dc = testbed_datacenter(config(VirtArch::VSwitchDynamic)).unwrap();
        // One VM on each of four hypervisors.
        for h in 0..4 {
            dc.create_vm(format!("vm{h}"), h).unwrap();
        }
        let reports = defragment(&mut dc).unwrap();
        assert!(!reports.is_empty());
        let occupied = dc.hypervisors.iter().filter(|h| h.active_vms() > 0).count();
        assert_eq!(occupied, 1, "four small VMs pack onto one 4-VF node");
        dc.verify_connectivity().unwrap();
    }

    #[test]
    fn evacuate_empties_the_target() {
        let mut dc = testbed_datacenter(config(VirtArch::VSwitchPrepopulated)).unwrap();
        for i in 0..3 {
            dc.create_vm(format!("vm{i}"), 2).unwrap();
        }
        let reports = evacuate(&mut dc, 2).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(dc.hypervisors[2].active_vms(), 0);
        // Spread: the three VMs land on three different hypervisors.
        let dests: std::collections::HashSet<usize> =
            reports.iter().map(|r| r.to_hypervisor).collect();
        assert_eq!(dests.len(), 3);
        dc.verify_connectivity().unwrap();
    }

    #[test]
    fn evacuation_fails_when_nowhere_to_go() {
        let mut dc = DataCenter::from_topology(
            ib_subnet::topology::basic::single_switch(2),
            DataCenterConfig {
                arch: VirtArch::VSwitchPrepopulated,
                vfs_per_hypervisor: 1,
                ..DataCenterConfig::default()
            },
        )
        .unwrap();
        dc.create_vm("a", 0).unwrap();
        dc.create_vm("b", 1).unwrap();
        assert!(evacuate(&mut dc, 0).is_err());
    }
}
