//! VM placement policies.

use ib_core::DataCenter;

use crate::inventory::{Inventory, VmFlavor};

/// Chooses a hypervisor for a new VM, or `None` when nothing fits.
///
/// A candidate must have both a free VF slot (IB-side capacity) and room
/// for the flavor (compute-side capacity) — the two capacity planes §V-B
/// distinguishes.
pub trait PlacementPolicy {
    /// Picks a hypervisor index.
    fn choose(&mut self, dc: &DataCenter, inv: &Inventory, flavor: &VmFlavor) -> Option<usize>;
}

fn candidates<'a>(
    dc: &'a DataCenter,
    inv: &'a Inventory,
    flavor: &'a VmFlavor,
) -> impl Iterator<Item = usize> + 'a {
    (0..dc.hypervisors.len())
        .filter(move |&h| dc.hypervisors[h].free_slot().is_some() && inv.fits(h, flavor))
}

/// Spread: pick the candidate with the fewest running VMs (ties: lowest
/// index). Maximizes failure isolation.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpreadPolicy;

impl PlacementPolicy for SpreadPolicy {
    fn choose(&mut self, dc: &DataCenter, inv: &Inventory, flavor: &VmFlavor) -> Option<usize> {
        candidates(dc, inv, flavor).min_by_key(|&h| (dc.hypervisors[h].active_vms(), h))
    }
}

/// Pack: pick the busiest candidate that still fits. Minimizes the number
/// of powered hypervisors — the defragmentation-friendly policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct PackPolicy;

impl PlacementPolicy for PackPolicy {
    fn choose(&mut self, dc: &DataCenter, inv: &Inventory, flavor: &VmFlavor) -> Option<usize> {
        candidates(dc, inv, flavor)
            .max_by_key(|&h| (dc.hypervisors[h].active_vms(), usize::MAX - h))
    }
}

/// Round robin across hypervisors.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobinPolicy {
    next: usize,
}

impl PlacementPolicy for RoundRobinPolicy {
    fn choose(&mut self, dc: &DataCenter, inv: &Inventory, flavor: &VmFlavor) -> Option<usize> {
        let n = dc.hypervisors.len();
        for off in 0..n {
            let h = (self.next + off) % n;
            if dc.hypervisors[h].free_slot().is_some() && inv.fits(h, flavor) {
                self.next = (h + 1) % n;
                return Some(h);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inventory::NodeResources;
    use ib_core::{DataCenterConfig, VirtArch};
    use ib_subnet::topology::fattree::two_level;

    fn dc() -> DataCenter {
        DataCenter::from_topology(
            two_level(2, 2, 2),
            DataCenterConfig {
                arch: VirtArch::VSwitchPrepopulated,
                vfs_per_hypervisor: 2,
                ..DataCenterConfig::default()
            },
        )
        .unwrap()
    }

    fn inv() -> Inventory {
        Inventory::uniform(
            4,
            NodeResources {
                cores: 8,
                ram_gb: 32,
            },
        )
    }

    #[test]
    fn spread_avoids_busy_nodes() {
        let mut dc = dc();
        let inv = inv();
        let f = VmFlavor::small();
        dc.create_vm("a", 0).unwrap();
        let pick = SpreadPolicy.choose(&dc, &inv, &f).unwrap();
        assert_ne!(pick, 0);
    }

    #[test]
    fn pack_prefers_busy_nodes() {
        let mut dc = dc();
        let inv = inv();
        let f = VmFlavor::small();
        dc.create_vm("a", 1).unwrap();
        let pick = PackPolicy.choose(&dc, &inv, &f).unwrap();
        assert_eq!(pick, 1);
    }

    #[test]
    fn pack_overflows_to_next_when_full() {
        let mut dc = dc();
        let inv = inv();
        let f = VmFlavor::small();
        dc.create_vm("a", 1).unwrap();
        dc.create_vm("b", 1).unwrap(); // node 1 VF-full (2 slots)
        let pick = PackPolicy.choose(&dc, &inv, &f).unwrap();
        assert_ne!(pick, 1);
    }

    #[test]
    fn round_robin_cycles() {
        let mut dc = dc();
        let inv = inv();
        let f = VmFlavor::small();
        let mut rr = RoundRobinPolicy::default();
        let a = rr.choose(&dc, &inv, &f).unwrap();
        let _ = dc.create_vm("a", a).unwrap();
        let b = rr.choose(&dc, &inv, &f).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn respects_compute_capacity() {
        let dc = dc();
        let tight = Inventory::uniform(
            4,
            NodeResources {
                cores: 1,
                ram_gb: 1,
            },
        );
        // Medium flavor (2 cores) fits nowhere.
        assert!(SpreadPolicy
            .choose(&dc, &tight, &VmFlavor::medium())
            .is_none());
    }
}
