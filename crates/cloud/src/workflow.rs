//! The §VII-B live-migration workflow.
//!
//! The paper modified OpenStack so that a migration runs four steps:
//!
//! 1. the SR-IOV VF is detached from the VM and the live migration starts;
//! 2. OpenStack signals OpenSM with the VM and its destination node;
//! 3. OpenSM reconfigures the IB network (LID swap/copy + vGUID transfer);
//! 4. when the migration completes, OpenStack attaches the VF holding the
//!    VM's GUID at the destination.
//!
//! [`LiveMigrationWorkflow::execute`] runs exactly those steps against a
//! [`DataCenter`], pulls the reconfiguration SMPs out of the SM's ledger,
//! and replays them through the latency model to produce a timeline.

use ib_core::{DataCenter, MigrationReport, TxMigrationReport, VmId};
use ib_mad::fault::{SmpChannel, SmpTransport};
use ib_sim::downtime::{DowntimeModel, MigrationTimeline};
use ib_sim::SimTime;
use ib_types::{IbResult, Lid};

/// One recorded workflow step.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkflowStep {
    /// Step name, matching the §VII-B enumeration.
    pub name: String,
    /// Modeled duration.
    pub duration: SimTime,
}

/// The complete trace of one orchestrated migration.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkflowTrace {
    /// The four steps with durations.
    pub steps: Vec<WorkflowStep>,
    /// The network-side migration report (SMP counts, `n'`, `m'`).
    pub report: MigrationReport,
    /// The composed downtime timeline.
    pub timeline: MigrationTimeline,
    /// VM addresses preserved across the move?
    pub addresses_preserved: bool,
}

/// Orchestrates §VII-B migrations against a data center.
#[derive(Clone, Debug, Default)]
pub struct LiveMigrationWorkflow {
    /// Timeline parameters.
    pub model: DowntimeModel,
}

impl LiveMigrationWorkflow {
    /// Runs the four-step workflow, migrating `vm` to hypervisor `dest`.
    pub fn execute(&self, dc: &mut DataCenter, vm: VmId, dest: usize) -> IbResult<WorkflowTrace> {
        let (lid_before, vguid_before): (Lid, _) = dc
            .vm(vm)
            .map(|r| (r.lid, r.vguid))
            .ok_or_else(|| ib_types::IbError::Virtualization(format!("{vm} does not exist")))?;

        // Steps 1+2 happen on the orchestration plane; step 3 is the SM
        // reconfiguration we actually execute; step 4 re-attaches.
        let report = dc.migrate_vm(vm, dest)?;

        // Pull the reconfiguration SMPs from the ledger phase the
        // migration recorded, and replay them for the timeline.
        let phase = format!("migrate-{vm}");
        let smps: Vec<(usize, bool)> = dc
            .sm
            .ledger
            .phase_records(&phase)
            .iter()
            .map(|r| (r.hops, r.directed))
            .collect();
        let timeline = MigrationTimeline::compose(&self.model, &smps);

        let rec = dc.vm(vm).ok_or_else(|| {
            ib_types::IbError::Virtualization(format!("{vm} vanished during migration"))
        })?;
        let addresses_preserved = rec.lid == lid_before && rec.vguid == vguid_before;

        let steps = vec![
            WorkflowStep {
                name: "1-detach-vf-and-start-migration".into(),
                duration: self.model.detach + self.model.stop_and_copy,
            },
            WorkflowStep {
                name: "2-signal-opensm".into(),
                duration: SimTime::from_us(50.0),
            },
            WorkflowStep {
                name: "3-opensm-reconfigures".into(),
                duration: timeline.reconfiguration,
            },
            WorkflowStep {
                name: "4-attach-vf-with-guid".into(),
                duration: self.model.attach,
            },
        ];
        Ok(WorkflowTrace {
            steps,
            report,
            timeline,
            addresses_preserved,
        })
    }

    /// The fault-aware §VII-B workflow: step 3 runs the *transactional*
    /// reconfiguration over `transport`, and when the network side rolls
    /// back, step 4 becomes **re-attach the VF at the source** — the
    /// orchestrator's compensation — instead of attaching at the
    /// destination. Either way the VM ends up attached somewhere with its
    /// addresses intact; `ResilientWorkflowTrace::committed` says where.
    pub fn execute_resilient<C: SmpChannel>(
        &self,
        dc: &mut DataCenter,
        vm: VmId,
        dest: usize,
        transport: &mut SmpTransport<C>,
    ) -> IbResult<ResilientWorkflowTrace> {
        let (lid_before, vguid_before): (Lid, _) = dc
            .vm(vm)
            .map(|r| (r.lid, r.vguid))
            .ok_or_else(|| ib_types::IbError::Virtualization(format!("{vm} does not exist")))?;

        let report = dc.migrate_vm_resilient(vm, dest, transport)?;

        // Replay every SMP of the phase — including dropped and timed-out
        // attempts, which is precisely the extra reconfiguration time that
        // faults cost.
        let phase = format!("migrate-{vm}");
        let smps: Vec<(usize, bool)> = dc
            .sm
            .ledger
            .phase_records(&phase)
            .iter()
            .map(|r| (r.hops, r.directed))
            .collect();
        let timeline = MigrationTimeline::compose(&self.model, &smps);

        let rec = dc.vm(vm).ok_or_else(|| {
            ib_types::IbError::Virtualization(format!("{vm} vanished during migration"))
        })?;
        let addresses_preserved = rec.lid == lid_before && rec.vguid == vguid_before;

        let final_step = if report.committed {
            WorkflowStep {
                name: "4-attach-vf-with-guid".into(),
                duration: self.model.attach,
            }
        } else {
            WorkflowStep {
                name: "4-reattach-vf-at-source".into(),
                duration: self.model.attach,
            }
        };
        let steps = vec![
            WorkflowStep {
                name: "1-detach-vf-and-start-migration".into(),
                duration: self.model.detach + self.model.stop_and_copy,
            },
            WorkflowStep {
                name: "2-signal-opensm".into(),
                duration: SimTime::from_us(50.0),
            },
            WorkflowStep {
                name: "3-opensm-reconfigures-transactionally".into(),
                duration: timeline.reconfiguration,
            },
            final_step,
        ];
        Ok(ResilientWorkflowTrace {
            committed: report.committed,
            steps,
            report,
            timeline,
            addresses_preserved,
        })
    }
}

/// The trace of one fault-aware orchestrated migration.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilientWorkflowTrace {
    /// Whether the migration committed (`false`: compensated, VM stayed at
    /// the source).
    pub committed: bool,
    /// The four steps with durations; step 4 names the compensation when
    /// rolled back.
    pub steps: Vec<WorkflowStep>,
    /// The transactional migration report.
    pub report: TxMigrationReport,
    /// The composed downtime timeline (includes retry/timeout SMPs).
    pub timeline: MigrationTimeline,
    /// VM addresses preserved across the move (or the rollback)?
    pub addresses_preserved: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_core::{DataCenterConfig, VirtArch};
    use ib_subnet::topology::fattree::two_level;

    fn dc(arch: VirtArch) -> DataCenter {
        DataCenter::from_topology(
            two_level(2, 3, 2),
            DataCenterConfig {
                arch,
                vfs_per_hypervisor: 2,
                ..DataCenterConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn workflow_preserves_addresses_under_vswitch() {
        for arch in [VirtArch::VSwitchPrepopulated, VirtArch::VSwitchDynamic] {
            let mut dc = dc(arch);
            let vm = dc.create_vm("vm", 0).unwrap();
            let wf = LiveMigrationWorkflow::default();
            let trace = wf.execute(&mut dc, vm, 4).unwrap();
            assert!(trace.addresses_preserved, "{arch}");
            assert_eq!(trace.steps.len(), 4);
            assert!(trace.timeline.downtime > SimTime::ZERO);
            dc.verify_connectivity().unwrap();
        }
    }

    #[test]
    fn reconfiguration_step_is_tiny_share_of_downtime() {
        let mut dc = dc(VirtArch::VSwitchPrepopulated);
        let vm = dc.create_vm("vm", 0).unwrap();
        let trace = LiveMigrationWorkflow::default()
            .execute(&mut dc, vm, 5)
            .unwrap();
        // The whole point: with PCt eliminated and a handful of SMPs, the
        // network reconfiguration is noise next to detach/attach.
        assert!(trace.timeline.reconfiguration_share() < 0.01);
    }

    #[test]
    fn resilient_workflow_commits_when_fault_free() {
        let mut dc = dc(VirtArch::VSwitchPrepopulated);
        let vm = dc.create_vm("vm", 0).unwrap();
        let mut transport = SmpTransport::perfect(dc.sm.sm_node);
        let trace = LiveMigrationWorkflow::default()
            .execute_resilient(&mut dc, vm, 4, &mut transport)
            .unwrap();
        assert!(trace.committed);
        assert!(trace.addresses_preserved);
        assert_eq!(trace.steps[3].name, "4-attach-vf-with-guid");
        dc.verify_connectivity().unwrap();
    }

    #[test]
    fn resilient_workflow_compensates_on_persistent_failure() {
        let mut dc = dc(VirtArch::VSwitchDynamic);
        let vm = dc.create_vm("vm", 0).unwrap();
        let mut transport =
            SmpTransport::with_channel(dc.sm.sm_node, ib_mad::LossyChannel::black_hole());
        let trace = LiveMigrationWorkflow::default()
            .execute_resilient(&mut dc, vm, 4, &mut transport)
            .unwrap();
        assert!(!trace.committed);
        assert!(
            trace.addresses_preserved,
            "rollback keeps the addresses too"
        );
        assert_eq!(trace.steps[3].name, "4-reattach-vf-at-source");
        assert_eq!(dc.vm(vm).unwrap().hypervisor, 0, "VM stayed home");
        dc.verify_connectivity().unwrap();
    }

    #[test]
    fn workflow_fails_cleanly_on_bad_vm() {
        let mut dc = dc(VirtArch::VSwitchPrepopulated);
        let wf = LiveMigrationWorkflow::default();
        assert!(wf.execute(&mut dc, ib_core::VmId(99), 1).is_err());
    }
}
