//! The virtualized data center: subnet + hypervisors + subnet manager +
//! VM lifecycle.

use ib_mad::fault::{SmpChannel, SmpTransport};
use ib_mad::Smp;
use ib_observe::Observer;
use ib_routing::{EngineKind, RoutingOptions, VlAssignment};
use ib_sm::distribution::{hops_of, routing_for};
use ib_sm::{BringUpReport, QuarantineOptions, SmConfig, SmpMode, SubnetManager};
use ib_subnet::topology::BuiltTopology;
use ib_subnet::{NodeId, Subnet};
use ib_types::{IbError, IbResult, Lid, PortNum};
use ib_verify::{FabricVerifier, LftSnapshot};
use rustc_hash::FxHashMap;

use crate::migration::{
    copy_on_fabric, copy_on_fabric_tx, swap_on_fabric, swap_on_fabric_tx, LftUpdateStats,
    MigrationOptions, MigrationReport, TxMigrationReport, TxStats,
};
use crate::virtualize::{virtualize_host, vswitch_vf_port, Hypervisor, VirtArch, VSWITCH_UPLINK};
use crate::vm::{VmId, VmRecord};

/// Data center construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct DataCenterConfig {
    /// SR-IOV addressing architecture.
    pub arch: VirtArch,
    /// VFs per hypervisor (the paper's running example uses 16; Mellanox
    /// ConnectX-3 defaults to 16 with up to 126 supported).
    pub vfs_per_hypervisor: usize,
    /// Routing engine for the initial path computation.
    pub engine: EngineKind,
    /// Routing-engine execution options (worker threads etc.) for the SM's
    /// path computations. Tables are invariant under the worker count.
    pub routing: RoutingOptions,
    /// Reconfiguration options for migrations and dynamic VM creation.
    pub migration: MigrationOptions,
    /// Run the fabric invariant verifier after every SM sweep and after
    /// every resilient migration commit/rollback, failing the operation on
    /// any violation. Off by default.
    pub verify: bool,
    /// Link flap damping policy for the data center's SM. Disabled by
    /// default.
    pub quarantine: QuarantineOptions,
}

impl Default for DataCenterConfig {
    fn default() -> Self {
        Self {
            arch: VirtArch::VSwitchPrepopulated,
            vfs_per_hypervisor: 4,
            engine: EngineKind::MinHop,
            routing: RoutingOptions::default(),
            migration: MigrationOptions::default(),
            verify: false,
            quarantine: QuarantineOptions::default(),
        }
    }
}

/// A running virtualized IB data center.
#[derive(Debug)]
pub struct DataCenter {
    /// The fabric.
    pub subnet: Subnet,
    /// All hypervisors, indexed by the `hypervisor` field of VM records.
    pub hypervisors: Vec<Hypervisor>,
    /// The subnet manager (owns the SMP ledger and the LID space).
    pub sm: SubnetManager,
    /// Construction parameters.
    pub config: DataCenterConfig,
    /// The initial bring-up report.
    pub bring_up: BringUpReport,
    vms: FxHashMap<VmId, VmRecord>,
    next_vm: u64,
}

impl DataCenter {
    /// Virtualizes every host of `built` into a hypervisor and brings the
    /// fabric up. The SM runs on hypervisor 0's PF.
    pub fn from_topology(built: BuiltTopology, config: DataCenterConfig) -> IbResult<Self> {
        Self::from_topology_observed(built, config, Observer::disabled())
    }

    /// Like [`Self::from_topology`], but the SM reports into `observer`
    /// from the very first bring-up SMP — so discovery/assignment/routing
    /// spans and all per-phase counters cover the whole lifetime.
    pub fn from_topology_observed(
        built: BuiltTopology,
        config: DataCenterConfig,
        observer: Observer,
    ) -> IbResult<Self> {
        let mut subnet = built.subnet;
        if built.hosts.is_empty() {
            return Err(IbError::Virtualization("topology has no hosts".into()));
        }
        let mut hypervisors = Vec::with_capacity(built.hosts.len());
        for (i, &host) in built.hosts.iter().enumerate() {
            hypervisors.push(virtualize_host(
                &mut subnet,
                config.arch,
                i,
                host,
                config.vfs_per_hypervisor,
            )?);
        }
        let mut sm = SubnetManager::new(
            hypervisors[0].pf,
            SmConfig {
                engine: config.engine,
                smp_mode: SmpMode::Directed,
                routing: config.routing,
                verify: config.verify,
                quarantine: config.quarantine,
                ..SmConfig::default()
            },
        );
        sm.set_observer(observer);
        let bring_up = sm.bring_up(&mut subnet)?;
        Ok(Self {
            subnet,
            hypervisors,
            sm,
            config,
            bring_up,
            vms: FxHashMap::default(),
            next_vm: 0,
        })
    }

    /// The record of a VM.
    #[must_use]
    pub fn vm(&self, id: VmId) -> Option<&VmRecord> {
        self.vms.get(&id)
    }

    /// All VMs, in id order.
    #[must_use]
    pub fn vms(&self) -> Vec<&VmRecord> {
        let mut v: Vec<&VmRecord> = self.vms.values().collect();
        v.sort_unstable_by_key(|r| r.id);
        v
    }

    /// Number of running VMs.
    #[must_use]
    pub fn num_vms(&self) -> usize {
        self.vms.len()
    }

    // ------------------------------------------------------------------
    // VM lifecycle
    // ------------------------------------------------------------------

    /// Boots a VM on hypervisor `hyp`.
    ///
    /// * Shared Port: the VM shares the PF's LID; one vGUID SMP.
    /// * Prepopulated: the VM inherits the VF's prepopulated LID; one vGUID
    ///   SMP and **zero** LFT updates (§V-A: "All that needs to be done is
    ///   to find an available VM slot ... and use it").
    /// * Dynamic: the next free LID is allocated and every physical
    ///   switch's LFT learns it by copying the PF's row — one SMP per
    ///   switch (§V-B).
    pub fn create_vm(&mut self, name: impl Into<String>, hyp: usize) -> IbResult<VmId> {
        let name = name.into();
        self.check_hypervisor(hyp)?;
        let slot = self.hypervisors[hyp]
            .free_slot()
            .ok_or_else(|| IbError::Capacity(format!("hypervisor {hyp} has no free VF")))?;
        let id = VmId(self.next_vm);
        self.next_vm += 1;
        self.sm.ledger.begin_phase(format!("create-{id}"));

        let vguid = self.subnet.mint_vguid();
        let pf = self.hypervisors[hyp].pf;

        let lid = match self.config.arch {
            VirtArch::SharedPort => {
                self.hypervisor_smp_vguid(pf, Some(vguid))?;
                self.hypervisors[hyp].pf_lid(&self.subnet)?
            }
            VirtArch::VSwitchPrepopulated => {
                self.hypervisor_smp_vguid(pf, Some(vguid))?;
                self.hypervisors[hyp]
                    .vf_lid(&self.subnet, slot)
                    .ok_or_else(|| {
                        IbError::Virtualization(format!(
                            "VF {slot} of hypervisor {hyp} has no prepopulated LID"
                        ))
                    })?
            }
            VirtArch::VSwitchDynamic => {
                // Cable the dormant VF, hand it the next free LID, and let
                // the fabric learn the LID by copying the PF's rows.
                let vsw = vswitch_of(&self.hypervisors[hyp], hyp)?;
                let vf = vf_node_of(&self.hypervisors[hyp], hyp, slot)?;
                self.subnet
                    .connect(vsw, vswitch_vf_port(slot), vf, PortNum::new(1))?;
                let lid = self.sm.lid_space.allocate()?;
                self.subnet.assign_port_lid(vf, PortNum::new(1), lid)?;
                self.hypervisor_smp_set_lid(pf, Some(lid))?;
                self.hypervisor_smp_vguid(pf, Some(vguid))?;
                let pf_lid = self.hypervisors[hyp].pf_lid(&self.subnet)?;
                copy_on_fabric(
                    &mut self.subnet,
                    self.sm.sm_node,
                    pf_lid,
                    lid,
                    &self.config.migration,
                    None,
                    &mut self.sm.ledger,
                )?;
                self.set_vswitch_routes(lid, Some((hyp, slot)));
                lid
            }
        };

        self.hypervisors[hyp].vfs[slot].attached = Some(id);
        self.vms.insert(
            id,
            VmRecord {
                id,
                name,
                hypervisor: hyp,
                vf_slot: slot,
                lid,
                vguid,
            },
        );
        Ok(id)
    }

    /// Shuts a VM down and frees its VF.
    ///
    /// Dynamic mode releases the LID back to the allocator and un-cables
    /// the VF; stale LFT rows are deliberately left behind (as OpenSM
    /// would until the next sweep) and are overwritten on LID reuse.
    pub fn destroy_vm(&mut self, id: VmId) -> IbResult<()> {
        let vm = self
            .vms
            .remove(&id)
            .ok_or_else(|| IbError::Virtualization(format!("{id} does not exist")))?;
        self.sm.ledger.begin_phase(format!("destroy-{id}"));
        let hyp = vm.hypervisor;
        let pf = self.hypervisors[hyp].pf;
        self.hypervisors[hyp].vfs[vm.vf_slot].attached = None;
        self.hypervisor_smp_vguid(pf, None)?;

        if self.config.arch == VirtArch::VSwitchDynamic {
            let vf = vf_node_of(&self.hypervisors[hyp], hyp, vm.vf_slot)?;
            self.hypervisor_smp_set_lid(pf, None)?;
            self.subnet.clear_lid(vm.lid)?;
            self.sm.lid_space.release(vm.lid)?;
            self.subnet.disconnect(vf, PortNum::new(1))?;
        }
        Ok(())
    }

    /// Live-migrates a VM (Algorithm 1).
    pub fn migrate_vm(&mut self, id: VmId, dest: usize) -> IbResult<MigrationReport> {
        let vm = self
            .vms
            .get(&id)
            .cloned()
            .ok_or_else(|| IbError::Virtualization(format!("{id} does not exist")))?;
        let src = vm.hypervisor;
        self.check_hypervisor(dest)?;
        if src == dest {
            return Err(IbError::Virtualization(format!(
                "{id} is already on hypervisor {dest}"
            )));
        }
        let dest_slot = self.hypervisors[dest]
            .free_slot()
            .ok_or_else(|| IbError::Capacity(format!("hypervisor {dest} has no free VF")))?;

        let intra_leaf = self.hypervisors[src].leaf == self.hypervisors[dest].leaf;
        let use_shortcut = self.config.migration.intra_leaf_shortcut && intra_leaf;
        let restrict: Option<Vec<NodeId>> = use_shortcut.then(|| vec![self.hypervisors[src].leaf]);

        self.sm.ledger.begin_phase(format!("migrate-{id}"));

        // Step V-C(a): detach the VF, signal both hypervisors, move vGUID.
        self.hypervisors[src].vfs[vm.vf_slot].attached = None;
        let src_pf = self.hypervisors[src].pf;
        let dest_pf = self.hypervisors[dest].pf;
        self.hypervisor_smp_set_lid(src_pf, None)?;
        self.hypervisor_smp_set_lid(dest_pf, Some(vm.lid))?;
        self.hypervisor_smp_vguid(dest_pf, Some(vm.vguid))?;
        let hypervisor_smps = 3;

        // Step V-C(b): LFT updates.
        let (lft, lid_after) = match self.config.arch {
            VirtArch::VSwitchPrepopulated => {
                let stats = self.migrate_prepopulated(&vm, dest, dest_slot, restrict.as_deref())?;
                (stats, vm.lid)
            }
            VirtArch::VSwitchDynamic => {
                let stats = self.migrate_dynamic(&vm, dest, dest_slot, restrict.as_deref())?;
                (stats, vm.lid)
            }
            VirtArch::SharedPort => {
                let stats = self.migrate_shared_port(&vm, src, dest)?;
                (stats, vm.lid)
            }
        };

        // Bookkeeping.
        self.hypervisors[dest].vfs[dest_slot].attached = Some(id);
        let rec = self
            .vms
            .get_mut(&id)
            .ok_or_else(|| IbError::Virtualization(format!("{id} vanished mid-migration")))?;
        rec.hypervisor = dest;
        rec.vf_slot = dest_slot;
        rec.lid = lid_after;

        Ok(MigrationReport {
            vm: id,
            from_hypervisor: src,
            to_hypervisor: dest,
            lid_before: vm.lid,
            lid_after,
            hypervisor_smps,
            lft,
            intra_leaf,
            used_leaf_shortcut: use_shortcut,
        })
    }

    /// §V-C1: swap the VM's LID with the destination VF's prepopulated LID.
    fn migrate_prepopulated(
        &mut self,
        vm: &VmRecord,
        dest: usize,
        dest_slot: usize,
        restrict: Option<&[NodeId]>,
    ) -> IbResult<LftUpdateStats> {
        let dest_vf_lid = self.hypervisors[dest]
            .vf_lid(&self.subnet, dest_slot)
            .ok_or_else(|| IbError::Virtualization("destination VF has no LID".into()))?;

        let stats = swap_on_fabric(
            &mut self.subnet,
            self.sm.sm_node,
            vm.lid,
            dest_vf_lid,
            &self.config.migration,
            restrict,
            &mut self.sm.ledger,
        )?;
        self.commit_prepopulated_registrations(vm, dest, dest_slot, dest_vf_lid)?;
        // The swap rewrote two destination columns with direct SMPs; keep
        // the SM's repair baseline and reverse index in step.
        self.sm
            .note_columns_changed(&self.subnet, &[vm.lid, dest_vf_lid]);
        Ok(stats)
    }

    /// Endpoint bookkeeping after a committed prepopulated-mode swap: the
    /// VM's LID lands on the destination VF; the destination VF's old LID
    /// falls back to the source VF.
    fn commit_prepopulated_registrations(
        &mut self,
        vm: &VmRecord,
        dest: usize,
        dest_slot: usize,
        dest_vf_lid: Lid,
    ) -> IbResult<()> {
        let src = vm.hypervisor;
        let src_vf = vf_node_of(&self.hypervisors[src], src, vm.vf_slot)?;
        let dest_vf = vf_node_of(&self.hypervisors[dest], dest, dest_slot)?;
        self.subnet.clear_lid(vm.lid)?;
        self.subnet.clear_lid(dest_vf_lid)?;
        self.subnet
            .assign_port_lid(src_vf, PortNum::new(1), dest_vf_lid)?;
        self.subnet
            .assign_port_lid(dest_vf, PortNum::new(1), vm.lid)?;

        // vSwitch-internal forwarding (HCA hardware, no SMPs counted): the
        // two vSwitches re-home the swapped LIDs.
        self.set_vswitch_routes(vm.lid, Some((dest, dest_slot)));
        self.set_vswitch_routes(dest_vf_lid, Some((src, vm.vf_slot)));
        Ok(())
    }

    /// §V-C2: the VM LID adopts the destination PF's path everywhere.
    fn migrate_dynamic(
        &mut self,
        vm: &VmRecord,
        dest: usize,
        dest_slot: usize,
        restrict: Option<&[NodeId]>,
    ) -> IbResult<LftUpdateStats> {
        let pf_lid = self.hypervisors[dest].pf_lid(&self.subnet)?;
        let stats = copy_on_fabric(
            &mut self.subnet,
            self.sm.sm_node,
            pf_lid,
            vm.lid,
            &self.config.migration,
            restrict,
            &mut self.sm.ledger,
        )?;
        self.commit_dynamic_registrations(vm, dest, dest_slot)?;
        self.sm.note_columns_changed(&self.subnet, &[vm.lid]);
        Ok(stats)
    }

    /// Endpoint bookkeeping after a committed dynamic-mode copy: the VF
    /// cable and the LID move with the VM.
    fn commit_dynamic_registrations(
        &mut self,
        vm: &VmRecord,
        dest: usize,
        dest_slot: usize,
    ) -> IbResult<()> {
        let src = vm.hypervisor;
        let src_vf = vf_node_of(&self.hypervisors[src], src, vm.vf_slot)?;
        let dest_vf = vf_node_of(&self.hypervisors[dest], dest, dest_slot)?;
        let vsw = vswitch_of(&self.hypervisors[dest], dest)?;
        self.subnet.clear_lid(vm.lid)?;
        self.subnet.disconnect(src_vf, PortNum::new(1))?;
        self.subnet
            .connect(vsw, vswitch_vf_port(dest_slot), dest_vf, PortNum::new(1))?;
        self.subnet
            .assign_port_lid(dest_vf, PortNum::new(1), vm.lid)?;
        self.set_vswitch_routes(vm.lid, Some((dest, dest_slot)));
        Ok(())
    }

    /// The Shared Port emulation of §VII-B: the *hypervisor* LIDs of the
    /// source and destination compute nodes are swapped so the VM's LID
    /// value survives. Only legal when the source runs exactly this one VM
    /// and the destination runs none — the emulation restriction the paper
    /// had to impose because every VM on a node shares its LID.
    fn migrate_shared_port(
        &mut self,
        _vm: &VmRecord,
        src: usize,
        dest: usize,
    ) -> IbResult<LftUpdateStats> {
        if self.hypervisors[src].active_vms() > 0 {
            // (The migrating VM was already detached from its slot.)
            return Err(IbError::Virtualization(
                "shared-port migration: source hypervisor hosts other VMs that share its LID"
                    .into(),
            ));
        }
        if self.hypervisors[dest].active_vms() > 0 {
            return Err(IbError::Virtualization(
                "shared-port migration: destination hypervisor already hosts a VM".into(),
            ));
        }
        let src_lid = self.hypervisors[src].pf_lid(&self.subnet)?;
        let dest_lid = self.hypervisors[dest].pf_lid(&self.subnet)?;
        let stats = swap_on_fabric(
            &mut self.subnet,
            self.sm.sm_node,
            src_lid,
            dest_lid,
            &self.config.migration,
            None,
            &mut self.sm.ledger,
        )?;
        // Swap the endpoint registrations between the two PFs.
        let src_pf = self.hypervisors[src].pf;
        let dest_pf = self.hypervisors[dest].pf;
        let src_port = first_lid_port(&self.subnet, src_pf);
        let dest_port = first_lid_port(&self.subnet, dest_pf);
        self.subnet.clear_lid(src_lid)?;
        self.subnet.clear_lid(dest_lid)?;
        self.subnet.assign_port_lid(src_pf, src_port, dest_lid)?;
        self.subnet.assign_port_lid(dest_pf, dest_port, src_lid)?;
        self.sm
            .note_columns_changed(&self.subnet, &[src_lid, dest_lid]);
        Ok(stats)
    }

    /// Live-migrates a VM (Algorithm 1) over a faulty fabric, as a
    /// transaction.
    ///
    /// Every SMP — the step (a) hypervisor signals and the step (b) LFT
    /// updates — goes through `transport`, which retries with backoff and
    /// reports persistent failure. On persistent failure the migration is
    /// **rolled back**: every LFT row already swapped/copied is restored
    /// (best-effort compensating SMPs, unconditional local state), the
    /// hypervisors are signalled to restore the source attachment, and the
    /// VM keeps running at the source with its registrations untouched.
    /// The returned report says which way it went via `committed`.
    ///
    /// Partition tolerance: a pre-flight reachability check aborts the
    /// migration (counted as `migration.abort.unreachable`) before a
    /// single SMP is sent when either hypervisor sits beyond a fabric
    /// split, and a migration that does run confines its LFT pass to the
    /// switches the SM can still reach.
    ///
    /// Only the two vSwitch architectures are supported — the Shared Port
    /// baseline has no per-VM fabric state to protect transactionally.
    pub fn migrate_vm_resilient<C: SmpChannel>(
        &mut self,
        id: VmId,
        dest: usize,
        transport: &mut SmpTransport<C>,
    ) -> IbResult<TxMigrationReport> {
        let vm = self
            .vms
            .get(&id)
            .cloned()
            .ok_or_else(|| IbError::Virtualization(format!("{id} does not exist")))?;
        let src = vm.hypervisor;
        self.check_hypervisor(dest)?;
        if src == dest {
            return Err(IbError::Virtualization(format!(
                "{id} is already on hypervisor {dest}"
            )));
        }
        if self.config.arch == VirtArch::SharedPort {
            return Err(IbError::Virtualization(
                "resilient migration models the vSwitch architectures only".into(),
            ));
        }
        let dest_slot = self.hypervisors[dest]
            .free_slot()
            .ok_or_else(|| IbError::Capacity(format!("hypervisor {dest} has no free VF")))?;
        let use_shortcut = self.config.migration.intra_leaf_shortcut
            && self.hypervisors[src].leaf == self.hypervisors[dest].leaf;
        // On a split fabric the step (b) pass must confine itself to the
        // switches the SM can still reach: rows beyond the split cannot be
        // updated by any SMP and are rewritten wholesale when the heal
        // sweep runs. `None` (the common, connected case) means every
        // physical switch.
        let component = self.sm_component();
        let restrict: Option<Vec<NodeId>> = if use_shortcut {
            Some(vec![self.hypervisors[src].leaf])
        } else {
            let reachable: Vec<NodeId> = self
                .subnet
                .physical_switches()
                .filter(|n| component[n.id.index()])
                .map(|n| n.id)
                .collect();
            let total = self.subnet.physical_switches().count();
            (reachable.len() < total).then_some(reachable)
        };

        self.sm.ledger.begin_phase(format!("migrate-{id}"));
        // Pre-migration fingerprint of every forwarding column: after the
        // commit (or rollback) only the LIDs the migration was allowed to
        // move may have changed anywhere in the fabric (§V-C's locality
        // claim, checked rather than assumed).
        let snapshot = self
            .config
            .verify
            .then(|| LftSnapshot::capture(&self.subnet));
        let mut tx = TxStats {
            committed: true,
            ..TxStats::default()
        };
        let mut hypervisor_smps = 0usize;
        let src_pf = self.hypervisors[src].pf;
        let dest_pf = self.hypervisors[dest].pf;

        // A rollback report: the VM stays where it was.
        let aborted =
            |tx: TxStats, hypervisor_smps: usize, lft: LftUpdateStats| TxMigrationReport {
                committed: false,
                vm: id,
                from_hypervisor: src,
                to_hypervisor: dest,
                lid: vm.lid,
                hypervisor_smps,
                lft,
                tx,
            };

        // Pre-flight (partition tolerance): a destination hypervisor the
        // fabric split has carried away would detach the VM at the source
        // and then time out on every SMP toward it. Check live-link
        // reachability from the SM first and abort before a single
        // data-path SMP is spent; the journal never opens, so there is
        // nothing to roll back.
        if !component[dest_pf.index()] || !component[src_pf.index()] {
            // No verification pass: not one column was touched, and the
            // stale rows a fresh split leaves behind are the next sweep's
            // business, not this migration's.
            tx.committed = false;
            self.sm
                .ledger
                .observer()
                .incr("migration.abort.unreachable");
            return Ok(aborted(tx, 0, LftUpdateStats::default()));
        }

        // Step V-C(a): detach the VF, signal both hypervisors, move vGUID.
        // Each signal that fails persistently triggers compensation of the
        // ones already delivered, in reverse.
        self.hypervisors[src].vfs[vm.vf_slot].attached = None;
        match self.hypervisor_smp_set_lid_tx(src_pf, None, transport) {
            Ok(attempt) => {
                tx.count_delivery(attempt);
                hypervisor_smps += 1;
            }
            Err(IbError::Transport(_)) => {
                // Nothing was delivered anywhere: re-attach locally.
                tx.committed = false;
                self.sm.ledger.observer().incr("migration.abort.step_a");
                self.hypervisors[src].vfs[vm.vf_slot].attached = Some(id);
                self.verify_after_migration(snapshot.as_ref(), &[])?;
                return Ok(aborted(tx, hypervisor_smps, LftUpdateStats::default()));
            }
            Err(e) => return Err(e),
        }
        for dest_lid_is_set in [false, true] {
            let sent = if dest_lid_is_set {
                self.hypervisor_smp_vguid_tx(dest_pf, Some(vm.vguid), transport)
            } else {
                self.hypervisor_smp_set_lid_tx(dest_pf, Some(vm.lid), transport)
            };
            match sent {
                Ok(attempt) => {
                    tx.count_delivery(attempt);
                    hypervisor_smps += 1;
                }
                Err(IbError::Transport(_)) => {
                    tx.committed = false;
                    self.sm.ledger.observer().incr("migration.abort.step_a");
                    if dest_lid_is_set {
                        // The destination already holds the LID: take it back.
                        tx.rollback_smps += 1;
                        let _ = self.hypervisor_smp_set_lid_tx(dest_pf, None, transport);
                    }
                    tx.rollback_smps += 1;
                    let _ = self.hypervisor_smp_set_lid_tx(src_pf, Some(vm.lid), transport);
                    self.hypervisors[src].vfs[vm.vf_slot].attached = Some(id);
                    self.verify_after_migration(snapshot.as_ref(), &[])?;
                    return Ok(aborted(tx, hypervisor_smps, LftUpdateStats::default()));
                }
                Err(e) => return Err(e),
            }
        }

        // Step V-C(b): transactional LFT updates.
        let dest_vf_lid = if self.config.arch == VirtArch::VSwitchPrepopulated {
            Some(
                self.hypervisors[dest]
                    .vf_lid(&self.subnet, dest_slot)
                    .ok_or_else(|| IbError::Virtualization("destination VF has no LID".into()))?,
            )
        } else {
            None
        };
        let missing_vf_lid =
            || IbError::Virtualization("destination VF LID vanished mid-migration".into());
        let (lft, tx_b) = match self.config.arch {
            VirtArch::VSwitchPrepopulated => swap_on_fabric_tx(
                &mut self.subnet,
                self.sm.sm_node,
                vm.lid,
                dest_vf_lid.ok_or_else(missing_vf_lid)?,
                &self.config.migration,
                restrict.as_deref(),
                transport,
                &mut self.sm.ledger,
            )?,
            VirtArch::VSwitchDynamic => {
                let pf_lid = self.hypervisors[dest].pf_lid(&self.subnet)?;
                copy_on_fabric_tx(
                    &mut self.subnet,
                    self.sm.sm_node,
                    pf_lid,
                    vm.lid,
                    &self.config.migration,
                    restrict.as_deref(),
                    transport,
                    &mut self.sm.ledger,
                )?
            }
            VirtArch::SharedPort => unreachable!("rejected above"),
        };
        tx.retries += tx_b.retries;
        tx.attempts += tx_b.attempts;
        tx.rolled_back_switches += tx_b.rolled_back_switches;
        tx.rollback_smps += tx_b.rollback_smps;
        if !tx_b.committed {
            // The fabric is back to its pre-migration LFTs; compensate the
            // hypervisor signals and re-attach the VF at the source.
            tx.committed = false;
            tx.rollback_smps += 2;
            let _ = self.hypervisor_smp_set_lid_tx(dest_pf, None, transport);
            let _ = self.hypervisor_smp_set_lid_tx(src_pf, Some(vm.lid), transport);
            self.hypervisors[src].vfs[vm.vf_slot].attached = Some(id);
            // A rollback must leave every forwarding column untouched.
            self.verify_after_migration(snapshot.as_ref(), &[])?;
            // Best-effort compensating SMPs may still have perturbed the
            // touched columns: re-read them into the SM's baseline/index.
            let mut touched = vec![vm.lid];
            touched.extend(dest_vf_lid);
            self.sm.note_columns_changed(&self.subnet, &touched);
            return Ok(aborted(tx, hypervisor_smps, lft));
        }

        // Commit: move the endpoint registrations and the bookkeeping.
        match self.config.arch {
            VirtArch::VSwitchPrepopulated => self.commit_prepopulated_registrations(
                &vm,
                dest,
                dest_slot,
                dest_vf_lid.ok_or_else(missing_vf_lid)?,
            )?,
            VirtArch::VSwitchDynamic => {
                self.commit_dynamic_registrations(&vm, dest, dest_slot)?;
            }
            VirtArch::SharedPort => unreachable!("rejected above"),
        }
        self.hypervisors[dest].vfs[dest_slot].attached = Some(id);
        let rec = self
            .vms
            .get_mut(&id)
            .ok_or_else(|| IbError::Virtualization(format!("{id} vanished mid-migration")))?;
        rec.hypervisor = dest;
        rec.vf_slot = dest_slot;

        // A committed swap may move exactly the two swapped LIDs; a
        // committed copy exactly the VM's.
        let mut allowed = vec![vm.lid];
        allowed.extend(dest_vf_lid);
        self.verify_after_migration(snapshot.as_ref(), &allowed)?;
        self.sm.note_columns_changed(&self.subnet, &allowed);

        Ok(TxMigrationReport {
            committed: true,
            vm: id,
            from_hypervisor: src,
            to_hypervisor: dest,
            lid: vm.lid,
            hypervisor_smps,
            lft,
            tx,
        })
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    /// Post-migration verification (active when `config.verify`): the
    /// forwarding columns of every LID outside `allowed` must be identical
    /// to the pre-migration `snapshot`, and the full fabric invariants
    /// (black holes, forwarding loops, addressing) must hold. The deadlock
    /// check is left to sweep-time verification, which has the engine's VL
    /// layering in hand — a swap/copy only re-homes existing paths, so it
    /// cannot introduce a new channel dependency cycle.
    fn verify_after_migration(
        &mut self,
        snapshot: Option<&LftSnapshot>,
        allowed: &[Lid],
    ) -> IbResult<()> {
        let Some(before) = snapshot else {
            return Ok(());
        };
        let after = LftSnapshot::capture(&self.subnet);
        let observer = self.sm.observer();
        observer.incr("migration.verify.runs");
        let mut violations = before.verify_preserved(&after, allowed);
        // Viewpoint scoping: on a split fabric the migration only touched
        // (and only answers for) the SM's component — rows beyond the
        // split are the heal sweep's business.
        let report = FabricVerifier::new()
            .with_deadlock(false)
            .with_viewpoint(self.sm.sm_node)
            .verify_observed(&self.subnet, &VlAssignment::SingleVl, observer)?;
        violations.extend(report.violations);
        if violations.is_empty() {
            observer.incr("migration.verify.clean");
            Ok(())
        } else {
            observer.incr("migration.verify.failed");
            let shown: Vec<String> = violations.iter().take(3).map(ToString::to_string).collect();
            Err(IbError::Management(format!(
                "post-migration verification failed ({} violations): {}",
                violations.len(),
                shown.join("; ")
            )))
        }
    }

    /// The SM's connected component over live links through alive nodes,
    /// as one flag per node index.
    ///
    /// Depth-first over `connected_ports` (live cables only). The
    /// resilient migration uses it twice: as the pre-flight that rejects
    /// a hypervisor beyond a fabric split before any SMP is spent toward
    /// it, and to confine the step (b) LFT pass to updatable switches.
    fn sm_component(&self) -> Vec<bool> {
        let start = self.sm.sm_node;
        let mut seen = vec![false; self.subnet.node_ids().count()];
        seen[start.index()] = true;
        let mut stack = vec![start];
        while let Some(at) = stack.pop() {
            for (_, remote) in self.subnet.node(at).connected_ports() {
                if !seen[remote.node.index()] && self.subnet.is_alive(remote.node) {
                    seen[remote.node.index()] = true;
                    stack.push(remote.node);
                }
            }
        }
        seen
    }

    /// Bounds-check a hypervisor index (public entry points take raw
    /// indices; a bad one must be an error, not a panic).
    fn check_hypervisor(&self, hyp: usize) -> IbResult<()> {
        if hyp < self.hypervisors.len() {
            Ok(())
        } else {
            Err(IbError::Virtualization(format!(
                "hypervisor {hyp} does not exist (data center has {})",
                self.hypervisors.len()
            )))
        }
    }

    /// Installs the vSwitch-internal route for `lid` on every hypervisor:
    /// the owner's vSwitch delivers to the VF port, every other vSwitch
    /// forwards out its uplink. Models vHCA hardware behaviour; sends no
    /// SMPs (the paper's accounting covers physical switches only).
    fn set_vswitch_routes(&mut self, lid: Lid, owner: Option<(usize, usize)>) {
        for h in 0..self.hypervisors.len() {
            let Some(vsw) = self.hypervisors[h].vswitch else {
                continue;
            };
            let port = match owner {
                Some((oh, slot)) if oh == h => vswitch_vf_port(slot),
                _ => VSWITCH_UPLINK,
            };
            if let Some(lft) = self.subnet.lft_mut(vsw) {
                lft.set(lid, port);
            }
        }
    }

    /// One `SubnSet(PortInfo)` SMP to a hypervisor (step V-C(a)).
    fn hypervisor_smp_set_lid(&mut self, pf: NodeId, lid: Option<Lid>) -> IbResult<()> {
        let routing = routing_for(
            &self.subnet,
            self.sm.sm_node,
            pf,
            // PortInfo SMPs to HCAs are directed unless the PF holds a LID
            // we can address; keep it simple and faithful: directed, as
            // OpenSM does for host configuration.
            SmpMode::Directed,
        )?;
        let hops = hops_of(&self.subnet, self.sm.sm_node, pf, &routing)?;
        let smp = Smp::set_port_lid(pf, routing, PortNum::new(1), lid);
        self.sm.ledger.record(&smp, hops);
        Ok(())
    }

    /// One `SubnSet(GUIDInfo)` SMP to a hypervisor (vGUID install/remove).
    fn hypervisor_smp_vguid(&mut self, pf: NodeId, vguid: Option<ib_types::Guid>) -> IbResult<()> {
        let routing = routing_for(&self.subnet, self.sm.sm_node, pf, SmpMode::Directed)?;
        let hops = hops_of(&self.subnet, self.sm.sm_node, pf, &routing)?;
        let smp = Smp::set_vguid(pf, routing, 0, vguid);
        self.sm.ledger.record(&smp, hops);
        Ok(())
    }

    /// The transactional counterpart of [`Self::hypervisor_smp_set_lid`]:
    /// the SMP goes through the retrying transport, and an unroutable
    /// hypervisor surfaces as a transport failure (so callers compensate
    /// instead of crashing).
    fn hypervisor_smp_set_lid_tx<C: SmpChannel>(
        &mut self,
        pf: NodeId,
        lid: Option<Lid>,
        transport: &mut SmpTransport<C>,
    ) -> IbResult<u32> {
        let routing = routing_for(&self.subnet, self.sm.sm_node, pf, SmpMode::Directed)
            .map_err(|e| IbError::Transport(format!("no route to hypervisor: {e}")))?;
        let hops = hops_of(&self.subnet, self.sm.sm_node, pf, &routing).unwrap_or(0);
        let smp = Smp::set_port_lid(pf, routing, PortNum::new(1), lid);
        transport.send(&self.subnet, &smp, hops, &mut self.sm.ledger)
    }

    /// The transactional counterpart of [`Self::hypervisor_smp_vguid`].
    fn hypervisor_smp_vguid_tx<C: SmpChannel>(
        &mut self,
        pf: NodeId,
        vguid: Option<ib_types::Guid>,
        transport: &mut SmpTransport<C>,
    ) -> IbResult<u32> {
        let routing = routing_for(&self.subnet, self.sm.sm_node, pf, SmpMode::Directed)
            .map_err(|e| IbError::Transport(format!("no route to hypervisor: {e}")))?;
        let hops = hops_of(&self.subnet, self.sm.sm_node, pf, &routing).unwrap_or(0);
        let smp = Smp::set_vguid(pf, routing, 0, vguid);
        transport.send(&self.subnet, &smp, hops, &mut self.sm.ledger)
    }

    /// Verifies that every VM LID and every PF LID is reachable from every
    /// hypervisor PF by walking the installed LFTs hop by hop.
    pub fn verify_connectivity(&self) -> IbResult<()> {
        let mut lids: Vec<Lid> = self
            .vms
            .values()
            .map(|vm| vm.lid)
            .chain(
                self.hypervisors
                    .iter()
                    .filter_map(|h| h.pf_lid(&self.subnet).ok()),
            )
            .collect();
        lids.sort_unstable();
        lids.dedup();
        for h in &self.hypervisors {
            for &lid in &lids {
                let target = self
                    .subnet
                    .endpoint_of(lid)
                    .ok_or_else(|| IbError::Management(format!("LID {lid} is unregistered")))?;
                let path = self.subnet.trace_route(h.pf, lid, 64)?;
                let arrived = *path
                    .last()
                    .ok_or_else(|| IbError::Topology(format!("empty route to LID {lid}")))?;
                if arrived != target.node {
                    return Err(IbError::Topology(format!(
                        "LID {lid}: packet from hypervisor {} arrived at {} instead of {}",
                        h.index,
                        self.subnet.name_of(arrived),
                        self.subnet.name_of(target.node),
                    )));
                }
            }
        }
        Ok(())
    }
}

/// The vSwitch node of a hypervisor, or a virtualization error for the
/// Shared Port architecture (which has none).
fn vswitch_of(h: &Hypervisor, hyp: usize) -> IbResult<NodeId> {
    h.vswitch.ok_or_else(|| {
        IbError::Virtualization(format!(
            "hypervisor {hyp} has no vSwitch (shared-port mode)"
        ))
    })
}

/// The VF node behind a hypervisor slot, or a virtualization error for the
/// Shared Port architecture (whose VFs have no fabric presence).
fn vf_node_of(h: &Hypervisor, hyp: usize, slot: usize) -> IbResult<NodeId> {
    h.vfs[slot].node.ok_or_else(|| {
        IbError::Virtualization(format!(
            "VF {slot} of hypervisor {hyp} has no node (shared-port mode)"
        ))
    })
}

fn first_lid_port(subnet: &Subnet, node: NodeId) -> PortNum {
    subnet
        .node(node)
        .ports
        .iter()
        .enumerate()
        .find(|(_, p)| p.lid.is_some())
        .map_or(PortNum::new(1), |(i, _)| PortNum::new(i as u8))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_subnet::topology::fattree::two_level;

    fn dc(arch: VirtArch) -> DataCenter {
        let built = two_level(2, 3, 2);
        DataCenter::from_topology(
            built,
            DataCenterConfig {
                arch,
                vfs_per_hypervisor: 3,
                ..DataCenterConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn prepopulated_boot_numbers_every_vf() {
        let dc = dc(VirtArch::VSwitchPrepopulated);
        // 4 switches + 6 PFs + 6x3 VFs = 28 LIDs (vSwitches share PF LIDs).
        assert_eq!(dc.subnet.num_lids(), 28);
        for h in &dc.hypervisors {
            for slot in 0..3 {
                assert!(h.vf_lid(&dc.subnet, slot).is_some());
            }
        }
        dc.verify_connectivity().unwrap();
    }

    #[test]
    fn dynamic_boot_numbers_only_physical() {
        let dc = dc(VirtArch::VSwitchDynamic);
        // 4 switches + 6 PFs; dormant VFs are invisible.
        assert_eq!(dc.subnet.num_lids(), 10);
        dc.verify_connectivity().unwrap();
    }

    #[test]
    fn shared_port_boot_is_smallest() {
        let dc = dc(VirtArch::SharedPort);
        assert_eq!(dc.subnet.num_lids(), 10);
        assert!(dc.hypervisors.iter().all(|h| h.vswitch.is_none()));
    }

    #[test]
    fn prepopulated_create_vm_needs_no_lft_smps() {
        let mut dc = dc(VirtArch::VSwitchPrepopulated);
        let before = dc.sm.ledger.lft_updates();
        let vm = dc.create_vm("vm0", 1).unwrap();
        assert_eq!(dc.sm.ledger.lft_updates(), before, "§V-A: creation is free");
        let rec = dc.vm(vm).unwrap();
        assert_eq!(rec.hypervisor, 1);
        dc.verify_connectivity().unwrap();
    }

    #[test]
    fn dynamic_create_vm_costs_one_smp_per_switch() {
        let mut dc = dc(VirtArch::VSwitchDynamic);
        let before = dc.sm.ledger.lft_updates();
        let vm = dc.create_vm("vm0", 1).unwrap();
        // §V-B: one SMP per physical switch to learn the new LID.
        assert_eq!(
            dc.sm.ledger.lft_updates() - before,
            dc.subnet.num_physical_switches()
        );
        let rec = dc.vm(vm).unwrap();
        // The VM LID rides the PF's path on every physical switch.
        let pf_lid = dc.hypervisors[1].pf_lid(&dc.subnet).unwrap();
        for sw in dc.subnet.physical_switches() {
            let lft = sw.lft().unwrap();
            assert_eq!(lft.get(rec.lid), lft.get(pf_lid));
        }
        dc.verify_connectivity().unwrap();
    }

    #[test]
    fn dynamic_lids_spread_after_churn() {
        // Fig. 4's spread layout: create/destroy churn makes VM LIDs
        // non-sequential under dynamic assignment.
        let mut dc = dc(VirtArch::VSwitchDynamic);
        let a = dc.create_vm("a", 0).unwrap();
        let _b = dc.create_vm("b", 1).unwrap();
        let a_lid = dc.vm(a).unwrap().lid;
        dc.destroy_vm(a).unwrap();
        let c = dc.create_vm("c", 2).unwrap();
        // The freed LID is reused (lowest-first), proving churn reshuffles.
        assert_eq!(dc.vm(c).unwrap().lid, a_lid);
        dc.verify_connectivity().unwrap();
    }

    #[test]
    fn capacity_limit_enforced() {
        let mut dc = dc(VirtArch::VSwitchPrepopulated);
        for i in 0..3 {
            dc.create_vm(format!("vm{i}"), 0).unwrap();
        }
        assert!(matches!(
            dc.create_vm("overflow", 0),
            Err(IbError::Capacity(_))
        ));
    }

    #[test]
    fn prepopulated_migration_swaps_and_preserves_lid() {
        let mut dc = dc(VirtArch::VSwitchPrepopulated);
        let vm = dc.create_vm("vm0", 0).unwrap();
        let lid_before = dc.vm(vm).unwrap().lid;
        let report = dc.migrate_vm(vm, 4).unwrap();
        assert_eq!(report.lid_before, lid_before);
        assert_eq!(report.lid_after, lid_before, "the LID follows the VM");
        assert_eq!(report.hypervisor_smps, 3);
        assert!(report.lft.max_blocks_per_switch <= 2);
        assert!(report.lft.switches_updated <= dc.subnet.num_physical_switches());
        assert_eq!(dc.vm(vm).unwrap().hypervisor, 4);
        dc.verify_connectivity().unwrap();
    }

    #[test]
    fn dynamic_migration_copies_and_preserves_lid() {
        let mut dc = dc(VirtArch::VSwitchDynamic);
        let vm = dc.create_vm("vm0", 0).unwrap();
        let lid = dc.vm(vm).unwrap().lid;
        let report = dc.migrate_vm(vm, 4).unwrap();
        assert_eq!(report.lid_after, lid);
        assert_eq!(
            report.lft.max_blocks_per_switch.max(1),
            1,
            "copy is 1 SMP max"
        );
        // The VM LID now rides hypervisor 4's PF path.
        let pf_lid = dc.hypervisors[4].pf_lid(&dc.subnet).unwrap();
        for sw in dc.subnet.physical_switches() {
            let lft = sw.lft().unwrap();
            assert_eq!(lft.get(lid), lft.get(pf_lid));
        }
        dc.verify_connectivity().unwrap();
    }

    #[test]
    fn shared_port_migration_restricted() {
        let mut dc = dc(VirtArch::SharedPort);
        let vm0 = dc.create_vm("vm0", 0).unwrap();
        let _vm1 = dc.create_vm("vm1", 1).unwrap();
        // Destination hosts a VM: refused.
        assert!(dc.migrate_vm(vm0, 1).is_err());
        // Destination empty: allowed, LID value preserved via the node-LID
        // swap of the §VII-B emulation.
        let lid = dc.vm(vm0).unwrap().lid;
        let report = dc.migrate_vm(vm0, 2).unwrap();
        assert_eq!(report.lid_after, lid);
        dc.verify_connectivity().unwrap();
    }

    #[test]
    fn migration_to_full_hypervisor_refused() {
        let mut dc = dc(VirtArch::VSwitchPrepopulated);
        let vm = dc.create_vm("vm0", 0).unwrap();
        for i in 0..3 {
            dc.create_vm(format!("f{i}"), 1).unwrap();
        }
        assert!(matches!(dc.migrate_vm(vm, 1), Err(IbError::Capacity(_))));
        assert!(dc.migrate_vm(vm, 0).is_err(), "self-migration refused");
    }

    #[test]
    fn destroy_dynamic_releases_lid() {
        let mut dc = dc(VirtArch::VSwitchDynamic);
        let vm = dc.create_vm("vm0", 0).unwrap();
        let lid = dc.vm(vm).unwrap().lid;
        dc.destroy_vm(vm).unwrap();
        assert_eq!(dc.subnet.endpoint_of(lid), None);
        assert_eq!(dc.num_vms(), 0);
        // Recreating gets the LID back.
        let vm2 = dc.create_vm("vm1", 3).unwrap();
        assert_eq!(dc.vm(vm2).unwrap().lid, lid);
        dc.verify_connectivity().unwrap();
    }

    #[test]
    fn bad_hypervisor_index_is_an_error_not_a_panic() {
        let mut dc = dc(VirtArch::VSwitchPrepopulated);
        assert!(dc.create_vm("vm", 99).is_err());
        let vm = dc.create_vm("vm", 0).unwrap();
        assert!(dc.migrate_vm(vm, 99).is_err());
        let mut transport = SmpTransport::perfect(dc.sm.sm_node);
        assert!(dc.migrate_vm_resilient(vm, 99, &mut transport).is_err());
    }

    #[test]
    fn resilient_migration_commits_like_classic_when_fault_free() {
        for arch in [VirtArch::VSwitchPrepopulated, VirtArch::VSwitchDynamic] {
            let mut classic = dc(arch);
            let mut resilient = dc(arch);
            let vm_c = classic.create_vm("vm", 0).unwrap();
            let vm_r = resilient.create_vm("vm", 0).unwrap();
            let report_c = classic.migrate_vm(vm_c, 4).unwrap();
            let mut transport = SmpTransport::perfect(resilient.sm.sm_node);
            let report_r = resilient
                .migrate_vm_resilient(vm_r, 4, &mut transport)
                .unwrap();
            assert!(report_r.committed, "{arch}");
            assert_eq!(report_r.tx.retries, 0);
            assert_eq!(report_r.lft, report_c.lft, "{arch}");
            assert_eq!(report_r.hypervisor_smps, report_c.hypervisor_smps);
            for sw in classic.subnet.physical_switches() {
                assert_eq!(resilient.subnet.lft(sw.id).unwrap(), sw.lft().unwrap());
            }
            resilient.verify_connectivity().unwrap();
        }
    }

    #[test]
    fn resilient_migration_rolls_back_on_black_hole() {
        for arch in [VirtArch::VSwitchPrepopulated, VirtArch::VSwitchDynamic] {
            let mut dc = dc(arch);
            let vm = dc.create_vm("vm", 0).unwrap();
            let before_hyp = dc.vm(vm).unwrap().hypervisor;
            let lid = dc.vm(vm).unwrap().lid;
            let snapshot: Vec<_> = dc
                .subnet
                .physical_switches()
                .map(|n| (n.id, n.lft().unwrap().clone()))
                .collect();
            let mut transport =
                SmpTransport::with_channel(dc.sm.sm_node, ib_mad::LossyChannel::black_hole());
            let report = dc.migrate_vm_resilient(vm, 4, &mut transport).unwrap();
            assert!(!report.committed, "{arch}");
            // The VM still runs at the source, same LID, VF re-attached.
            let rec = dc.vm(vm).unwrap();
            assert_eq!(rec.hypervisor, before_hyp);
            assert_eq!(rec.lid, lid);
            assert_eq!(
                dc.hypervisors[before_hyp].vfs[rec.vf_slot].attached,
                Some(vm)
            );
            for (id, before) in snapshot {
                assert_eq!(dc.subnet.lft(id).unwrap(), &before, "{arch}: LFTs restored");
            }
            dc.verify_connectivity().unwrap();
        }
    }

    #[test]
    fn resilient_migration_converges_under_loss() {
        for arch in [VirtArch::VSwitchPrepopulated, VirtArch::VSwitchDynamic] {
            let mut dc = dc(arch);
            let vm = dc.create_vm("vm", 0).unwrap();
            let mut transport = SmpTransport::lossy(dc.sm.sm_node, 11, 0.05, 0);
            transport.retry.max_attempts = 8;
            let report = dc.migrate_vm_resilient(vm, 4, &mut transport).unwrap();
            if report.committed {
                assert_eq!(dc.vm(vm).unwrap().hypervisor, 4, "{arch}");
            } else {
                assert_eq!(dc.vm(vm).unwrap().hypervisor, 0, "{arch}: clean rollback");
            }
            dc.verify_connectivity().unwrap();
        }
    }

    #[test]
    fn verified_resilient_migration_commits_clean() {
        for arch in [VirtArch::VSwitchPrepopulated, VirtArch::VSwitchDynamic] {
            let built = two_level(2, 3, 2);
            let mut dc = DataCenter::from_topology_observed(
                built,
                DataCenterConfig {
                    arch,
                    vfs_per_hypervisor: 3,
                    verify: true,
                    ..DataCenterConfig::default()
                },
                Observer::metrics(),
            )
            .unwrap();
            let vm = dc.create_vm("vm", 0).unwrap();
            let mut transport = SmpTransport::perfect(dc.sm.sm_node);
            let report = dc.migrate_vm_resilient(vm, 4, &mut transport).unwrap();
            assert!(report.committed, "{arch}");
            let snap = dc.sm.observer().snapshot().unwrap();
            assert_eq!(snap.counter("migration.verify.runs"), 1, "{arch}");
            assert_eq!(snap.counter("migration.verify.clean"), 1, "{arch}");
            assert_eq!(snap.counter("migration.verify.failed"), 0, "{arch}");
            // The bring-up sweep verified too.
            assert!(snap.counter("verify.runs") >= 1, "{arch}");
        }
    }

    #[test]
    fn verified_rollback_proves_columns_untouched() {
        let built = two_level(2, 3, 2);
        let mut dc = DataCenter::from_topology_observed(
            built,
            DataCenterConfig {
                arch: VirtArch::VSwitchPrepopulated,
                vfs_per_hypervisor: 3,
                verify: true,
                ..DataCenterConfig::default()
            },
            Observer::metrics(),
        )
        .unwrap();
        let vm = dc.create_vm("vm", 0).unwrap();
        let mut transport =
            SmpTransport::with_channel(dc.sm.sm_node, ib_mad::LossyChannel::black_hole());
        let report = dc.migrate_vm_resilient(vm, 4, &mut transport).unwrap();
        assert!(!report.committed);
        let snap = dc.sm.observer().snapshot().unwrap();
        assert_eq!(snap.counter("migration.verify.runs"), 1);
        assert_eq!(snap.counter("migration.verify.clean"), 1);
    }

    #[test]
    fn resilient_migration_rejects_shared_port() {
        let mut dc = dc(VirtArch::SharedPort);
        let vm = dc.create_vm("vm", 0).unwrap();
        let mut transport = SmpTransport::perfect(dc.sm.sm_node);
        assert!(dc.migrate_vm_resilient(vm, 4, &mut transport).is_err());
    }

    #[test]
    fn intra_leaf_shortcut_updates_one_switch() {
        let built = two_level(2, 3, 2);
        let mut dc = DataCenter::from_topology(
            built,
            DataCenterConfig {
                arch: VirtArch::VSwitchPrepopulated,
                vfs_per_hypervisor: 2,
                migration: MigrationOptions {
                    intra_leaf_shortcut: true,
                    ..MigrationOptions::default()
                },
                ..DataCenterConfig::default()
            },
        )
        .unwrap();
        // Hypervisors 0..3 share leaf 0 (3 hosts per leaf).
        let vm = dc.create_vm("vm0", 0).unwrap();
        let report = dc.migrate_vm(vm, 1).unwrap();
        assert!(report.intra_leaf);
        assert!(report.used_leaf_shortcut);
        assert!(report.lft.switches_updated <= 1, "§VI-D: only the leaf");
        dc.verify_connectivity().unwrap();
    }
}
