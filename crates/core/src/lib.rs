//! # ib-core
//!
//! The paper's contribution: the InfiniBand SR-IOV **vSwitch** architecture
//! and its **topology-agnostic dynamic reconfiguration** method for VM live
//! migration (*Towards the InfiniBand SR-IOV vSwitch Architecture*,
//! CLUSTER 2015).
//!
//! Three SR-IOV addressing architectures are implemented side by side:
//!
//! * [`VirtArch::SharedPort`] — the baseline shipped in the real drivers
//!   (§IV-A): every VM shares the hypervisor's LID, so a migrating VM
//!   changes addresses and breaks peers sharing its LID.
//! * [`VirtArch::VSwitchPrepopulated`] (§V-A) — every VF holds a LID from
//!   boot; VM creation is free, migration *swaps* two LFT rows per switch
//!   (1–2 SMPs each), and the initial routing's balance is preserved.
//! * [`VirtArch::VSwitchDynamic`] (§V-B) — LIDs are allocated when VMs are
//!   created; creation and migration *copy* the destination PF's LFT row
//!   (exactly 1 SMP per updated switch), trading balance for a fast boot
//!   and an unbounded VF pool.
//!
//! The [`DataCenter`] type owns a subnet, its hypervisors, and a subnet
//! manager, and exposes the VM lifecycle (`create_vm`, `destroy_vm`,
//! `migrate_vm`) with full SMP accounting, so every claim of §VI (equations
//! 1–5, Table I, the Fig. 5/6 scenarios) can be measured rather than
//! asserted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// A degraded fabric must degrade the report, not the process: production
// paths return `IbError` instead of panicking (tests may still unwrap).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod affected;
pub mod capacity;
pub mod concurrent;
pub mod cost;
pub mod datacenter;
pub mod deadlock;
pub mod migration;
pub mod partition;
pub mod virtualize;
pub mod vm;

pub use datacenter::{DataCenter, DataCenterConfig};
pub use migration::{MigrationOptions, MigrationReport, TxMigrationReport, TxStats};
pub use partition::{Membership, Partition, Tenancy};
pub use virtualize::{Hypervisor, VfSlot, VirtArch};
pub use vm::{VmId, VmRecord};
