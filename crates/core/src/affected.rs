//! Predicting which switches a reconfiguration touches (§VI-D).
//!
//! The deterministic method iterates every physical switch but only sends
//! SMPs where rows actually differ; predicting that set *before* mutating
//! anything is what enables concurrent-migration admission (disjoint
//! affected sets can reconfigure in parallel) and the intra-leaf shortcut.

use ib_subnet::{NodeId, Subnet};
use ib_types::Lid;

/// Physical switches whose LFTs a swap of `a` and `b` would change.
#[must_use]
pub fn affected_by_swap(subnet: &Subnet, a: Lid, b: Lid) -> Vec<NodeId> {
    let mut v: Vec<NodeId> = subnet
        .physical_switches()
        .filter(|n| {
            // A switch with no LFT yet has no rows to change.
            n.lft().is_some_and(|lft| lft.get(a) != lft.get(b))
        })
        .map(|n| n.id)
        .collect();
    v.sort_unstable_by_key(|n| n.index());
    v
}

/// Physical switches whose LFTs a copy of `pf`'s row onto `vm` would
/// change.
#[must_use]
pub fn affected_by_copy(subnet: &Subnet, pf: Lid, vm: Lid) -> Vec<NodeId> {
    let mut v: Vec<NodeId> = subnet
        .physical_switches()
        .filter(|n| {
            n.lft().is_some_and(|lft| match lft.get(pf) {
                Some(target) => lft.get(vm) != Some(target),
                None => false,
            })
        })
        .map(|n| n.id)
        .collect();
    v.sort_unstable_by_key(|n| n.index());
    v
}

/// §VI-D's observation: migrations entirely within distinct leaf switches
/// can run concurrently without interfering, so the concurrency ceiling for
/// intra-leaf migrations is the number of leaf switches.
#[must_use]
pub fn max_concurrent_intra_leaf(subnet: &Subnet) -> usize {
    subnet.leaf_switches().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_sm::{SmConfig, SubnetManager};
    use ib_subnet::topology::fattree::two_level;
    use ib_types::PortNum;

    fn fabric() -> (ib_subnet::topology::BuiltTopology, SubnetManager) {
        let mut t = two_level(2, 3, 2);
        let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
        sm.bring_up(&mut t.subnet).unwrap();
        (t, sm)
    }

    fn host_lid(t: &ib_subnet::topology::BuiltTopology, i: usize) -> Lid {
        t.subnet.node(t.hosts[i]).ports[1].lid.unwrap()
    }

    #[test]
    fn swap_prediction_matches_actual_update() {
        let (mut t, mut sm) = fabric();
        let a = host_lid(&t, 1);
        let b = host_lid(&t, 4);
        let predicted = affected_by_swap(&t.subnet, a, b);
        let stats = crate::migration::swap_on_fabric(
            &mut t.subnet,
            sm.sm_node,
            a,
            b,
            &crate::migration::MigrationOptions::default(),
            None,
            &mut sm.ledger,
        )
        .unwrap();
        assert_eq!(predicted.len(), stats.switches_updated);
    }

    #[test]
    fn copy_prediction_matches_actual_update() {
        let (mut t, mut sm) = fabric();
        let pf = host_lid(&t, 4);
        let vm = Lid::from_raw(40);
        let predicted = affected_by_copy(&t.subnet, pf, vm);
        let stats = crate::migration::copy_on_fabric(
            &mut t.subnet,
            sm.sm_node,
            pf,
            vm,
            &crate::migration::MigrationOptions::default(),
            None,
            &mut sm.ledger,
        )
        .unwrap();
        assert_eq!(predicted.len(), stats.switches_updated);
        // And a re-prediction is now empty.
        assert!(affected_by_copy(&t.subnet, pf, vm).is_empty());
    }

    #[test]
    fn same_port_lids_affect_nothing() {
        let (mut t, _sm) = fabric();
        // Give host 5's port a second LID: both route identically, so a
        // swap between them touches no switch.
        let extra = Lid::from_raw(50);
        t.subnet
            .assign_port_lid(t.hosts[5], PortNum::new(2), extra)
            .ok();
        // (port 2 does not exist on an HCA — fall back to simulating by
        // copying the row first)
        let pf = host_lid(&t, 5);
        for sw in t
            .subnet
            .physical_switches()
            .map(|n| n.id)
            .collect::<Vec<_>>()
        {
            let lft = t.subnet.lft_mut(sw).unwrap();
            if let Some(p) = lft.get(pf) {
                lft.set(extra, p);
            }
        }
        assert!(affected_by_swap(&t.subnet, pf, extra).is_empty());
    }

    #[test]
    fn leaf_count_bounds_concurrency() {
        let (t, _sm) = fabric();
        assert_eq!(max_concurrent_intra_leaf(&t.subnet), 2);
    }
}
