//! Predicting which switches a reconfiguration touches (§VI-D).
//!
//! The deterministic method iterates every physical switch but only sends
//! SMPs where rows actually differ; predicting that set *before* mutating
//! anything is what enables concurrent-migration admission (disjoint
//! affected sets can reconfigure in parallel) and the intra-leaf shortcut.
//!
//! The predicates mirror [`crate::migration::swap_on_fabric`] and
//! [`crate::migration::copy_on_fabric`] *exactly*, error cases included: a
//! switch without an LFT (or, for a copy, without a row for the PF LID)
//! makes the fabric op fail mid-pass, so the prediction fails the same way
//! instead of silently reporting the switch as unaffected.

use ib_subnet::{NodeId, Subnet};
use ib_types::{IbError, IbResult, Lid};

/// Physical switches whose LFTs a swap of `a` and `b` would change.
///
/// Errors where [`crate::migration::swap_on_fabric`] would: when any
/// physical switch has no LFT installed yet.
pub fn affected_by_swap(subnet: &Subnet, a: Lid, b: Lid) -> IbResult<Vec<NodeId>> {
    let mut v = Vec::new();
    for n in subnet.physical_switches() {
        let lft = n
            .lft()
            .ok_or_else(|| IbError::Management(format!("{} has no LFT", subnet.name_of(n.id))))?;
        if lft.get(a) != lft.get(b) {
            v.push(n.id);
        }
    }
    v.sort_unstable_by_key(|n| n.index());
    Ok(v)
}

/// Physical switches whose LFTs a copy of `pf`'s row onto `vm` would
/// change.
///
/// Errors where [`crate::migration::copy_on_fabric`] would: when any
/// physical switch has no LFT, or has no row for the PF LID — the copy has
/// no source row there, so the op fails rather than skipping the switch
/// (the VM may still hold a stale row on it).
pub fn affected_by_copy(subnet: &Subnet, pf: Lid, vm: Lid) -> IbResult<Vec<NodeId>> {
    let mut v = Vec::new();
    for n in subnet.physical_switches() {
        let lft = n
            .lft()
            .ok_or_else(|| IbError::Management(format!("{} has no LFT", subnet.name_of(n.id))))?;
        let target = lft.get(pf).ok_or_else(|| {
            IbError::Management(format!(
                "{} has no row for PF LID {pf}",
                subnet.name_of(n.id)
            ))
        })?;
        if lft.get(vm) != Some(target) {
            v.push(n.id);
        }
    }
    v.sort_unstable_by_key(|n| n.index());
    Ok(v)
}

/// §VI-D's observation: migrations entirely within distinct leaf switches
/// can run concurrently without interfering, so the concurrency ceiling for
/// intra-leaf migrations is the number of leaf switches.
#[must_use]
pub fn max_concurrent_intra_leaf(subnet: &Subnet) -> usize {
    subnet.leaf_switches().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_sm::{SmConfig, SubnetManager};
    use ib_subnet::topology::fattree::two_level;
    use ib_types::PortNum;

    fn fabric() -> (ib_subnet::topology::BuiltTopology, SubnetManager) {
        let mut t = two_level(2, 3, 2);
        let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
        sm.bring_up(&mut t.subnet).unwrap();
        (t, sm)
    }

    fn host_lid(t: &ib_subnet::topology::BuiltTopology, i: usize) -> Lid {
        t.subnet.node(t.hosts[i]).ports[1].lid.unwrap()
    }

    /// Snapshot of every physical switch's LFT, for exact-diff checks.
    fn snapshot(subnet: &Subnet) -> Vec<(NodeId, ib_subnet::Lft)> {
        subnet
            .physical_switches()
            .filter_map(|n| n.lft().map(|l| (n.id, l.clone())))
            .collect()
    }

    /// Switches whose LFT differs from the snapshot, sorted like the
    /// predictions.
    fn mutated_since(subnet: &Subnet, snap: &[(NodeId, ib_subnet::Lft)]) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = snap
            .iter()
            .filter(|(id, before)| subnet.node(*id).lft() != Some(before))
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable_by_key(|n| n.index());
        v
    }

    #[test]
    fn swap_prediction_matches_actual_update() {
        let (mut t, mut sm) = fabric();
        let a = host_lid(&t, 1);
        let b = host_lid(&t, 4);
        let predicted = affected_by_swap(&t.subnet, a, b).unwrap();
        let stats = crate::migration::swap_on_fabric(
            &mut t.subnet,
            sm.sm_node,
            a,
            b,
            &crate::migration::MigrationOptions::default(),
            None,
            &mut sm.ledger,
        )
        .unwrap();
        assert_eq!(predicted.len(), stats.switches_updated);
    }

    #[test]
    fn copy_prediction_matches_actual_update() {
        let (mut t, mut sm) = fabric();
        let pf = host_lid(&t, 4);
        let vm = Lid::from_raw(40);
        let predicted = affected_by_copy(&t.subnet, pf, vm).unwrap();
        let stats = crate::migration::copy_on_fabric(
            &mut t.subnet,
            sm.sm_node,
            pf,
            vm,
            &crate::migration::MigrationOptions::default(),
            None,
            &mut sm.ledger,
        )
        .unwrap();
        assert_eq!(predicted.len(), stats.switches_updated);
        // And a re-prediction is now empty.
        assert!(affected_by_copy(&t.subnet, pf, vm).unwrap().is_empty());
    }

    /// Property: the predictions name *exactly* the switches whose LFTs the
    /// transactional ops mutate — same set, not just same count.
    #[test]
    fn predictions_pin_the_exact_mutated_switch_set() {
        // Swap, via the transactional variant.
        let (mut t, mut sm) = fabric();
        let a = host_lid(&t, 0);
        let b = host_lid(&t, 5);
        let predicted = affected_by_swap(&t.subnet, a, b).unwrap();
        let before = snapshot(&t.subnet);
        let mut transport = ib_mad::SmpTransport::perfect(sm.sm_node);
        crate::migration::swap_on_fabric_tx(
            &mut t.subnet,
            sm.sm_node,
            a,
            b,
            &crate::migration::MigrationOptions::default(),
            None,
            &mut transport,
            &mut sm.ledger,
        )
        .unwrap();
        assert_eq!(predicted, mutated_since(&t.subnet, &before));

        // Copy, via the transactional variant.
        let (mut t, mut sm) = fabric();
        let pf = host_lid(&t, 2);
        let vm = Lid::from_raw(41);
        let predicted = affected_by_copy(&t.subnet, pf, vm).unwrap();
        let before = snapshot(&t.subnet);
        let mut transport = ib_mad::SmpTransport::perfect(sm.sm_node);
        crate::migration::copy_on_fabric_tx(
            &mut t.subnet,
            sm.sm_node,
            pf,
            vm,
            &crate::migration::MigrationOptions::default(),
            None,
            &mut transport,
            &mut sm.ledger,
        )
        .unwrap();
        assert_eq!(predicted, mutated_since(&t.subnet, &before));
    }

    /// The predictions fail exactly where the ops fail: a switch with a
    /// missing PF row makes both `affected_by_copy` and `copy_on_fabric`
    /// error instead of treating the switch as unaffected (the VM may still
    /// have a stale row there).
    #[test]
    fn copy_errors_match_op_errors_on_missing_pf_row() {
        let (mut t, mut sm) = fabric();
        let pf = host_lid(&t, 4);
        let vm = Lid::from_raw(40);
        // Install a stale VM row everywhere, then drop the PF row on one
        // switch: the old predicate called that switch unaffected even
        // though the op aborts on it.
        let switches: Vec<NodeId> = t.subnet.physical_switches().map(|n| n.id).collect();
        for &sw in &switches {
            let lft = t.subnet.lft_mut(sw).unwrap();
            lft.set(vm, PortNum::new(1));
        }
        t.subnet.lft_mut(switches[0]).unwrap().clear(pf);
        assert!(affected_by_copy(&t.subnet, pf, vm).is_err());
        assert!(crate::migration::copy_on_fabric(
            &mut t.subnet,
            sm.sm_node,
            pf,
            vm,
            &crate::migration::MigrationOptions::default(),
            None,
            &mut sm.ledger,
        )
        .is_err());
    }

    #[test]
    fn same_port_lids_affect_nothing() {
        let (mut t, _sm) = fabric();
        // Give host 5's port a second LID: both route identically, so a
        // swap between them touches no switch.
        let extra = Lid::from_raw(50);
        t.subnet
            .assign_port_lid(t.hosts[5], PortNum::new(2), extra)
            .ok();
        // (port 2 does not exist on an HCA — fall back to simulating by
        // copying the row first)
        let pf = host_lid(&t, 5);
        for sw in t
            .subnet
            .physical_switches()
            .map(|n| n.id)
            .collect::<Vec<_>>()
        {
            let lft = t.subnet.lft_mut(sw).unwrap();
            if let Some(p) = lft.get(pf) {
                lft.set(extra, p);
            }
        }
        assert!(affected_by_swap(&t.subnet, pf, extra).unwrap().is_empty());
    }

    #[test]
    fn leaf_count_bounds_concurrency() {
        let (t, _sm) = fabric();
        assert_eq!(max_concurrent_intra_leaf(&t.subnet), 2);
    }
}
