//! Table I rows and the full-vs-vSwitch SMP comparison.
//!
//! [`Table1Row::for_subnet`] derives, from an actual configured subnet, the
//! quantities the paper tabulates: consumed LIDs, minimum LFT blocks per
//! switch, the `n·m` SMP floor of a full reconfiguration, and the
//! one-to-`2n` range of the vSwitch method.

use ib_mad::CostModel;
use ib_subnet::{lft::min_blocks_for, Subnet};

/// One row of the paper's Table I.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table1Row {
    /// End nodes (HCAs).
    pub nodes: usize,
    /// Physical switches (`n`).
    pub switches: usize,
    /// Consumed LIDs.
    pub lids: usize,
    /// Minimum LFT blocks per switch (`m`).
    pub min_lft_blocks_per_switch: usize,
    /// Minimum SMPs for a full reconfiguration (`n · m`).
    pub min_smps_full_rc: usize,
    /// Minimum SMPs for a LID swap/copy (always 1).
    pub min_smps_vswitch: usize,
    /// Maximum SMPs for a LID swap/copy (`2 · n`).
    pub max_smps_vswitch: usize,
}

impl Table1Row {
    /// Derives the row from a configured subnet.
    #[must_use]
    pub fn for_subnet(subnet: &Subnet) -> Self {
        let switches = subnet.num_physical_switches();
        let lids = subnet.num_lids();
        let m = subnet.topmost_lid().map_or(0, min_blocks_for);
        Self {
            nodes: subnet.num_hcas(),
            switches,
            lids,
            min_lft_blocks_per_switch: m,
            min_smps_full_rc: switches * m,
            min_smps_vswitch: 1,
            max_smps_vswitch: 2 * switches,
        }
    }

    /// Builds the row from raw counts (for the analytic sweep benches).
    #[must_use]
    pub fn from_counts(nodes: usize, switches: usize, lids: usize) -> Self {
        let m = lids.div_ceil(ib_types::LFT_BLOCK_SIZE);
        Self {
            nodes,
            switches,
            lids,
            min_lft_blocks_per_switch: m,
            min_smps_full_rc: switches * m,
            min_smps_vswitch: 1,
            max_smps_vswitch: 2 * switches,
        }
    }

    /// Worst-case vSwitch SMPs as a share of the full-reconfiguration
    /// floor — the improvement metric §VII-C quotes (33.3% for 324 nodes,
    /// 0.96% for 11664).
    #[must_use]
    pub fn worst_case_ratio(&self) -> f64 {
        if self.min_smps_full_rc == 0 {
            return 0.0;
        }
        self.max_smps_vswitch as f64 / self.min_smps_full_rc as f64
    }

    /// Serial time of the full distribution vs the vSwitch worst case under
    /// a cost model (equations 2 and 4/5): `(full_us, vswitch_us)`.
    #[must_use]
    pub fn distribution_times_us(&self, model: &CostModel, destination_routed: bool) -> (f64, f64) {
        let full = model.full_distribution_us(self.switches, self.min_lft_blocks_per_switch);
        let vsw = if destination_routed {
            model.vswitch_reconfig_destination_us(self.switches, 2)
        } else {
            model.vswitch_reconfig_directed_us(self.switches, 2)
        };
        (full, vsw)
    }
}

/// The paper's Table I, as published, for regression-testing our derived
/// rows against: `(nodes, switches, lids, min blocks, min SMPs full RC,
/// min swap SMPs, max swap SMPs)`.
pub const PAPER_TABLE1: [(usize, usize, usize, usize, usize, usize, usize); 4] = [
    (324, 36, 360, 6, 216, 1, 72),
    (648, 54, 702, 11, 594, 1, 108),
    (5832, 972, 6804, 107, 104004, 1, 1944),
    (11664, 1620, 13284, 208, 336960, 1, 3240),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_reproduces_published_table() {
        for &(nodes, switches, lids, m, full, min_v, max_v) in &PAPER_TABLE1 {
            let row = Table1Row::from_counts(nodes, switches, lids);
            assert_eq!(row.min_lft_blocks_per_switch, m, "{nodes} nodes");
            assert_eq!(row.min_smps_full_rc, full, "{nodes} nodes");
            assert_eq!(row.min_smps_vswitch, min_v);
            assert_eq!(row.max_smps_vswitch, max_v, "{nodes} nodes");
        }
    }

    #[test]
    fn worst_case_ratios_match_paper_quotes() {
        // §VII-C: 72/216 = 33.3% for 324 nodes; 3240/336960 = 0.96% for
        // 11664 nodes.
        let small = Table1Row::from_counts(324, 36, 360);
        assert!((small.worst_case_ratio() - 0.3333).abs() < 1e-3);
        let large = Table1Row::from_counts(11664, 1620, 13284);
        assert!((large.worst_case_ratio() - 0.0096).abs() < 1e-4);
    }

    #[test]
    fn savings_grow_with_subnet_size() {
        let ratios: Vec<f64> = PAPER_TABLE1
            .iter()
            .map(|&(n, s, l, ..)| Table1Row::from_counts(n, s, l).worst_case_ratio())
            .collect();
        for w in ratios.windows(2) {
            assert!(w[1] < w[0], "the relative cost must shrink as subnets grow");
        }
    }

    #[test]
    fn vswitch_distribution_always_cheaper() {
        let model = CostModel::default();
        for &(n, s, l, ..) in &PAPER_TABLE1 {
            let row = Table1Row::from_counts(n, s, l);
            let (full, vsw) = row.distribution_times_us(&model, true);
            assert!(vsw < full);
            let (_, vsw_directed) = row.distribution_times_us(&model, false);
            assert!(vsw < vsw_directed, "destination routing must win");
        }
    }
}
