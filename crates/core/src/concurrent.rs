//! Concurrent-migration admission (§VI-D).
//!
//! Migrations whose affected switch sets are disjoint can reconfigure in
//! parallel without interfering; the scheduler below greedily packs planned
//! migrations into conflict-free batches. In the best case — migrations
//! confined to distinct leaf switches — the batch width reaches the number
//! of leaves.

use rustc_hash::FxHashSet;

use ib_subnet::NodeId;

/// A planned migration with its predicted affected-switch set.
#[derive(Clone, Debug)]
pub struct PlannedMigration<T> {
    /// Caller's tag (a VM id, an index, ...).
    pub tag: T,
    /// Switches this migration will update (from [`crate::affected`]).
    pub affected: Vec<NodeId>,
}

/// Packs planned migrations into batches whose members touch pairwise
/// disjoint switch sets. Order within the input is preserved greedily:
/// each migration joins the earliest batch it does not conflict with.
pub fn schedule<T>(plans: Vec<PlannedMigration<T>>) -> Vec<Vec<PlannedMigration<T>>> {
    let mut batches: Vec<(FxHashSet<NodeId>, Vec<PlannedMigration<T>>)> = Vec::new();
    for plan in plans {
        let mut placed = None;
        for (i, (used, _)) in batches.iter().enumerate() {
            if plan.affected.iter().all(|sw| !used.contains(sw)) {
                placed = Some(i);
                break;
            }
        }
        match placed {
            Some(i) => {
                batches[i].0.extend(plan.affected.iter().copied());
                batches[i].1.push(plan);
            }
            None => {
                let used: FxHashSet<NodeId> = plan.affected.iter().copied().collect();
                batches.push((used, vec![plan]));
            }
        }
    }
    batches.into_iter().map(|(_, b)| b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(tag: u32, switches: &[usize]) -> PlannedMigration<u32> {
        PlannedMigration {
            tag,
            affected: switches.iter().map(|&i| NodeId::from_index(i)).collect(),
        }
    }

    #[test]
    fn disjoint_plans_share_a_batch() {
        let batches = schedule(vec![plan(1, &[0]), plan(2, &[1]), plan(3, &[2])]);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 3);
    }

    #[test]
    fn conflicting_plans_split() {
        let batches = schedule(vec![plan(1, &[0, 1]), plan(2, &[1, 2]), plan(3, &[3])]);
        assert_eq!(batches.len(), 2);
        // Plan 3 joins the first batch (disjoint from plan 1).
        assert_eq!(
            batches[0].iter().map(|p| p.tag).collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert_eq!(batches[1][0].tag, 2);
    }

    #[test]
    fn empty_affected_sets_always_fit() {
        let batches = schedule(vec![plan(1, &[]), plan(2, &[]), plan(3, &[0])]);
        assert_eq!(batches.len(), 1);
    }

    #[test]
    fn identical_sets_serialize() {
        let batches = schedule(vec![plan(1, &[5]), plan(2, &[5]), plan(3, &[5])]);
        assert_eq!(batches.len(), 3);
    }
}
