//! The topology-agnostic dynamic reconfiguration method (§V-C, Algorithm 1).
//!
//! Both variants share the same structure:
//!
//! * **(a)** one SMP to each participating hypervisor to set/unset the LID
//!   on the VF (plus one to install the vGUID at the destination), and
//! * **(b)** at most one or two `SubnSet(LinearForwardingTable)` SMPs per
//!   physical switch that actually needs its LFT changed:
//!   * *LID swapping* (prepopulated LIDs, §V-C1): exchange the rows of the
//!     VM's LID and the destination VF's LID — one SMP if the two LIDs
//!     share a 64-entry block, two otherwise (`m' ∈ {1, 2}`);
//!   * *LID copying* (dynamic assignment, §V-C2): overwrite the VM LID's
//!     row with the destination PF's row — always one SMP (`m' = 1`).
//!
//! No path is ever recomputed: `PCt` is eliminated outright, which is the
//! entire point of the paper.

use ib_mad::fault::{SmpChannel, SmpTransport};
use ib_mad::{Smp, SmpLedger};
use ib_sm::distribution::{hops_of, routing_for};
use ib_sm::SmpMode;
use ib_subnet::{Lft, NodeId, Subnet};
use ib_types::{IbError, IbResult, Lid, PortNum};

use crate::vm::VmId;

/// Tunables of one reconfiguration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationOptions {
    /// How the LFT-update SMPs are addressed. §VI-B: switch LIDs are
    /// untouched by a VM migration, so destination routing is safe and
    /// removes the per-SMP directed-route overhead `r` (equation 5).
    pub smp_mode: SmpMode,
    /// §VI-C's partially-static variant: first forward the migrating LID
    /// to port 255 (drop) on every switch about to be updated — one extra
    /// SMP per such switch — so in-flight traffic towards the mover is
    /// discarded instead of risking a transition deadlock.
    pub invalidate_first: bool,
    /// §VI-D: when source and destination hypervisors share a leaf switch,
    /// update only that leaf (a leaf is non-blocking, so the rest of the
    /// fabric keeps routing both LIDs toward it correctly).
    pub intra_leaf_shortcut: bool,
}

impl Default for MigrationOptions {
    fn default() -> Self {
        Self {
            smp_mode: SmpMode::Destination,
            invalidate_first: false,
            intra_leaf_shortcut: false,
        }
    }
}

/// SMP accounting of one LFT-update pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LftUpdateStats {
    /// `SubnSet(LinearForwardingTable)` SMPs for the update itself.
    pub lft_smps: usize,
    /// Extra SMPs spent on port-255 invalidation, if enabled.
    pub invalidation_smps: usize,
    /// Switches that actually changed — the paper's `n'`.
    pub switches_updated: usize,
    /// Largest per-switch block count — the paper's `m'` (1 or 2).
    pub max_blocks_per_switch: usize,
}

/// Everything one migration did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationReport {
    /// The migrated VM.
    pub vm: VmId,
    /// Source hypervisor index.
    pub from_hypervisor: usize,
    /// Destination hypervisor index.
    pub to_hypervisor: usize,
    /// VM LID before migration.
    pub lid_before: Lid,
    /// VM LID after migration (identical under both vSwitch architectures;
    /// different only under the Shared Port baseline).
    pub lid_after: Lid,
    /// Step (a) SMPs: set/unset LID on the participating hypervisors plus
    /// the vGUID install.
    pub hypervisor_smps: usize,
    /// Step (b) accounting.
    pub lft: LftUpdateStats,
    /// Whether source and destination share a leaf switch.
    pub intra_leaf: bool,
    /// Whether the intra-leaf shortcut actually restricted the update.
    pub used_leaf_shortcut: bool,
}

impl MigrationReport {
    /// Total SMPs of the whole migration.
    #[must_use]
    pub fn total_smps(&self) -> usize {
        self.hypervisor_smps + self.lft.lft_smps + self.lft.invalidation_smps
    }
}

/// The installed LFT of a switch the update pass already vetted, as an
/// error instead of a panic: with a degraded subnet (a fault event landing
/// mid-operation) the caller must get a chance to roll back.
fn lft_mut_or_err(subnet: &mut Subnet, sw: NodeId) -> IbResult<&mut Lft> {
    let name = subnet.name_of(sw).to_string();
    subnet
        .lft_mut(sw)
        .ok_or(IbError::Management(format!("{name} has no LFT")))
}

/// The switches Algorithm 1 iterates for one update pass: every physical
/// switch, or an explicit restriction (the §VI-D leaf-only case).
fn targets(subnet: &Subnet, restrict: Option<&[NodeId]>) -> Vec<NodeId> {
    match restrict {
        Some(r) => r.to_vec(),
        None => {
            let mut v: Vec<NodeId> = subnet.physical_switches().map(|n| n.id).collect();
            v.sort_unstable_by_key(|n| n.index());
            v
        }
    }
}

/// §V-C1 step (b): swap the LFT rows of `a` and `b` on every switch whose
/// rows differ. Exactly the paper's cost: `m' = 1` SMP per switch when the
/// LIDs share an LFT block, `m' = 2` otherwise, and `n'` = the number of
/// switches whose two rows are not already equal.
pub fn swap_on_fabric(
    subnet: &mut Subnet,
    sm_node: NodeId,
    a: Lid,
    b: Lid,
    opts: &MigrationOptions,
    restrict: Option<&[NodeId]>,
    ledger: &mut SmpLedger,
) -> IbResult<LftUpdateStats> {
    if a == b {
        return Err(IbError::Virtualization(
            "cannot swap a LID with itself".into(),
        ));
    }
    let mut stats = LftUpdateStats::default();
    let blocks_for_swap: Vec<usize> = if a.same_block(b) {
        vec![a.lft_block()]
    } else {
        vec![a.lft_block(), b.lft_block()]
    };

    for sw in targets(subnet, restrict) {
        let lft = subnet
            .lft(sw)
            .ok_or_else(|| IbError::Management(format!("{} has no LFT", subnet.name_of(sw))))?;
        let (pa, pb) = (lft.get(a), lft.get(b));
        if pa == pb {
            // §VI-B: the initial routing already forwards both LIDs the
            // same way from here — nothing to update on this switch.
            continue;
        }
        let routing = routing_for(subnet, sm_node, sw, opts.smp_mode)?;
        let hops = hops_of(subnet, sm_node, sw, &routing)?;
        if opts.invalidate_first {
            record_block_smp(subnet, sw, a.lft_block(), &routing, hops, ledger);
            lft_mut_or_err(subnet, sw)?.set(a, PortNum::DROP);
            stats.invalidation_smps += 1;
        }
        {
            let lft = lft_mut_or_err(subnet, sw)?;
            match pb {
                Some(p) => lft.set(a, p),
                None => lft.clear(a),
            }
            match pa {
                Some(p) => lft.set(b, p),
                None => lft.clear(b),
            }
        }
        for &block in &blocks_for_swap {
            record_block_smp(subnet, sw, block, &routing, hops, ledger);
        }
        stats.lft_smps += blocks_for_swap.len();
        stats.switches_updated += 1;
        stats.max_blocks_per_switch = stats.max_blocks_per_switch.max(blocks_for_swap.len());
    }
    Ok(stats)
}

/// §V-C2 step (b): make `vm_lid`'s row a copy of `pf_lid`'s row on every
/// switch where they differ. One SMP per updated switch, always.
pub fn copy_on_fabric(
    subnet: &mut Subnet,
    sm_node: NodeId,
    pf_lid: Lid,
    vm_lid: Lid,
    opts: &MigrationOptions,
    restrict: Option<&[NodeId]>,
    ledger: &mut SmpLedger,
) -> IbResult<LftUpdateStats> {
    if pf_lid == vm_lid {
        return Err(IbError::Virtualization(
            "VM LID cannot equal the PF LID it copies".into(),
        ));
    }
    let mut stats = LftUpdateStats::default();

    for sw in targets(subnet, restrict) {
        let lft = subnet
            .lft(sw)
            .ok_or_else(|| IbError::Management(format!("{} has no LFT", subnet.name_of(sw))))?;
        let target = lft.get(pf_lid).ok_or_else(|| {
            IbError::Management(format!(
                "{} has no row for PF LID {pf_lid}",
                subnet.name_of(sw)
            ))
        })?;
        if lft.get(vm_lid) == Some(target) {
            continue;
        }
        let routing = routing_for(subnet, sm_node, sw, opts.smp_mode)?;
        let hops = hops_of(subnet, sm_node, sw, &routing)?;
        if opts.invalidate_first {
            record_block_smp(subnet, sw, vm_lid.lft_block(), &routing, hops, ledger);
            lft_mut_or_err(subnet, sw)?.set(vm_lid, PortNum::DROP);
            stats.invalidation_smps += 1;
        }
        lft_mut_or_err(subnet, sw)?.set(vm_lid, target);
        record_block_smp(subnet, sw, vm_lid.lft_block(), &routing, hops, ledger);
        stats.lft_smps += 1;
        stats.switches_updated += 1;
        stats.max_blocks_per_switch = 1;
    }
    Ok(stats)
}

// ----------------------------------------------------------------------
// Transactional variants
// ----------------------------------------------------------------------

/// Accounting of one transactional LFT-update pass.
///
/// The attempts-versus-retries convention, pinned by regression tests and
/// reconciled against the [`SmpLedger`]'s per-attempt records: for every
/// *delivered* SMP, `attempts` counts all of its sends (first try
/// included) and `retries` counts `attempts − 1` — the sends beyond the
/// first. A fault-free pass therefore reports `retries == 0` and
/// `attempts` equal to its delivered-SMP count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxStats {
    /// Whether every LFT SMP was (eventually) delivered. `false` means the
    /// pass was rolled back and the installed LFTs match the pre-pass
    /// state.
    pub committed: bool,
    /// Retry attempts beyond each first try, summed over the delivered
    /// SMPs. Zero for a fault-free run.
    pub retries: usize,
    /// Total send attempts (first tries included) of the delivered SMPs.
    /// Always `retries` plus the number of delivered SMPs.
    pub attempts: usize,
    /// Switches whose rows were restored during rollback.
    pub rolled_back_switches: usize,
    /// Compensating SMPs attempted (best effort) during rollback.
    pub rollback_smps: usize,
}

impl TxStats {
    /// Absorbs the 0-based successful-attempt number the transport returned
    /// for one delivered SMP: `attempt` prior sends failed, so `attempt`
    /// retries and `attempt + 1` total attempts.
    pub(crate) fn count_delivery(&mut self, attempt: u32) {
        self.retries += attempt as usize;
        self.attempts += attempt as usize + 1;
    }
}

/// Everything one resilient (transactional) migration did — the
/// fault-aware counterpart of [`MigrationReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxMigrationReport {
    /// Whether the migration committed. `false` means every touched LFT
    /// row was rolled back and the VM still runs at the source.
    pub committed: bool,
    /// The VM the migration was for.
    pub vm: VmId,
    /// Source hypervisor index.
    pub from_hypervisor: usize,
    /// Destination hypervisor index.
    pub to_hypervisor: usize,
    /// The VM's LID (unchanged whether the migration commits or rolls
    /// back — that is the invariant the transaction protects).
    pub lid: Lid,
    /// Step (a) SMPs actually delivered to hypervisors.
    pub hypervisor_smps: usize,
    /// Step (b) accounting for whatever was applied before commit or
    /// rollback.
    pub lft: LftUpdateStats,
    /// Transactional accounting (retries, rollback cost).
    pub tx: TxStats,
}

/// One journaled LFT row: enough to undo a swap/copy on one switch.
#[derive(Clone, Copy, Debug)]
struct JournalRow {
    sw: NodeId,
    lid: Lid,
    old: Option<PortNum>,
}

/// §V-C1 step (b) under a faulty fabric: the row swap of
/// [`swap_on_fabric`], executed transactionally. Rows are applied switch
/// by switch and confirmed with retried SMPs through `transport`; on the
/// first persistent delivery failure every already-applied row is rolled
/// back (locally unconditionally, remotely via best-effort compensating
/// SMPs) and the pass reports `committed = false` instead of leaving the
/// fabric half-swapped.
#[allow(clippy::too_many_arguments)]
pub fn swap_on_fabric_tx<C: SmpChannel>(
    subnet: &mut Subnet,
    sm_node: NodeId,
    a: Lid,
    b: Lid,
    opts: &MigrationOptions,
    restrict: Option<&[NodeId]>,
    transport: &mut SmpTransport<C>,
    ledger: &mut SmpLedger,
) -> IbResult<(LftUpdateStats, TxStats)> {
    if a == b {
        return Err(IbError::Virtualization(
            "cannot swap a LID with itself".into(),
        ));
    }
    let _span = ledger.observer().span("migration.step_b.swap");
    let mut stats = LftUpdateStats::default();
    let mut tx = TxStats {
        committed: true,
        ..TxStats::default()
    };
    let mut journal: Vec<JournalRow> = Vec::new();
    let blocks_for_swap: Vec<usize> = if a.same_block(b) {
        vec![a.lft_block()]
    } else {
        vec![a.lft_block(), b.lft_block()]
    };

    for sw in targets(subnet, restrict) {
        let lft = subnet
            .lft(sw)
            .ok_or_else(|| IbError::Management(format!("{} has no LFT", subnet.name_of(sw))))?;
        let (pa, pb) = (lft.get(a), lft.get(b));
        if pa == pb {
            continue;
        }
        // An unroutable switch (e.g. cut off by a mid-migration link
        // failure) is a delivery failure, not a programming error.
        let Ok(routing) = routing_for(subnet, sm_node, sw, opts.smp_mode) else {
            rollback(subnet, sm_node, opts, &journal, transport, ledger, &mut tx);
            return Ok((stats, tx));
        };
        let hops = hops_of(subnet, sm_node, sw, &routing).unwrap_or(0);
        journal.push(JournalRow {
            sw,
            lid: a,
            old: pa,
        });
        journal.push(JournalRow {
            sw,
            lid: b,
            old: pb,
        });
        {
            let Some(lft) = subnet.lft_mut(sw) else {
                // The switch degraded between the read and the write: treat
                // it as a delivery failure and roll the pass back.
                rollback(subnet, sm_node, opts, &journal, transport, ledger, &mut tx);
                return Ok((stats, tx));
            };
            match pb {
                Some(p) => lft.set(a, p),
                None => lft.clear(a),
            }
            match pa {
                Some(p) => lft.set(b, p),
                None => lft.clear(b),
            }
        }
        let mut failed = false;
        for &block in &blocks_for_swap {
            match send_block_smp(subnet, sw, block, &routing, hops, transport, ledger) {
                Ok(attempt) => {
                    tx.count_delivery(attempt);
                    stats.lft_smps += 1;
                }
                Err(IbError::Transport(_)) => {
                    failed = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        if failed {
            rollback(subnet, sm_node, opts, &journal, transport, ledger, &mut tx);
            return Ok((stats, tx));
        }
        stats.switches_updated += 1;
        stats.max_blocks_per_switch = stats.max_blocks_per_switch.max(blocks_for_swap.len());
    }
    observe_commit(ledger, &tx);
    Ok((stats, tx))
}

/// §V-C2 step (b) under a faulty fabric: the row copy of
/// [`copy_on_fabric`], executed transactionally with the same
/// journal/rollback discipline as [`swap_on_fabric_tx`].
#[allow(clippy::too_many_arguments)]
pub fn copy_on_fabric_tx<C: SmpChannel>(
    subnet: &mut Subnet,
    sm_node: NodeId,
    pf_lid: Lid,
    vm_lid: Lid,
    opts: &MigrationOptions,
    restrict: Option<&[NodeId]>,
    transport: &mut SmpTransport<C>,
    ledger: &mut SmpLedger,
) -> IbResult<(LftUpdateStats, TxStats)> {
    if pf_lid == vm_lid {
        return Err(IbError::Virtualization(
            "VM LID cannot equal the PF LID it copies".into(),
        ));
    }
    let _span = ledger.observer().span("migration.step_b.copy");
    let mut stats = LftUpdateStats::default();
    let mut tx = TxStats {
        committed: true,
        ..TxStats::default()
    };
    let mut journal: Vec<JournalRow> = Vec::new();

    for sw in targets(subnet, restrict) {
        let lft = subnet
            .lft(sw)
            .ok_or_else(|| IbError::Management(format!("{} has no LFT", subnet.name_of(sw))))?;
        let target = lft.get(pf_lid).ok_or_else(|| {
            IbError::Management(format!(
                "{} has no row for PF LID {pf_lid}",
                subnet.name_of(sw)
            ))
        })?;
        let old = lft.get(vm_lid);
        if old == Some(target) {
            continue;
        }
        let Ok(routing) = routing_for(subnet, sm_node, sw, opts.smp_mode) else {
            rollback(subnet, sm_node, opts, &journal, transport, ledger, &mut tx);
            return Ok((stats, tx));
        };
        let hops = hops_of(subnet, sm_node, sw, &routing).unwrap_or(0);
        journal.push(JournalRow {
            sw,
            lid: vm_lid,
            old,
        });
        let Some(lft) = subnet.lft_mut(sw) else {
            rollback(subnet, sm_node, opts, &journal, transport, ledger, &mut tx);
            return Ok((stats, tx));
        };
        lft.set(vm_lid, target);
        match send_block_smp(
            subnet,
            sw,
            vm_lid.lft_block(),
            &routing,
            hops,
            transport,
            ledger,
        ) {
            Ok(attempt) => {
                tx.count_delivery(attempt);
                stats.lft_smps += 1;
                stats.switches_updated += 1;
                stats.max_blocks_per_switch = 1;
            }
            Err(IbError::Transport(_)) => {
                rollback(subnet, sm_node, opts, &journal, transport, ledger, &mut tx);
                return Ok((stats, tx));
            }
            Err(e) => return Err(e),
        }
    }
    observe_commit(ledger, &tx);
    Ok((stats, tx))
}

/// Mirrors a committed pass's transactional accounting into the observer.
fn observe_commit(ledger: &SmpLedger, tx: &TxStats) {
    let observer = ledger.observer();
    if observer.is_enabled() {
        observer.incr("migration.tx.committed");
        observer.record("migration.tx.retries", tx.retries as u64);
        observer.record("migration.tx.attempts", tx.attempts as u64);
    }
}

/// Restores every journaled row (newest first) and pushes best-effort
/// compensating SMPs for the touched blocks.
///
/// The local restore is unconditional: the installed LFT models the state
/// the SM *intends*, and a compensating SMP that is itself lost leaves a
/// divergent physical switch that the next trap-driven re-sweep repairs —
/// exactly OpenSM's safety net, so the simulation does not block rollback
/// on it.
fn rollback<C: SmpChannel>(
    subnet: &mut Subnet,
    sm_node: NodeId,
    opts: &MigrationOptions,
    journal: &[JournalRow],
    transport: &mut SmpTransport<C>,
    ledger: &mut SmpLedger,
    tx: &mut TxStats,
) {
    tx.committed = false;
    let mut switches: Vec<NodeId> = Vec::new();
    let mut blocks: Vec<(NodeId, usize)> = Vec::new();
    for row in journal.iter().rev() {
        if let Some(lft) = subnet.lft_mut(row.sw) {
            match row.old {
                Some(p) => lft.set(row.lid, p),
                None => lft.clear(row.lid),
            }
        }
        if !switches.contains(&row.sw) {
            switches.push(row.sw);
        }
        let key = (row.sw, row.lid.lft_block());
        if !blocks.contains(&key) {
            blocks.push(key);
        }
    }
    tx.rolled_back_switches = switches.len();
    for (sw, block) in blocks {
        let Ok(routing) = routing_for(subnet, sm_node, sw, opts.smp_mode) else {
            continue; // unreachable switch: the re-sweep will repair it
        };
        let hops = hops_of(subnet, sm_node, sw, &routing).unwrap_or(0);
        tx.rollback_smps += 1;
        let _ = send_block_smp(subnet, sw, block, &routing, hops, transport, ledger);
    }
    let observer = ledger.observer();
    if observer.is_enabled() {
        observer.incr("migration.tx.rolled_back");
        observer.record("migration.tx.rollback_smps", tx.rollback_smps as u64);
    }
}

/// Builds the `SubnSet(LinearForwardingTable)` SMP for `block` from the
/// currently-installed LFT and pushes it through the retrying transport.
fn send_block_smp<C: SmpChannel>(
    subnet: &Subnet,
    sw: NodeId,
    block: usize,
    routing: &ib_mad::SmpRouting,
    hops: usize,
    transport: &mut SmpTransport<C>,
    ledger: &mut SmpLedger,
) -> IbResult<u32> {
    let empty = vec![None; ib_types::LFT_BLOCK_SIZE];
    let payload = subnet
        .lft(sw)
        .and_then(|l| l.block(block))
        .map_or(empty, <[_]>::to_vec);
    let smp = Smp::set_lft_block(sw, routing.clone(), block, &payload);
    transport.send(subnet, &smp, hops, ledger)
}

fn record_block_smp(
    subnet: &Subnet,
    sw: NodeId,
    block: usize,
    routing: &ib_mad::SmpRouting,
    hops: usize,
    ledger: &mut SmpLedger,
) {
    let empty = vec![None; ib_types::LFT_BLOCK_SIZE];
    let payload = subnet
        .lft(sw)
        .and_then(|l| l.block(block))
        .map_or(empty.clone(), <[_]>::to_vec);
    let smp = Smp::set_lft_block(sw, routing.clone(), block, &payload);
    ledger.record(&smp, hops);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_routing::testutil::assign_lids;
    use ib_routing::EngineKind;
    use ib_sm::{SmConfig, SubnetManager};
    use ib_subnet::topology::fattree::two_level;

    /// Bring up a 2-level fat tree with the default SM.
    fn fabric() -> (ib_subnet::topology::BuiltTopology, SubnetManager) {
        let mut t = two_level(2, 3, 2);
        let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
        sm.bring_up(&mut t.subnet).unwrap();
        (t, sm)
    }

    fn host_lid(t: &ib_subnet::topology::BuiltTopology, i: usize) -> Lid {
        t.subnet.node(t.hosts[i]).ports[1].lid.unwrap()
    }

    #[test]
    fn swap_costs_one_smp_per_switch_same_block() {
        let (mut t, mut sm) = fabric();
        let a = host_lid(&t, 1); // on leaf 0
        let b = host_lid(&t, 4); // on leaf 1
        let opts = MigrationOptions::default();
        let stats =
            swap_on_fabric(&mut t.subnet, sm.sm_node, a, b, &opts, None, &mut sm.ledger).unwrap();
        // All LIDs < 64: every updated switch takes exactly one SMP.
        assert_eq!(stats.max_blocks_per_switch, 1);
        assert!(stats.switches_updated >= 1);
        assert_eq!(stats.lft_smps, stats.switches_updated);
        assert_eq!(stats.invalidation_smps, 0);
    }

    #[test]
    fn swap_across_blocks_costs_two() {
        let (mut t, mut sm) = fabric();
        // Re-home host 5 onto LID 70 (block 1) to force the 2-SMP case.
        let h5 = t.hosts[5];
        let old = host_lid(&t, 5);
        t.subnet.clear_lid(old).unwrap();
        t.subnet
            .assign_port_lid(h5, PortNum::new(1), Lid::from_raw(70))
            .unwrap();
        sm.full_reconfiguration(&mut t.subnet).unwrap();

        let a = host_lid(&t, 1);
        let stats = swap_on_fabric(
            &mut t.subnet,
            sm.sm_node,
            a,
            Lid::from_raw(70),
            &MigrationOptions::default(),
            None,
            &mut sm.ledger,
        )
        .unwrap();
        assert_eq!(stats.max_blocks_per_switch, 2);
        assert_eq!(stats.lft_smps, stats.switches_updated * 2);
    }

    #[test]
    fn swap_skips_switches_already_aligned() {
        let (mut t, mut sm) = fabric();
        // Hosts 1 and 2 share leaf 0: from leaf 1's perspective both are
        // reached over (possibly) the same uplink; from leaf 0 they differ.
        let a = host_lid(&t, 1);
        let b = host_lid(&t, 2);
        let total_switches = t.subnet.num_physical_switches();
        let stats = swap_on_fabric(
            &mut t.subnet,
            sm.sm_node,
            a,
            b,
            &MigrationOptions::default(),
            None,
            &mut sm.ledger,
        )
        .unwrap();
        assert!(
            stats.switches_updated < total_switches,
            "n' must be < n when some switches already route both LIDs alike"
        );
        // Their shared leaf must be among the updated (different ports).
        assert!(stats.switches_updated >= 1);
    }

    #[test]
    fn swap_is_involution_on_the_fabric() {
        let (mut t, mut sm) = fabric();
        let a = host_lid(&t, 1);
        let b = host_lid(&t, 4);
        let snapshot: Vec<_> = t
            .subnet
            .physical_switches()
            .map(|n| (n.id, n.lft().unwrap().clone()))
            .collect();
        let opts = MigrationOptions::default();
        swap_on_fabric(&mut t.subnet, sm.sm_node, a, b, &opts, None, &mut sm.ledger).unwrap();
        swap_on_fabric(&mut t.subnet, sm.sm_node, a, b, &opts, None, &mut sm.ledger).unwrap();
        for (id, before) in snapshot {
            assert_eq!(t.subnet.lft(id).unwrap(), &before);
        }
    }

    #[test]
    fn copy_costs_at_most_one_smp_per_switch() {
        let (mut t, mut sm) = fabric();
        // Add a fresh VM LID and copy host 4's path onto it.
        let pf = host_lid(&t, 4);
        let vm_lid = Lid::from_raw(40);
        // Register the LID on a scratch endpoint so tracing works: reuse
        // host 5's port (multi-LID endpoints are what vSwitches do).
        let stats = copy_on_fabric(
            &mut t.subnet,
            sm.sm_node,
            pf,
            vm_lid,
            &MigrationOptions::default(),
            None,
            &mut sm.ledger,
        )
        .unwrap();
        assert_eq!(stats.max_blocks_per_switch, 1);
        assert_eq!(stats.lft_smps, stats.switches_updated);
        // Every physical switch now forwards the VM LID like the PF LID.
        for sw in t.subnet.physical_switches() {
            let lft = sw.lft().unwrap();
            assert_eq!(lft.get(vm_lid), lft.get(pf));
        }
    }

    #[test]
    fn copy_is_idempotent() {
        let (mut t, mut sm) = fabric();
        let pf = host_lid(&t, 4);
        let vm_lid = Lid::from_raw(40);
        let opts = MigrationOptions::default();
        copy_on_fabric(
            &mut t.subnet,
            sm.sm_node,
            pf,
            vm_lid,
            &opts,
            None,
            &mut sm.ledger,
        )
        .unwrap();
        let again = copy_on_fabric(
            &mut t.subnet,
            sm.sm_node,
            pf,
            vm_lid,
            &opts,
            None,
            &mut sm.ledger,
        )
        .unwrap();
        assert_eq!(again.lft_smps, 0);
        assert_eq!(again.switches_updated, 0);
    }

    #[test]
    fn invalidate_first_adds_n_prime_smps() {
        let (mut t, mut sm) = fabric();
        let a = host_lid(&t, 1);
        let b = host_lid(&t, 4);
        let opts = MigrationOptions {
            invalidate_first: true,
            ..MigrationOptions::default()
        };
        let stats =
            swap_on_fabric(&mut t.subnet, sm.sm_node, a, b, &opts, None, &mut sm.ledger).unwrap();
        assert_eq!(stats.invalidation_smps, stats.switches_updated);
    }

    #[test]
    fn restriction_limits_the_update() {
        let (mut t, mut sm) = fabric();
        let a = host_lid(&t, 1);
        let b = host_lid(&t, 2); // same leaf
        let leaf0 = t.switch_levels[0][0];
        let stats = swap_on_fabric(
            &mut t.subnet,
            sm.sm_node,
            a,
            b,
            &MigrationOptions::default(),
            Some(&[leaf0]),
            &mut sm.ledger,
        )
        .unwrap();
        assert!(stats.switches_updated <= 1);
        // The LFT swap moves the LIDs between the two hosts; move the
        // endpoint registrations accordingly (the caller's step (a)).
        t.subnet.clear_lid(a).unwrap();
        t.subnet.clear_lid(b).unwrap();
        t.subnet
            .assign_port_lid(t.hosts[2], PortNum::new(1), a)
            .unwrap();
        t.subnet
            .assign_port_lid(t.hosts[1], PortNum::new(1), b)
            .unwrap();
        // Traffic to both LIDs still delivers from everywhere.
        for &h in &t.hosts {
            for lid in [a, b] {
                let path = t.subnet.trace_route(h, lid, 16).unwrap();
                let end = *path.last().unwrap();
                let ep = t.subnet.endpoint_of(lid).unwrap();
                assert_eq!(end, ep.node);
            }
        }
    }

    #[test]
    fn self_swap_and_self_copy_rejected() {
        let (mut t, mut sm) = fabric();
        let a = host_lid(&t, 1);
        let opts = MigrationOptions::default();
        assert!(
            swap_on_fabric(&mut t.subnet, sm.sm_node, a, a, &opts, None, &mut sm.ledger).is_err()
        );
        assert!(
            copy_on_fabric(&mut t.subnet, sm.sm_node, a, a, &opts, None, &mut sm.ledger).is_err()
        );
    }

    #[test]
    fn tx_swap_under_perfect_transport_matches_classic() {
        let (mut t, mut sm) = fabric();
        let (mut t2, mut sm2) = fabric();
        let a = host_lid(&t, 1);
        let b = host_lid(&t, 4);
        let opts = MigrationOptions::default();
        let classic =
            swap_on_fabric(&mut t.subnet, sm.sm_node, a, b, &opts, None, &mut sm.ledger).unwrap();
        let mut transport = SmpTransport::perfect(sm2.sm_node);
        let (stats, tx) = swap_on_fabric_tx(
            &mut t2.subnet,
            sm2.sm_node,
            a,
            b,
            &opts,
            None,
            &mut transport,
            &mut sm2.ledger,
        )
        .unwrap();
        assert!(tx.committed);
        assert_eq!(tx.retries, 0);
        assert_eq!(tx.rollback_smps, 0);
        assert_eq!(stats, classic);
        assert_eq!(sm.ledger.records(), sm2.ledger.records());
        for sw in t.subnet.physical_switches() {
            assert_eq!(t2.subnet.lft(sw.id).unwrap(), sw.lft().unwrap());
        }
    }

    #[test]
    fn tx_swap_rolls_back_on_black_hole() {
        let (mut t, mut sm) = fabric();
        let a = host_lid(&t, 1);
        let b = host_lid(&t, 4);
        let snapshot: Vec<_> = t
            .subnet
            .physical_switches()
            .map(|n| (n.id, n.lft().unwrap().clone()))
            .collect();
        let mut transport =
            SmpTransport::with_channel(sm.sm_node, ib_mad::LossyChannel::black_hole());
        let (_, tx) = swap_on_fabric_tx(
            &mut t.subnet,
            sm.sm_node,
            a,
            b,
            &MigrationOptions::default(),
            None,
            &mut transport,
            &mut sm.ledger,
        )
        .unwrap();
        assert!(!tx.committed);
        // The very first switch fails, so exactly its rows were journaled.
        assert_eq!(tx.rolled_back_switches, 1);
        assert!(tx.rollback_smps >= 1);
        for (id, before) in snapshot {
            assert_eq!(t.subnet.lft(id).unwrap(), &before, "rows must be restored");
        }
        assert!(sm.ledger.dropped() > 0);
    }

    #[test]
    fn tx_copy_rolls_back_on_black_hole() {
        let (mut t, mut sm) = fabric();
        let pf = host_lid(&t, 4);
        let vm_lid = Lid::from_raw(40);
        let snapshot: Vec<_> = t
            .subnet
            .physical_switches()
            .map(|n| (n.id, n.lft().unwrap().clone()))
            .collect();
        let mut transport =
            SmpTransport::with_channel(sm.sm_node, ib_mad::LossyChannel::black_hole());
        let (_, tx) = copy_on_fabric_tx(
            &mut t.subnet,
            sm.sm_node,
            pf,
            vm_lid,
            &MigrationOptions::default(),
            None,
            &mut transport,
            &mut sm.ledger,
        )
        .unwrap();
        assert!(!tx.committed);
        for (id, before) in snapshot {
            assert_eq!(t.subnet.lft(id).unwrap(), &before);
        }
    }

    #[test]
    fn tx_swap_survives_moderate_loss() {
        let (mut t, mut sm) = fabric();
        let (mut base, mut sm_base) = fabric();
        let a = host_lid(&t, 1);
        let b = host_lid(&t, 4);
        let opts = MigrationOptions::default();
        swap_on_fabric(
            &mut base.subnet,
            sm_base.sm_node,
            a,
            b,
            &opts,
            None,
            &mut sm_base.ledger,
        )
        .unwrap();
        let mut transport = SmpTransport::lossy(sm.sm_node, 7, 0.10, 0);
        transport.retry.max_attempts = 8;
        let (_, tx) = swap_on_fabric_tx(
            &mut t.subnet,
            sm.sm_node,
            a,
            b,
            &opts,
            None,
            &mut transport,
            &mut sm.ledger,
        )
        .unwrap();
        assert!(tx.committed, "8 attempts at 10% per-hop loss must converge");
        for sw in base.subnet.physical_switches() {
            assert_eq!(
                t.subnet.lft(sw.id).unwrap(),
                sw.lft().unwrap(),
                "lossy commit must equal the fault-free result"
            );
        }
    }

    #[test]
    fn destination_mode_smps_avoid_directed_overhead() {
        let (mut t, mut sm) = fabric();
        let a = host_lid(&t, 1);
        let b = host_lid(&t, 4);
        sm.ledger.reset();
        let opts = MigrationOptions {
            smp_mode: SmpMode::Destination,
            ..MigrationOptions::default()
        };
        swap_on_fabric(&mut t.subnet, sm.sm_node, a, b, &opts, None, &mut sm.ledger).unwrap();
        assert!(sm.ledger.records().iter().all(|r| !r.directed));

        let opts = MigrationOptions {
            smp_mode: SmpMode::Directed,
            ..MigrationOptions::default()
        };
        sm.ledger.reset();
        swap_on_fabric(&mut t.subnet, sm.sm_node, b, a, &opts, None, &mut sm.ledger).unwrap();
        assert!(sm.ledger.records().iter().all(|r| r.directed));
        let _ = EngineKind::MinHop;
        let _ = assign_lids;
    }
}
