//! LID-budget arithmetic for the two vSwitch architectures (§V-A/§V-B).

use ib_types::MAX_UNICAST_LID;

/// Capacity limits of the prepopulated-LID architecture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrepopulatedLimits {
    /// Maximum hypervisors a subnet can hold (ignoring switches/SM nodes).
    pub max_hypervisors: usize,
    /// Maximum VMs (`max_hypervisors * vfs_per_hypervisor`).
    pub max_vms: usize,
}

/// §V-A's arithmetic: each hypervisor consumes `1 + vfs` LIDs (one for the
/// PF — shared with the vSwitch — and one per VF, used or not), so the
/// theoretical ceiling is `⌊49151 / (vfs + 1)⌋` hypervisors.
///
/// The paper's example: 16 VFs → 17 LIDs each → 2891 hypervisors, 46256
/// VMs. Switches, routers and dedicated SM nodes shrink this further.
#[must_use]
pub fn prepopulated_limits(vfs_per_hypervisor: usize) -> PrepopulatedLimits {
    let per_hyp = vfs_per_hypervisor + 1;
    let max_hypervisors = MAX_UNICAST_LID as usize / per_hyp;
    PrepopulatedLimits {
        max_hypervisors,
        max_vms: max_hypervisors * vfs_per_hypervisor,
    }
}

/// LIDs consumed by a prepopulated deployment of `hypervisors` hypervisors
/// with `vfs` VFs each, plus `switches` physical switches and
/// `other_nodes` (routers, dedicated SM nodes).
#[must_use]
pub fn prepopulated_lids_consumed(
    hypervisors: usize,
    vfs: usize,
    switches: usize,
    other_nodes: usize,
) -> usize {
    hypervisors * (1 + vfs) + switches + other_nodes
}

/// LIDs consumed under dynamic assignment: only the PFs, switches, other
/// nodes and *active VMs* count. The VF pool itself is unbounded (§V-B:
/// "the number of VFs may exceed that of the unicast LID limit").
#[must_use]
pub fn dynamic_lids_consumed(
    hypervisors: usize,
    active_vms: usize,
    switches: usize,
    other_nodes: usize,
) -> usize {
    hypervisors + active_vms + switches + other_nodes
}

/// Whether a deployment fits the unicast LID space.
#[must_use]
pub fn fits_lid_space(lids: usize) -> bool {
    lids <= MAX_UNICAST_LID as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_16_vfs() {
        // §V-A: ⌊49151/17⌋ = 2891 hypervisors, 2891·16 = 46256 VMs.
        let lim = prepopulated_limits(16);
        assert_eq!(lim.max_hypervisors, 2891);
        assert_eq!(lim.max_vms, 46256);
    }

    #[test]
    fn mellanox_max_126_vfs() {
        // Footnote 2: ConnectX-3 supports up to 126 VFs. 49151/127 = 387.
        let lim = prepopulated_limits(126);
        assert_eq!(lim.max_hypervisors, 387);
        assert_eq!(lim.max_vms, 48762);
    }

    #[test]
    fn prepopulated_counts_idle_vfs() {
        // 100 hypervisors x 16 VFs + 12 switches: VFs cost LIDs even with
        // zero VMs running.
        let lids = prepopulated_lids_consumed(100, 16, 12, 1);
        assert_eq!(lids, 100 * 17 + 13);
        assert!(fits_lid_space(lids));
    }

    #[test]
    fn dynamic_counts_only_active_vms() {
        let idle = dynamic_lids_consumed(100, 0, 12, 1);
        assert_eq!(idle, 113);
        let busy = dynamic_lids_consumed(100, 1600, 12, 1);
        assert_eq!(busy, 1713);
        // The same deployment prepopulated would cost 1713 vs 1813:
        assert!(idle < prepopulated_lids_consumed(100, 16, 12, 1));
    }

    #[test]
    fn overflow_detected() {
        let lids = prepopulated_lids_consumed(3000, 16, 0, 0);
        assert!(!fits_lid_space(lids));
    }

    #[test]
    fn initial_path_computation_scale_example() {
        // §V-A/V-B's comparison: 2891 hypervisors with 16 VFs prepopulate
        // ~49k LIDs; dynamic assignment boots with <3000.
        let prepop = prepopulated_lids_consumed(2891, 16, 0, 0);
        let dynamic = dynamic_lids_consumed(2891, 0, 0, 0);
        assert!(prepop > 49_000);
        assert!(dynamic < 3_000);
    }
}
