//! Virtual machines as the virtualization layer sees them.

use std::fmt;

use ib_types::{Gid, Guid, Lid};

/// Opaque VM handle.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmId(pub u64);

impl fmt::Debug for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VM{}", self.0)
    }
}

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm-{}", self.0)
    }
}

/// A running VM and the IB addresses bound to it.
///
/// Under the vSwitch architectures all three addresses (§II-B) belong to
/// the *VM* and follow it across migrations; under Shared Port the LID
/// belongs to the hypervisor and changes when the VM moves — the exact
/// deficiency the paper sets out to fix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VmRecord {
    /// Handle.
    pub id: VmId,
    /// Human-readable name.
    pub name: String,
    /// Index of the hosting hypervisor.
    pub hypervisor: usize,
    /// VF slot index on that hypervisor.
    pub vf_slot: usize,
    /// The VM's LID. Under Shared Port this aliases the hypervisor PF LID.
    pub lid: Lid,
    /// The VM's virtual GUID (migrates with the VM).
    pub vguid: Guid,
}

impl VmRecord {
    /// The VM's GID under the default subnet prefix (derived from the
    /// vGUID, so it follows the VM automatically).
    #[must_use]
    pub fn gid(&self) -> Gid {
        Gid::link_local(self.vguid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gid_follows_vguid() {
        let vm = VmRecord {
            id: VmId(1),
            name: "vm".into(),
            hypervisor: 0,
            vf_slot: 0,
            lid: Lid::from_raw(5),
            vguid: Guid::from_raw(0xabc),
        };
        assert_eq!(vm.gid().guid(), vm.vguid);
        assert_eq!(VmId(3).to_string(), "vm-3");
    }
}
