//! Multi-tenant partitioning over the vSwitch architecture.
//!
//! The cloud scenario of §I — HPC-as-a-Service with VMs for many customers
//! on one fabric — needs more than addressing: tenants must be *isolated*.
//! InfiniBand does it with partition keys; the SM programs each port's
//! P_Key table and HCAs drop packets whose P_Key does not match.
//!
//! The vSwitch architecture composes naturally: every VF is a complete
//! vHCA with its own P_Key table, and because a migrating VM keeps its
//! addresses, the *partition follows the VM* too — one more
//! `SubnSet(P_KeyTable)` SMP to the destination hypervisor, piggybacking
//! on step (a) of Algorithm 1.

use rustc_hash::FxHashMap;

use ib_mad::Smp;
use ib_sm::distribution::{hops_of, routing_for};
use ib_sm::SmpMode;
use ib_types::{IbError, IbResult, PKey, PortNum};

use crate::datacenter::DataCenter;
use crate::vm::VmId;

/// Membership grade within a partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Membership {
    /// May talk to every member.
    Full,
    /// May talk to full members only.
    Limited,
}

/// A named partition (tenant).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Partition number (15 bits).
    pub number: u16,
    /// Human-readable tenant name.
    pub name: String,
}

/// The tenancy directory: partitions, VM enrollments, and the SMP
/// accounting for P_Key table programming.
///
/// ```
/// use ib_core::{DataCenter, DataCenterConfig, Membership, Tenancy, VirtArch};
/// use ib_subnet::topology::fattree;
///
/// let mut dc = DataCenter::from_topology(
///     fattree::two_level(2, 2, 2),
///     DataCenterConfig::default(),
/// ).unwrap();
/// let mut tenancy = Tenancy::new();
/// tenancy.create_partition(0x10, "acme").unwrap();
///
/// let web = dc.create_vm("web", 0).unwrap();
/// let db = dc.create_vm("db", 1).unwrap();
/// tenancy.enroll(&mut dc, web, 0x10, Membership::Full).unwrap();
/// tenancy.enroll(&mut dc, db, 0x10, Membership::Limited).unwrap();
/// assert!(tenancy.can_communicate(web, db));
///
/// // The partition follows the VM across a live migration.
/// dc.migrate_vm(web, 3).unwrap();
/// tenancy.after_migration(&mut dc, web).unwrap();
/// assert!(tenancy.can_communicate(web, db));
/// ```
#[derive(Debug, Default)]
pub struct Tenancy {
    partitions: FxHashMap<u16, Partition>,
    enrollment: FxHashMap<VmId, (u16, Membership)>,
    /// `SubnSet(P_KeyTable)` SMPs sent.
    pub pkey_smps: usize,
}

impl Tenancy {
    /// An empty tenancy directory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a partition.
    pub fn create_partition(&mut self, number: u16, name: impl Into<String>) -> IbResult<()> {
        // Validate the number through PKey construction.
        let _ = PKey::new(number, true).map_err(IbError::from)?;
        if self.partitions.contains_key(&number) {
            return Err(IbError::Virtualization(format!(
                "partition {number:#06x} already exists"
            )));
        }
        self.partitions.insert(
            number,
            Partition {
                number,
                name: name.into(),
            },
        );
        Ok(())
    }

    /// Enrolls a VM into a partition, programming the P_Key table of the
    /// VM's current VF through one SMP to the hosting hypervisor.
    pub fn enroll(
        &mut self,
        dc: &mut DataCenter,
        vm: VmId,
        partition: u16,
        membership: Membership,
    ) -> IbResult<()> {
        if !self.partitions.contains_key(&partition) {
            return Err(IbError::Virtualization(format!(
                "partition {partition:#06x} does not exist"
            )));
        }
        let rec = dc
            .vm(vm)
            .ok_or_else(|| IbError::Virtualization(format!("{vm} does not exist")))?;
        let pf = dc.hypervisors[rec.hypervisor].pf;
        self.enrollment.insert(vm, (partition, membership));
        self.send_table(dc, vm, pf)?;
        Ok(())
    }

    /// The P_Key a VM currently operates with.
    #[must_use]
    pub fn pkey_of(&self, vm: VmId) -> Option<PKey> {
        // The number was validated at enrollment; if it somehow went bad,
        // the VM reads as unenrolled rather than panicking.
        self.enrollment
            .get(&vm)
            .and_then(|&(num, m)| PKey::new(num, m == Membership::Full).ok())
    }

    /// Whether two VMs may communicate under the partition rules.
    #[must_use]
    pub fn can_communicate(&self, a: VmId, b: VmId) -> bool {
        match (self.pkey_of(a), self.pkey_of(b)) {
            (Some(ka), Some(kb)) => ka.matches(kb),
            // Unenrolled VMs ride the default partition together.
            (None, None) => true,
            _ => false,
        }
    }

    /// Re-programs a VM's P_Key table after a migration (call with the
    /// migration report's destination). One more SMP to the destination
    /// hypervisor — the partition follows the VM.
    pub fn after_migration(&mut self, dc: &mut DataCenter, vm: VmId) -> IbResult<()> {
        if !self.enrollment.contains_key(&vm) {
            return Ok(());
        }
        let rec = dc
            .vm(vm)
            .ok_or_else(|| IbError::Virtualization(format!("{vm} does not exist")))?;
        let pf = dc.hypervisors[rec.hypervisor].pf;
        self.send_table(dc, vm, pf)
    }

    /// Drops a VM's enrollment (call from VM destruction).
    pub fn expel(&mut self, vm: VmId) {
        self.enrollment.remove(&vm);
    }

    /// Members of a partition.
    #[must_use]
    pub fn members(&self, partition: u16) -> Vec<(VmId, Membership)> {
        let mut v: Vec<(VmId, Membership)> = self
            .enrollment
            .iter()
            .filter(|(_, &(p, _))| p == partition)
            .map(|(&vm, &(_, m))| (vm, m))
            .collect();
        v.sort_unstable_by_key(|&(vm, _)| vm);
        v
    }

    fn send_table(&mut self, dc: &mut DataCenter, vm: VmId, pf: ib_subnet::NodeId) -> IbResult<()> {
        let key = self
            .pkey_of(vm)
            .ok_or_else(|| IbError::Virtualization(format!("{vm} is not enrolled")))?;
        let routing = routing_for(&dc.subnet, dc.sm.sm_node, pf, SmpMode::Directed)?;
        let hops = hops_of(&dc.subnet, dc.sm.sm_node, pf, &routing)?;
        let smp = Smp::set_pkey_table(
            pf,
            routing,
            PortNum::new(1),
            vec![key.raw(), ib_types::DEFAULT_PKEY.raw()],
        );
        dc.sm.ledger.record(&smp, hops);
        self.pkey_smps += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataCenterConfig, VirtArch};
    use ib_mad::AttributeKind;
    use ib_subnet::topology::fattree::two_level;

    fn dc() -> DataCenter {
        DataCenter::from_topology(
            two_level(2, 3, 2),
            DataCenterConfig {
                arch: VirtArch::VSwitchPrepopulated,
                vfs_per_hypervisor: 2,
                ..DataCenterConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn enrollment_programs_pkey_tables() {
        let mut dc = dc();
        let mut tenancy = Tenancy::new();
        tenancy.create_partition(0x10, "acme").unwrap();
        let a = dc.create_vm("a", 0).unwrap();
        let b = dc.create_vm("b", 1).unwrap();
        tenancy.enroll(&mut dc, a, 0x10, Membership::Full).unwrap();
        tenancy.enroll(&mut dc, b, 0x10, Membership::Full).unwrap();
        assert_eq!(tenancy.pkey_smps, 2);
        assert_eq!(dc.sm.ledger.count_attribute(AttributeKind::PKeyTable), 2);
        assert!(tenancy.can_communicate(a, b));
    }

    #[test]
    fn tenants_are_isolated() {
        let mut dc = dc();
        let mut tenancy = Tenancy::new();
        tenancy.create_partition(0x10, "acme").unwrap();
        tenancy.create_partition(0x20, "globex").unwrap();
        let a = dc.create_vm("a", 0).unwrap();
        let b = dc.create_vm("b", 1).unwrap();
        tenancy.enroll(&mut dc, a, 0x10, Membership::Full).unwrap();
        tenancy.enroll(&mut dc, b, 0x20, Membership::Full).unwrap();
        assert!(!tenancy.can_communicate(a, b));
        // An unenrolled VM cannot reach either tenant.
        let c = dc.create_vm("c", 2).unwrap();
        assert!(!tenancy.can_communicate(a, c));
    }

    #[test]
    fn limited_members_need_a_full_peer() {
        let mut dc = dc();
        let mut tenancy = Tenancy::new();
        tenancy.create_partition(0x30, "storage").unwrap();
        let server = dc.create_vm("server", 0).unwrap();
        let c1 = dc.create_vm("client-1", 1).unwrap();
        let c2 = dc.create_vm("client-2", 2).unwrap();
        tenancy
            .enroll(&mut dc, server, 0x30, Membership::Full)
            .unwrap();
        tenancy
            .enroll(&mut dc, c1, 0x30, Membership::Limited)
            .unwrap();
        tenancy
            .enroll(&mut dc, c2, 0x30, Membership::Limited)
            .unwrap();
        assert!(tenancy.can_communicate(c1, server));
        assert!(!tenancy.can_communicate(c1, c2), "limited-limited blocked");
        assert_eq!(tenancy.members(0x30).len(), 3);
    }

    #[test]
    fn partition_follows_the_vm_across_migration() {
        let mut dc = dc();
        let mut tenancy = Tenancy::new();
        tenancy.create_partition(0x10, "acme").unwrap();
        let a = dc.create_vm("a", 0).unwrap();
        tenancy.enroll(&mut dc, a, 0x10, Membership::Full).unwrap();
        let before = tenancy.pkey_smps;

        dc.migrate_vm(a, 5).unwrap();
        tenancy.after_migration(&mut dc, a).unwrap();

        assert_eq!(tenancy.pkey_smps, before + 1, "one SMP to the destination");
        assert_eq!(tenancy.pkey_of(a).unwrap().number(), 0x10);
        dc.verify_connectivity().unwrap();
    }

    #[test]
    fn duplicate_partition_and_bad_numbers_rejected() {
        let mut tenancy = Tenancy::new();
        tenancy.create_partition(0x10, "acme").unwrap();
        assert!(tenancy.create_partition(0x10, "again").is_err());
        assert!(tenancy.create_partition(0x8000, "too-big").is_err());
    }

    #[test]
    fn expel_removes_membership() {
        let mut dc = dc();
        let mut tenancy = Tenancy::new();
        tenancy.create_partition(0x10, "acme").unwrap();
        let a = dc.create_vm("a", 0).unwrap();
        tenancy.enroll(&mut dc, a, 0x10, Membership::Full).unwrap();
        tenancy.expel(a);
        assert!(tenancy.pkey_of(a).is_none());
        assert!(tenancy.members(0x10).is_empty());
    }
}
