//! Transition deadlock analysis (§VI-C).
//!
//! Two routing functions that are each deadlock-free can still deadlock
//! while they *coexist* during a reconfiguration — and a live migration
//! moves a node ID to a new place in the network, which the classical
//! Up*/Down* coexistence arguments do not cover. The paper's position:
//! with LID swapping, deadlocks are possible but rare, and IB timeouts
//! resolve them; the port-255 invalidation variant avoids them at the cost
//! of `n'` extra SMPs and dropped packets.
//!
//! This module makes the hazard *observable*: snapshot the LFTs before a
//! migration, and ask whether the union of old and new routing functions
//! has a cyclic channel dependency graph.

use ib_routing::cdg::Cdg;
use ib_routing::graph::SwitchGraph;
use ib_routing::tables::{RoutingTables, VlAssignment};
use ib_subnet::{Lft, NodeId, Subnet};
use ib_types::IbResult;
use rustc_hash::FxHashMap;

/// A frozen copy of every switch LFT (physical and virtual).
#[derive(Clone, Debug)]
pub struct LftSnapshot {
    lfts: FxHashMap<NodeId, Lft>,
}

impl LftSnapshot {
    /// Captures the current LFTs of all switches.
    #[must_use]
    pub fn capture(subnet: &Subnet) -> Self {
        Self {
            lfts: subnet
                .switches()
                .filter_map(|n| n.lft().map(|lft| (n.id, lft.clone())))
                .collect(),
        }
    }

    fn as_tables(&self, label: &'static str) -> RoutingTables {
        RoutingTables {
            lfts: self.lfts.clone(),
            vls: VlAssignment::SingleVl,
            engine: label,
            decisions: 0,
        }
    }
}

/// Outcome of a transition analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransitionAnalysis {
    /// Whether `R_old` alone is deadlock-free (acyclic CDG on one lane).
    pub old_acyclic: bool,
    /// Whether `R_new` alone is deadlock-free.
    pub new_acyclic: bool,
    /// Whether the union `R_old ∪ R_new` is deadlock-free.
    pub union_acyclic: bool,
    /// Length of a witness cycle in the union CDG, if any.
    pub union_cycle_len: Option<usize>,
}

impl TransitionAnalysis {
    /// The §VI-C hazard: both routings safe alone, unsafe together.
    #[must_use]
    pub fn transition_hazard(&self) -> bool {
        self.old_acyclic && self.new_acyclic && !self.union_acyclic
    }
}

/// Compares the pre-migration snapshot with the subnet's current LFTs.
pub fn analyze_transition(subnet: &Subnet, before: &LftSnapshot) -> IbResult<TransitionAnalysis> {
    let g = SwitchGraph::build(subnet)?;
    let old = before.as_tables("old");
    let new = LftSnapshot::capture(subnet).as_tables("new");

    let old_cdg = Cdg::from_tables(&g, &old, |_| true);
    let new_cdg = Cdg::from_tables(&g, &new, |_| true);
    let union = Cdg::from_union(&g, &[&old, &new], |_| true);
    let cycle = union.find_cycle();

    Ok(TransitionAnalysis {
        old_acyclic: old_cdg.find_cycle().is_none(),
        new_acyclic: new_cdg.find_cycle().is_none(),
        union_acyclic: cycle.is_none(),
        union_cycle_len: cycle.map(|c| c.len()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::{swap_on_fabric, MigrationOptions};
    use ib_sm::{SmConfig, SubnetManager};
    use ib_subnet::topology::fattree::two_level;
    use ib_types::Lid;

    #[test]
    fn fat_tree_swap_transition_is_safe() {
        // On a fat tree with shortest-path routing the union of pre- and
        // post-swap routings stays acyclic: swaps permute rows, and all
        // rows route up-then-down.
        let mut t = two_level(2, 3, 2);
        let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
        sm.bring_up(&mut t.subnet).unwrap();

        let before = LftSnapshot::capture(&t.subnet);
        let a = t.subnet.node(t.hosts[1]).ports[1].lid.unwrap();
        let b = t.subnet.node(t.hosts[4]).ports[1].lid.unwrap();
        swap_on_fabric(
            &mut t.subnet,
            sm.sm_node,
            a,
            b,
            &MigrationOptions::default(),
            None,
            &mut sm.ledger,
        )
        .unwrap();

        let analysis = analyze_transition(&t.subnet, &before).unwrap();
        assert!(analysis.old_acyclic);
        assert!(analysis.new_acyclic);
        assert!(analysis.union_acyclic);
        assert!(!analysis.transition_hazard());
    }

    #[test]
    fn hand_built_transition_hazard_detected() {
        // Construct the §VI-C hazard explicitly on a 4-ring: R_old routes
        // LID x clockwise and y counterclockwise; R_new swaps them. Each
        // alone is acyclic; their union closes the ring.
        let mut s = Subnet::new();
        let sw: Vec<NodeId> = (0..4).map(|i| s.add_switch(format!("r{i}"), 4)).collect();
        let hosts: Vec<NodeId> = (0..4).map(|i| s.add_hca(format!("h{i}"))).collect();
        for i in 0..4 {
            // Port 1 = clockwise, port 2 = counterclockwise, port 3 = host.
            s.connect(
                sw[i],
                ib_types::PortNum::new(1),
                sw[(i + 1) % 4],
                ib_types::PortNum::new(2),
            )
            .unwrap();
            s.connect(
                sw[i],
                ib_types::PortNum::new(3),
                hosts[i],
                ib_types::PortNum::new(1),
            )
            .unwrap();
        }
        for (i, &h) in hosts.iter().enumerate() {
            s.assign_port_lid(h, ib_types::PortNum::new(1), Lid::from_raw(i as u16 + 1))
                .unwrap();
        }
        // R_old: every LID routed clockwise for two hops then delivered.
        // Dependencies chain clockwise around half the ring per LID.
        let cw = ib_types::PortNum::new(1);
        let host_port = ib_types::PortNum::new(3);
        for i in 0..4usize {
            let lid = Lid::from_raw(i as u16 + 1);
            // Deliver at i; the two preceding ring switches route clockwise.
            for (j, node) in sw.iter().enumerate() {
                let lft = s.lft_mut(*node).unwrap();
                if j == i {
                    lft.set(lid, host_port);
                } else {
                    lft.set(lid, cw);
                }
            }
        }
        let before = LftSnapshot::capture(&s);
        // R_new: reverse the ring direction for every LID.
        let ccw = ib_types::PortNum::new(2);
        for i in 0..4usize {
            let lid = Lid::from_raw(i as u16 + 1);
            for (j, node) in sw.iter().enumerate() {
                let lft = s.lft_mut(*node).unwrap();
                if j != i {
                    lft.set(lid, ccw);
                }
            }
        }
        let analysis = analyze_transition(&s, &before).unwrap();
        // Clockwise-only routing of 4 LIDs around a 4-ring uses all four
        // clockwise channels with chained dependencies: that alone is
        // already cyclic — which is fine for this test as long as the
        // union is *also* cyclic and detected.
        assert!(!analysis.union_acyclic);
        assert!(analysis.union_cycle_len.is_some());
    }

    #[test]
    fn no_change_union_equals_old() {
        let mut t = two_level(2, 2, 2);
        let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
        sm.bring_up(&mut t.subnet).unwrap();
        let before = LftSnapshot::capture(&t.subnet);
        let analysis = analyze_transition(&t.subnet, &before).unwrap();
        assert!(analysis.union_acyclic);
    }
}
