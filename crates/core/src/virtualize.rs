//! Turning plain hosts into SR-IOV hypervisors.
//!
//! A physical host HCA cabled to a leaf switch becomes, under the vSwitch
//! architecture (Fig. 2 of the paper), a little subtree: the leaf port now
//! leads to a **vSwitch**, behind which sit the **PF** (used by the
//! hypervisor itself) and `n` **VFs** (each a complete vHCA handed to a
//! VM). Under Shared Port the host keeps its single HCA and VFs are mere
//! GUID slots sharing the PF's LID and port.

use ib_subnet::{NodeId, Subnet};
use ib_types::{IbError, IbResult, Lid, PortNum};

use crate::vm::VmId;

/// Which SR-IOV addressing architecture a data center runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VirtArch {
    /// §IV-A: one LID per hypervisor, shared by the PF and every VF.
    SharedPort,
    /// §V-A: a vSwitch per HCA; every VF LID prepopulated at boot.
    VSwitchPrepopulated,
    /// §V-B: a vSwitch per HCA; LIDs assigned as VMs are created.
    VSwitchDynamic,
}

impl VirtArch {
    /// Whether this architecture exposes a vSwitch (both vSwitch variants).
    #[must_use]
    pub fn has_vswitch(self) -> bool {
        !matches!(self, Self::SharedPort)
    }
}

impl std::fmt::Display for VirtArch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::SharedPort => "shared-port",
            Self::VSwitchPrepopulated => "vswitch-prepopulated",
            Self::VSwitchDynamic => "vswitch-dynamic",
        })
    }
}

/// One SR-IOV virtual function slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VfSlot {
    /// The vHCA node representing this VF in the subnet (present in both
    /// vSwitch modes; under Shared Port the slot is only a GUID slot and
    /// has no node).
    pub node: Option<NodeId>,
    /// The VM currently attached, if any.
    pub attached: Option<VmId>,
}

impl VfSlot {
    /// Whether the slot can accept a VM.
    #[must_use]
    pub fn is_free(&self) -> bool {
        self.attached.is_none()
    }
}

/// A hypervisor: the PF the host owns plus its VF slots (and, in vSwitch
/// modes, the vSwitch node between them and the fabric).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hypervisor {
    /// Index of this hypervisor within the data center.
    pub index: usize,
    /// The vSwitch node (vSwitch modes only).
    pub vswitch: Option<NodeId>,
    /// The PF node (the original host HCA).
    pub pf: NodeId,
    /// VF slots.
    pub vfs: Vec<VfSlot>,
    /// The leaf switch this hypervisor hangs off.
    pub leaf: NodeId,
    /// The leaf port that carries the hypervisor's uplink.
    pub leaf_port: PortNum,
}

impl Hypervisor {
    /// Index of the first free VF slot.
    #[must_use]
    pub fn free_slot(&self) -> Option<usize> {
        self.vfs.iter().position(VfSlot::is_free)
    }

    /// Number of attached VMs.
    #[must_use]
    pub fn active_vms(&self) -> usize {
        self.vfs.iter().filter(|v| v.attached.is_some()).count()
    }

    /// The PF's LID (reads the subnet).
    pub fn pf_lid(&self, subnet: &Subnet) -> IbResult<Lid> {
        subnet.node(self.pf).lids().next().ok_or_else(|| {
            IbError::Management(format!("PF of hypervisor {} has no LID", self.index))
        })
    }

    /// The LID currently on a VF slot, if any.
    #[must_use]
    pub fn vf_lid(&self, subnet: &Subnet, slot: usize) -> Option<Lid> {
        let node = self.vfs.get(slot)?.node?;
        subnet.node(node).lids().next()
    }
}

/// Port layout on a vSwitch: port 1 is the uplink to the leaf, port 2 the
/// PF, ports 3.. the VFs.
pub const VSWITCH_UPLINK: PortNum = PortNum::new(1);
/// The vSwitch port carrying the PF.
pub const VSWITCH_PF_PORT: PortNum = PortNum::new(2);

/// The vSwitch port carrying VF slot `slot`.
#[must_use]
pub fn vswitch_vf_port(slot: usize) -> PortNum {
    PortNum::new(3 + slot as u8)
}

/// Converts host HCA `host` (cabled to a leaf) into a hypervisor.
///
/// In vSwitch modes this splices a vSwitch between the leaf and the host
/// and adds `num_vfs` vHCA nodes; whether the vHCAs are cabled at once
/// (prepopulated: the SM will then see and number them) or left uncabled
/// until a VM attaches (dynamic) follows the architecture. Under Shared
/// Port the topology is untouched and the VFs are bookkeeping slots.
pub fn virtualize_host(
    subnet: &mut Subnet,
    arch: VirtArch,
    index: usize,
    host: NodeId,
    num_vfs: usize,
) -> IbResult<Hypervisor> {
    if !subnet.node(host).is_hca() {
        return Err(IbError::Virtualization(format!(
            "{} is not an HCA",
            subnet.name_of(host)
        )));
    }
    let (host_port, leaf_ep) =
        subnet.node(host).connected_ports().next().ok_or_else(|| {
            IbError::Virtualization(format!("{} is uncabled", subnet.name_of(host)))
        })?;

    match arch {
        VirtArch::SharedPort => Ok(Hypervisor {
            index,
            vswitch: None,
            pf: host,
            vfs: vec![
                VfSlot {
                    node: None,
                    attached: None,
                };
                num_vfs
            ],
            leaf: leaf_ep.node,
            leaf_port: leaf_ep.port,
        }),
        VirtArch::VSwitchPrepopulated | VirtArch::VSwitchDynamic => {
            // Splice the vSwitch in: leaf <-> vswitch(1), vswitch(2) <-> PF.
            subnet.disconnect(host, host_port)?;
            let vsw = subnet.add_vswitch(format!("hyp{index}-vsw"), 2 + num_vfs as u8);
            subnet.connect(leaf_ep.node, leaf_ep.port, vsw, VSWITCH_UPLINK)?;
            subnet.connect(vsw, VSWITCH_PF_PORT, host, host_port)?;

            let mut vfs = Vec::with_capacity(num_vfs);
            for slot in 0..num_vfs {
                let vf = subnet.add_vhca(format!("hyp{index}-vf{slot}"));
                if arch == VirtArch::VSwitchPrepopulated {
                    // Cabled from boot: the SM discovers it and prepopulates
                    // a LID for it.
                    subnet.connect(vsw, vswitch_vf_port(slot), vf, PortNum::new(1))?;
                }
                vfs.push(VfSlot {
                    node: Some(vf),
                    attached: None,
                });
            }
            Ok(Hypervisor {
                index,
                vswitch: Some(vsw),
                pf: host,
                vfs,
                leaf: leaf_ep.node,
                leaf_port: leaf_ep.port,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_subnet::topology::basic::single_switch;

    #[test]
    fn shared_port_leaves_topology_alone() {
        let mut t = single_switch(2);
        let before = t.subnet.num_nodes();
        let hyp = virtualize_host(&mut t.subnet, VirtArch::SharedPort, 0, t.hosts[0], 4).unwrap();
        assert_eq!(t.subnet.num_nodes(), before);
        assert!(hyp.vswitch.is_none());
        assert_eq!(hyp.vfs.len(), 4);
        assert!(hyp.vfs.iter().all(|v| v.node.is_none()));
        t.subnet.validate(true).unwrap();
    }

    #[test]
    fn prepopulated_splices_vswitch_and_cables_vfs() {
        let mut t = single_switch(2);
        let hyp = virtualize_host(
            &mut t.subnet,
            VirtArch::VSwitchPrepopulated,
            0,
            t.hosts[0],
            3,
        )
        .unwrap();
        let vsw = hyp.vswitch.unwrap();
        // Leaf -> vSwitch on the original leaf port.
        assert_eq!(
            t.subnet.neighbor(hyp.leaf, hyp.leaf_port).unwrap().node,
            vsw
        );
        // vSwitch port 2 -> PF, ports 3..6 -> VFs.
        assert_eq!(
            t.subnet.neighbor(vsw, VSWITCH_PF_PORT).unwrap().node,
            hyp.pf
        );
        for (slot, vf) in hyp.vfs.iter().enumerate() {
            assert_eq!(
                t.subnet.neighbor(vsw, vswitch_vf_port(slot)).unwrap().node,
                vf.node.unwrap()
            );
        }
        t.subnet.validate(true).unwrap();
    }

    #[test]
    fn dynamic_leaves_vfs_uncabled() {
        let mut t = single_switch(2);
        let hyp =
            virtualize_host(&mut t.subnet, VirtArch::VSwitchDynamic, 0, t.hosts[0], 3).unwrap();
        for vf in &hyp.vfs {
            let node = vf.node.unwrap();
            assert!(t.subnet.node(node).connected_ports().next().is_none());
        }
        // The subnet minus the floating VFs is still connected; a full
        // validate(true) would flag them, which is exactly the point.
        assert!(t.subnet.validate(true).is_err());
        assert!(t.subnet.validate(false).is_ok());
    }

    #[test]
    fn uncabled_host_rejected() {
        let mut s = Subnet::new();
        let h = s.add_hca("floating");
        assert!(virtualize_host(&mut s, VirtArch::SharedPort, 0, h, 2).is_err());
    }

    #[test]
    fn free_slot_tracking() {
        let mut t = single_switch(1);
        let mut hyp = virtualize_host(
            &mut t.subnet,
            VirtArch::VSwitchPrepopulated,
            0,
            t.hosts[0],
            2,
        )
        .unwrap();
        assert_eq!(hyp.free_slot(), Some(0));
        hyp.vfs[0].attached = Some(VmId(9));
        assert_eq!(hyp.free_slot(), Some(1));
        hyp.vfs[1].attached = Some(VmId(10));
        assert_eq!(hyp.free_slot(), None);
        assert_eq!(hyp.active_vms(), 2);
    }
}
