//! The parallel sweep must be invisible in the output: for any worker
//! count, a full bring-up on the paper's fat trees installs byte-identical
//! LFTs and logs an identical SMP ledger. Planning fans out across scoped
//! threads, but the SMP stream is serialized in ascending switch order —
//! these tests pin that contract on real Fig. 7 topologies (324 = 36
//! switches × 6 blocks, 648 = 54 × 11).

use ib_mad::SmpLedger;
use ib_routing::EngineKind;
use ib_sm::{RoutingOptions, SmConfig, SmpMode, SubnetManager, SweepOptions};
use ib_subnet::topology::{fattree, BuiltTopology};
use ib_subnet::{Lft, NodeId};

/// Brings the fabric up with the fat-tree engine (the cheap one — these
/// run in debug) at the given worker count, returning the full ledger and
/// every installed switch LFT.
fn sweep(build: fn() -> BuiltTopology, workers: usize) -> (SmpLedger, Vec<(NodeId, Lft)>) {
    let mut t = build();
    let mut sm = SubnetManager::new(
        t.hosts[0],
        SmConfig {
            engine: EngineKind::FatTree,
            smp_mode: SmpMode::Directed,
            sweep: SweepOptions::with_workers(workers),
            routing: RoutingOptions::default().with_workers(workers),
            ..SmConfig::default()
        },
    );
    let report = sm.bring_up(&mut t.subnet).expect("bring-up");
    assert!(report.distribution.lft_smps > 0);
    let lfts = t
        .subnet
        .physical_switches()
        .map(|s| (s.id, s.lft().expect("installed LFT").clone()))
        .collect();
    (sm.ledger, lfts)
}

fn assert_worker_count_invisible(build: fn() -> BuiltTopology, expect_lft_smps: usize) {
    let (ref_ledger, ref_lfts) = sweep(build, 1);
    assert_eq!(
        ref_ledger.phase_total("lft-distribution"),
        expect_lft_smps,
        "virgin fabric pays n x m SMPs"
    );
    for workers in [2usize, 8] {
        let (ledger, lfts) = sweep(build, workers);
        assert_eq!(
            ref_ledger.records(),
            ledger.records(),
            "ledger differs at workers={workers}"
        );
        assert_eq!(
            ref_ledger.phase_total("lft-distribution"),
            ledger.phase_total("lft-distribution"),
            "SMP count differs at workers={workers}"
        );
        assert_eq!(ref_lfts, lfts, "LFTs differ at workers={workers}");
    }
}

#[test]
fn fat_tree_324_sweep_is_worker_count_invariant() {
    // Table I row 1: 36 switches x 6 blocks.
    assert_worker_count_invisible(fattree::paper_324, 36 * 6);
}

#[test]
fn fat_tree_648_sweep_is_worker_count_invariant() {
    // Table I row 2: 54 switches x 11 blocks.
    assert_worker_count_invisible(fattree::paper_648, 54 * 11);
}

#[test]
fn workers_zero_resolves_to_machine_parallelism() {
    // `workers: 0` means "ask the OS" — it must behave like any other
    // worker count, not panic or serialize the stream differently.
    let (ref_ledger, ref_lfts) = sweep(fattree::paper_324, 1);
    let (ledger, lfts) = sweep(fattree::paper_324, 0);
    assert_eq!(ref_ledger.records(), ledger.records());
    assert_eq!(ref_lfts, lfts);
}
