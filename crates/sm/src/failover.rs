//! Subnet-manager redundancy: election and failover.
//!
//! Production IB fabrics run several SM instances; exactly one is MASTER,
//! the rest sit in STANDBY polling the master. On master death a standby
//! with the highest (priority, GUID) pair takes over, re-sweeps the
//! fabric, and — crucially for this paper's story — *adopts* the existing
//! LID and LFT state rather than renumbering: a failover must not be a
//! full reconfiguration, for the same reason a migration must not be.
//! (§V-A's capacity discussion counts "dedicated SM nodes" among the LID
//! consumers; this module is what those nodes run.)

use ib_subnet::{NodeId, Subnet};
use ib_types::{IbError, IbResult};

use crate::{SmConfig, SubnetManager};

/// SM instance states, after IBA's SMInfo state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SmState {
    /// Actively managing the subnet.
    Master,
    /// Alive, monitoring the master.
    Standby,
    /// Configured not to take over.
    NotActive,
}

/// One SM instance in the redundancy group.
#[derive(Debug)]
pub struct SmInstance {
    /// The node this instance runs on.
    pub node: NodeId,
    /// Election priority (higher wins; ties broken by node GUID).
    pub priority: u8,
    /// Current state.
    pub state: SmState,
    /// The manager proper (holds ledger + LID space when master).
    pub manager: SubnetManager,
}

/// A group of SM instances with exactly one master after election.
#[derive(Debug)]
pub struct SmGroup {
    instances: Vec<SmInstance>,
    master: Option<usize>,
}

impl SmGroup {
    /// Creates a group; call [`SmGroup::elect`] to pick the master.
    #[must_use]
    pub fn new(config: SmConfig, members: Vec<(NodeId, u8)>) -> Self {
        let instances = members
            .into_iter()
            .map(|(node, priority)| SmInstance {
                node,
                priority,
                state: SmState::Standby,
                manager: SubnetManager::new(node, config),
            })
            .collect();
        Self {
            instances,
            master: None,
        }
    }

    /// Elects the master: highest priority, ties broken by highest node
    /// GUID — the IBA rule.
    pub fn elect(&mut self, subnet: &Subnet) -> IbResult<NodeId> {
        let winner = self
            .instances
            .iter()
            .enumerate()
            .filter(|(_, i)| i.state != SmState::NotActive)
            .max_by_key(|(_, i)| (i.priority, subnet.node(i.node).guid.raw()))
            .map(|(idx, _)| idx)
            .ok_or_else(|| IbError::Management("no electable SM instance".into()))?;
        for (idx, inst) in self.instances.iter_mut().enumerate() {
            inst.state = if idx == winner {
                SmState::Master
            } else if inst.state != SmState::NotActive {
                SmState::Standby
            } else {
                SmState::NotActive
            };
        }
        self.master = Some(winner);
        Ok(self.instances[winner].node)
    }

    /// The current master instance.
    #[must_use]
    pub fn master(&self) -> Option<&SmInstance> {
        self.master.map(|i| &self.instances[i])
    }

    /// Mutable master access (to run bring-ups and reconfigurations).
    pub fn master_mut(&mut self) -> IbResult<&mut SmInstance> {
        let idx = self
            .master
            .ok_or_else(|| IbError::Management("no master elected".into()))?;
        Ok(&mut self.instances[idx])
    }

    /// All members and their states.
    #[must_use]
    pub fn members(&self) -> Vec<(NodeId, SmState)> {
        self.instances.iter().map(|i| (i.node, i.state)).collect()
    }

    /// Kills the master (models node failure) and fails over: the next
    /// standby is elected and **adopts** fabric state — it re-sweeps to
    /// learn the topology and registers the already-assigned LIDs in its
    /// own allocator, sending zero `SubnSet` SMPs.
    ///
    /// Returns the new master's node and the number of (read-only,
    /// `SubnGet`) discovery SMPs the takeover cost.
    pub fn fail_over(&mut self, subnet: &mut Subnet) -> IbResult<(NodeId, usize)> {
        let dead = self
            .master
            .ok_or_else(|| IbError::Management("no master to fail".into()))?;
        self.instances[dead].state = SmState::NotActive;
        self.master = None;

        let new_master = self.elect(subnet)?;
        let inst = self.master_mut()?;
        // Adopt, don't renumber: a discovery sweep plus LID-space resync.
        let before = inst.manager.ledger.total();
        let disc = crate::discovery::sweep(subnet, inst.manager.sm_node, &mut inst.manager.ledger)?;
        let _ = disc;
        for lid in subnet.lids() {
            if !inst.manager.lid_space.is_allocated(lid) {
                inst.manager.lid_space.claim(lid)?;
            }
        }
        let takeover_smps = inst.manager.ledger.total() - before;
        Ok((new_master, takeover_smps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_mad::AttributeKind;
    use ib_subnet::topology::fattree::two_level;

    fn fabric_with_group() -> (ib_subnet::topology::BuiltTopology, SmGroup) {
        let t = two_level(2, 3, 2);
        // Three SM candidates on three hosts with distinct priorities.
        let group = SmGroup::new(
            SmConfig::default(),
            vec![(t.hosts[0], 5), (t.hosts[1], 10), (t.hosts[2], 10)],
        );
        (t, group)
    }

    #[test]
    fn election_prefers_priority_then_guid() {
        let (t, mut group) = fabric_with_group();
        let master = group.elect(&t.subnet).unwrap();
        // Hosts 1 and 2 tie on priority 10; host 2 has the higher GUID
        // (minted later).
        assert_eq!(master, t.hosts[2]);
        let states: Vec<SmState> = group.members().iter().map(|&(_, s)| s).collect();
        assert_eq!(
            states,
            vec![SmState::Standby, SmState::Standby, SmState::Master]
        );
    }

    #[test]
    fn master_brings_up_and_failover_adopts_without_sets() {
        let (mut t, mut group) = fabric_with_group();
        group.elect(&t.subnet).unwrap();
        group
            .master_mut()
            .unwrap()
            .manager
            .bring_up(&mut t.subnet)
            .unwrap();
        let lids_before = t.subnet.lids();

        let (new_master, takeover_smps) = group.fail_over(&mut t.subnet).unwrap();
        assert_eq!(new_master, t.hosts[1], "next best standby takes over");
        // Adoption must not renumber anything.
        assert_eq!(t.subnet.lids(), lids_before);
        assert!(takeover_smps > 0, "a re-sweep costs Get SMPs");
        // And must not have mutated the fabric: the new master's ledger
        // holds Get-only records.
        let inst = group.master().unwrap();
        assert!(inst
            .manager
            .ledger
            .records()
            .iter()
            .all(|r| r.method == ib_mad::SmpMethod::Get));
        // The adopted LID space knows every assigned LID.
        assert_eq!(inst.manager.lid_space.in_use(), lids_before.len());
    }

    #[test]
    fn failover_chain_exhausts_gracefully() {
        let (mut t, mut group) = fabric_with_group();
        group.elect(&t.subnet).unwrap();
        group
            .master_mut()
            .unwrap()
            .manager
            .bring_up(&mut t.subnet)
            .unwrap();
        group.fail_over(&mut t.subnet).unwrap();
        group.fail_over(&mut t.subnet).unwrap();
        // All three dead now.
        assert!(group.fail_over(&mut t.subnet).is_err());
    }

    #[test]
    fn new_master_can_reconfigure_after_adoption() {
        let (mut t, mut group) = fabric_with_group();
        group.elect(&t.subnet).unwrap();
        group
            .master_mut()
            .unwrap()
            .manager
            .bring_up(&mut t.subnet)
            .unwrap();
        group.fail_over(&mut t.subnet).unwrap();

        // The adopted state is complete enough to run a reconfiguration:
        // nothing changed, so nothing is sent.
        let report = group
            .master_mut()
            .unwrap()
            .manager
            .full_reconfiguration(&mut t.subnet)
            .unwrap();
        assert_eq!(report.distribution.lft_smps, 0);
        // And a fresh allocation continues where the dead master stopped.
        let next = group
            .master_mut()
            .unwrap()
            .manager
            .lid_space
            .allocate()
            .unwrap();
        assert_eq!(next.raw() as usize, t.subnet.num_lids() + 1);
        let _ = AttributeKind::LftBlock;
    }
}
