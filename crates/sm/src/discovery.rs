//! Directed-route subnet discovery.
//!
//! Before any LFT exists, the only way to reach a node is to source-route
//! hop by hop — which is why OpenSM uses directed routing for discovery
//! (and, conservatively, for everything else; §VI-A). The sweep is a BFS
//! from the SM node: each newly seen node gets a `SubnGet(NodeInfo)` (and
//! switches a `SubnGet(SwitchInfo)`), addressed by the directed route the
//! BFS followed.

use std::collections::VecDeque;

use ib_mad::{DirectedRoute, Smp, SmpAttribute, SmpLedger, SmpMethod, SmpRouting};
use ib_subnet::{NodeId, Subnet};
use ib_types::{IbError, IbResult, PortNum};

/// Result of a discovery sweep.
#[derive(Clone, Debug)]
pub struct DiscoveryResult {
    /// Nodes in the order discovered (SM node first).
    pub nodes: Vec<NodeId>,
    /// Directed route to each discovered node, parallel to `nodes`.
    pub routes: Vec<DirectedRoute>,
}

/// Sweeps the fabric from `sm_node`, recording one `SubnGet(NodeInfo)` per
/// node (plus `SubnGet(SwitchInfo)` per switch) in the ledger.
pub fn sweep(
    subnet: &Subnet,
    sm_node: NodeId,
    ledger: &mut SmpLedger,
) -> IbResult<DiscoveryResult> {
    if sm_node.index() >= subnet.num_nodes() {
        return Err(IbError::Management("SM node does not exist".into()));
    }
    ledger.begin_phase("discovery");

    let mut seen = vec![false; subnet.num_nodes()];
    let mut route_to: Vec<Option<Vec<PortNum>>> = vec![None; subnet.num_nodes()];
    let mut queue = VecDeque::new();

    seen[sm_node.index()] = true;
    route_to[sm_node.index()] = Some(Vec::new());
    queue.push_back(sm_node);

    let mut nodes = Vec::new();
    let mut routes = Vec::new();

    while let Some(id) = queue.pop_front() {
        // Every enqueued node had its route recorded first; a miss would be
        // a BFS bookkeeping bug, reported rather than panicked on.
        let Some(hops) = route_to[id.index()].clone() else {
            return Err(IbError::Management(format!(
                "discovery queued {} without a route",
                subnet.name_of(id)
            )));
        };
        let route = DirectedRoute::from_hops(hops.clone());
        let node = subnet.node(id);

        let node_info = Smp {
            method: SmpMethod::Get,
            attribute: SmpAttribute::NodeInfo,
            routing: SmpRouting::Directed(route.clone()),
            target: id,
        };
        ledger.record(&node_info, route.hop_count());
        if node.is_switch() {
            let switch_info = Smp {
                method: SmpMethod::Get,
                attribute: SmpAttribute::SwitchInfo,
                routing: SmpRouting::Directed(route.clone()),
                target: id,
            };
            ledger.record(&switch_info, route.hop_count());
        }
        nodes.push(id);
        routes.push(route);

        for (port, remote) in node.connected_ports() {
            if !seen[remote.node.index()] {
                seen[remote.node.index()] = true;
                let mut next = hops.clone();
                next.push(port);
                route_to[remote.node.index()] = Some(next);
                queue.push_back(remote.node);
            }
        }
    }

    // Nodes the sweep did not reach simply are not part of the active
    // fabric — e.g. dynamic-LID vSwitch VFs that are not cabled until a VM
    // attaches (§V-B). They are not discovered and not configured.
    Ok(DiscoveryResult { nodes, routes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_subnet::topology::basic::linear;
    use ib_subnet::topology::fattree::two_level;

    #[test]
    fn sweep_reaches_every_node_with_valid_routes() {
        let t = linear(3, 2);
        let sm_host = t.hosts[0];
        let mut ledger = SmpLedger::new();
        let result = sweep(&t.subnet, sm_host, &mut ledger).unwrap();
        assert_eq!(result.nodes.len(), t.subnet.num_nodes());
        for (node, route) in result.nodes.iter().zip(&result.routes) {
            assert_eq!(route.resolve(&t.subnet, sm_host), Some(*node));
        }
    }

    #[test]
    fn smp_count_is_nodes_plus_switches() {
        let t = two_level(2, 2, 2);
        let mut ledger = SmpLedger::new();
        sweep(&t.subnet, t.hosts[0], &mut ledger).unwrap();
        // NodeInfo per node + SwitchInfo per switch.
        let nodes = t.subnet.num_nodes();
        let switches = 4;
        assert_eq!(ledger.phase_total("discovery"), nodes + switches);
    }

    #[test]
    fn sweep_covers_only_the_sm_component() {
        // Uncabled nodes (e.g. dormant dynamic-mode VFs) stay undiscovered.
        let mut s = Subnet::new();
        let a = s.add_switch("a", 2);
        let _b = s.add_switch("b", 2);
        let mut ledger = SmpLedger::new();
        let result = sweep(&s, a, &mut ledger).unwrap();
        assert_eq!(result.nodes, vec![a]);
    }

    #[test]
    fn routes_are_shortest() {
        let t = linear(5, 1);
        let mut ledger = SmpLedger::new();
        let result = sweep(&t.subnet, t.hosts[0], &mut ledger).unwrap();
        // Route to the last switch: host -> sw0 -> ... -> sw4 = 5 hops.
        let last_sw = t.switch_levels[0][4];
        let idx = result.nodes.iter().position(|&n| n == last_sw).unwrap();
        assert_eq!(result.routes[idx].hop_count(), 5);
    }
}
