//! # ib-sm
//!
//! The subnet manager: the OpenSM analog that brings a fabric up and keeps
//! it configured. A bring-up runs the classic pipeline:
//!
//! 1. **Discovery** — a directed-route sweep out of the SM node
//!    (`SubnGet(NodeInfo)` per node), since no LFTs exist yet;
//! 2. **LID assignment** — `SubnSet(PortInfo)` per endpoint, allocating from
//!    the unicast [`ib_types::LidSpace`];
//! 3. **Path computation** — a routing engine from `ib-routing` (the `PCt`
//!    term of the paper's equation 1, measured by wall clock);
//! 4. **LFT distribution** — dirty 64-entry blocks pushed switch by switch
//!    (`SubnSet(LinearForwardingTable)`, the `LFTDt = n·m·(k+r)` term).
//!
//! Every SMP goes through the [`ib_mad::SmpLedger`], so reports carry real
//! counts — the full-reconfiguration baseline that the paper's Table I
//! compares the vSwitch method against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// A degraded fabric must degrade the report, not the process: production
// paths return `IbError` instead of panicking (tests may still unwrap).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod discovery;
pub mod distribution;
pub mod failover;
pub mod lids;
pub mod quarantine;
pub mod report;
pub mod sa;
pub mod sm;
pub mod traps;

pub use distribution::{FailedBlock, ResumeAccounting};
pub use failover::{SmGroup, SmInstance, SmState};
pub use ib_routing::RoutingOptions;
pub use quarantine::{LinkQuarantine, QuarantineOptions};
pub use report::{BringUpReport, DistributionReport};
pub use sa::{PathRecord, PathRecordCache, SaService};
pub use sm::{CoalesceOptions, SmConfig, SmpMode, SubnetManager, SweepOptions};
pub use traps::{ResweepReport, SweepKind, Trap};
