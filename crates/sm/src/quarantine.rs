//! Link quarantine with flap damping.
//!
//! A link that bounces (down/up/down/up …) would otherwise drag the SM
//! through a full re-sweep per transition and thrash the fabric's routes
//! each time. Borrowing BGP route-flap damping, the SM instead keeps a
//! per-link penalty counter: every state-change trap on a link adds a
//! penalty, and when the penalty crosses the configured threshold the link
//! is **quarantined** — administratively held down for an exponentially
//! growing hold-down window (`base << (strikes - 1)`, capped), regardless
//! of what the physical layer reports. Because the routing engines only
//! route over *up* links, a quarantined link is naturally absent from every
//! LFT the SM installs until its hold-down expires and the link is released
//! back into the topology.

use ib_subnet::{NodeId, Subnet};
use ib_types::{IbResult, PortNum};
use rustc_hash::FxHashMap;

/// Flap-damping policy knobs, part of [`crate::SmConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuarantineOptions {
    /// Master switch; when off, traps pass straight through to re-sweeps.
    pub enabled: bool,
    /// State-change events on one link that trigger a quarantine.
    pub flap_threshold: u32,
    /// Hold-down of the first quarantine, in nanoseconds.
    pub base_hold_down_ns: u64,
    /// Ceiling on the exponentially growing hold-down.
    pub max_hold_down_ns: u64,
}

impl Default for QuarantineOptions {
    fn default() -> Self {
        Self {
            enabled: false,
            flap_threshold: 3,
            base_hold_down_ns: 1_000_000_000, // 1 s
            max_hold_down_ns: 64_000_000_000, // 64 s
        }
    }
}

impl QuarantineOptions {
    /// Enabled with the default damping curve.
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// The hold-down for the `strikes`-th quarantine (1-based):
    /// `base << (strikes - 1)`, saturating at the configured maximum.
    #[must_use]
    pub fn hold_down_for(&self, strikes: u32) -> u64 {
        let shift = strikes.saturating_sub(1);
        // A shift that would drop set bits has already passed the cap.
        if shift >= self.base_hold_down_ns.leading_zeros() {
            return self.max_hold_down_ns;
        }
        (self.base_hold_down_ns << shift).min(self.max_hold_down_ns)
    }
}

/// Damping state of one link.
#[derive(Clone, Copy, Debug, Default)]
struct LinkRecord {
    /// State-change events since the last quarantine (or ever).
    penalty: u32,
    /// Times this link has been quarantined; drives the exponential
    /// hold-down. Never decays — a chronically flapping link earns longer
    /// and longer time-outs.
    strikes: u32,
    /// Absolute release time of the active quarantine, if any.
    held_until: Option<u64>,
    /// Whether the quarantine forced the link down (and must bring it back
    /// up on release). False when the link was already physically down.
    admin_down: bool,
}

/// Per-link flap damping state for a whole fabric, keyed by the canonical
/// (lower) end of each cable.
#[derive(Clone, Debug)]
pub struct LinkQuarantine {
    options: QuarantineOptions,
    links: FxHashMap<(NodeId, PortNum), LinkRecord>,
}

impl LinkQuarantine {
    /// Fresh damping state under `options`.
    #[must_use]
    pub fn new(options: QuarantineOptions) -> Self {
        Self {
            options,
            links: FxHashMap::default(),
        }
    }

    /// The active policy.
    #[must_use]
    pub fn options(&self) -> QuarantineOptions {
        self.options
    }

    /// Canonical key of the cable behind `(node, port)`: the end with the
    /// smaller (node index, port) pair, so both ends' traps hit one record.
    fn canonical(subnet: &Subnet, node: NodeId, port: PortNum) -> (NodeId, PortNum) {
        match subnet.cabled_neighbor(node, port) {
            Some(remote)
                if (remote.node.index(), remote.port.raw()) < (node.index(), port.raw()) =>
            {
                (remote.node, remote.port)
            }
            _ => (node, port),
        }
    }

    /// Whether the link behind `(node, port)` is inside a hold-down window
    /// at `now_ns`.
    #[must_use]
    pub fn is_quarantined(
        &self,
        subnet: &Subnet,
        node: NodeId,
        port: PortNum,
        now_ns: u64,
    ) -> bool {
        let key = Self::canonical(subnet, node, port);
        self.links
            .get(&key)
            .and_then(|r| r.held_until)
            .is_some_and(|until| until > now_ns)
    }

    /// Feeds one link state-change event into the damper.
    ///
    /// Returns `true` when the event is **absorbed** — the link is (or just
    /// became) quarantined, the damper has re-asserted the administrative
    /// down state, and the caller should *not* run a re-sweep for this
    /// trap. Returns `false` when the event should be handled normally.
    pub fn note_link_event(
        &mut self,
        subnet: &mut Subnet,
        node: NodeId,
        port: PortNum,
        now_ns: u64,
    ) -> IbResult<bool> {
        if !self.options.enabled {
            return Ok(false);
        }
        let key = Self::canonical(subnet, node, port);
        let mut rec = self.links.get(&key).copied().unwrap_or_default();
        rec.penalty += 1;

        let in_hold_down = rec.held_until.is_some_and(|until| until > now_ns);
        if in_hold_down {
            // A resurrection inside the window: push the link back down and
            // keep absorbing until the hold-down expires.
            if subnet.is_link_up(key.0, key.1) {
                subnet.set_link_down(key.0, key.1)?;
                rec.admin_down = true;
            }
            self.links.insert(key, rec);
            return Ok(true);
        }

        if rec.penalty >= self.options.flap_threshold {
            rec.strikes += 1;
            rec.penalty = 0;
            rec.held_until = Some(now_ns + self.options.hold_down_for(rec.strikes));
            if subnet.is_link_up(key.0, key.1) {
                subnet.set_link_down(key.0, key.1)?;
                rec.admin_down = true;
            }
            self.links.insert(key, rec);
            // Absorbed as far as damping goes, but the topology just
            // changed (the link went administratively down), so the caller
            // must still re-sweep once to route around the quarantine.
            return Ok(false);
        }

        self.links.insert(key, rec);
        Ok(false)
    }

    /// Releases every link whose hold-down expired by `now_ns`, restoring
    /// the administrative down state it imposed. Returns the released
    /// links (canonical ends); if any were brought back up the caller
    /// should run a re-sweep to fold them back into routing.
    pub fn release_expired(
        &mut self,
        subnet: &mut Subnet,
        now_ns: u64,
    ) -> IbResult<Vec<(NodeId, PortNum)>> {
        let mut due: Vec<(NodeId, PortNum)> = self
            .links
            .iter()
            .filter(|(_, r)| r.held_until.is_some_and(|until| until <= now_ns))
            .map(|(&k, _)| k)
            .collect();
        due.sort_unstable_by_key(|&(n, p)| (n.index(), p.raw()));
        let mut released = Vec::new();
        for key in due {
            let Some(rec) = self.links.get_mut(&key) else {
                continue;
            };
            rec.held_until = None;
            let bring_up = rec.admin_down;
            rec.admin_down = false;
            if bring_up
                && !subnet.is_link_up(key.0, key.1)
                && subnet.cabled_neighbor(key.0, key.1).is_some()
                && subnet.is_alive(key.0)
            {
                subnet.set_link_up(key.0, key.1)?;
            }
            released.push(key);
        }
        Ok(released)
    }

    /// Links currently inside a hold-down window at `now_ns`, as
    /// (canonical end, release time) pairs in deterministic order.
    #[must_use]
    pub fn quarantined_links(&self, now_ns: u64) -> Vec<((NodeId, PortNum), u64)> {
        let mut held: Vec<((NodeId, PortNum), u64)> = self
            .links
            .iter()
            .filter_map(|(&k, r)| r.held_until.filter(|&u| u > now_ns).map(|u| (k, u)))
            .collect();
        held.sort_unstable_by_key(|&((n, p), _)| (n.index(), p.raw()));
        held
    }

    /// Number of links currently holding a strike history.
    #[must_use]
    pub fn tracked_links(&self) -> usize {
        self.links.len()
    }

    /// Proves quarantined links are absent from the installed tables: scans
    /// every switch LFT for a row that forwards over a link currently in
    /// hold-down, returning a description of each offending row. Empty
    /// means the quarantine held — no installed route uses a damped link.
    #[must_use]
    pub fn verify_absent(&self, subnet: &Subnet, now_ns: u64) -> Vec<String> {
        let mut offenders = Vec::new();
        let held = self.quarantined_links(now_ns);
        if held.is_empty() {
            return offenders;
        }
        // Both ends of each quarantined cable, as (node, out-port) pairs.
        let mut banned: Vec<(NodeId, PortNum)> = Vec::new();
        for &((node, port), _) in &held {
            banned.push((node, port));
            if let Some(remote) = subnet.cabled_neighbor(node, port) {
                banned.push((remote.node, remote.port));
            }
        }
        for node in subnet.switches() {
            let Some(lft) = subnet.lft(node.id) else {
                continue;
            };
            for &(end, out) in banned.iter().filter(|&&(end, _)| end == node.id) {
                for lid in subnet.lids() {
                    if lft.get(lid) == Some(out) {
                        offenders.push(format!(
                            "{} forwards LID {lid} over quarantined port {out}",
                            subnet.name_of(end)
                        ));
                    }
                }
            }
        }
        offenders
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_subnet::topology::fattree::two_level;

    fn fabric() -> (ib_subnet::topology::BuiltTopology, NodeId, PortNum) {
        let t = two_level(3, 2, 2);
        let leaf0 = t.switch_levels[0][0];
        let spine0 = t.switch_levels[1][0];
        let (port, _) = t
            .subnet
            .node(leaf0)
            .connected_ports()
            .find(|(_, r)| r.node == spine0)
            .unwrap();
        (t, leaf0, port)
    }

    #[test]
    fn disabled_damper_absorbs_nothing() {
        let (mut t, leaf, port) = fabric();
        let mut q = LinkQuarantine::new(QuarantineOptions::default());
        for _ in 0..10 {
            assert!(!q.note_link_event(&mut t.subnet, leaf, port, 0).unwrap());
        }
        assert!(q.quarantined_links(0).is_empty());
    }

    #[test]
    fn threshold_crossing_quarantines_and_downs_the_link() {
        let (mut t, leaf, port) = fabric();
        let mut q = LinkQuarantine::new(QuarantineOptions::enabled());
        assert!(t.subnet.is_link_up(leaf, port));
        // Two events: still below the threshold of 3.
        assert!(!q.note_link_event(&mut t.subnet, leaf, port, 0).unwrap());
        assert!(!q.note_link_event(&mut t.subnet, leaf, port, 1).unwrap());
        assert!(!q.is_quarantined(&t.subnet, leaf, port, 1));
        // Third event trips the quarantine; the caller still re-sweeps once.
        assert!(!q.note_link_event(&mut t.subnet, leaf, port, 2).unwrap());
        assert!(q.is_quarantined(&t.subnet, leaf, port, 2));
        assert!(!t.subnet.is_link_up(leaf, port), "administratively down");
        assert_eq!(q.quarantined_links(2).len(), 1);
    }

    #[test]
    fn both_ends_share_one_record() {
        let (mut t, leaf, port) = fabric();
        let remote = t.subnet.cabled_neighbor(leaf, port).unwrap();
        let mut q = LinkQuarantine::new(QuarantineOptions::enabled());
        q.note_link_event(&mut t.subnet, leaf, port, 0).unwrap();
        q.note_link_event(&mut t.subnet, remote.node, remote.port, 1)
            .unwrap();
        q.note_link_event(&mut t.subnet, leaf, port, 2).unwrap();
        assert!(q.is_quarantined(&t.subnet, remote.node, remote.port, 2));
        assert_eq!(q.tracked_links(), 1);
    }

    #[test]
    fn resurrection_during_hold_down_is_suppressed() {
        let (mut t, leaf, port) = fabric();
        let mut q = LinkQuarantine::new(QuarantineOptions::enabled());
        for at in 0..3 {
            q.note_link_event(&mut t.subnet, leaf, port, at).unwrap();
        }
        assert!(!t.subnet.is_link_up(leaf, port));
        // The flapping link "comes back": forced down again, absorbed.
        t.subnet.set_link_up(leaf, port).unwrap();
        assert!(q.note_link_event(&mut t.subnet, leaf, port, 10).unwrap());
        assert!(!t.subnet.is_link_up(leaf, port));
    }

    #[test]
    fn release_restores_the_link_and_strikes_escalate() {
        let (mut t, leaf, port) = fabric();
        let opts = QuarantineOptions::enabled();
        let mut q = LinkQuarantine::new(opts);
        for at in 0..3 {
            q.note_link_event(&mut t.subnet, leaf, port, at).unwrap();
        }
        let release_at = 2 + opts.base_hold_down_ns;
        // Still held one tick before the deadline.
        assert!(q
            .release_expired(&mut t.subnet, release_at - 1)
            .unwrap()
            .is_empty());
        let released = q.release_expired(&mut t.subnet, release_at).unwrap();
        assert_eq!(released.len(), 1);
        assert!(t.subnet.is_link_up(leaf, port), "restored on release");
        // A second quarantine doubles the hold-down.
        for at in 0..3 {
            q.note_link_event(&mut t.subnet, leaf, port, release_at + at)
                .unwrap();
        }
        let held = q.quarantined_links(release_at + 2);
        assert_eq!(held.len(), 1);
        assert_eq!(held[0].1, release_at + 2 + 2 * opts.base_hold_down_ns);
    }

    #[test]
    fn hold_down_curve_is_exponential_and_capped() {
        let opts = QuarantineOptions::enabled();
        assert_eq!(opts.hold_down_for(1), opts.base_hold_down_ns);
        assert_eq!(opts.hold_down_for(2), 2 * opts.base_hold_down_ns);
        assert_eq!(opts.hold_down_for(3), 4 * opts.base_hold_down_ns);
        assert_eq!(opts.hold_down_for(60), opts.max_hold_down_ns);
    }

    #[test]
    fn physically_down_link_is_not_resurrected_on_release() {
        let (mut t, leaf, port) = fabric();
        let mut q = LinkQuarantine::new(QuarantineOptions::enabled());
        // The link is already physically down when the flapping starts.
        t.subnet.set_link_down(leaf, port).unwrap();
        for at in 0..3 {
            q.note_link_event(&mut t.subnet, leaf, port, at).unwrap();
        }
        let released = q.release_expired(&mut t.subnet, u64::MAX).unwrap();
        assert_eq!(released.len(), 1);
        assert!(
            !t.subnet.is_link_up(leaf, port),
            "the damper never downed it, so it must not bring it up"
        );
    }

    #[test]
    fn verify_absent_flags_a_route_over_a_quarantined_link() {
        let (mut t, leaf, port) = fabric();
        ib_routing::testutil::assign_lids(&mut t);
        let tables = ib_routing::EngineKind::MinHop
            .build()
            .compute(&t.subnet)
            .unwrap();
        tables.install(&mut t.subnet).unwrap();

        let mut q = LinkQuarantine::new(QuarantineOptions::enabled());
        for at in 0..3 {
            q.note_link_event(&mut t.subnet, leaf, port, at).unwrap();
        }
        // The tables were computed *before* the quarantine, so routes over
        // the damped link are still installed: the audit must notice.
        assert!(!q.verify_absent(&t.subnet, 2).is_empty());

        // Recompute over the degraded (admin-down) topology and reinstall:
        // the quarantined link vanishes from every LFT.
        let rerouted = ib_routing::EngineKind::MinHop
            .build()
            .compute(&t.subnet)
            .unwrap();
        rerouted.install(&mut t.subnet).unwrap();
        assert!(q.verify_absent(&t.subnet, 2).is_empty());
    }
}
