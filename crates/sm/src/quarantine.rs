//! Link quarantine with flap damping.
//!
//! A link that bounces (down/up/down/up …) would otherwise drag the SM
//! through a full re-sweep per transition and thrash the fabric's routes
//! each time. Borrowing BGP route-flap damping, the SM instead keeps a
//! per-link penalty counter: every state-change trap on a link adds a
//! penalty, and when the penalty crosses the configured threshold the link
//! is **quarantined** — administratively held down for an exponentially
//! growing hold-down window (`base << (strikes - 1)`, capped), regardless
//! of what the physical layer reports. Because the routing engines only
//! route over *up* links, a quarantined link is naturally absent from every
//! LFT the SM installs until its hold-down expires and the link is released
//! back into the topology.

use ib_subnet::{NodeId, Subnet};
use ib_types::{IbResult, PortNum};
use rustc_hash::FxHashMap;

/// Flap-damping policy knobs, part of [`crate::SmConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuarantineOptions {
    /// Master switch; when off, traps pass straight through to re-sweeps.
    pub enabled: bool,
    /// State-change events on one link that trigger a quarantine.
    pub flap_threshold: u32,
    /// Hold-down of the first quarantine, in nanoseconds.
    pub base_hold_down_ns: u64,
    /// Ceiling on the exponentially growing hold-down.
    pub max_hold_down_ns: u64,
}

impl Default for QuarantineOptions {
    fn default() -> Self {
        Self {
            enabled: false,
            flap_threshold: 3,
            base_hold_down_ns: 1_000_000_000, // 1 s
            max_hold_down_ns: 64_000_000_000, // 64 s
        }
    }
}

impl QuarantineOptions {
    /// Enabled with the default damping curve.
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// The hold-down for the `strikes`-th quarantine (1-based):
    /// `base << (strikes - 1)`, saturating at the configured maximum.
    #[must_use]
    pub fn hold_down_for(&self, strikes: u32) -> u64 {
        let shift = strikes.saturating_sub(1);
        // A shift that would drop set bits has already passed the cap.
        if shift >= self.base_hold_down_ns.leading_zeros() {
            return self.max_hold_down_ns;
        }
        (self.base_hold_down_ns << shift).min(self.max_hold_down_ns)
    }
}

/// Damping state of one link.
#[derive(Clone, Copy, Debug, Default)]
struct LinkRecord {
    /// State-change events since the last quarantine (or ever).
    penalty: u32,
    /// Times this link has been quarantined; drives the exponential
    /// hold-down. Never decays — a chronically flapping link earns longer
    /// and longer time-outs.
    strikes: u32,
    /// Absolute release time of the active quarantine, if any.
    held_until: Option<u64>,
    /// Whether the quarantine forced the link down (and must bring it back
    /// up on release). False when the link was already physically down.
    admin_down: bool,
}

/// Per-link flap damping state for a whole fabric, keyed by the canonical
/// (lower) end of each cable.
#[derive(Clone, Debug)]
pub struct LinkQuarantine {
    options: QuarantineOptions,
    links: FxHashMap<(NodeId, PortNum), LinkRecord>,
    /// Times the bridge guard blocked an admin-down that would have split
    /// the fabric (see [`Self::bridge_refusals`]).
    bridge_refusals: u64,
}

impl LinkQuarantine {
    /// Fresh damping state under `options`.
    #[must_use]
    pub fn new(options: QuarantineOptions) -> Self {
        Self {
            options,
            links: FxHashMap::default(),
            bridge_refusals: 0,
        }
    }

    /// The active policy.
    #[must_use]
    pub fn options(&self) -> QuarantineOptions {
        self.options
    }

    /// Canonical key of the cable behind `(node, port)`: the end with the
    /// smaller (node index, port) pair, so both ends' traps hit one record.
    fn canonical(subnet: &Subnet, node: NodeId, port: PortNum) -> (NodeId, PortNum) {
        match subnet.cabled_neighbor(node, port) {
            Some(remote)
                if (remote.node.index(), remote.port.raw()) < (node.index(), port.raw()) =>
            {
                (remote.node, remote.port)
            }
            _ => (node, port),
        }
    }

    /// Whether the link behind `(node, port)` is inside a hold-down window
    /// at `now_ns`.
    #[must_use]
    pub fn is_quarantined(
        &self,
        subnet: &Subnet,
        node: NodeId,
        port: PortNum,
        now_ns: u64,
    ) -> bool {
        let key = Self::canonical(subnet, node, port);
        self.links
            .get(&key)
            .and_then(|r| r.held_until)
            .is_some_and(|until| until > now_ns)
    }

    /// Feeds one link state-change event into the damper.
    ///
    /// Returns `true` when the event is **absorbed** — the link is (or just
    /// became) quarantined, the damper has re-asserted the administrative
    /// down state, and the caller should *not* run a re-sweep for this
    /// trap. Returns `false` when the event should be handled normally.
    ///
    /// The damper never partitions the fabric itself: before administering
    /// a down it checks whether the cable is a *bridge* of the switch
    /// graph, and on a bridge it refuses — skipping the quarantine at
    /// threshold-crossing, or early-releasing an active hold-down whose
    /// link just resurrected (re-downing it would undo a heal). Refusals
    /// are counted in [`Self::bridge_refusals`]; a chronically flapping
    /// bridge is simply paid for with re-sweeps, which is cheaper than a
    /// self-inflicted split.
    pub fn note_link_event(
        &mut self,
        subnet: &mut Subnet,
        node: NodeId,
        port: PortNum,
        now_ns: u64,
    ) -> IbResult<bool> {
        if !self.options.enabled {
            return Ok(false);
        }
        let key = Self::canonical(subnet, node, port);
        let mut rec = self.links.get(&key).copied().unwrap_or_default();
        rec.penalty += 1;

        let in_hold_down = rec.held_until.is_some_and(|until| until > now_ns);
        if in_hold_down {
            // A resurrection inside the window: push the link back down and
            // keep absorbing until the hold-down expires — unless the link
            // came back as the only path between two components, in which
            // case the hold-down is released early instead of re-splitting
            // the fabric.
            if subnet.is_link_up(key.0, key.1) {
                if Self::downing_would_split(subnet, key) {
                    self.bridge_refusals += 1;
                    rec.held_until = None;
                    rec.admin_down = false;
                    self.links.insert(key, rec);
                    return Ok(false);
                }
                subnet.set_link_down(key.0, key.1)?;
                rec.admin_down = true;
            }
            self.links.insert(key, rec);
            return Ok(true);
        }

        if rec.penalty >= self.options.flap_threshold {
            if subnet.is_link_up(key.0, key.1) {
                if Self::downing_would_split(subnet, key) {
                    // Refuse the quarantine outright: taking this link down
                    // would strand everything behind it. The penalty resets
                    // so the next flap burst re-evaluates from scratch.
                    self.bridge_refusals += 1;
                    rec.penalty = 0;
                    self.links.insert(key, rec);
                    return Ok(false);
                }
                subnet.set_link_down(key.0, key.1)?;
                rec.admin_down = true;
            }
            rec.strikes += 1;
            rec.penalty = 0;
            rec.held_until = Some(now_ns + self.options.hold_down_for(rec.strikes));
            self.links.insert(key, rec);
            // Absorbed as far as damping goes, but the topology just
            // changed (the link went administratively down), so the caller
            // must still re-sweep once to route around the quarantine.
            return Ok(false);
        }

        self.links.insert(key, rec);
        Ok(false)
    }

    /// Whether administratively downing the (currently live) cable at
    /// `key` would split the switch fabric: both ends are switches and the
    /// cable is a bridge of the current switch graph. Host uplinks and
    /// graphs that cannot be built are never refused — the guard only
    /// blocks provable self-inflicted splits.
    fn downing_would_split(subnet: &Subnet, key: (NodeId, PortNum)) -> bool {
        let Some(remote) = subnet.cabled_neighbor(key.0, key.1) else {
            return false;
        };
        if !subnet.node(key.0).is_switch() || !subnet.node(remote.node).is_switch() {
            return false;
        }
        let Ok(graph) = ib_routing::SwitchGraph::build(subnet) else {
            return false;
        };
        let (Some(a), Some(b)) = (graph.index(key.0), graph.index(remote.node)) else {
            return false;
        };
        graph
            .bridges()
            .iter()
            .any(|&(u, v)| (u, v) == (a, b) || (u, v) == (b, a))
    }

    /// Times the bridge guard refused an administrative down (or released
    /// a hold-down early) because the link was the only path between two
    /// parts of the fabric.
    #[must_use]
    pub fn bridge_refusals(&self) -> u64 {
        self.bridge_refusals
    }

    /// Releases every link whose hold-down expired by `now_ns`, restoring
    /// the administrative down state it imposed. Returns the released
    /// links (canonical ends); if any were brought back up the caller
    /// should run a re-sweep to fold them back into routing.
    pub fn release_expired(
        &mut self,
        subnet: &mut Subnet,
        now_ns: u64,
    ) -> IbResult<Vec<(NodeId, PortNum)>> {
        let mut due: Vec<(NodeId, PortNum)> = self
            .links
            .iter()
            .filter(|(_, r)| r.held_until.is_some_and(|until| until <= now_ns))
            .map(|(&k, _)| k)
            .collect();
        due.sort_unstable_by_key(|&(n, p)| (n.index(), p.raw()));
        let mut released = Vec::new();
        for key in due {
            let Some(rec) = self.links.get_mut(&key) else {
                continue;
            };
            rec.held_until = None;
            let bring_up = rec.admin_down;
            rec.admin_down = false;
            if bring_up
                && !subnet.is_link_up(key.0, key.1)
                && subnet.cabled_neighbor(key.0, key.1).is_some()
                && subnet.is_alive(key.0)
            {
                subnet.set_link_up(key.0, key.1)?;
            }
            released.push(key);
        }
        Ok(released)
    }

    /// Links currently inside a hold-down window at `now_ns`, as
    /// (canonical end, release time) pairs in deterministic order.
    #[must_use]
    pub fn quarantined_links(&self, now_ns: u64) -> Vec<((NodeId, PortNum), u64)> {
        let mut held: Vec<((NodeId, PortNum), u64)> = self
            .links
            .iter()
            .filter_map(|(&k, r)| r.held_until.filter(|&u| u > now_ns).map(|u| (k, u)))
            .collect();
        held.sort_unstable_by_key(|&((n, p), _)| (n.index(), p.raw()));
        held
    }

    /// Number of links currently holding a strike history.
    #[must_use]
    pub fn tracked_links(&self) -> usize {
        self.links.len()
    }

    /// Proves quarantined links are absent from the installed tables: scans
    /// every switch LFT for a row that forwards over a link currently in
    /// hold-down, returning a description of each offending row. Empty
    /// means the quarantine held — no installed route uses a damped link.
    #[must_use]
    pub fn verify_absent(&self, subnet: &Subnet, now_ns: u64) -> Vec<String> {
        self.verify_absent_scoped(subnet, now_ns, None)
    }

    /// [`Self::verify_absent`] restricted to the switches `viewpoint` can
    /// reach over live links. A split fabric strands switches whose stale
    /// tables still cross their (now quarantined) uplinks — no SMP can
    /// clear those rows until the heal, so only the governable component
    /// is judged. `None` judges every switch.
    #[must_use]
    pub fn verify_absent_scoped(
        &self,
        subnet: &Subnet,
        now_ns: u64,
        viewpoint: Option<NodeId>,
    ) -> Vec<String> {
        let mut offenders = Vec::new();
        let held = self.quarantined_links(now_ns);
        if held.is_empty() {
            return offenders;
        }
        // The viewpoint's live component, when one is given.
        let scope: Option<Vec<bool>> = viewpoint.map(|start| {
            let mut seen = vec![false; subnet.node_ids().count()];
            seen[start.index()] = true;
            let mut stack = vec![start];
            while let Some(at) = stack.pop() {
                for (_, remote) in subnet.node(at).connected_ports() {
                    if !seen[remote.node.index()] && subnet.node(remote.node).is_alive() {
                        seen[remote.node.index()] = true;
                        stack.push(remote.node);
                    }
                }
            }
            seen
        });
        // Both ends of each quarantined cable, as (node, out-port) pairs.
        let mut banned: Vec<(NodeId, PortNum)> = Vec::new();
        for &((node, port), _) in &held {
            banned.push((node, port));
            if let Some(remote) = subnet.cabled_neighbor(node, port) {
                banned.push((remote.node, remote.port));
            }
        }
        for node in subnet.switches() {
            if scope.as_ref().is_some_and(|s| !s[node.id.index()]) {
                continue;
            }
            let Some(lft) = subnet.lft(node.id) else {
                continue;
            };
            for &(end, out) in banned.iter().filter(|&&(end, _)| end == node.id) {
                for lid in subnet.lids() {
                    if lft.get(lid) == Some(out) {
                        offenders.push(format!(
                            "{} forwards LID {lid} over quarantined port {out}",
                            subnet.name_of(end)
                        ));
                    }
                }
            }
        }
        offenders
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_subnet::topology::fattree::two_level;

    fn fabric() -> (ib_subnet::topology::BuiltTopology, NodeId, PortNum) {
        let t = two_level(3, 2, 2);
        let leaf0 = t.switch_levels[0][0];
        let spine0 = t.switch_levels[1][0];
        let (port, _) = t
            .subnet
            .node(leaf0)
            .connected_ports()
            .find(|(_, r)| r.node == spine0)
            .unwrap();
        (t, leaf0, port)
    }

    #[test]
    fn disabled_damper_absorbs_nothing() {
        let (mut t, leaf, port) = fabric();
        let mut q = LinkQuarantine::new(QuarantineOptions::default());
        for _ in 0..10 {
            assert!(!q.note_link_event(&mut t.subnet, leaf, port, 0).unwrap());
        }
        assert!(q.quarantined_links(0).is_empty());
    }

    #[test]
    fn threshold_crossing_quarantines_and_downs_the_link() {
        let (mut t, leaf, port) = fabric();
        let mut q = LinkQuarantine::new(QuarantineOptions::enabled());
        assert!(t.subnet.is_link_up(leaf, port));
        // Two events: still below the threshold of 3.
        assert!(!q.note_link_event(&mut t.subnet, leaf, port, 0).unwrap());
        assert!(!q.note_link_event(&mut t.subnet, leaf, port, 1).unwrap());
        assert!(!q.is_quarantined(&t.subnet, leaf, port, 1));
        // Third event trips the quarantine; the caller still re-sweeps once.
        assert!(!q.note_link_event(&mut t.subnet, leaf, port, 2).unwrap());
        assert!(q.is_quarantined(&t.subnet, leaf, port, 2));
        assert!(!t.subnet.is_link_up(leaf, port), "administratively down");
        assert_eq!(q.quarantined_links(2).len(), 1);
    }

    #[test]
    fn both_ends_share_one_record() {
        let (mut t, leaf, port) = fabric();
        let remote = t.subnet.cabled_neighbor(leaf, port).unwrap();
        let mut q = LinkQuarantine::new(QuarantineOptions::enabled());
        q.note_link_event(&mut t.subnet, leaf, port, 0).unwrap();
        q.note_link_event(&mut t.subnet, remote.node, remote.port, 1)
            .unwrap();
        q.note_link_event(&mut t.subnet, leaf, port, 2).unwrap();
        assert!(q.is_quarantined(&t.subnet, remote.node, remote.port, 2));
        assert_eq!(q.tracked_links(), 1);
    }

    #[test]
    fn resurrection_during_hold_down_is_suppressed() {
        let (mut t, leaf, port) = fabric();
        let mut q = LinkQuarantine::new(QuarantineOptions::enabled());
        for at in 0..3 {
            q.note_link_event(&mut t.subnet, leaf, port, at).unwrap();
        }
        assert!(!t.subnet.is_link_up(leaf, port));
        // The flapping link "comes back": forced down again, absorbed.
        t.subnet.set_link_up(leaf, port).unwrap();
        assert!(q.note_link_event(&mut t.subnet, leaf, port, 10).unwrap());
        assert!(!t.subnet.is_link_up(leaf, port));
    }

    #[test]
    fn release_restores_the_link_and_strikes_escalate() {
        let (mut t, leaf, port) = fabric();
        let opts = QuarantineOptions::enabled();
        let mut q = LinkQuarantine::new(opts);
        for at in 0..3 {
            q.note_link_event(&mut t.subnet, leaf, port, at).unwrap();
        }
        let release_at = 2 + opts.base_hold_down_ns;
        // Still held one tick before the deadline.
        assert!(q
            .release_expired(&mut t.subnet, release_at - 1)
            .unwrap()
            .is_empty());
        let released = q.release_expired(&mut t.subnet, release_at).unwrap();
        assert_eq!(released.len(), 1);
        assert!(t.subnet.is_link_up(leaf, port), "restored on release");
        // A second quarantine doubles the hold-down.
        for at in 0..3 {
            q.note_link_event(&mut t.subnet, leaf, port, release_at + at)
                .unwrap();
        }
        let held = q.quarantined_links(release_at + 2);
        assert_eq!(held.len(), 1);
        assert_eq!(held[0].1, release_at + 2 + 2 * opts.base_hold_down_ns);
    }

    #[test]
    fn hold_down_curve_is_exponential_and_capped() {
        let opts = QuarantineOptions::enabled();
        assert_eq!(opts.hold_down_for(1), opts.base_hold_down_ns);
        assert_eq!(opts.hold_down_for(2), 2 * opts.base_hold_down_ns);
        assert_eq!(opts.hold_down_for(3), 4 * opts.base_hold_down_ns);
        assert_eq!(opts.hold_down_for(60), opts.max_hold_down_ns);
    }

    #[test]
    fn physically_down_link_is_not_resurrected_on_release() {
        let (mut t, leaf, port) = fabric();
        let mut q = LinkQuarantine::new(QuarantineOptions::enabled());
        // The link is already physically down when the flapping starts.
        t.subnet.set_link_down(leaf, port).unwrap();
        for at in 0..3 {
            q.note_link_event(&mut t.subnet, leaf, port, at).unwrap();
        }
        let released = q.release_expired(&mut t.subnet, u64::MAX).unwrap();
        assert_eq!(released.len(), 1);
        assert!(
            !t.subnet.is_link_up(leaf, port),
            "the damper never downed it, so it must not bring it up"
        );
    }

    /// A 3-switch line with one host per switch: every inter-switch cable
    /// is a bridge — any admin-down would split the fabric.
    fn line_fabric() -> (Subnet, Vec<NodeId>) {
        let mut s = Subnet::new();
        let sw: Vec<NodeId> = (0..3).map(|i| s.add_switch(format!("sw{i}"), 4)).collect();
        s.connect(sw[0], PortNum::new(1), sw[1], PortNum::new(1))
            .unwrap();
        s.connect(sw[1], PortNum::new(2), sw[2], PortNum::new(1))
            .unwrap();
        for (i, &w) in sw.iter().enumerate() {
            let h = s.add_hca(format!("h{i}"));
            s.connect(w, PortNum::new(3), h, PortNum::new(1)).unwrap();
        }
        (s, sw)
    }

    #[test]
    fn bridge_links_refuse_quarantine_on_a_tree() {
        // On a tree every switch-switch link is a bridge: however hard a
        // link flaps, the damper must never be the one to split the fabric.
        let (mut s, sw) = line_fabric();
        let mut q = LinkQuarantine::new(QuarantineOptions::enabled());
        for trunk in [(sw[0], PortNum::new(1)), (sw[1], PortNum::new(2))] {
            for at in 0..10 {
                assert!(!q.note_link_event(&mut s, trunk.0, trunk.1, at).unwrap());
            }
            assert!(s.is_link_up(trunk.0, trunk.1), "never admin-downed");
            assert!(!q.is_quarantined(&s, trunk.0, trunk.1, 10));
        }
        // Threshold 3 over 10 events per trunk: 3 refusals each.
        assert_eq!(q.bridge_refusals(), 6);
        s.validate_degraded().unwrap();
    }

    #[test]
    fn resurrected_bridge_is_released_early_instead_of_re_split() {
        let (mut s, sw) = line_fabric();
        let (node, port) = (sw[0], PortNum::new(1));
        let mut q = LinkQuarantine::new(QuarantineOptions::enabled());
        // The trunk goes physically down first: holding it down changes
        // nothing (the split already exists), so the quarantine may trip.
        s.set_link_down(node, port).unwrap();
        for at in 0..3 {
            q.note_link_event(&mut s, node, port, at).unwrap();
        }
        assert!(q.is_quarantined(&s, node, port, 3));
        // The link comes back as the only path between the two halves:
        // re-downing it would re-split, so the hold-down releases early
        // and the event goes through to a normal fold-in sweep.
        s.set_link_up(node, port).unwrap();
        assert!(!q.note_link_event(&mut s, node, port, 4).unwrap());
        assert!(s.is_link_up(node, port), "heal preserved");
        assert!(!q.is_quarantined(&s, node, port, 4));
        assert_eq!(q.bridge_refusals(), 1);
    }

    #[test]
    fn redundant_links_still_quarantine_with_the_guard_active() {
        // The fat tree's leaf-spine link has a redundant twin through the
        // other spine: not a bridge, so damping proceeds as ever.
        let (mut t, leaf, port) = fabric();
        let mut q = LinkQuarantine::new(QuarantineOptions::enabled());
        for at in 0..3 {
            q.note_link_event(&mut t.subnet, leaf, port, at).unwrap();
        }
        assert!(q.is_quarantined(&t.subnet, leaf, port, 2));
        assert!(!t.subnet.is_link_up(leaf, port));
        assert_eq!(q.bridge_refusals(), 0);
    }

    #[test]
    fn verify_absent_flags_a_route_over_a_quarantined_link() {
        let (mut t, leaf, port) = fabric();
        ib_routing::testutil::assign_lids(&mut t);
        let tables = ib_routing::EngineKind::MinHop
            .build()
            .compute(&t.subnet)
            .unwrap();
        tables.install(&mut t.subnet).unwrap();

        let mut q = LinkQuarantine::new(QuarantineOptions::enabled());
        for at in 0..3 {
            q.note_link_event(&mut t.subnet, leaf, port, at).unwrap();
        }
        // The tables were computed *before* the quarantine, so routes over
        // the damped link are still installed: the audit must notice.
        assert!(!q.verify_absent(&t.subnet, 2).is_empty());

        // Recompute over the degraded (admin-down) topology and reinstall:
        // the quarantined link vanishes from every LFT.
        let rerouted = ib_routing::EngineKind::MinHop
            .build()
            .compute(&t.subnet)
            .unwrap();
        rerouted.install(&mut t.subnet).unwrap();
        assert!(q.verify_absent(&t.subnet, 2).is_empty());
    }
}
