//! Subnet Administration: PathRecord queries and the query cache.
//!
//! §I of the paper describes the failure mode that motivates everything
//! else: when a VM migrates and its addresses change, "other nodes
//! communicating with the VM-in-migration lose connectivity and try to
//! find the new address to reconnect to by sending Subnet Administration
//! (SA) path record queries to the IB Subnet Manager" — a query storm that
//! loads the SM and the fabric. The authors' prior work (reference [10],
//! *A Novel Query Caching Scheme for Dynamic InfiniBand Subnets*) showed
//! that caching path records keyed by the peer's *GID* removes the
//! repetitive queries — **provided** the VM keeps its addresses across the
//! migration, which is exactly what the vSwitch architectures guarantee.
//!
//! This module provides both halves: [`SaService`], the SM-side resolver
//! that answers `PathRecord(src GID, dst GID)` queries and counts them,
//! and [`PathRecordCache`], the client-side cache whose hit rate collapses
//! to zero only when addresses actually change (the Shared Port baseline).

use ib_subnet::Subnet;
use ib_types::{Gid, IbError, IbResult, Lid};
use rustc_hash::FxHashMap;

/// A resolved path record: the addressing a consumer needs to open a
/// connection to a peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathRecord {
    /// Destination GID the record answers for.
    pub dgid: Gid,
    /// Destination LID to put on the wire.
    pub dlid: Lid,
    /// Source LID.
    pub slid: Lid,
    /// Hop count between the endpoints under the installed LFTs.
    pub hops: usize,
}

/// The SM-side SA: resolves GIDs against the live subnet and counts the
/// query load it absorbs.
#[derive(Debug, Default)]
pub struct SaService {
    /// GID -> LID directory, maintained by whoever assigns addresses.
    directory: FxHashMap<u128, Lid>,
    /// Total PathRecord queries served (the load §I worries about).
    pub queries_served: u64,
}

impl SaService {
    /// An empty SA.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-registers) a GID at a LID. Called at endpoint
    /// bring-up and again when addresses move.
    pub fn register(&mut self, gid: Gid, lid: Lid) {
        self.directory.insert(gid.as_u128(), lid);
    }

    /// Removes a GID from the directory.
    pub fn deregister(&mut self, gid: Gid) {
        self.directory.remove(&gid.as_u128());
    }

    /// Serves one `SubnAdmGet(PathRecord)` query.
    ///
    /// The hop count is measured by walking the installed LFTs from the
    /// source — the SA answers from fabric state, not topology intent.
    pub fn path_record(
        &mut self,
        subnet: &Subnet,
        src_lid: Lid,
        dgid: Gid,
    ) -> IbResult<PathRecord> {
        self.queries_served += 1;
        let dlid = self
            .directory
            .get(&dgid.as_u128())
            .copied()
            .ok_or_else(|| IbError::Management(format!("SA: no record for GID {dgid}")))?;
        let src_ep = subnet
            .endpoint_of(src_lid)
            .ok_or_else(|| IbError::Management(format!("SA: unknown source LID {src_lid}")))?;
        let path = subnet.trace_route(src_ep.node, dlid, 64)?;
        Ok(PathRecord {
            dgid,
            dlid,
            slid: src_lid,
            hops: path.len() - 1,
        })
    }

    /// Number of registered GIDs.
    #[must_use]
    pub fn directory_size(&self) -> usize {
        self.directory.len()
    }
}

/// Client-side path-record cache (the reference-[10] scheme): records are
/// keyed by destination GID, so they stay valid exactly as long as the
/// peer's addresses do.
#[derive(Clone, Debug, Default)]
pub struct PathRecordCache {
    records: FxHashMap<u128, PathRecord>,
    /// Lookups answered locally.
    pub hits: u64,
    /// Lookups that had to query the SA.
    pub misses: u64,
}

impl PathRecordCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves `dgid`, consulting the SA only on a miss.
    pub fn resolve(
        &mut self,
        sa: &mut SaService,
        subnet: &Subnet,
        src_lid: Lid,
        dgid: Gid,
    ) -> IbResult<PathRecord> {
        if let Some(rec) = self.records.get(&dgid.as_u128()) {
            self.hits += 1;
            return Ok(*rec);
        }
        self.misses += 1;
        let rec = sa.path_record(subnet, src_lid, dgid)?;
        self.records.insert(dgid.as_u128(), rec);
        Ok(rec)
    }

    /// Validates a cached record against the live fabric: the record is
    /// *stale* if the GID no longer answers at the cached LID — which is
    /// what happens to every peer of a Shared-Port VM after it migrates.
    #[must_use]
    pub fn is_stale(&self, subnet: &Subnet, dgid: Gid) -> bool {
        match self.records.get(&dgid.as_u128()) {
            // Not cached yet: nothing to be stale.
            None => false,
            Some(rec) => subnet.endpoint_of(rec.dlid).is_none(),
        }
    }

    /// Drops a record (a consumer reacting to a connection error).
    pub fn invalidate(&mut self, dgid: Gid) {
        self.records.remove(&dgid.as_u128());
    }

    /// Cached record count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SmConfig, SubnetManager};
    use ib_subnet::topology::fattree::two_level;
    use ib_types::{Guid, PortNum};

    fn fabric() -> (ib_subnet::topology::BuiltTopology, SaService) {
        let mut t = two_level(2, 3, 2);
        let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
        sm.bring_up(&mut t.subnet).unwrap();
        let mut sa = SaService::new();
        for &h in &t.hosts {
            let lid = t.subnet.node(h).ports[1].lid.unwrap();
            let gid = Gid::link_local(t.subnet.node(h).guid);
            sa.register(gid, lid);
        }
        (t, sa)
    }

    fn gid_of(t: &ib_subnet::topology::BuiltTopology, i: usize) -> Gid {
        Gid::link_local(t.subnet.node(t.hosts[i]).guid)
    }

    fn lid_of(t: &ib_subnet::topology::BuiltTopology, i: usize) -> Lid {
        t.subnet.node(t.hosts[i]).ports[1].lid.unwrap()
    }

    #[test]
    fn path_record_resolves_and_measures_hops() {
        let (t, mut sa) = fabric();
        let rec = sa
            .path_record(&t.subnet, lid_of(&t, 0), gid_of(&t, 5))
            .unwrap();
        assert_eq!(rec.dlid, lid_of(&t, 5));
        // Cross-leaf: host -> leaf -> spine -> leaf -> host = 4 hops.
        assert_eq!(rec.hops, 4);
        assert_eq!(sa.queries_served, 1);
    }

    #[test]
    fn unknown_gid_is_an_error() {
        let (t, mut sa) = fabric();
        let bogus = Gid::link_local(Guid::from_raw(0xdead_beef));
        assert!(sa.path_record(&t.subnet, lid_of(&t, 0), bogus).is_err());
    }

    #[test]
    fn cache_eliminates_repeat_queries() {
        let (t, mut sa) = fabric();
        let mut cache = PathRecordCache::new();
        for _ in 0..10 {
            cache
                .resolve(&mut sa, &t.subnet, lid_of(&t, 0), gid_of(&t, 4))
                .unwrap();
        }
        assert_eq!(sa.queries_served, 1, "one miss, nine hits");
        assert_eq!(cache.hits, 9);
        assert_eq!(cache.misses, 1);
    }

    #[test]
    fn stale_detection_after_address_change() {
        let (mut t, mut sa) = fabric();
        let mut cache = PathRecordCache::new();
        let dgid = gid_of(&t, 4);
        cache
            .resolve(&mut sa, &t.subnet, lid_of(&t, 0), dgid)
            .unwrap();
        assert!(!cache.is_stale(&t.subnet, dgid));

        // Simulate a Shared-Port-style migration: host 4's LID changes,
        // and the SM reconfigures the fabric for the new LID (reference
        // [10] restarts OpenSM to the same effect).
        let old = lid_of(&t, 4);
        t.subnet.clear_lid(old).unwrap();
        t.subnet
            .assign_port_lid(t.hosts[4], PortNum::new(1), Lid::from_raw(40))
            .unwrap();
        let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
        sm.full_reconfiguration(&mut t.subnet).unwrap();
        sa.register(dgid, Lid::from_raw(40));

        assert!(
            cache.is_stale(&t.subnet, dgid),
            "cached LID no longer answers"
        );
        cache.invalidate(dgid);
        let rec = cache
            .resolve(&mut sa, &t.subnet, lid_of(&t, 0), dgid)
            .unwrap();
        assert_eq!(rec.dlid, Lid::from_raw(40));
        assert_eq!(
            sa.queries_served, 2,
            "the re-query the paper wants to avoid"
        );
    }

    #[test]
    fn deregistered_gid_disappears() {
        let (t, mut sa) = fabric();
        let dgid = gid_of(&t, 3);
        assert_eq!(sa.directory_size(), 6);
        sa.deregister(dgid);
        assert_eq!(sa.directory_size(), 5);
        assert!(sa.path_record(&t.subnet, lid_of(&t, 0), dgid).is_err());
    }
}
