//! Trap-driven re-sweeps: the SM's reaction to fabric faults.
//!
//! IBA switches report port-state changes to the SM with unsolicited trap
//! MADs (traps 128/129-131). OpenSM reacts with a *light sweep* — reroute
//! and redistribute over the topology it already knows — and escalates to a
//! *heavy sweep* (full rediscovery) when the light sweep finds the
//! topology itself changed underneath it.
//!
//! The implementation here keeps the paper's central invariant: a re-sweep
//! **adopts** the surviving LID and LFT state rather than renumbering. LIDs
//! of nodes that fell off the fabric are pruned and released; every
//! surviving node keeps its LID, so live connections (§II-C: "the LID is
//! part of the connection state") are undisturbed. Distribution is
//! resumable: blocks whose `Set` SMPs exhaust their retries are retried in
//! follow-up passes without resending what already landed.
//!
//! Discovery `Get`s are modeled fault-free: the SM retries discovery
//! indefinitely in practice, and the interesting accounting — extra `Set`
//! SMPs, retries, rollbacks — is all on the configuration side.

use ib_mad::fault::{SmpChannel, SmpTransport};
use ib_subnet::{NodeId, Subnet};
use ib_types::{IbResult, Lid, PortNum};

use crate::discovery;
use crate::distribution::{self, FailedBlock, ResumeAccounting};
use crate::report::DistributionReport;
use crate::sm::SubnetManager;

/// Maximum resume passes over failed blocks before a sweep gives up. With
/// the default 4-attempt retry policy this bounds the per-block attempt
/// budget at 68 sends — plenty for any loss rate the harness sweeps, while
/// still terminating against a structurally unreachable switch.
const MAX_RETRY_PASSES: usize = 16;

/// An unsolicited event notice delivered to the SM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trap {
    /// A port changed state (IBA trap 128): link went down or came up.
    LinkStateChange {
        /// Reporting node.
        node: NodeId,
        /// Port whose state changed.
        port: PortNum,
    },
    /// A switch stopped responding entirely (modeled as the neighbor traps
    /// OpenSM aggregates when a crossbar dies).
    SwitchDeath {
        /// The dead switch.
        node: NodeId,
    },
}

/// How deep a re-sweep went.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepKind {
    /// Reroute + redistribute over the known topology.
    Light,
    /// Full rediscovery, pruning of vanished nodes, then reroute.
    Heavy,
    /// Incremental repair: only the destination columns whose installed
    /// paths crossed the failed link were re-routed and redistributed.
    Repair,
}

/// What a trap-driven re-sweep did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResweepReport {
    /// Light or heavy.
    pub kind: SweepKind,
    /// True if a light sweep found stale topology and escalated to heavy.
    pub escalated: bool,
    /// LIDs pruned (cleared and released) because their owners fell off
    /// the fabric. Always empty for a pure light sweep — surviving LIDs
    /// are never renumbered.
    pub pruned_lids: Vec<Lid>,
    /// Nodes dropped from the active fabric.
    pub removed_nodes: usize,
    /// Accumulated distribution accounting across all resume passes.
    pub distribution: DistributionReport,
    /// Resume passes over failed blocks (0 = everything landed first try).
    pub retry_passes: usize,
    /// Blocks still undelivered when the sweep gave up (empty on success).
    pub failed_blocks: Vec<FailedBlock>,
}

/// A re-sweep that never ran because flap damping absorbed the trap.
fn absorbed_report() -> ResweepReport {
    ResweepReport {
        kind: SweepKind::Light,
        escalated: false,
        pruned_lids: Vec::new(),
        removed_nodes: 0,
        distribution: DistributionReport::default(),
        retry_passes: 0,
        failed_blocks: Vec::new(),
    }
}

impl SubnetManager {
    /// Reacts to a trap: link-state changes get a light sweep (escalating
    /// if the known topology no longer routes), a switch death goes
    /// straight to a heavy sweep.
    pub fn handle_trap<C: SmpChannel>(
        &mut self,
        subnet: &mut Subnet,
        trap: Trap,
        transport: &mut SmpTransport<C>,
    ) -> IbResult<ResweepReport> {
        self.ledger.observer().incr("trap.received");
        match trap {
            Trap::LinkStateChange { node, port } => {
                if self.config().repair {
                    self.repair_sweep(subnet, node, port, transport)
                } else {
                    self.light_sweep(subnet, transport)
                }
            }
            Trap::SwitchDeath { node } => {
                if subnet.is_alive(node) {
                    subnet.remove_node(node)?;
                }
                self.heavy_sweep(subnet, transport)
            }
        }
    }

    /// Time-aware trap handling with flap damping: link state-change traps
    /// are first fed to the [`crate::LinkQuarantine`]. A trap on a link
    /// already inside its hold-down window is absorbed without a re-sweep
    /// (the damper re-asserts the administrative down state); every other
    /// trap proceeds to the usual light/heavy sweep over the — possibly
    /// just-quarantined — topology.
    pub fn handle_trap_at<C: SmpChannel>(
        &mut self,
        subnet: &mut Subnet,
        trap: Trap,
        transport: &mut SmpTransport<C>,
        now_ns: u64,
    ) -> IbResult<ResweepReport> {
        if let Trap::LinkStateChange { node, port } = trap {
            if self.config().quarantine.enabled {
                let was_held = self.quarantine.is_quarantined(subnet, node, port, now_ns);
                let absorbed = self
                    .quarantine
                    .note_link_event(subnet, node, port, now_ns)?;
                let observer = self.ledger.observer();
                observer.incr("quarantine.events");
                if absorbed {
                    observer.incr("quarantine.absorbed");
                    self.ledger.observer().incr("trap.received");
                    return Ok(absorbed_report());
                }
                if !was_held && self.quarantine.is_quarantined(subnet, node, port, now_ns) {
                    observer.incr("quarantine.entered");
                }
            }
        }
        self.handle_trap(subnet, trap, transport)
    }

    /// Releases quarantined links whose hold-down expired by `now_ns` and,
    /// if any link came back up, runs a light sweep to fold them back into
    /// routing. Returns the number of links released.
    pub fn release_quarantined<C: SmpChannel>(
        &mut self,
        subnet: &mut Subnet,
        transport: &mut SmpTransport<C>,
        now_ns: u64,
    ) -> IbResult<usize> {
        let released = self.quarantine.release_expired(subnet, now_ns)?;
        if !released.is_empty() {
            self.ledger
                .observer()
                .add("quarantine.released", released.len() as u64);
            self.light_sweep(subnet, transport)?;
        }
        Ok(released.len())
    }

    /// Light sweep: recompute routes over the currently known topology and
    /// push the dirty blocks. LIDs are not touched. If path computation
    /// fails — some destination became unreachable, meaning the topology
    /// the SM believes in is stale — escalates to a heavy sweep.
    pub fn light_sweep<C: SmpChannel>(
        &mut self,
        subnet: &mut Subnet,
        transport: &mut SmpTransport<C>,
    ) -> IbResult<ResweepReport> {
        let span = self.ledger.observer().span("resweep.light");
        let engine = self.config().engine.build();
        let routing = self.config().routing;
        match engine.compute_with(subnet, routing, self.ledger.observer()) {
            Ok(tables) => {
                self.ledger.observer().incr("resweep.light");
                let (distribution, retry_passes, failed_blocks) =
                    self.distribute_resumably(subnet, &tables, transport)?;
                self.verify_converged(subnet, &tables.vls, &failed_blocks)?;
                self.last_tables = Some(tables);
                Ok(ResweepReport {
                    kind: SweepKind::Light,
                    escalated: false,
                    pruned_lids: Vec::new(),
                    removed_nodes: 0,
                    distribution,
                    retry_passes,
                    failed_blocks,
                })
            }
            Err(_) => {
                span.end();
                self.ledger.observer().incr("resweep.escalated");
                let mut report = self.heavy_sweep(subnet, transport)?;
                report.escalated = true;
                Ok(report)
            }
        }
    }

    /// Heavy sweep: rediscover the fabric from the SM node, drop every
    /// previously active node the sweep no longer reaches (pruning and
    /// releasing its LIDs — *without* renumbering any survivor), then
    /// recompute and redistribute routes.
    pub fn heavy_sweep<C: SmpChannel>(
        &mut self,
        subnet: &mut Subnet,
        transport: &mut SmpTransport<C>,
    ) -> IbResult<ResweepReport> {
        let _span = self.ledger.observer().span("resweep.heavy");
        self.ledger.observer().incr("resweep.heavy");
        let disc = discovery::sweep(subnet, self.sm_node, &mut self.ledger)?;
        let mut reached = vec![false; subnet.num_nodes()];
        for &n in &disc.nodes {
            reached[n.index()] = true;
        }

        // Prune what the sweep lost: unreached nodes that were part of the
        // active fabric (they hold LIDs, or are alive with cabling). Nodes
        // that never joined — e.g. dormant dynamic-mode VFs with no cable
        // and no LID — are left alone, as are nodes already processed by an
        // earlier sweep.
        let mut pruned_lids = Vec::new();
        let mut removed_nodes = 0;
        let lost: Vec<NodeId> = subnet
            .nodes()
            .filter(|n| !reached[n.id.index()])
            .filter(|n| {
                n.lids().next().is_some() || (n.is_alive() && n.cabled_ports().next().is_some())
            })
            .map(|n| n.id)
            .collect();
        for id in lost {
            let lids: Vec<Lid> = subnet.node(id).lids().collect();
            for lid in lids {
                subnet.clear_lid(lid)?;
                let _ = self.lid_space.release(lid);
                pruned_lids.push(lid);
            }
            if subnet.is_alive(id) {
                subnet.remove_node(id)?;
            }
            removed_nodes += 1;
        }
        if !pruned_lids.is_empty() {
            let observer = self.ledger.observer();
            observer.add("resweep.pruned_lids", pruned_lids.len() as u64);
            observer.add("resweep.removed_nodes", removed_nodes as u64);
        }

        let engine = self.config().engine.build();
        let routing = self.config().routing;
        let tables = engine.compute_with(subnet, routing, self.ledger.observer())?;
        let (distribution, retry_passes, failed_blocks) =
            self.distribute_resumably(subnet, &tables, transport)?;
        self.verify_converged(subnet, &tables.vls, &failed_blocks)?;
        self.last_tables = Some(tables);
        Ok(ResweepReport {
            kind: SweepKind::Heavy,
            escalated: false,
            pruned_lids,
            removed_nodes,
            distribution,
            retry_passes,
            failed_blocks,
        })
    }

    /// Incremental repair sweep for a downed link at `(node, port)`: finds
    /// the destination LIDs whose installed paths crossed the link, asks
    /// the engine to re-route only those columns spliced into the last
    /// computed tables, distributes the dirty blocks, and gates the result
    /// behind the fabric verifier — black holes and forwarding loops
    /// always, the CDG deadlock check when `config.verify` asks for it.
    /// Any obstacle (link actually up, no baseline, engine error, verifier
    /// rejection) falls back to the full sweep path and counts
    /// `repair.fallback`; the repair itself emits `repair.*` counters and
    /// a `resweep.repair` span.
    pub fn repair_sweep<C: SmpChannel>(
        &mut self,
        subnet: &mut Subnet,
        node: NodeId,
        port: PortNum,
        transport: &mut SmpTransport<C>,
    ) -> IbResult<ResweepReport> {
        self.ledger.observer().incr("repair.attempts");
        // A live link at (node, port) means this trap is an *up* event:
        // folding a link back in rebalances paths fabric-wide, which is a
        // recompute, not a repair.
        if subnet.neighbor(node, port).is_some() {
            self.ledger.observer().incr("repair.skipped_up");
            return self.light_sweep(subnet, transport);
        }
        let Some(prior) = self.last_tables.clone() else {
            self.ledger.observer().incr("repair.no_baseline");
            self.ledger.observer().incr("repair.fallback");
            return self.light_sweep(subnet, transport);
        };
        let span = self.ledger.observer().span("resweep.repair");
        let dirty = ib_verify::affected_destinations(subnet, node, port);
        self.ledger
            .observer()
            .add("repair.dirty_dests", dirty.len() as u64);
        if dirty.is_empty() {
            // No installed path crossed the link: the tables are already
            // correct and there is nothing to distribute.
            self.ledger.observer().incr("repair.clean_noop");
            return Ok(ResweepReport {
                kind: SweepKind::Repair,
                escalated: false,
                pruned_lids: Vec::new(),
                removed_nodes: 0,
                distribution: DistributionReport::default(),
                retry_passes: 0,
                failed_blocks: Vec::new(),
            });
        }
        let engine = self.config().engine.build();
        let routing = self.config().routing;
        let tables =
            match engine.repair_with(subnet, routing, &prior, &dirty, self.ledger.observer()) {
                Ok(tables) => tables,
                Err(_) => {
                    // E.g. a destination became unreachable: the damage
                    // exceeds what a column rewrite can absorb (pruning is
                    // needed). The full path escalates as usual.
                    span.end();
                    self.ledger.observer().incr("repair.engine_error");
                    self.ledger.observer().incr("repair.fallback");
                    return self.light_sweep(subnet, transport);
                }
            };
        let (distribution, retry_passes, failed_blocks) =
            self.distribute_resumably(subnet, &tables, transport)?;
        if failed_blocks.is_empty() {
            let report = ib_verify::FabricVerifier::new()
                .with_deadlock(self.config().verify)
                .verify_observed(subnet, &tables.vls, self.ledger.observer())?;
            if !report.is_clean() {
                // The splice broke a global invariant the per-column
                // rewrite could not see. The full sweep recomputes from
                // scratch and overwrites whatever this repair installed.
                span.end();
                self.ledger.observer().incr("repair.verify_rejected");
                self.ledger.observer().incr("repair.fallback");
                return self.light_sweep(subnet, transport);
            }
            self.ledger.observer().incr("repair.success");
        } else {
            // Mirrors `verify_converged`: tables with stranded blocks are
            // expected to be inconsistent, so the gate is deferred.
            self.ledger.observer().incr("repair.unconverged");
        }
        self.last_tables = Some(tables);
        Ok(ResweepReport {
            kind: SweepKind::Repair,
            escalated: false,
            pruned_lids: Vec::new(),
            removed_nodes: 0,
            distribution,
            retry_passes,
            failed_blocks,
        })
    }

    /// Runs the fabric verifier after a re-sweep when `config.verify` is
    /// set — but only once distribution converged: tables with stranded
    /// blocks are *expected* to be inconsistent, so verification is
    /// deferred (and counted) rather than failed.
    fn verify_converged(
        &mut self,
        subnet: &Subnet,
        vls: &ib_routing::VlAssignment,
        failed_blocks: &[FailedBlock],
    ) -> IbResult<()> {
        if !self.config().verify {
            return Ok(());
        }
        if failed_blocks.is_empty() {
            self.verify_installed(subnet, vls)
        } else {
            self.ledger.observer().incr("verify.skipped_unconverged");
            Ok(())
        }
    }

    /// Distribution with bounded resume passes: failed blocks are retried
    /// until they land, progress stops, or the pass budget runs out.
    ///
    /// Accounting merges per-switch across passes ([`ResumeAccounting`]),
    /// so the returned report equals the fault-free report once every block
    /// has landed — a switch split across passes is counted once in
    /// `switches_updated` and its blocks sum in `max_blocks_per_switch`.
    fn distribute_resumably<C: SmpChannel>(
        &mut self,
        subnet: &mut Subnet,
        tables: &ib_routing::RoutingTables,
        transport: &mut SmpTransport<C>,
    ) -> IbResult<(DistributionReport, usize, Vec<FailedBlock>)> {
        let mode = self.config().smp_mode;
        let sweep = self.config().sweep;
        let mut acct = ResumeAccounting::new();
        self.ledger.begin_phase("lft-distribution");
        let (first, mut failed) = distribution::push_blocks(
            subnet,
            self.sm_node,
            tables,
            mode,
            transport,
            &mut self.ledger,
            None,
            sweep,
        )?;
        acct.merge(first);
        let mut passes = 0;
        while !failed.is_empty() && passes < MAX_RETRY_PASSES {
            self.ledger.begin_phase("lft-distribution-retry");
            let (more, still_failed) = distribution::push_blocks(
                subnet,
                self.sm_node,
                tables,
                mode,
                transport,
                &mut self.ledger,
                Some(&failed),
                sweep,
            )?;
            acct.merge(more);
            passes += 1;
            failed = still_failed;
        }
        let observer = self.ledger.observer();
        if observer.is_enabled() {
            observer.record("resweep.retry_passes", passes as u64);
            observer.add("resweep.stranded_blocks", failed.len() as u64);
        }
        Ok((acct.report(), passes, failed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sm::SmConfig;
    use ib_subnet::topology::fattree::two_level;
    use ib_types::Lid;

    /// Bring up a 2-level fat tree (3 leaves, 2 spines) with a perfect SM.
    fn bring_up() -> (ib_subnet::topology::BuiltTopology, SubnetManager) {
        let mut t = two_level(3, 2, 2);
        let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
        sm.bring_up(&mut t.subnet).unwrap();
        (t, sm)
    }

    fn all_lids(subnet: &Subnet) -> Vec<Lid> {
        subnet.lids()
    }

    fn assert_all_pairs_connected(t: &ib_subnet::topology::BuiltTopology, skip: &[NodeId]) {
        for &a in &t.hosts {
            if skip.contains(&a) {
                continue;
            }
            for &b in &t.hosts {
                if skip.contains(&b) || a == b {
                    continue;
                }
                let lid = t.subnet.node(b).ports[1].lid.unwrap();
                let path = t.subnet.trace_route(a, lid, 32).unwrap();
                assert_eq!(*path.last().unwrap(), b);
            }
        }
    }

    #[test]
    fn link_down_trap_triggers_light_sweep_without_renumbering() {
        let (mut t, mut sm) = bring_up();
        let lids_before = all_lids(&t.subnet);

        // Down one of the two uplinks of leaf 0 (leaf -> spine 0). The
        // fat tree has a redundant spine, so a light sweep suffices.
        let leaf0 = t.switch_levels[0][0];
        let spine0 = t.switch_levels[1][0];
        let (port, _) = t
            .subnet
            .node(leaf0)
            .connected_ports()
            .find(|(_, r)| r.node == spine0)
            .unwrap();
        t.subnet.set_link_down(leaf0, port).unwrap();

        let mut transport = SmpTransport::perfect(sm.sm_node);
        let report = sm
            .handle_trap(
                &mut t.subnet,
                Trap::LinkStateChange { node: leaf0, port },
                &mut transport,
            )
            .unwrap();
        assert_eq!(report.kind, SweepKind::Light);
        assert!(!report.escalated);
        assert!(report.pruned_lids.is_empty());
        assert!(report.failed_blocks.is_empty());
        assert!(report.distribution.lft_smps > 0);
        // No LID moved.
        assert_eq!(all_lids(&t.subnet), lids_before);
        assert_all_pairs_connected(&t, &[]);
        t.subnet.validate_degraded().unwrap();
    }

    #[test]
    fn switch_death_heavy_sweep_prunes_only_the_dead() {
        let (mut t, mut sm) = bring_up();
        let spine1 = t.switch_levels[1][1];
        let spine_lid = match &t.subnet.node(spine1).kind {
            ib_subnet::NodeKind::Switch { lid, .. } => lid.unwrap(),
            ib_subnet::NodeKind::Hca => unreachable!(),
        };
        let lids_before = all_lids(&t.subnet);

        let mut transport = SmpTransport::perfect(sm.sm_node);
        let report = sm
            .handle_trap(
                &mut t.subnet,
                Trap::SwitchDeath { node: spine1 },
                &mut transport,
            )
            .unwrap();
        assert_eq!(report.kind, SweepKind::Heavy);
        assert_eq!(report.pruned_lids, vec![spine_lid]);
        assert_eq!(report.removed_nodes, 1);
        assert!(report.failed_blocks.is_empty());
        // Exactly one LID gone; every survivor kept its number.
        let lids_after = all_lids(&t.subnet);
        assert_eq!(
            lids_after,
            lids_before
                .iter()
                .copied()
                .filter(|&l| l != spine_lid)
                .collect::<Vec<_>>()
        );
        // The freed LID is reusable.
        assert!(!sm.lid_space.is_allocated(spine_lid));
        assert_all_pairs_connected(&t, &[]);
        t.subnet.validate_degraded().unwrap();
    }

    #[test]
    fn isolating_a_leaf_escalates_and_prunes_its_hosts() {
        let (mut t, mut sm) = bring_up();
        // Kill every uplink of leaf 2 (the SM host is on leaf 0): its two
        // hosts drop off the fabric.
        let leaf2 = t.switch_levels[0][2];
        let uplinks: Vec<PortNum> = t
            .subnet
            .node(leaf2)
            .connected_ports()
            .filter(|(_, r)| t.subnet.node(r.node).is_physical_switch())
            .map(|(p, _)| p)
            .collect();
        for p in &uplinks {
            t.subnet.set_link_down(leaf2, *p).unwrap();
        }

        let mut transport = SmpTransport::perfect(sm.sm_node);
        let report = sm.light_sweep(&mut t.subnet, &mut transport).unwrap();
        // Light sweep cannot route to the isolated leaf: escalation.
        assert!(report.escalated);
        assert_eq!(report.kind, SweepKind::Heavy);
        // Leaf 2 + its 2 hosts: 3 pruned LIDs, 3 removed nodes.
        assert_eq!(report.removed_nodes, 3);
        assert_eq!(report.pruned_lids.len(), 3);
        let survivors: Vec<NodeId> = t.hosts[4..6].to_vec();
        assert_all_pairs_connected(&t, &survivors);
        t.subnet.validate_degraded().unwrap();
    }

    /// The leaf0 -> spine0 uplink, downed, plus its trap.
    fn down_first_uplink(t: &mut ib_subnet::topology::BuiltTopology) -> Trap {
        let leaf0 = t.switch_levels[0][0];
        let spine0 = t.switch_levels[1][0];
        let (port, _) = t
            .subnet
            .node(leaf0)
            .connected_ports()
            .find(|(_, r)| r.node == spine0)
            .unwrap();
        t.subnet.set_link_down(leaf0, port).unwrap();
        Trap::LinkStateChange { node: leaf0, port }
    }

    #[test]
    fn repair_sweep_fixes_link_down_and_counts_success() {
        let mut t = two_level(3, 2, 2);
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                repair: true,
                ..SmConfig::default()
            },
        );
        sm.set_observer(ib_observe::Observer::metrics());
        sm.bring_up(&mut t.subnet).unwrap();
        let trap = down_first_uplink(&mut t);
        let mut transport = SmpTransport::perfect(sm.sm_node);
        let report = sm.handle_trap(&mut t.subnet, trap, &mut transport).unwrap();
        assert_eq!(report.kind, SweepKind::Repair);
        assert!(report.failed_blocks.is_empty());
        assert!(report.distribution.lft_smps > 0, "dirty blocks were sent");
        assert_all_pairs_connected(&t, &[]);
        t.subnet.validate_degraded().unwrap();
        let snap = sm.observer().snapshot().unwrap();
        assert_eq!(snap.counter("repair.attempts"), 1);
        assert_eq!(snap.counter("repair.success"), 1);
        assert_eq!(snap.counter("repair.fallback"), 0);
        assert!(snap.counter("repair.dirty_dests") > 0);
        assert_eq!(snap.spans_named("resweep.repair").len(), 1);
    }

    #[test]
    fn repair_sends_no_more_smps_than_a_full_sweep_on_a_twin_fabric() {
        // Same fault on two identical fabrics: the incremental repair must
        // not exceed the light sweep's LFT traffic.
        let run = |repair: bool| {
            let mut t = two_level(3, 2, 2);
            let mut sm = SubnetManager::new(
                t.hosts[0],
                SmConfig {
                    repair,
                    ..SmConfig::default()
                },
            );
            sm.bring_up(&mut t.subnet).unwrap();
            let trap = down_first_uplink(&mut t);
            let mut transport = SmpTransport::perfect(sm.sm_node);
            let report = sm.handle_trap(&mut t.subnet, trap, &mut transport).unwrap();
            assert!(report.failed_blocks.is_empty());
            assert_all_pairs_connected(&t, &[]);
            report.distribution.lft_smps
        };
        assert!(run(true) <= run(false));
    }

    #[test]
    fn repair_without_baseline_falls_back_to_light_sweep() {
        // An SM that never computed tables (adopted fabric) has no splice
        // baseline: the repair request must degrade to the full path.
        let (mut t, sm0) = bring_up();
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                repair: true,
                ..SmConfig::default()
            },
        );
        drop(sm0);
        sm.set_observer(ib_observe::Observer::metrics());
        let trap = down_first_uplink(&mut t);
        let mut transport = SmpTransport::perfect(sm.sm_node);
        let report = sm.handle_trap(&mut t.subnet, trap, &mut transport).unwrap();
        assert_eq!(report.kind, SweepKind::Light);
        assert_all_pairs_connected(&t, &[]);
        let snap = sm.observer().snapshot().unwrap();
        assert_eq!(snap.counter("repair.no_baseline"), 1);
        assert_eq!(snap.counter("repair.fallback"), 1);
    }

    #[test]
    fn repair_skips_link_up_events() {
        let mut t = two_level(3, 2, 2);
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                repair: true,
                ..SmConfig::default()
            },
        );
        sm.set_observer(ib_observe::Observer::metrics());
        sm.bring_up(&mut t.subnet).unwrap();
        let mut transport = SmpTransport::perfect(sm.sm_node);
        let trap = down_first_uplink(&mut t);
        sm.handle_trap(&mut t.subnet, trap, &mut transport).unwrap();
        // The link comes back: folding it in is a rebalance, not a repair.
        let Trap::LinkStateChange { node, port } = trap else {
            unreachable!()
        };
        t.subnet.set_link_up(node, port).unwrap();
        let report = sm.handle_trap(&mut t.subnet, trap, &mut transport).unwrap();
        assert_eq!(report.kind, SweepKind::Light);
        assert_all_pairs_connected(&t, &[]);
        let snap = sm.observer().snapshot().unwrap();
        assert_eq!(snap.counter("repair.skipped_up"), 1);
        assert_eq!(snap.counter("repair.fallback"), 0);
    }

    #[test]
    fn lossy_transport_still_converges() {
        let (mut t, mut sm) = bring_up();
        let leaf0 = t.switch_levels[0][0];
        let spine0 = t.switch_levels[1][0];
        let (port, _) = t
            .subnet
            .node(leaf0)
            .connected_ports()
            .find(|(_, r)| r.node == spine0)
            .unwrap();
        t.subnet.set_link_down(leaf0, port).unwrap();

        let mut transport = SmpTransport::lossy(sm.sm_node, 0x5EED, 0.2, 500);
        let baseline = sm.ledger.total();
        let report = sm
            .handle_trap(
                &mut t.subnet,
                Trap::LinkStateChange { node: leaf0, port },
                &mut transport,
            )
            .unwrap();
        assert!(report.failed_blocks.is_empty(), "did not converge");
        assert!(sm.ledger.total() > baseline);
        assert_all_pairs_connected(&t, &[]);
    }
}
