//! Trap-driven re-sweeps: the SM's reaction to fabric faults.
//!
//! IBA switches report port-state changes to the SM with unsolicited trap
//! MADs (traps 128/129-131). OpenSM reacts with a *light sweep* — reroute
//! and redistribute over the topology it already knows — and escalates to a
//! *heavy sweep* (full rediscovery) when the light sweep finds the
//! topology itself changed underneath it.
//!
//! The implementation here keeps the paper's central invariant: a re-sweep
//! **adopts** the surviving LID and LFT state rather than renumbering. LIDs
//! of nodes that fell off the fabric are pruned and released; every
//! surviving node keeps its LID, so live connections (§II-C: "the LID is
//! part of the connection state") are undisturbed. Distribution is
//! resumable: blocks whose `Set` SMPs exhaust their retries are retried in
//! follow-up passes without resending what already landed.
//!
//! Discovery `Get`s are modeled fault-free: the SM retries discovery
//! indefinitely in practice, and the interesting accounting — extra `Set`
//! SMPs, retries, rollbacks — is all on the configuration side.

use ib_mad::fault::{SmpChannel, SmpTransport};
use ib_subnet::{NodeId, Subnet};
use ib_types::{IbResult, Lid, PortNum};

use crate::discovery;
use crate::distribution::{self, FailedBlock, ResumeAccounting};
use crate::report::DistributionReport;
use crate::sm::SubnetManager;

/// Maximum resume passes over failed blocks before a sweep gives up. With
/// the default 4-attempt retry policy this bounds the per-block attempt
/// budget at 68 sends — plenty for any loss rate the harness sweeps, while
/// still terminating against a structurally unreachable switch.
const MAX_RETRY_PASSES: usize = 16;

/// Whether `tables` came out of a genuine column splice of `prior` — the
/// precondition for updating the reverse route index per dirty column.
/// The engine must advertise an incremental repair *and* the output must
/// cover exactly the baseline's switch set: the engines' internal
/// full-recompute fallback (taken when `prior` is missing a switch)
/// rebuilds the live graph's switch set instead, so a key-set mismatch
/// betrays a full recompute even from an incremental engine.
fn repair_was_spliced(
    engine: &dyn ib_routing::RoutingEngine,
    prior: &ib_routing::RoutingTables,
    tables: &ib_routing::RoutingTables,
) -> bool {
    engine.incremental_repair()
        && tables.lfts.len() == prior.lfts.len()
        && tables.lfts.keys().all(|k| prior.lfts.contains_key(k))
}

/// An unsolicited event notice delivered to the SM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trap {
    /// A port changed state (IBA trap 128): link went down or came up.
    LinkStateChange {
        /// Reporting node.
        node: NodeId,
        /// Port whose state changed.
        port: PortNum,
    },
    /// A switch stopped responding entirely (modeled as the neighbor traps
    /// OpenSM aggregates when a crossbar dies).
    SwitchDeath {
        /// The dead switch.
        node: NodeId,
    },
}

/// How deep a re-sweep went.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepKind {
    /// Reroute + redistribute over the known topology.
    Light,
    /// Full rediscovery, pruning of vanished nodes, then reroute.
    Heavy,
    /// Incremental repair: only the destination columns whose installed
    /// paths crossed the failed link were re-routed and redistributed.
    Repair,
    /// Nothing yet: the trap was queued by coalescing
    /// ([`crate::CoalesceOptions`]) and will be answered, together with
    /// every other trap in its window, by one batched repair sweep when
    /// the driver calls [`SubnetManager::flush_coalesced`].
    Deferred,
}

/// What a trap-driven re-sweep did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResweepReport {
    /// Light or heavy.
    pub kind: SweepKind,
    /// True if a light sweep found stale topology and escalated to heavy.
    pub escalated: bool,
    /// LIDs pruned (cleared and released) because their owners fell off
    /// the fabric. Always empty for a pure light sweep — surviving LIDs
    /// are never renumbered.
    pub pruned_lids: Vec<Lid>,
    /// Nodes dropped from the active fabric.
    pub removed_nodes: usize,
    /// Accumulated distribution accounting across all resume passes.
    pub distribution: DistributionReport,
    /// Resume passes over failed blocks (0 = everything landed first try).
    pub retry_passes: usize,
    /// Blocks still undelivered when the sweep gave up (empty on success).
    pub failed_blocks: Vec<FailedBlock>,
}

/// A re-sweep that never ran because flap damping absorbed the trap.
fn absorbed_report() -> ResweepReport {
    ResweepReport {
        kind: SweepKind::Light,
        escalated: false,
        pruned_lids: Vec::new(),
        removed_nodes: 0,
        distribution: DistributionReport::default(),
        retry_passes: 0,
        failed_blocks: Vec::new(),
    }
}

impl SubnetManager {
    /// Reacts to a trap: link-state changes get a light sweep (escalating
    /// if the known topology no longer routes), a switch death goes
    /// straight to a heavy sweep.
    pub fn handle_trap<C: SmpChannel>(
        &mut self,
        subnet: &mut Subnet,
        trap: Trap,
        transport: &mut SmpTransport<C>,
    ) -> IbResult<ResweepReport> {
        self.ledger.observer().incr("trap.received");
        if self.trap_is_beyond_split(subnet, &trap) {
            self.ledger.observer().incr("sm.trap_absorbed_lost");
            return Ok(absorbed_report());
        }
        match trap {
            Trap::LinkStateChange { node, port } => {
                if self.config().repair {
                    self.repair_sweep(subnet, node, port, transport)
                } else {
                    self.light_sweep(subnet, transport)
                }
            }
            Trap::SwitchDeath { node } => {
                if subnet.is_alive(node) {
                    subnet.remove_node(node)?;
                }
                self.heavy_sweep(subnet, transport)
            }
        }
    }

    /// Time-aware trap handling with flap damping: link state-change traps
    /// are first fed to the [`crate::LinkQuarantine`]. A trap on a link
    /// already inside its hold-down window is absorbed without a re-sweep
    /// (the damper re-asserts the administrative down state); every other
    /// trap proceeds to the usual light/heavy sweep over the — possibly
    /// just-quarantined — topology.
    pub fn handle_trap_at<C: SmpChannel>(
        &mut self,
        subnet: &mut Subnet,
        trap: Trap,
        transport: &mut SmpTransport<C>,
        now_ns: u64,
    ) -> IbResult<ResweepReport> {
        if self.trap_is_beyond_split(subnet, &trap) {
            let observer = self.ledger.observer();
            observer.incr("trap.received");
            observer.incr("sm.trap_absorbed_lost");
            return Ok(absorbed_report());
        }
        if let Trap::LinkStateChange { node, port } = trap {
            if self.config().quarantine.enabled {
                let was_held = self.quarantine.is_quarantined(subnet, node, port, now_ns);
                let refusals_before = self.quarantine.bridge_refusals();
                let absorbed = self
                    .quarantine
                    .note_link_event(subnet, node, port, now_ns)?;
                let observer = self.ledger.observer();
                observer.incr("quarantine.events");
                observer.add(
                    "quarantine.bridge_refused",
                    self.quarantine.bridge_refusals() - refusals_before,
                );
                if absorbed {
                    observer.incr("quarantine.absorbed");
                    self.ledger.observer().incr("trap.received");
                    return Ok(absorbed_report());
                }
                if !was_held && self.quarantine.is_quarantined(subnet, node, port, now_ns) {
                    observer.incr("quarantine.entered");
                }
            }
            // Trap coalescing: a link-*down* trap inside the batching
            // window joins the pending batch instead of sweeping now. Up
            // events never defer — folding a link back in is a fabric-wide
            // rebalance the batch's column splice cannot express.
            let config = self.config();
            if config.repair && config.coalesce.enabled && subnet.neighbor(node, port).is_none() {
                self.ledger.observer().incr("trap.received");
                return Ok(self.defer_trap(node, port, now_ns));
            }
        }
        self.handle_trap(subnet, trap, transport)
    }

    /// Whether the current split physically keeps `trap` from reaching the
    /// SM: its reporter sits beyond the cut and — for a link coming *up* —
    /// so does the far end. A boundary link-up is the heal signal and must
    /// get through (its MAD can cross the freshly risen link); everything
    /// else from a lost component is absorbed, exactly as a real master
    /// never sees MADs from switches it cannot route to.
    fn trap_is_beyond_split(&self, subnet: &Subnet, trap: &Trap) -> bool {
        if self.lost_nodes.is_empty() {
            return false;
        }
        match *trap {
            Trap::LinkStateChange { node, port } => {
                self.lost_nodes.contains(&node)
                    && subnet
                        .neighbor(node, port)
                        .is_none_or(|r| self.lost_nodes.contains(&r.node))
            }
            Trap::SwitchDeath { node } => self.lost_nodes.contains(&node),
        }
    }

    /// Queues one link-down trap for the pending batch (deduplicated per
    /// link) and arms the flush deadline off the *first* deferred trap.
    fn defer_trap(&mut self, node: NodeId, port: PortNum, now_ns: u64) -> ResweepReport {
        if !self.pending_traps.contains(&(node, port)) {
            self.pending_traps.push((node, port));
        }
        if self.batch_deadline_ns.is_none() {
            self.batch_deadline_ns = Some(now_ns + self.config().coalesce.window_ns);
        }
        self.ledger.observer().incr("repair.deferred");
        ResweepReport {
            kind: SweepKind::Deferred,
            ..absorbed_report()
        }
    }

    /// Runs the batched repair sweep if the coalescing window has closed by
    /// `now_ns`. `Ok(None)` means nothing was due — no traps pending, or
    /// the window is still absorbing. Drivers call this from their event
    /// loop alongside [`SubnetManager::release_quarantined`].
    pub fn flush_coalesced<C: SmpChannel>(
        &mut self,
        subnet: &mut Subnet,
        transport: &mut SmpTransport<C>,
        now_ns: u64,
    ) -> IbResult<Option<ResweepReport>> {
        let Some(deadline) = self.batch_deadline_ns else {
            return Ok(None);
        };
        if now_ns < deadline {
            return Ok(None);
        }
        let faults = std::mem::take(&mut self.pending_traps);
        self.batch_deadline_ns = None;
        if faults.is_empty() {
            return Ok(None);
        }
        self.repair_sweep_batch(subnet, &faults, transport)
            .map(Some)
    }

    /// Releases quarantined links whose hold-down expired by `now_ns` and,
    /// if any link came back up, runs a light sweep to fold them back into
    /// routing. Returns the number of links released.
    pub fn release_quarantined<C: SmpChannel>(
        &mut self,
        subnet: &mut Subnet,
        transport: &mut SmpTransport<C>,
        now_ns: u64,
    ) -> IbResult<usize> {
        let released = self.quarantine.release_expired(subnet, now_ns)?;
        if !released.is_empty() {
            self.ledger
                .observer()
                .add("quarantine.released", released.len() as u64);
            self.light_sweep(subnet, transport)?;
        }
        Ok(released.len())
    }

    /// Light sweep: recompute routes over the currently known topology and
    /// push the dirty blocks. LIDs are not touched. A fabric split is *not*
    /// an error here: the engines route each component on its own and clear
    /// the cross-component columns, the SM enters counted degraded mode
    /// (`sm.partitioned`) and keeps serving its own side. Escalation to a
    /// heavy sweep remains for genuine engine failures — topology the
    /// engine cannot even express (e.g. a LID stranded on a switchless
    /// endpoint), which only rediscovery-plus-pruning repairs.
    pub fn light_sweep<C: SmpChannel>(
        &mut self,
        subnet: &mut Subnet,
        transport: &mut SmpTransport<C>,
    ) -> IbResult<ResweepReport> {
        let span = self.ledger.observer().span("resweep.light");
        let engine = self.config().engine.build();
        let routing = self.config().routing;
        match engine.compute_with(subnet, routing, self.ledger.observer()) {
            Ok(tables) => {
                self.ledger.observer().incr("resweep.light");
                let healed = self.refresh_partition_state(subnet);
                let (distribution, retry_passes, failed_blocks) =
                    self.distribute_resumably(subnet, &tables, transport)?;
                self.verify_converged(subnet, &tables.vls, &failed_blocks)?;
                self.refresh_route_index(subnet, &failed_blocks);
                if failed_blocks.is_empty() {
                    self.verify_healed(subnet, &healed)?;
                }
                self.last_tables = Some(tables);
                Ok(ResweepReport {
                    kind: SweepKind::Light,
                    escalated: false,
                    pruned_lids: Vec::new(),
                    removed_nodes: 0,
                    distribution,
                    retry_passes,
                    failed_blocks,
                })
            }
            Err(_) => {
                span.end();
                self.ledger.observer().incr("resweep.escalated");
                let mut report = self.heavy_sweep(subnet, transport)?;
                report.escalated = true;
                Ok(report)
            }
        }
    }

    /// Heavy sweep: rediscover the fabric from the SM node, drop every
    /// previously active node the sweep no longer reaches *and cannot come
    /// back on its own* (pruning and releasing its LIDs — *without*
    /// renumbering any survivor), then recompute and redistribute routes.
    ///
    /// Partition tolerance narrows the prune set: a node that is alive and
    /// still holds live cables merely sits beyond a split — its LIDs are
    /// kept so the heal sweep restores it in place. What is pruned: dead
    /// nodes' LID registrations, and live nodes whose every cable went down
    /// with a dead neighbor (nothing short of recabling reconnects those).
    pub fn heavy_sweep<C: SmpChannel>(
        &mut self,
        subnet: &mut Subnet,
        transport: &mut SmpTransport<C>,
    ) -> IbResult<ResweepReport> {
        let _span = self.ledger.observer().span("resweep.heavy");
        self.ledger.observer().incr("resweep.heavy");
        let disc = discovery::sweep(subnet, self.sm_node, &mut self.ledger)?;
        let mut reached = vec![false; subnet.num_nodes()];
        for &n in &disc.nodes {
            reached[n.index()] = true;
        }

        // Prune what the sweep lost for good. Nodes that never joined —
        // e.g. dormant dynamic-mode VFs with no cable and no LID — are
        // left alone, as are nodes already processed by an earlier sweep
        // and live nodes beyond a split (they keep their LIDs for the
        // heal).
        let mut pruned_lids = Vec::new();
        let mut removed_nodes = 0;
        let lost: Vec<NodeId> = subnet
            .nodes()
            .filter(|n| !reached[n.id.index()])
            .filter(|n| {
                if n.is_alive() {
                    n.connected_ports().next().is_none()
                        && (n.lids().next().is_some() || n.cabled_ports().next().is_some())
                } else {
                    n.lids().next().is_some()
                }
            })
            .map(|n| n.id)
            .collect();
        for id in lost {
            let lids: Vec<Lid> = subnet.node(id).lids().collect();
            for lid in lids {
                subnet.clear_lid(lid)?;
                let _ = self.lid_space.release(lid);
                pruned_lids.push(lid);
            }
            if subnet.is_alive(id) {
                subnet.remove_node(id)?;
            }
            removed_nodes += 1;
        }
        if !pruned_lids.is_empty() {
            let observer = self.ledger.observer();
            observer.add("resweep.pruned_lids", pruned_lids.len() as u64);
            observer.add("resweep.removed_nodes", removed_nodes as u64);
        }

        let engine = self.config().engine.build();
        let routing = self.config().routing;
        let tables = engine.compute_with(subnet, routing, self.ledger.observer())?;
        let healed = self.refresh_partition_state(subnet);
        let (distribution, retry_passes, failed_blocks) =
            self.distribute_resumably(subnet, &tables, transport)?;
        self.verify_converged(subnet, &tables.vls, &failed_blocks)?;
        self.refresh_route_index(subnet, &failed_blocks);
        if failed_blocks.is_empty() {
            self.verify_healed(subnet, &healed)?;
        }
        self.last_tables = Some(tables);
        Ok(ResweepReport {
            kind: SweepKind::Heavy,
            escalated: false,
            pruned_lids,
            removed_nodes,
            distribution,
            retry_passes,
            failed_blocks,
        })
    }

    /// Incremental repair sweep for a downed link at `(node, port)`: finds
    /// the destination LIDs whose installed paths crossed the link, asks
    /// the engine to re-route only those columns spliced into the last
    /// computed tables, distributes the dirty blocks, and gates the result
    /// behind the fabric verifier — black holes and forwarding loops
    /// always, the CDG deadlock check when `config.verify` asks for it.
    /// Any obstacle (link actually up, no baseline, engine error, verifier
    /// rejection) falls back to the full sweep path and counts
    /// `repair.fallback`; the repair itself emits `repair.*` counters and
    /// a `resweep.repair` span.
    pub fn repair_sweep<C: SmpChannel>(
        &mut self,
        subnet: &mut Subnet,
        node: NodeId,
        port: PortNum,
        transport: &mut SmpTransport<C>,
    ) -> IbResult<ResweepReport> {
        self.ledger.observer().incr("repair.attempts");
        // A live link at (node, port) means this trap is an *up* event:
        // folding a link back in rebalances paths fabric-wide, which is a
        // recompute, not a repair.
        if subnet.neighbor(node, port).is_some() {
            self.ledger.observer().incr("repair.skipped_up");
            return self.light_sweep(subnet, transport);
        }
        let Some(prior) = self.last_tables.clone() else {
            self.count_repair_fallback("repair.no_baseline");
            return self.light_sweep(subnet, transport);
        };
        let span = self.ledger.observer().span("resweep.repair");
        let dirty = self.dirty_destinations(subnet, node, port);
        self.ledger
            .observer()
            .add("repair.dirty_dests", dirty.len() as u64);
        if dirty.is_empty() {
            // No installed path crossed the link: the tables are already
            // correct and there is nothing to distribute.
            self.ledger.observer().incr("repair.clean_noop");
            return Ok(ResweepReport {
                kind: SweepKind::Repair,
                escalated: false,
                pruned_lids: Vec::new(),
                removed_nodes: 0,
                distribution: DistributionReport::default(),
                retry_passes: 0,
                failed_blocks: Vec::new(),
            });
        }
        let engine = self.config().engine.build();
        let routing = self.config().routing;
        let graph = match self.acquire_repair_graph(subnet) {
            Ok(g) => g,
            Err(_) => {
                // The graph itself is unbuildable (e.g. an HCA still
                // carries a LID over its downed uplink): same escalation
                // as an engine error, which is where this Err used to
                // surface when every engine built its own graph.
                span.end();
                self.count_repair_fallback("repair.engine_error");
                return self.light_sweep(subnet, transport);
            }
        };
        let result = engine.repair_with_graph(
            subnet,
            &graph,
            routing,
            &prior,
            &dirty,
            self.ledger.observer(),
        );
        self.cached_graph = Some((subnet.topology_epoch(), graph));
        let tables = match result {
            Ok(tables) => tables,
            Err(_) => {
                // E.g. a destination became unreachable: the damage
                // exceeds what a column rewrite can absorb (pruning is
                // needed). The full path escalates as usual.
                span.end();
                self.count_repair_fallback("repair.engine_error");
                return self.light_sweep(subnet, transport);
            }
        };
        let healed = self.refresh_partition_state(subnet);
        let (distribution, retry_passes, failed_blocks) =
            self.distribute_resumably(subnet, &tables, transport)?;
        if failed_blocks.is_empty() {
            let report = ib_verify::FabricVerifier::new()
                .with_deadlock(self.config().verify)
                .with_viewpoint(self.sm_node)
                .verify_observed(subnet, &tables.vls, self.ledger.observer())?;
            let touched: std::collections::HashSet<Lid> = dirty.iter().copied().collect();
            if self.repair_gate_rejects(&report, &touched) {
                // The splice broke an invariant on a column it touched (or
                // a fabric-global one). The full sweep recomputes from
                // scratch and overwrites whatever this repair installed.
                span.end();
                self.count_repair_fallback("repair.verify_rejected");
                return self.light_sweep(subnet, transport);
            }
            self.count_repair_success();
            if repair_was_spliced(engine.as_ref(), &prior, &tables) && self.lost_nodes.is_empty() {
                if let Some(idx) = self.route_index.as_mut() {
                    for &lid in &dirty {
                        idx.apply_column_update(lid, &prior, &tables);
                    }
                }
            } else {
                // A full-recompute "repair" (default-fallback engines, or
                // an incremental engine that lost its baseline) may have
                // rewritten any column — and a repair on a split fabric
                // rewrote columns on switches the SM no longer serves:
                // per-column splicing cannot track either, so rebuild the
                // index from what is now installed.
                self.route_index = Some(ib_verify::ReverseRouteIndex::from_installed(subnet));
            }
            self.verify_healed(subnet, &healed)?;
        } else {
            // Mirrors `verify_converged`: tables with stranded blocks are
            // expected to be inconsistent, so the gate is deferred — and
            // the index no longer mirrors what is installed.
            self.ledger.observer().incr("repair.unconverged");
            self.route_index = None;
        }
        self.last_tables = Some(tables);
        Ok(ResweepReport {
            kind: SweepKind::Repair,
            escalated: false,
            pruned_lids: Vec::new(),
            removed_nodes: 0,
            distribution,
            retry_passes,
            failed_blocks,
        })
    }

    /// One batched repair sweep over a burst of link-down faults: unions
    /// the per-fault dirty destination sets (earlier faults' columns
    /// subtracted — each group is exactly what the corresponding serial
    /// repair would have re-routed, since every faulted link is already
    /// down), folds them through the engine's `repair_batch_with`, then
    /// runs **one** dirty-block distribution and **one** verifier gate for
    /// the whole burst. Final tables are byte-identical to repairing the
    /// traps one at a time; the savings are the shared LFT blocks sent
    /// once instead of per fault and the k-1 elided verifier passes.
    /// Emits `repair.batched` / `repair.batch_size` and a `resweep.batch`
    /// span; every obstacle falls back exactly like [`Self::repair_sweep`].
    pub fn repair_sweep_batch<C: SmpChannel>(
        &mut self,
        subnet: &mut Subnet,
        faults: &[(NodeId, PortNum)],
        transport: &mut SmpTransport<C>,
    ) -> IbResult<ResweepReport> {
        self.ledger.observer().incr("repair.batched");
        self.ledger
            .observer()
            .add("repair.batch_size", faults.len() as u64);
        // A live link in the batch means an up event slipped in without a
        // trap (e.g. an operator re-cable): fold-in is a rebalance, and the
        // full sweep also covers every other fault in the batch.
        if faults.iter().any(|&(n, p)| subnet.neighbor(n, p).is_some()) {
            self.ledger.observer().incr("repair.skipped_up");
            return self.light_sweep(subnet, transport);
        }
        let Some(prior) = self.last_tables.clone() else {
            self.count_repair_fallback("repair.no_baseline");
            return self.light_sweep(subnet, transport);
        };
        let span = self.ledger.observer().span("resweep.batch");
        // Disjoint per-fault dirty groups off the shared baseline: a column
        // already claimed by an earlier fault will be re-routed around
        // *all* downed links in one go, so later faults must not re-route
        // it again (and serially repaired columns never re-cross a downed
        // link, which is why baseline-minus-earlier equals the serial
        // arm's per-step scan).
        let mut seen = std::collections::HashSet::new();
        let groups: Vec<Vec<Lid>> = faults
            .iter()
            .map(|&(n, p)| {
                self.dirty_destinations(subnet, n, p)
                    .into_iter()
                    .filter(|&lid| seen.insert(lid))
                    .collect()
            })
            .collect();
        let total: usize = groups.iter().map(Vec::len).sum();
        self.ledger
            .observer()
            .add("repair.dirty_dests", total as u64);
        if total == 0 {
            self.ledger.observer().incr("repair.clean_noop");
            return Ok(ResweepReport {
                kind: SweepKind::Repair,
                escalated: false,
                pruned_lids: Vec::new(),
                removed_nodes: 0,
                distribution: DistributionReport::default(),
                retry_passes: 0,
                failed_blocks: Vec::new(),
            });
        }
        let engine = self.config().engine.build();
        let routing = self.config().routing;
        let graph = match self.acquire_repair_graph(subnet) {
            Ok(g) => g,
            Err(_) => {
                span.end();
                self.count_repair_fallback("repair.engine_error");
                return self.light_sweep(subnet, transport);
            }
        };
        let result = engine.repair_batch_with_graph(
            subnet,
            &graph,
            routing,
            &prior,
            &groups,
            self.ledger.observer(),
        );
        self.cached_graph = Some((subnet.topology_epoch(), graph));
        let tables = match result {
            Ok(tables) => tables,
            Err(_) => {
                span.end();
                self.count_repair_fallback("repair.engine_error");
                return self.light_sweep(subnet, transport);
            }
        };
        let healed = self.refresh_partition_state(subnet);
        let (distribution, retry_passes, failed_blocks) =
            self.distribute_resumably(subnet, &tables, transport)?;
        if failed_blocks.is_empty() {
            let report = ib_verify::FabricVerifier::new()
                .with_deadlock(self.config().verify)
                .with_viewpoint(self.sm_node)
                .verify_observed(subnet, &tables.vls, self.ledger.observer())?;
            let touched: std::collections::HashSet<Lid> =
                groups.iter().flatten().copied().collect();
            if self.repair_gate_rejects(&report, &touched) {
                span.end();
                self.count_repair_fallback("repair.verify_rejected");
                return self.light_sweep(subnet, transport);
            }
            self.count_repair_success();
            if repair_was_spliced(engine.as_ref(), &prior, &tables) && self.lost_nodes.is_empty() {
                if let Some(idx) = self.route_index.as_mut() {
                    for group in &groups {
                        for &lid in group {
                            idx.apply_column_update(lid, &prior, &tables);
                        }
                    }
                }
            } else {
                self.route_index = Some(ib_verify::ReverseRouteIndex::from_installed(subnet));
            }
            self.verify_healed(subnet, &healed)?;
        } else {
            self.ledger.observer().incr("repair.unconverged");
            self.route_index = None;
        }
        self.last_tables = Some(tables);
        Ok(ResweepReport {
            kind: SweepKind::Repair,
            escalated: false,
            pruned_lids: Vec::new(),
            removed_nodes: 0,
            distribution,
            retry_passes,
            failed_blocks,
        })
    }

    /// Counts one repair fallback three ways: the named reason, the
    /// aggregate `repair.fallback`, and the per-engine
    /// `repair.fallback.<engine>` tag BENCH and soak output key on — a
    /// grid run over the full engine matrix must show *which* engine
    /// degraded to the full sweep, not just that one did.
    fn count_repair_fallback(&self, reason: &str) {
        let observer = self.ledger.observer();
        observer.incr(reason);
        observer.incr("repair.fallback");
        observer.incr(&format!("repair.fallback.{}", self.config().engine.name()));
    }

    /// Counts one gated, converged repair — aggregate plus per-engine tag.
    fn count_repair_success(&self) {
        let observer = self.ledger.observer();
        observer.incr("repair.success");
        observer.incr(&format!("repair.success.{}", self.config().engine.name()));
    }

    /// Acquires the CSR switch graph for a repair sweep: reuses the build
    /// cached by an earlier repair in the same topology epoch — a quiet
    /// burst of traps between mutations pays for one construction, counted
    /// `repair.graph_reused` — and rebuilds from the subnet otherwise
    /// (`repair.graph_rebuilt`). The caller stores the graph back into
    /// `cached_graph` once the engine is done with it; an `Err` (the
    /// degraded subnet cannot even express a CSR graph, e.g. an HCA whose
    /// only uplink went down but still carries a LID) is the caller's cue
    /// to escalate exactly like an engine error.
    fn acquire_repair_graph(&mut self, subnet: &Subnet) -> IbResult<ib_routing::SwitchGraph> {
        let epoch = subnet.topology_epoch();
        if let Some((cached_epoch, graph)) = self.cached_graph.take() {
            if cached_epoch == epoch {
                self.ledger.observer().incr("repair.graph_reused");
                return Ok(graph);
            }
        }
        self.ledger.observer().incr("repair.graph_rebuilt");
        ib_routing::SwitchGraph::build(subnet)
    }

    /// The repair acceptance gate, scoped to the columns this repair
    /// touched. The verifier's forwarding check walks *every* destination
    /// column globally, so mid-burst a repair sees black holes on columns
    /// crossing other still-downed links — pre-existing damage the splice
    /// cannot have caused (it only rewrites the dirty columns) and that
    /// belongs to traps not yet handled. Those are tolerated but counted
    /// (`repair.tolerated_preexisting`). A violation on a column the
    /// repair touched, or a fabric-global one no column owns (`lid: None`
    /// — addressing clashes, deadlock cycles), still rejects the repair.
    fn repair_gate_rejects(
        &self,
        report: &ib_verify::VerifyReport,
        touched: &std::collections::HashSet<Lid>,
    ) -> bool {
        let mut tolerated = 0u64;
        let mut rejects = false;
        for v in &report.violations {
            match v.lid {
                Some(lid) if !touched.contains(&lid) => tolerated += 1,
                _ => rejects = true,
            }
        }
        if tolerated > 0 {
            self.ledger
                .observer()
                .add("repair.tolerated_preexisting", tolerated);
        }
        rejects
    }

    /// The dirty destination set of a fault at `(node, port)`: read off the
    /// reverse route index when one is live (O(dirty), counted as
    /// `repair.index_hits`), else the two-row fabric scan
    /// ([`ib_verify::affected_destinations`], `repair.index_misses`). In
    /// debug builds an index answer is always cross-checked against the
    /// scan — the index is derived state and never silently trusted.
    fn dirty_destinations(&self, subnet: &Subnet, node: NodeId, port: PortNum) -> Vec<Lid> {
        match self.route_index.as_ref() {
            Some(idx) => {
                self.ledger.observer().incr("repair.index_hits");
                let fast = idx.affected(subnet, node, port);
                debug_assert_eq!(
                    fast,
                    ib_verify::affected_destinations(subnet, node, port),
                    "reverse route index diverged from the two-row scan at ({node:?}, {port})"
                );
                fast
            }
            None => {
                self.ledger.observer().incr("repair.index_misses");
                ib_verify::affected_destinations(subnet, node, port)
            }
        }
    }

    /// After a full-table distribution: the deferred-trap queue is covered
    /// (every fault was routed around), and the reverse index either
    /// mirrors the freshly installed rows or — when blocks were stranded —
    /// nothing trustworthy, so it is dropped until the next converged
    /// sweep rebuilds it.
    fn refresh_route_index(&mut self, subnet: &Subnet, failed_blocks: &[FailedBlock]) {
        self.subsume_pending();
        self.route_index = if failed_blocks.is_empty() {
            Some(ib_verify::ReverseRouteIndex::from_installed(subnet))
        } else {
            None
        };
    }

    /// Runs the fabric verifier after a re-sweep when `config.verify` is
    /// set — but only once distribution converged: tables with stranded
    /// blocks are *expected* to be inconsistent, so verification is
    /// deferred (and counted) rather than failed.
    fn verify_converged(
        &mut self,
        subnet: &Subnet,
        vls: &ib_routing::VlAssignment,
        failed_blocks: &[FailedBlock],
    ) -> IbResult<()> {
        if !self.config().verify {
            return Ok(());
        }
        if failed_blocks.is_empty() {
            self.verify_installed(subnet, vls)
        } else {
            self.ledger.observer().incr("verify.skipped_unconverged");
            Ok(())
        }
    }

    /// Distribution with bounded resume passes: failed blocks are retried
    /// until they land, progress stops, or the pass budget runs out.
    ///
    /// Accounting merges per-switch across passes ([`ResumeAccounting`]),
    /// so the returned report equals the fault-free report once every block
    /// has landed — a switch split across passes is counted once in
    /// `switches_updated` and its blocks sum in `max_blocks_per_switch`.
    ///
    /// On a split fabric, switches beyond the cut are excluded up front
    /// ([`SubnetManager::served_tables`]) instead of burning all
    /// [`MAX_RETRY_PASSES`] against links no SMP can cross.
    fn distribute_resumably<C: SmpChannel>(
        &mut self,
        subnet: &mut Subnet,
        tables: &ib_routing::RoutingTables,
        transport: &mut SmpTransport<C>,
    ) -> IbResult<(DistributionReport, usize, Vec<FailedBlock>)> {
        let served = self.served_tables(tables);
        let tables = served.as_ref().unwrap_or(tables);
        let mode = self.config().smp_mode;
        let sweep = self.config().sweep;
        let mut acct = ResumeAccounting::new();
        self.ledger.begin_phase("lft-distribution");
        let (first, mut failed) = distribution::push_blocks(
            subnet,
            self.sm_node,
            tables,
            mode,
            transport,
            &mut self.ledger,
            None,
            sweep,
        )?;
        acct.merge(first);
        let mut passes = 0;
        while !failed.is_empty() && passes < MAX_RETRY_PASSES {
            self.ledger.begin_phase("lft-distribution-retry");
            let (more, still_failed) = distribution::push_blocks(
                subnet,
                self.sm_node,
                tables,
                mode,
                transport,
                &mut self.ledger,
                Some(&failed),
                sweep,
            )?;
            acct.merge(more);
            passes += 1;
            failed = still_failed;
        }
        let observer = self.ledger.observer();
        if observer.is_enabled() {
            observer.record("resweep.retry_passes", passes as u64);
            observer.add("resweep.stranded_blocks", failed.len() as u64);
        }
        Ok((acct.report(), passes, failed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sm::SmConfig;
    use ib_subnet::topology::fattree::two_level;
    use ib_types::Lid;

    /// Bring up a 2-level fat tree (3 leaves, 2 spines) with a perfect SM.
    fn bring_up() -> (ib_subnet::topology::BuiltTopology, SubnetManager) {
        let mut t = two_level(3, 2, 2);
        let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
        sm.bring_up(&mut t.subnet).unwrap();
        (t, sm)
    }

    fn all_lids(subnet: &Subnet) -> Vec<Lid> {
        subnet.lids()
    }

    fn assert_all_pairs_connected(t: &ib_subnet::topology::BuiltTopology, skip: &[NodeId]) {
        for &a in &t.hosts {
            if skip.contains(&a) {
                continue;
            }
            for &b in &t.hosts {
                if skip.contains(&b) || a == b {
                    continue;
                }
                let lid = t.subnet.node(b).ports[1].lid.unwrap();
                let path = t.subnet.trace_route(a, lid, 32).unwrap();
                assert_eq!(*path.last().unwrap(), b);
            }
        }
    }

    #[test]
    fn link_down_trap_triggers_light_sweep_without_renumbering() {
        let (mut t, mut sm) = bring_up();
        let lids_before = all_lids(&t.subnet);

        // Down one of the two uplinks of leaf 0 (leaf -> spine 0). The
        // fat tree has a redundant spine, so a light sweep suffices.
        let leaf0 = t.switch_levels[0][0];
        let spine0 = t.switch_levels[1][0];
        let (port, _) = t
            .subnet
            .node(leaf0)
            .connected_ports()
            .find(|(_, r)| r.node == spine0)
            .unwrap();
        t.subnet.set_link_down(leaf0, port).unwrap();

        let mut transport = SmpTransport::perfect(sm.sm_node);
        let report = sm
            .handle_trap(
                &mut t.subnet,
                Trap::LinkStateChange { node: leaf0, port },
                &mut transport,
            )
            .unwrap();
        assert_eq!(report.kind, SweepKind::Light);
        assert!(!report.escalated);
        assert!(report.pruned_lids.is_empty());
        assert!(report.failed_blocks.is_empty());
        assert!(report.distribution.lft_smps > 0);
        // No LID moved.
        assert_eq!(all_lids(&t.subnet), lids_before);
        assert_all_pairs_connected(&t, &[]);
        t.subnet.validate_degraded().unwrap();
    }

    #[test]
    fn switch_death_heavy_sweep_prunes_only_the_dead() {
        let (mut t, mut sm) = bring_up();
        let spine1 = t.switch_levels[1][1];
        let spine_lid = match &t.subnet.node(spine1).kind {
            ib_subnet::NodeKind::Switch { lid, .. } => lid.unwrap(),
            ib_subnet::NodeKind::Hca => unreachable!(),
        };
        let lids_before = all_lids(&t.subnet);

        let mut transport = SmpTransport::perfect(sm.sm_node);
        let report = sm
            .handle_trap(
                &mut t.subnet,
                Trap::SwitchDeath { node: spine1 },
                &mut transport,
            )
            .unwrap();
        assert_eq!(report.kind, SweepKind::Heavy);
        assert_eq!(report.pruned_lids, vec![spine_lid]);
        assert_eq!(report.removed_nodes, 1);
        assert!(report.failed_blocks.is_empty());
        // Exactly one LID gone; every survivor kept its number.
        let lids_after = all_lids(&t.subnet);
        assert_eq!(
            lids_after,
            lids_before
                .iter()
                .copied()
                .filter(|&l| l != spine_lid)
                .collect::<Vec<_>>()
        );
        // The freed LID is reusable.
        assert!(!sm.lid_space.is_allocated(spine_lid));
        assert_all_pairs_connected(&t, &[]);
        t.subnet.validate_degraded().unwrap();
    }

    /// Downs every physical uplink of leaf `idx`, returning the ports.
    fn isolate_leaf(t: &mut ib_subnet::topology::BuiltTopology, idx: usize) -> Vec<PortNum> {
        let leaf = t.switch_levels[0][idx];
        let uplinks: Vec<PortNum> = t
            .subnet
            .node(leaf)
            .connected_ports()
            .filter(|(_, r)| t.subnet.node(r.node).is_physical_switch())
            .map(|(p, _)| p)
            .collect();
        for p in &uplinks {
            t.subnet.set_link_down(leaf, *p).unwrap();
        }
        uplinks
    }

    #[test]
    fn isolating_a_leaf_enters_degraded_mode_without_pruning() {
        let (mut t, mut sm) = bring_up();
        // Kill every uplink of leaf 2 (the SM host is on leaf 0): its two
        // hosts sit beyond the split but stay alive.
        isolate_leaf(&mut t, 2);
        let lids_before = all_lids(&t.subnet);

        let mut transport = SmpTransport::perfect(sm.sm_node);
        let report = sm.light_sweep(&mut t.subnet, &mut transport).unwrap();
        // Degraded mode, not escalation: the sweep serves the master's
        // component and leaves the lost one for the heal.
        assert_eq!(report.kind, SweepKind::Light);
        assert!(!report.escalated);
        assert!(report.pruned_lids.is_empty());
        assert_eq!(report.removed_nodes, 0);
        assert!(report.failed_blocks.is_empty());
        // No LID moved or vanished — a reconnect restores the lost side
        // in place.
        assert_eq!(all_lids(&t.subnet), lids_before);
        assert!(sm.is_degraded());
        // Leaf 2 + its 2 hosts were stranded.
        assert_eq!(sm.unreachable_lids().len(), 3);
        let survivors: Vec<NodeId> = t.hosts[4..6].to_vec();
        assert_all_pairs_connected(&t, &survivors);
        t.subnet.validate_degraded().unwrap();
    }

    #[test]
    fn heal_after_split_restores_columns_and_counts() {
        let (mut t, mut sm) = bring_up();
        sm.set_observer(ib_observe::Observer::metrics());
        let leaf2 = t.switch_levels[0][2];
        let uplinks = isolate_leaf(&mut t, 2);
        let mut transport = SmpTransport::perfect(sm.sm_node);
        sm.light_sweep(&mut t.subnet, &mut transport).unwrap();
        assert!(sm.is_degraded());

        // A trap from beyond the split is absorbed without a sweep: no MAD
        // from the lost component can physically reach the master.
        let report = sm
            .handle_trap(
                &mut t.subnet,
                Trap::LinkStateChange {
                    node: leaf2,
                    port: uplinks[1],
                },
                &mut transport,
            )
            .unwrap();
        assert_eq!(report.distribution.lft_smps, 0);

        // One uplink comes back: the boundary link-up trap gets through
        // and the heal sweep restores every stranded column.
        t.subnet.set_link_up(leaf2, uplinks[0]).unwrap();
        let report = sm
            .handle_trap(
                &mut t.subnet,
                Trap::LinkStateChange {
                    node: leaf2,
                    port: uplinks[0],
                },
                &mut transport,
            )
            .unwrap();
        assert_eq!(report.kind, SweepKind::Light);
        assert!(report.failed_blocks.is_empty());
        assert!(!sm.is_degraded());
        assert_all_pairs_connected(&t, &[]);
        assert!(sm.verify_route_index(&t.subnet).is_empty());
        t.subnet.validate_degraded().unwrap();

        let snap = sm.observer().snapshot().unwrap();
        assert_eq!(snap.counter("sm.partitioned"), 1);
        assert_eq!(snap.counter("sm.unreachable_lids"), 3);
        assert_eq!(snap.counter("sm.trap_absorbed_lost"), 1);
        assert_eq!(snap.counter("sm.healed"), 1);
        // The stranded leaf's rows were refreshed by the heal sweep.
        let leaf2_lft = t.subnet.lft(leaf2).unwrap();
        for lid in all_lids(&t.subnet) {
            assert!(leaf2_lft.get(lid).is_some(), "leaf2 routes LID {lid}");
        }
    }

    /// The leaf0 -> spine0 uplink, downed, plus its trap.
    fn down_first_uplink(t: &mut ib_subnet::topology::BuiltTopology) -> Trap {
        let leaf0 = t.switch_levels[0][0];
        let spine0 = t.switch_levels[1][0];
        let (port, _) = t
            .subnet
            .node(leaf0)
            .connected_ports()
            .find(|(_, r)| r.node == spine0)
            .unwrap();
        t.subnet.set_link_down(leaf0, port).unwrap();
        Trap::LinkStateChange { node: leaf0, port }
    }

    #[test]
    fn repair_sweep_fixes_link_down_and_counts_success() {
        let mut t = two_level(3, 2, 2);
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                repair: true,
                ..SmConfig::default()
            },
        );
        sm.set_observer(ib_observe::Observer::metrics());
        sm.bring_up(&mut t.subnet).unwrap();
        let trap = down_first_uplink(&mut t);
        let mut transport = SmpTransport::perfect(sm.sm_node);
        let report = sm.handle_trap(&mut t.subnet, trap, &mut transport).unwrap();
        assert_eq!(report.kind, SweepKind::Repair);
        assert!(report.failed_blocks.is_empty());
        assert!(report.distribution.lft_smps > 0, "dirty blocks were sent");
        assert_all_pairs_connected(&t, &[]);
        t.subnet.validate_degraded().unwrap();
        let snap = sm.observer().snapshot().unwrap();
        assert_eq!(snap.counter("repair.attempts"), 1);
        assert_eq!(snap.counter("repair.success"), 1);
        assert_eq!(snap.counter("repair.success.minhop"), 1);
        assert_eq!(snap.counter("repair.fallback"), 0);
        assert_eq!(snap.counter("repair.fallback.minhop"), 0);
        assert!(snap.counter("repair.dirty_dests") > 0);
        assert_eq!(snap.counter("repair.graph_rebuilt"), 1);
        assert_eq!(snap.counter("repair.graph_reused"), 0);
        assert_eq!(snap.spans_named("resweep.repair").len(), 1);
    }

    #[test]
    fn repair_sends_no_more_smps_than_a_full_sweep_on_a_twin_fabric() {
        // Same fault on two identical fabrics: the incremental repair must
        // not exceed the light sweep's LFT traffic.
        let run = |repair: bool| {
            let mut t = two_level(3, 2, 2);
            let mut sm = SubnetManager::new(
                t.hosts[0],
                SmConfig {
                    repair,
                    ..SmConfig::default()
                },
            );
            sm.bring_up(&mut t.subnet).unwrap();
            let trap = down_first_uplink(&mut t);
            let mut transport = SmpTransport::perfect(sm.sm_node);
            let report = sm.handle_trap(&mut t.subnet, trap, &mut transport).unwrap();
            assert!(report.failed_blocks.is_empty());
            assert_all_pairs_connected(&t, &[]);
            report.distribution.lft_smps
        };
        assert!(run(true) <= run(false));
    }

    #[test]
    fn repair_without_baseline_falls_back_to_light_sweep() {
        // An SM that never computed tables (adopted fabric) has no splice
        // baseline: the repair request must degrade to the full path.
        let (mut t, sm0) = bring_up();
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                repair: true,
                ..SmConfig::default()
            },
        );
        drop(sm0);
        sm.set_observer(ib_observe::Observer::metrics());
        let trap = down_first_uplink(&mut t);
        let mut transport = SmpTransport::perfect(sm.sm_node);
        let report = sm.handle_trap(&mut t.subnet, trap, &mut transport).unwrap();
        assert_eq!(report.kind, SweepKind::Light);
        assert_all_pairs_connected(&t, &[]);
        let snap = sm.observer().snapshot().unwrap();
        assert_eq!(snap.counter("repair.no_baseline"), 1);
        assert_eq!(snap.counter("repair.fallback"), 1);
        assert_eq!(snap.counter("repair.fallback.minhop"), 1);
    }

    #[test]
    fn repair_skips_link_up_events() {
        let mut t = two_level(3, 2, 2);
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                repair: true,
                ..SmConfig::default()
            },
        );
        sm.set_observer(ib_observe::Observer::metrics());
        sm.bring_up(&mut t.subnet).unwrap();
        let mut transport = SmpTransport::perfect(sm.sm_node);
        let trap = down_first_uplink(&mut t);
        sm.handle_trap(&mut t.subnet, trap, &mut transport).unwrap();
        // The link comes back: folding it in is a rebalance, not a repair.
        let Trap::LinkStateChange { node, port } = trap else {
            unreachable!()
        };
        t.subnet.set_link_up(node, port).unwrap();
        let report = sm.handle_trap(&mut t.subnet, trap, &mut transport).unwrap();
        assert_eq!(report.kind, SweepKind::Light);
        assert_all_pairs_connected(&t, &[]);
        let snap = sm.observer().snapshot().unwrap();
        assert_eq!(snap.counter("repair.skipped_up"), 1);
        assert_eq!(snap.counter("repair.fallback"), 0);
    }

    /// A named leaf->spine uplink and its down trap.
    fn down_uplink(
        t: &mut ib_subnet::topology::BuiltTopology,
        leaf_idx: usize,
        spine_idx: usize,
    ) -> Trap {
        let leaf = t.switch_levels[0][leaf_idx];
        let spine = t.switch_levels[1][spine_idx];
        let (port, _) = t
            .subnet
            .node(leaf)
            .connected_ports()
            .find(|(_, r)| r.node == spine)
            .unwrap();
        t.subnet.set_link_down(leaf, port).unwrap();
        Trap::LinkStateChange { node: leaf, port }
    }

    #[test]
    fn coalesced_traps_batch_into_one_repair_sweep() {
        let mut t = two_level(3, 2, 2);
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                repair: true,
                coalesce: crate::CoalesceOptions::enabled(),
                ..SmConfig::default()
            },
        );
        sm.set_observer(ib_observe::Observer::metrics());
        sm.bring_up(&mut t.subnet).unwrap();
        let window = sm.config().coalesce.window_ns;
        let mut transport = SmpTransport::perfect(sm.sm_node);

        // Two faults land inside one window: both deferred, no SMPs yet.
        let t0 = 1_000;
        for (i, trap) in [down_uplink(&mut t, 0, 0), down_uplink(&mut t, 1, 0)]
            .into_iter()
            .enumerate()
        {
            let report = sm
                .handle_trap_at(&mut t.subnet, trap, &mut transport, t0 + i as u64)
                .unwrap();
            assert_eq!(report.kind, SweepKind::Deferred);
            assert_eq!(report.distribution.lft_smps, 0);
        }
        assert_eq!(sm.pending_repairs().len(), 2);

        // Window still open: nothing flushes.
        assert!(sm
            .flush_coalesced(&mut t.subnet, &mut transport, t0 + window - 1)
            .unwrap()
            .is_none());

        // Window closed: one batched repair answers both traps.
        let report = sm
            .flush_coalesced(&mut t.subnet, &mut transport, t0 + window)
            .unwrap()
            .expect("batch was due");
        assert_eq!(report.kind, SweepKind::Repair);
        assert!(report.failed_blocks.is_empty());
        assert!(report.distribution.lft_smps > 0);
        assert!(sm.pending_repairs().is_empty());
        assert_all_pairs_connected(&t, &[]);
        t.subnet.validate_degraded().unwrap();
        assert!(sm.verify_route_index(&t.subnet).is_empty());

        let snap = sm.observer().snapshot().unwrap();
        assert_eq!(snap.counter("repair.deferred"), 2);
        assert_eq!(snap.counter("repair.batched"), 1);
        assert_eq!(snap.counter("repair.batch_size"), 2);
        assert_eq!(snap.counter("repair.fallback"), 0);
        assert_eq!(snap.counter("repair.index_hits"), 2);
        assert_eq!(snap.spans_named("resweep.batch").len(), 1);
        // One verifier pass for the whole burst.
        assert_eq!(snap.counter("verify.runs"), 1);

        // Re-flushing with nothing pending is a no-op.
        assert!(sm
            .flush_coalesced(&mut t.subnet, &mut transport, t0 + 2 * window)
            .unwrap()
            .is_none());
    }

    #[test]
    fn serial_repairs_of_an_all_down_burst_pass_the_scoped_gate() {
        // Both links of a burst go down before any repair runs (the trap
        // queue drained late). Repairing them one at a time, the first
        // verifier pass sees the second fault's pre-existing black holes —
        // on columns the first repair never touched. The scoped gate must
        // tolerate those (counted) instead of rejecting into a full sweep.
        let mut t = two_level(3, 2, 2);
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                repair: true,
                ..SmConfig::default()
            },
        );
        sm.set_observer(ib_observe::Observer::metrics());
        sm.bring_up(&mut t.subnet).unwrap();
        let mut transport = SmpTransport::perfect(sm.sm_node);

        let traps = [down_uplink(&mut t, 0, 0), down_uplink(&mut t, 1, 0)];
        for trap in traps {
            let report = sm.handle_trap(&mut t.subnet, trap, &mut transport).unwrap();
            assert_eq!(report.kind, SweepKind::Repair);
            assert!(report.failed_blocks.is_empty());
        }
        assert_all_pairs_connected(&t, &[]);
        t.subnet.validate_degraded().unwrap();
        assert!(sm.verify_route_index(&t.subnet).is_empty());

        let snap = sm.observer().snapshot().unwrap();
        assert_eq!(snap.counter("repair.success"), 2);
        assert_eq!(snap.counter("repair.success.minhop"), 2);
        assert_eq!(snap.counter("repair.verify_rejected"), 0);
        assert_eq!(snap.counter("repair.fallback"), 0);
        // The first gate saw (and tolerated) fault 2's damage.
        assert!(snap.counter("repair.tolerated_preexisting") > 0);
        assert_eq!(snap.counter("verify.runs"), 2);
        // Both links were already down before the first repair, so the
        // topology epoch never moved between sweeps: one graph build,
        // reused by the second repair.
        assert_eq!(snap.counter("repair.graph_rebuilt"), 1);
        assert_eq!(snap.counter("repair.graph_reused"), 1);
    }

    #[test]
    fn full_sweeps_subsume_pending_batches() {
        let mut t = two_level(3, 2, 2);
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                repair: true,
                coalesce: crate::CoalesceOptions::enabled(),
                ..SmConfig::default()
            },
        );
        sm.set_observer(ib_observe::Observer::metrics());
        sm.bring_up(&mut t.subnet).unwrap();
        let mut transport = SmpTransport::perfect(sm.sm_node);
        let trap = down_uplink(&mut t, 0, 0);
        sm.handle_trap_at(&mut t.subnet, trap, &mut transport, 0)
            .unwrap();
        assert_eq!(sm.pending_repairs().len(), 1);

        // A switch death forces a heavy sweep, whose full distribution
        // also routes around the pending fault: the batch dissolves.
        // (Spine 0 already lost its leaf-0 link, so every leaf keeps an
        // uplink through spine 1.)
        let spine0 = t.switch_levels[1][0];
        sm.handle_trap_at(
            &mut t.subnet,
            Trap::SwitchDeath { node: spine0 },
            &mut transport,
            1,
        )
        .unwrap();
        assert!(sm.pending_repairs().is_empty());
        let snap = sm.observer().snapshot().unwrap();
        assert_eq!(snap.counter("repair.batch_subsumed"), 1);
        assert!(sm
            .flush_coalesced(&mut t.subnet, &mut transport, u64::MAX)
            .unwrap()
            .is_none());
        assert_all_pairs_connected(&t, &[]);
        assert!(sm.verify_route_index(&t.subnet).is_empty());
    }

    /// Satellite regression: a link-up trap takes the `repair.skipped_up`
    /// light sweep, which must refresh the repair baseline — a later
    /// link-down repair has to splice against the rebalanced tables, not
    /// the pre-up ones. Pinned against a twin fabric that only ever sees
    /// the second fault: same SMP count, byte-identical tables.
    #[test]
    fn link_up_light_sweep_refreshes_the_repair_baseline() {
        let config = SmConfig {
            repair: true,
            ..SmConfig::default()
        };

        // Fabric A: down L (repair), L back up (light sweep), down M.
        let mut ta = two_level(3, 2, 2);
        let mut sma = SubnetManager::new(ta.hosts[0], config);
        sma.bring_up(&mut ta.subnet).unwrap();
        let mut transport = SmpTransport::perfect(sma.sm_node);
        let trap_l = down_uplink(&mut ta, 0, 0);
        sma.handle_trap(&mut ta.subnet, trap_l, &mut transport)
            .unwrap();
        let Trap::LinkStateChange { node, port } = trap_l else {
            unreachable!()
        };
        ta.subnet.set_link_up(node, port).unwrap();
        let up = sma
            .handle_trap(&mut ta.subnet, trap_l, &mut transport)
            .unwrap();
        assert_eq!(up.kind, SweepKind::Light);
        let trap_m = down_uplink(&mut ta, 1, 0);
        let repair_a = sma
            .handle_trap(&mut ta.subnet, trap_m, &mut transport)
            .unwrap();
        assert_eq!(repair_a.kind, SweepKind::Repair);

        // Fabric B: only ever sees fault M.
        let mut tb = two_level(3, 2, 2);
        let mut smb = SubnetManager::new(tb.hosts[0], config);
        smb.bring_up(&mut tb.subnet).unwrap();
        let mut transport_b = SmpTransport::perfect(smb.sm_node);
        let trap_m_b = down_uplink(&mut tb, 1, 0);
        let repair_b = smb
            .handle_trap(&mut tb.subnet, trap_m_b, &mut transport_b)
            .unwrap();
        assert_eq!(repair_b.kind, SweepKind::Repair);

        // A stale baseline would splice against pre-up tables and diff
        // extra blocks; a fresh one makes the repairs indistinguishable.
        assert_eq!(
            repair_a.distribution.lft_smps,
            repair_b.distribution.lft_smps
        );
        assert_eq!(
            sma.last_tables.as_ref().unwrap().lfts,
            smb.last_tables.as_ref().unwrap().lfts
        );
        for sw in ta.subnet.switches().map(|n| n.id).collect::<Vec<_>>() {
            assert_eq!(ta.subnet.lft(sw), tb.subnet.lft(sw), "{sw:?}");
        }
        assert!(sma.verify_route_index(&ta.subnet).is_empty());
    }

    /// Satellite regression: traps absorbed inside a quarantine hold-down
    /// never reach repair accounting, so the fold-back sweep at release
    /// must rebuild the baseline and reverse index — a later fault would
    /// otherwise repair against a topology that still excludes the
    /// released link.
    #[test]
    fn quarantine_release_rebuilds_baseline_and_index() {
        let mut t = two_level(3, 2, 2);
        let opts = crate::QuarantineOptions::enabled();
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                repair: true,
                quarantine: opts,
                ..SmConfig::default()
            },
        );
        sm.set_observer(ib_observe::Observer::metrics());
        sm.bring_up(&mut t.subnet).unwrap();
        let mut transport = SmpTransport::perfect(sm.sm_node);

        // Flap L until the third event trips the quarantine.
        let leaf0 = t.switch_levels[0][0];
        let spine0 = t.switch_levels[1][0];
        let (port, _) = t
            .subnet
            .node(leaf0)
            .connected_ports()
            .find(|(_, r)| r.node == spine0)
            .unwrap();
        let trap = Trap::LinkStateChange { node: leaf0, port };
        t.subnet.set_link_down(leaf0, port).unwrap();
        sm.handle_trap_at(&mut t.subnet, trap, &mut transport, 0)
            .unwrap();
        t.subnet.set_link_up(leaf0, port).unwrap();
        sm.handle_trap_at(&mut t.subnet, trap, &mut transport, 1)
            .unwrap();
        t.subnet.set_link_down(leaf0, port).unwrap();
        sm.handle_trap_at(&mut t.subnet, trap, &mut transport, 2)
            .unwrap();
        assert!(sm.quarantine.is_quarantined(&t.subnet, leaf0, port, 2));

        // A resurrection inside the hold-down is absorbed — dropped from
        // repair accounting entirely.
        t.subnet.set_link_up(leaf0, port).unwrap();
        sm.handle_trap_at(&mut t.subnet, trap, &mut transport, 3)
            .unwrap();
        assert!(!t.subnet.is_link_up(leaf0, port), "damper re-downed it");

        // Hold-down expires: the fold-back light sweep must leave the
        // baseline and index mirroring the full-topology tables.
        let release_at = 2 + opts.base_hold_down_ns + 1;
        let released = sm
            .release_quarantined(&mut t.subnet, &mut transport, release_at)
            .unwrap();
        assert_eq!(released, 1);
        assert!(t.subnet.is_link_up(leaf0, port));
        assert!(sm.verify_route_index(&t.subnet).is_empty());

        // A fresh fault elsewhere now repairs against the folded-back
        // state, byte-identical to a twin that never flapped.
        let trap_m = down_uplink(&mut t, 1, 0);
        let report = sm
            .handle_trap_at(&mut t.subnet, trap_m, &mut transport, release_at + 1)
            .unwrap();
        assert_eq!(report.kind, SweepKind::Repair);
        assert!(report.failed_blocks.is_empty());
        assert_all_pairs_connected(&t, &[]);
        assert!(sm.verify_route_index(&t.subnet).is_empty());

        let mut twin = two_level(3, 2, 2);
        let mut sm2 = SubnetManager::new(
            twin.hosts[0],
            SmConfig {
                repair: true,
                ..SmConfig::default()
            },
        );
        sm2.bring_up(&mut twin.subnet).unwrap();
        let mut transport2 = SmpTransport::perfect(sm2.sm_node);
        let trap_m2 = down_uplink(&mut twin, 1, 0);
        sm2.handle_trap(&mut twin.subnet, trap_m2, &mut transport2)
            .unwrap();
        assert_eq!(
            sm.last_tables.as_ref().unwrap().lfts,
            sm2.last_tables.as_ref().unwrap().lfts
        );

        let snap = sm.observer().snapshot().unwrap();
        assert!(snap.counter("quarantine.absorbed") >= 1);
        assert_eq!(snap.counter("quarantine.released"), 1);
        assert_eq!(snap.counter("repair.fallback"), 0);
    }

    #[test]
    fn lossy_transport_still_converges() {
        let (mut t, mut sm) = bring_up();
        let leaf0 = t.switch_levels[0][0];
        let spine0 = t.switch_levels[1][0];
        let (port, _) = t
            .subnet
            .node(leaf0)
            .connected_ports()
            .find(|(_, r)| r.node == spine0)
            .unwrap();
        t.subnet.set_link_down(leaf0, port).unwrap();

        let mut transport = SmpTransport::lossy(sm.sm_node, 0x5EED, 0.2, 500);
        let baseline = sm.ledger.total();
        let report = sm
            .handle_trap(
                &mut t.subnet,
                Trap::LinkStateChange { node: leaf0, port },
                &mut transport,
            )
            .unwrap();
        assert!(report.failed_blocks.is_empty(), "did not converge");
        assert!(sm.ledger.total() > baseline);
        assert_all_pairs_connected(&t, &[]);
    }
}
