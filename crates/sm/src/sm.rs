//! The subnet manager proper.

use std::time::Instant;

use ib_mad::SmpLedger;
use ib_observe::Observer;
use ib_routing::{EngineKind, RoutingOptions};
use ib_subnet::{lft::min_blocks_for, NodeId, Subnet};
use ib_types::{IbResult, Lid, LidSpace};
use std::collections::HashSet;

use crate::discovery;
use crate::distribution;
use crate::lids;
use crate::quarantine::{LinkQuarantine, QuarantineOptions};
use crate::report::BringUpReport;

/// How the SM addresses its SMPs.
///
/// OpenSM uses directed routing for everything (necessary during discovery
/// and whenever switch routes may be stale). §VI-B's improvement: during a
/// vSwitch migration the switch LIDs are stable, so destination routing is
/// safe and removes the `r` overhead (equation 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SmpMode {
    /// Source-routed, hop-pointer rewriting at every switch.
    Directed,
    /// LID-routed through the installed LFTs.
    Destination,
}

/// Parallelism knobs for the SM's heavy sweep.
///
/// The sweep's per-switch work — diffing the installed LFT against the
/// padded target and materializing dirty-block payloads — is read-only over
/// the subnet, so it fans out across scoped worker threads. The SMP
/// *stream* stays serialized in ascending switch order afterwards, so the
/// ledger and the installed tables are byte-identical whatever `workers`
/// is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepOptions {
    /// Planning worker threads. `1` (the default) plans inline on the
    /// calling thread; `0` means "use the machine's available parallelism".
    pub workers: usize,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self { workers: 1 }
    }
}

impl SweepOptions {
    /// A sweep fanned out over `workers` planning threads.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        Self { workers }
    }

    /// The thread count to actually spawn for `jobs` independent units:
    /// resolves `0` to the available parallelism and never exceeds the job
    /// count.
    #[must_use]
    pub fn effective_workers(&self, jobs: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.workers
        };
        requested.min(jobs).max(1)
    }
}

/// Trap-coalescing policy: link-down traps arriving within `window_ns` of
/// the first pending trap are *deferred* and answered together by one
/// batched repair sweep ([`crate::SubnetManager`] unions their dirty sets,
/// runs one engine repair fold, one verifier gate, and one dirty-block
/// distribution) when the driver calls `flush_coalesced` past the deadline.
/// Requires [`SmConfig::repair`]; disabled by default so single traps keep
/// their immediate-response semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoalesceOptions {
    /// Master switch. When off, every trap is swept immediately.
    pub enabled: bool,
    /// How long after the *first* deferred trap the batch keeps absorbing
    /// further traps before a flush is due.
    pub window_ns: u64,
}

impl Default for CoalesceOptions {
    fn default() -> Self {
        Self {
            enabled: false,
            window_ns: 200_000_000, // 200 ms, on the order of a damping window
        }
    }
}

impl CoalesceOptions {
    /// Coalescing on, with the default window.
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// Subnet manager configuration.
#[derive(Clone, Copy, Debug)]
pub struct SmConfig {
    /// Which routing engine computes paths.
    pub engine: EngineKind,
    /// How configuration SMPs are addressed.
    pub smp_mode: SmpMode,
    /// How the heavy sweep parallelizes its planning work.
    pub sweep: SweepOptions,
    /// How the routing engines parallelize their path computation.
    pub routing: RoutingOptions,
    /// Verify the fabric invariants (black holes, forwarding loops,
    /// deadlock cycles, LID addressing) against the *installed* tables
    /// after every sweep and converged re-sweep, failing the operation on
    /// any violation. The deadlock check runs with the VL layering the
    /// engine produced — enabling this with an engine that makes no
    /// deadlock guarantee (Min-Hop) on a cyclic fabric will fail by
    /// design. Off by default.
    pub verify: bool,
    /// Link flap damping policy (see [`QuarantineOptions`]). Disabled by
    /// default.
    pub quarantine: QuarantineOptions,
    /// Answer link-down traps with an *incremental repair* sweep: re-route
    /// only the destination columns whose installed paths crossed the
    /// failed link (via [`ib_verify::affected_destinations`] and the
    /// engine's `repair_with`), splice them into the last computed tables,
    /// and distribute just the dirty blocks. Every repair is gated by the
    /// fabric verifier; any rejection (or an engine without a baseline)
    /// falls back to the usual full sweep and counts `sm.repair.fallback`.
    /// Off by default — the traditional full-recompute path.
    pub repair: bool,
    /// Batch link-down traps arriving within a damping window into one
    /// repair sweep (see [`CoalesceOptions`]). Only consulted when
    /// `repair` is on.
    pub coalesce: CoalesceOptions,
}

impl Default for SmConfig {
    fn default() -> Self {
        Self {
            engine: EngineKind::MinHop,
            smp_mode: SmpMode::Directed,
            sweep: SweepOptions::default(),
            routing: RoutingOptions::default(),
            verify: false,
            quarantine: QuarantineOptions::default(),
            repair: false,
            coalesce: CoalesceOptions::default(),
        }
    }
}

/// The master subnet manager: owns the LID space and the SMP ledger, runs
/// bring-ups and full reconfigurations.
#[derive(Debug)]
pub struct SubnetManager {
    config: SmConfig,
    /// Node the SM runs on.
    pub sm_node: NodeId,
    /// Allocator over the unicast LID space.
    pub lid_space: LidSpace,
    /// Every SMP this SM ever sent.
    pub ledger: SmpLedger,
    /// Per-link flap damping state (active when
    /// `config.quarantine.enabled`).
    pub quarantine: LinkQuarantine,
    /// The last full set of tables this SM computed — the splice baseline
    /// for incremental repair. `None` until the first successful sweep.
    pub(crate) last_tables: Option<ib_routing::RoutingTables>,
    /// Reverse (switch, port) -> destination-set index over `last_tables`,
    /// kept in lock-step with it: rebuilt after full sweeps, spliced
    /// per-column after repairs, invalidated whenever the installed state
    /// diverges (failed distribution blocks). `None` means "fall back to
    /// the two-row scan".
    pub(crate) route_index: Option<ib_verify::ReverseRouteIndex>,
    /// The CSR switch graph cached across consecutive repair sweeps in a
    /// quiet epoch, keyed by [`Subnet::topology_epoch`]: a repair burst
    /// between topology mutations reuses one build instead of
    /// reconstructing per trap. Invalidated by comparing epochs, never by
    /// mutation hooks — the subnet owns the epoch counter.
    pub(crate) cached_graph: Option<(u64, ib_routing::SwitchGraph)>,
    /// Link-down traps deferred by coalescing, in arrival order,
    /// deduplicated per (node, port).
    pub(crate) pending_traps: Vec<(NodeId, ib_types::PortNum)>,
    /// When the pending batch is due: first-deferred-trap time plus the
    /// coalescing window.
    pub(crate) batch_deadline_ns: Option<u64>,
    /// Degraded-mode ledger: LIDs the last sweep proved unreachable from
    /// the SM (the far side of a fabric split), in ascending order. Empty
    /// when the fabric is whole. A heal sweep must show every one of these
    /// regained a full destination column before the ledger clears.
    pub(crate) unreachable_lids: Vec<Lid>,
    /// The nodes beyond the split — switches in foreign components plus
    /// the endpoints hanging off them. Their traps are absorbed (no MAD
    /// from a lost component can physically reach the SM) and their LFTs
    /// are excluded from distribution until a heal reconnects them.
    pub(crate) lost_nodes: HashSet<NodeId>,
}

impl SubnetManager {
    /// Creates an SM hosted on `sm_node`.
    #[must_use]
    pub fn new(sm_node: NodeId, config: SmConfig) -> Self {
        Self {
            config,
            sm_node,
            lid_space: LidSpace::new(),
            ledger: SmpLedger::new(),
            quarantine: LinkQuarantine::new(config.quarantine),
            last_tables: None,
            route_index: None,
            cached_graph: None,
            pending_traps: Vec::new(),
            batch_deadline_ns: None,
            unreachable_lids: Vec::new(),
            lost_nodes: HashSet::new(),
        }
    }

    /// Toggles the incremental-repair sweep at runtime (see
    /// [`SmConfig::repair`]); chaos harnesses flip this per event to
    /// interleave repair and full sweeps on one fabric.
    pub fn set_repair(&mut self, on: bool) {
        self.config.repair = on;
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> SmConfig {
        self.config
    }

    /// The metrics sink the SM (through its ledger) reports into.
    #[must_use]
    pub fn observer(&self) -> &Observer {
        self.ledger.observer()
    }

    /// Attaches a metrics sink: every SMP the ledger records and every
    /// pipeline phase the SM runs is mirrored into it from here on.
    pub fn set_observer(&mut self, observer: Observer) {
        self.ledger.set_observer(observer);
    }

    /// Full fabric bring-up: discovery sweep, LID assignment, path
    /// computation, LFT distribution.
    ///
    /// ```
    /// use ib_sm::{SmConfig, SubnetManager};
    /// use ib_subnet::topology::fattree;
    ///
    /// let mut t = fattree::two_level(2, 3, 2);
    /// let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
    /// let report = sm.bring_up(&mut t.subnet).unwrap();
    /// assert_eq!(report.lids, 10);                       // 4 switches + 6 hosts
    /// assert_eq!(report.distribution.lft_smps, 4);       // n x m = 4 x 1
    /// assert_eq!(sm.ledger.total(), report.total_smps());
    /// ```
    pub fn bring_up(&mut self, subnet: &mut Subnet) -> IbResult<BringUpReport> {
        let disc = {
            let _span = self.ledger.observer().span("sm.discovery");
            discovery::sweep(subnet, self.sm_node, &mut self.ledger)?
        };
        let discovery_smps = self.ledger.phase_total("discovery");

        let lid_smps = {
            let _span = self.ledger.observer().span("sm.lid_assignment");
            lids::assign_all(subnet, &disc, &mut self.lid_space, &mut self.ledger)?
        };

        let report = self.reroute_and_distribute(subnet)?;
        Ok(BringUpReport {
            discovery_smps,
            lid_smps,
            ..report
        })
    }

    /// The *traditional* full reconfiguration the paper's §VI-A costs out:
    /// recompute every path (`PCt`) and redistribute dirty LFT blocks
    /// (`LFTDt`). This is what a live migration would trigger without the
    /// vSwitch reconfiguration method.
    pub fn full_reconfiguration(&mut self, subnet: &mut Subnet) -> IbResult<BringUpReport> {
        self.reroute_and_distribute(subnet)
    }

    fn reroute_and_distribute(&mut self, subnet: &mut Subnet) -> IbResult<BringUpReport> {
        let engine = self.config.engine.build();
        let started = Instant::now();
        let tables = {
            let _span = self.ledger.observer().span("sm.routing");
            engine.compute_with(subnet, self.config.routing, self.ledger.observer())?
        };
        let path_computation = started.elapsed();

        let healed = self.refresh_partition_state(subnet);
        let dist = match self.served_tables(&tables) {
            Some(served) => distribution::distribute_opts(
                subnet,
                self.sm_node,
                &served,
                self.config.smp_mode,
                &mut self.ledger,
                self.config.sweep,
            )?,
            None => distribution::distribute_opts(
                subnet,
                self.sm_node,
                &tables,
                self.config.smp_mode,
                &mut self.ledger,
                self.config.sweep,
            )?,
        };

        if self.config.verify {
            self.verify_installed(subnet, &tables.vls)?;
        }
        self.verify_healed(subnet, &healed)?;

        let report = BringUpReport {
            discovery_smps: 0,
            lid_smps: 0,
            path_computation,
            decisions: tables.decisions,
            distribution: dist,
            lids: subnet.num_lids(),
            min_blocks_per_switch: subnet.topmost_lid().map_or(0, min_blocks_for),
            engine: engine.name().to_string(),
        };
        // A full distribution covers every fault a deferred trap reported.
        self.subsume_pending();
        // Derive the index from the *installed* rows rather than `tables`:
        // the two are equal on live switches after distribution, but dead
        // switches keep stale rows the dirty-set scan still reads, and the
        // index must agree with that scan exactly.
        self.route_index = Some(ib_verify::ReverseRouteIndex::from_installed(subnet));
        self.last_tables = Some(tables);
        Ok(report)
    }

    /// Drops every deferred link-down trap because a full-table
    /// distribution just covered them, counting `repair.batch_subsumed`.
    pub(crate) fn subsume_pending(&mut self) {
        if !self.pending_traps.is_empty() {
            self.ledger
                .observer()
                .add("repair.batch_subsumed", self.pending_traps.len() as u64);
            self.pending_traps.clear();
        }
        self.batch_deadline_ns = None;
    }

    /// Tells the SM that `lids`' destination columns were rewritten on the
    /// fabric *behind its back* — an Algorithm-1 LID swap/copy or a vSwitch
    /// route update issues direct LFT SMPs without a sweep. Re-reads those
    /// columns from the installed tables into the repair baseline and the
    /// reverse index, so a later incremental repair splices against what is
    /// actually on the switches instead of silently reverting the move.
    /// A no-op for columns the SM has no baseline for.
    pub fn note_columns_changed(&mut self, subnet: &Subnet, lids: &[ib_types::Lid]) {
        if let Some(tables) = self.last_tables.as_mut() {
            for &lid in lids {
                tables.set_column(lid, |sw| subnet.lft(sw).and_then(|l| l.get(lid)));
            }
        }
        if let Some(idx) = self.route_index.as_mut() {
            for &lid in lids {
                idx.refresh_column_from_installed(subnet, lid);
            }
        }
    }

    /// Audits the reverse route index against the installed tables,
    /// returning one line per stale `(switch, port)` destination set —
    /// empty when the index is absent (nothing to audit) or exact. The
    /// soak harness calls this after every event.
    #[must_use]
    pub fn verify_route_index(&self, subnet: &Subnet) -> Vec<String> {
        self.route_index
            .as_ref()
            .map(|idx| idx.mismatches(subnet))
            .unwrap_or_default()
    }

    /// The live reverse route index, when one mirrors the installed LFTs
    /// (rebuilt by converged full sweeps, spliced per column by repairs).
    /// `None` after an unconverged distribution until the next full sweep.
    #[must_use]
    pub fn route_index(&self) -> Option<&ib_verify::ReverseRouteIndex> {
        self.route_index.as_ref()
    }

    /// The link-down traps currently deferred by coalescing, in arrival
    /// order.
    #[must_use]
    pub fn pending_repairs(&self) -> &[(NodeId, ib_types::PortNum)] {
        &self.pending_traps
    }

    /// The virtual-lane assignment of the last computed tables, for
    /// running the deadlock-aware verifier against the installed fabric
    /// ([`ib_verify::FabricVerifier::verify_with_vls`]). `None` before
    /// the first sweep.
    #[must_use]
    pub fn installed_vls(&self) -> Option<&ib_routing::VlAssignment> {
        self.last_tables.as_ref().map(|t| &t.vls)
    }

    /// Runs the [`ib_verify::FabricVerifier`] against the installed tables
    /// (with the VL layering the engine produced), turning any violation
    /// into a hard error. Emits `verify.*` counters into the observer.
    ///
    /// Verification is scoped to the SM's own connected component: after a
    /// fabric split, switches beyond the cut keep whatever rows were last
    /// installed — no SMP the master sends can reach them, so their stale
    /// state is the *lost* side's problem until a heal sweep rewrites it.
    pub(crate) fn verify_installed(
        &mut self,
        subnet: &Subnet,
        vls: &ib_routing::VlAssignment,
    ) -> IbResult<()> {
        let report = ib_verify::FabricVerifier::new()
            .with_viewpoint(self.sm_node)
            .verify_observed(subnet, vls, self.ledger.observer())?;
        if report.is_clean() {
            Ok(())
        } else {
            Err(ib_types::IbError::Management(format!(
                "fabric verification failed: {}",
                report.summary()
            )))
        }
    }

    /// Re-labels the fabric's connected components after a sweep computed
    /// fresh tables, updating the degraded-mode ledger. A split is counted
    /// (`sm.partitioned` per sweep that still sees it, `sm.unreachable_lids`
    /// with the stranded LID count); a fabric that is whole again clears
    /// the ledger. Returns the LIDs that were unreachable *before* this
    /// refresh so the caller can prove a heal restored their columns
    /// ([`Self::verify_healed`]).
    pub(crate) fn refresh_partition_state(&mut self, subnet: &Subnet) -> Vec<Lid> {
        let prior = std::mem::take(&mut self.unreachable_lids);
        self.lost_nodes.clear();
        if let Some((lost, lids)) = self.partition_scan(subnet) {
            let observer = self.ledger.observer();
            observer.incr("sm.partitioned");
            observer.add("sm.unreachable_lids", lids.len() as u64);
            self.lost_nodes = lost;
            self.unreachable_lids = lids;
        }
        prior
    }

    /// Labels the connected components of the switch graph (reusing the
    /// epoch-cached CSR build when one is current) and, on a split, returns
    /// the nodes beyond the SM's component together with the LIDs stranded
    /// there. `None` when the fabric is whole — or when no component can be
    /// labeled at all (the SM host's own uplink is down, or the degraded
    /// subnet cannot express a CSR graph), in which case the sweep proceeds
    /// exactly as before this machinery existed.
    fn partition_scan(&mut self, subnet: &Subnet) -> Option<(HashSet<NodeId>, Vec<Lid>)> {
        let epoch = subnet.topology_epoch();
        let graph = match self.cached_graph.take() {
            Some((e, g)) if e == epoch => g,
            _ => ib_routing::SwitchGraph::build(subnet).ok()?,
        };
        let scan = self.scan_lost(subnet, &graph);
        self.cached_graph = Some((epoch, graph));
        scan
    }

    /// The component walk behind [`Self::partition_scan`]: everything not
    /// in the SM's own component is lost, and every LID registered on a
    /// lost node is unreachable.
    fn scan_lost(
        &self,
        subnet: &Subnet,
        graph: &ib_routing::SwitchGraph,
    ) -> Option<(HashSet<NodeId>, Vec<Lid>)> {
        let comps = graph.components();
        if !comps.is_partitioned() {
            return None;
        }
        // Anchor the scan at the switch the SM talks through (the SM host
        // itself when it *is* a switch).
        let anchor = if subnet.node(self.sm_node).is_switch() {
            self.sm_node
        } else {
            subnet
                .node(self.sm_node)
                .connected_ports()
                .map(|(_, r)| r.node)
                .find(|&n| subnet.node(n).is_switch())?
        };
        let scope = comps.label_of(graph.index(anchor)?);
        let in_scope = |node: NodeId| {
            graph
                .index(node)
                .is_some_and(|i| comps.label_of(i) == scope)
        };
        let mut lost = HashSet::new();
        let mut lids = Vec::new();
        for n in subnet.nodes().filter(|n| n.is_alive()) {
            let reachable = if n.id == self.sm_node {
                true
            } else if n.is_switch() {
                in_scope(n.id)
            } else {
                // An endpoint follows whichever switch still links it in.
                n.connected_ports().any(|(_, r)| in_scope(r.node))
            };
            if !reachable {
                lids.extend(n.lids());
                lost.insert(n.id);
            }
        }
        lids.sort_unstable();
        Some((lost, lids))
    }

    /// The subset of `tables` the SM can still deliver: switches beyond the
    /// split are dropped — their `Set` SMPs would only burn the retry
    /// budget, and the heal sweep rewrites their rows wholesale anyway.
    /// `None` when the fabric is whole (the common case pays nothing).
    pub(crate) fn served_tables(
        &self,
        tables: &ib_routing::RoutingTables,
    ) -> Option<ib_routing::RoutingTables> {
        if self.lost_nodes.is_empty() {
            return None;
        }
        self.ledger.observer().add(
            "sm.switches_unserved",
            tables
                .lfts
                .keys()
                .filter(|id| self.lost_nodes.contains(id))
                .count() as u64,
        );
        Some(ib_routing::RoutingTables {
            lfts: tables
                .lfts
                .iter()
                .filter(|(id, _)| !self.lost_nodes.contains(id))
                .map(|(&id, lft)| (id, lft.clone()))
                .collect(),
            vls: tables.vls.clone(),
            engine: tables.engine,
            decisions: tables.decisions,
        })
    }

    /// After a sweep on a fabric that is whole again: every LID the split
    /// had stranded — and that still exists — must have regained a full
    /// destination column on every switch, or the heal is declared broken.
    /// Counts `sm.healed` once per recovery. A no-op while still degraded
    /// or when nothing was stranded.
    pub(crate) fn verify_healed(&mut self, subnet: &Subnet, stranded: &[Lid]) -> IbResult<()> {
        if stranded.is_empty() || !self.unreachable_lids.is_empty() {
            return Ok(());
        }
        self.ledger.observer().incr("sm.healed");
        for &lid in stranded {
            if subnet.endpoint_of(lid).is_none() {
                continue; // pruned while lost; nothing to restore
            }
            for sw in subnet.switches() {
                if sw.lft().is_some_and(|l| l.get(lid).is_none()) {
                    return Err(ib_types::IbError::Management(format!(
                        "heal verification failed: {} has no route toward \
                         previously-unreachable LID {lid}",
                        subnet.name_of(sw.id)
                    )));
                }
            }
        }
        Ok(())
    }

    /// The LIDs the last sweep left unreachable (ascending), empty when
    /// the fabric is whole. The soak harness and drivers read this to know
    /// whether the SM is serving a degraded fabric.
    #[must_use]
    pub fn unreachable_lids(&self) -> &[Lid] {
        &self.unreachable_lids
    }

    /// True while the SM is serving only its own component of a split
    /// fabric.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !self.unreachable_lids.is_empty() || !self.lost_nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_subnet::topology::fattree::two_level;
    use ib_subnet::topology::torus::torus_2d;

    #[test]
    fn bring_up_configures_fat_tree_end_to_end() {
        let mut t = two_level(2, 3, 2);
        let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
        let report = sm.bring_up(&mut t.subnet).unwrap();

        assert_eq!(report.lids, 10);
        assert_eq!(report.lid_smps, 10);
        assert_eq!(report.min_blocks_per_switch, 1);
        assert_eq!(report.distribution.lft_smps, 4); // 4 switches x 1 block.
        assert!(report.decisions > 0);

        // Every host reaches every other host through the installed LFTs.
        for &a in &t.hosts {
            for &b in &t.hosts {
                let lid = t.subnet.node(b).ports[1].lid.unwrap();
                let path = t.subnet.trace_route(a, lid, 16).unwrap();
                assert_eq!(*path.last().unwrap(), b);
            }
        }
    }

    #[test]
    fn verified_bring_up_passes_and_counts() {
        let mut t = two_level(2, 3, 2);
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                verify: true,
                ..SmConfig::default()
            },
        );
        sm.set_observer(ib_observe::Observer::metrics());
        sm.bring_up(&mut t.subnet).unwrap();
        let snap = sm.observer().snapshot().unwrap();
        assert_eq!(snap.counter("verify.runs"), 1);
        assert_eq!(snap.counter("verify.clean"), 1);
        assert_eq!(snap.counter("verify.violations"), 0);
        assert_eq!(snap.spans_named("verify.run").len(), 1);
    }

    #[test]
    fn verified_bring_up_rejects_corrupted_tables() {
        // Corrupt a row behind the SM's back *between* two sweeps: the
        // second (verifying) reconfiguration must refuse the fabric...
        // except a full reconfiguration rewrites the corrupt row. Instead
        // corrupt a LID registration, which no sweep repairs.
        let mut t = two_level(2, 3, 2);
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                verify: true,
                ..SmConfig::default()
            },
        );
        sm.bring_up(&mut t.subnet).unwrap();
        // Duplicate LID ownership: host 5's port claims host 4's LID.
        let stolen = t.subnet.node(t.hosts[4]).ports[1].lid.unwrap();
        t.subnet.node_mut(t.hosts[5]).ports[1].lid = Some(stolen);
        let err = sm.full_reconfiguration(&mut t.subnet).unwrap_err();
        assert!(
            err.to_string().contains("fabric verification failed"),
            "{err}"
        );
    }

    #[test]
    fn full_reconfiguration_without_changes_sends_nothing() {
        let mut t = two_level(2, 3, 2);
        let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
        sm.bring_up(&mut t.subnet).unwrap();
        let again = sm.full_reconfiguration(&mut t.subnet).unwrap();
        assert_eq!(again.distribution.lft_smps, 0);
    }

    #[test]
    fn dfsssp_brings_up_torus() {
        let mut t = torus_2d(3, 3, 1, true);
        let mut sm = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                engine: EngineKind::Dfsssp,
                smp_mode: SmpMode::Directed,
                ..SmConfig::default()
            },
        );
        let report = sm.bring_up(&mut t.subnet).unwrap();
        assert_eq!(report.engine, "dfsssp");
        for &b in &t.hosts {
            let lid = t.subnet.node(b).ports[1].lid.unwrap();
            let path = t.subnet.trace_route(t.hosts[0], lid, 32).unwrap();
            assert_eq!(*path.last().unwrap(), b);
        }
    }

    #[test]
    fn ledger_phases_cover_pipeline() {
        let mut t = two_level(2, 2, 2);
        let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
        let report = sm.bring_up(&mut t.subnet).unwrap();
        assert_eq!(sm.ledger.phase_total("discovery"), report.discovery_smps);
        assert_eq!(sm.ledger.phase_total("lid-assignment"), report.lid_smps);
        assert_eq!(
            sm.ledger.phase_total("lft-distribution"),
            report.distribution.lft_smps
        );
        assert_eq!(sm.ledger.total(), report.total_smps());
    }

    #[test]
    fn destination_mode_after_directed_bring_up() {
        // First bring-up must be directed (no LFTs yet); once tables are in
        // place a second SM can run destination-routed.
        let mut t = two_level(2, 3, 2);
        let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
        sm.bring_up(&mut t.subnet).unwrap();

        // Nudge a LID to force redistribution: move host 5 to a new LID.
        let h5 = t.hosts[5];
        let old = t.subnet.node(h5).ports[1].lid.unwrap();
        t.subnet.clear_lid(old).unwrap();
        t.subnet
            .assign_port_lid(h5, ib_types::PortNum::new(1), ib_types::Lid::from_raw(40))
            .unwrap();

        let mut sm2 = SubnetManager::new(
            t.hosts[0],
            SmConfig {
                engine: EngineKind::MinHop,
                smp_mode: SmpMode::Destination,
                ..SmConfig::default()
            },
        );
        let report = sm2.full_reconfiguration(&mut t.subnet).unwrap();
        assert!(report.distribution.lft_smps > 0);
        assert!(sm2.ledger.records().iter().all(|r| !r.directed));
    }
}
