//! Reports produced by subnet-manager operations.

use std::time::Duration;

/// What one LFT distribution cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DistributionReport {
    /// `SubnSet(LinearForwardingTable)` SMPs sent.
    pub lft_smps: usize,
    /// Switches that received at least one SMP (the paper's `n`, or `n'`
    /// for partial updates).
    pub switches_updated: usize,
    /// Largest per-switch SMP count (the paper's `m` for a full
    /// distribution; 1 or 2 — `m'` — for a vSwitch migration).
    pub max_blocks_per_switch: usize,
}

/// What a full bring-up or full reconfiguration cost.
#[derive(Clone, Debug, Default)]
pub struct BringUpReport {
    /// Discovery `SubnGet` SMPs (0 when re-running on a known fabric).
    pub discovery_smps: usize,
    /// `SubnSet(PortInfo)` LID-assignment SMPs.
    pub lid_smps: usize,
    /// Wall-clock path-computation time — the `PCt` of equation 1.
    pub path_computation: Duration,
    /// Machine-independent routing-decision count (proxy for `PCt`).
    pub decisions: u64,
    /// LFT distribution accounting — the `LFTDt` side of equation 1.
    pub distribution: DistributionReport,
    /// Number of LIDs in the subnet after bring-up.
    pub lids: usize,
    /// Minimum LFT blocks per switch implied by the topmost LID (Table I's
    /// "Min LFT Blocks/Switch" column).
    pub min_blocks_per_switch: usize,
    /// Engine that computed the paths.
    pub engine: String,
}

impl BringUpReport {
    /// Total SMPs across all phases.
    #[must_use]
    pub fn total_smps(&self) -> usize {
        self.discovery_smps + self.lid_smps + self.distribution.lft_smps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let r = BringUpReport {
            discovery_smps: 10,
            lid_smps: 5,
            distribution: DistributionReport {
                lft_smps: 12,
                switches_updated: 2,
                max_blocks_per_switch: 6,
            },
            ..BringUpReport::default()
        };
        assert_eq!(r.total_smps(), 27);
    }
}
