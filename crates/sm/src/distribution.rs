//! LFT distribution: pushing computed tables to switches, block by block.
//!
//! Per switch, the dirty 64-entry blocks between the installed LFT and the
//! target LFT each cost one `SubnSet(LinearForwardingTable)` SMP. On a
//! virgin fabric *every* covered block is dirty, giving the
//! `n · m` SMP total of the paper's equation 2 and Table I's "Min SMPs Full
//! RC" column.

use ib_mad::fault::{SmpChannel, SmpTransport};
use ib_mad::{DirectedRoute, Smp, SmpLedger, SmpRouting};
use ib_routing::RoutingTables;
use ib_subnet::{Lft, LftDelta, NodeId, Subnet};
use ib_types::{IbError, IbResult};

use crate::report::DistributionReport;
use crate::sm::SmpMode;

/// A dirty LFT block whose `Set` SMP could not be delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailedBlock {
    /// The switch the block was destined for.
    pub switch: NodeId,
    /// The 64-entry block index.
    pub block: usize,
}

/// Distributes `tables` into the subnet, sending one SMP per dirty block
/// per switch, and applying each block to the switch's installed LFT.
pub fn distribute(
    subnet: &mut Subnet,
    sm_node: NodeId,
    tables: &RoutingTables,
    mode: SmpMode,
    ledger: &mut SmpLedger,
) -> IbResult<DistributionReport> {
    ledger.begin_phase("lft-distribution");
    let mut report = DistributionReport::default();

    // Deterministic switch order.
    let mut targets: Vec<(&NodeId, &Lft)> = tables.lfts.iter().collect();
    targets.sort_unstable_by_key(|(id, _)| id.index());

    // OpenSM populates every LFT entry up to the topmost assigned LID
    // (unreachable ones to the drop port) and pushes all covered blocks —
    // the `m` of equation 2 is set by the topmost LID, not by how many
    // entries actually route anywhere.
    let topmost = subnet.topmost_lid();

    for (&sw, target_lft) in targets {
        let target_lft = match topmost {
            Some(top) => target_lft.padded(top),
            None => target_lft.clone(),
        };
        let current = subnet.lft(sw).ok_or_else(|| {
            IbError::Management(format!("{} is not a switch", subnet.name_of(sw)))
        })?;
        let delta = LftDelta::between(current, &target_lft);
        if delta.is_empty() {
            continue;
        }
        let routing = routing_for(subnet, sm_node, sw, mode)?;
        let hops = hops_of(subnet, sm_node, sw, &routing)?;
        for &block in &delta.blocks {
            let empty = vec![None; ib_types::LFT_BLOCK_SIZE];
            let payload = target_lft.block(block).map_or(empty.clone(), <[_]>::to_vec);
            let smp = Smp::set_lft_block(sw, routing.clone(), block, &payload);
            ledger.record(&smp, hops);
            // Apply the block to the installed LFT (the "switch firmware"
            // side of the Set).
            let mut arr = [None; ib_types::LFT_BLOCK_SIZE];
            arr.copy_from_slice(&payload);
            subnet
                .lft_mut(sw)
                .expect("checked above")
                .write_block(block, &arr);
        }
        report.lft_smps += delta.smp_count();
        report.switches_updated += 1;
        report.max_blocks_per_switch = report.max_blocks_per_switch.max(delta.smp_count());
    }
    Ok(report)
}

/// Like [`distribute`], but every `Set` goes through a fault-aware
/// [`SmpTransport`]. Blocks whose SMP exhausts its retries are *not*
/// applied to the installed LFT; they are returned as [`FailedBlock`]s so
/// the caller can resume with [`retry_failed_blocks`] instead of resending
/// everything. A switch that is currently unreachable (no directed route,
/// no LID route) fails all of its dirty blocks without consuming attempts.
pub fn distribute_with<C: SmpChannel>(
    subnet: &mut Subnet,
    sm_node: NodeId,
    tables: &RoutingTables,
    mode: SmpMode,
    transport: &mut SmpTransport<C>,
    ledger: &mut SmpLedger,
) -> IbResult<(DistributionReport, Vec<FailedBlock>)> {
    ledger.begin_phase("lft-distribution");
    push_blocks(subnet, sm_node, tables, mode, transport, ledger, None)
}

/// Resumes an interrupted distribution: only the listed failed blocks are
/// re-derived from `tables` and resent. Blocks that became clean in the
/// meantime (installed LFT already matches the target) cost nothing.
pub fn retry_failed_blocks<C: SmpChannel>(
    subnet: &mut Subnet,
    sm_node: NodeId,
    tables: &RoutingTables,
    mode: SmpMode,
    transport: &mut SmpTransport<C>,
    ledger: &mut SmpLedger,
    failed: &[FailedBlock],
) -> IbResult<(DistributionReport, Vec<FailedBlock>)> {
    ledger.begin_phase("lft-distribution-retry");
    push_blocks(
        subnet,
        sm_node,
        tables,
        mode,
        transport,
        ledger,
        Some(failed),
    )
}

/// Shared engine behind [`distribute_with`] and [`retry_failed_blocks`].
fn push_blocks<C: SmpChannel>(
    subnet: &mut Subnet,
    sm_node: NodeId,
    tables: &RoutingTables,
    mode: SmpMode,
    transport: &mut SmpTransport<C>,
    ledger: &mut SmpLedger,
    restrict: Option<&[FailedBlock]>,
) -> IbResult<(DistributionReport, Vec<FailedBlock>)> {
    let mut report = DistributionReport::default();
    let mut failed = Vec::new();

    let mut targets: Vec<(&NodeId, &Lft)> = tables.lfts.iter().collect();
    targets.sort_unstable_by_key(|(id, _)| id.index());
    let topmost = subnet.topmost_lid();

    for (&sw, target_lft) in targets {
        let target_lft = match topmost {
            Some(top) => target_lft.padded(top),
            None => target_lft.clone(),
        };
        let current = subnet.lft(sw).ok_or_else(|| {
            IbError::Management(format!("{} is not a switch", subnet.name_of(sw)))
        })?;
        let delta = LftDelta::between(current, &target_lft);
        let blocks: Vec<usize> = delta
            .blocks
            .iter()
            .copied()
            .filter(|&block| {
                restrict.is_none_or(|f| f.contains(&FailedBlock { switch: sw, block }))
            })
            .collect();
        if blocks.is_empty() {
            continue;
        }
        let Ok(routing) = routing_for(subnet, sm_node, sw, mode) else {
            failed.extend(
                blocks
                    .iter()
                    .map(|&block| FailedBlock { switch: sw, block }),
            );
            continue;
        };
        let Ok(hops) = hops_of(subnet, sm_node, sw, &routing) else {
            failed.extend(
                blocks
                    .iter()
                    .map(|&block| FailedBlock { switch: sw, block }),
            );
            continue;
        };
        let mut sent = 0;
        for &block in &blocks {
            let empty = vec![None; ib_types::LFT_BLOCK_SIZE];
            let payload = target_lft.block(block).map_or(empty.clone(), <[_]>::to_vec);
            let smp = Smp::set_lft_block(sw, routing.clone(), block, &payload);
            match transport.send(subnet, &smp, hops, ledger) {
                Ok(_) => {
                    let mut arr = [None; ib_types::LFT_BLOCK_SIZE];
                    arr.copy_from_slice(&payload);
                    subnet
                        .lft_mut(sw)
                        .expect("checked above")
                        .write_block(block, &arr);
                    sent += 1;
                }
                Err(IbError::Transport(_)) => {
                    failed.push(FailedBlock { switch: sw, block });
                }
                Err(e) => return Err(e),
            }
        }
        if sent > 0 {
            report.lft_smps += sent;
            report.switches_updated += 1;
            report.max_blocks_per_switch = report.max_blocks_per_switch.max(sent);
        }
    }
    Ok((report, failed))
}

/// Chooses SMP addressing for a switch under the given mode.
pub fn routing_for(
    subnet: &Subnet,
    sm_node: NodeId,
    switch: NodeId,
    mode: SmpMode,
) -> IbResult<SmpRouting> {
    match mode {
        SmpMode::Directed => {
            let route = DirectedRoute::compute(subnet, sm_node, switch).ok_or_else(|| {
                IbError::Topology(format!("{} unreachable from SM", subnet.name_of(switch)))
            })?;
            Ok(SmpRouting::Directed(route))
        }
        SmpMode::Destination => {
            let lid = subnet.node(switch).lids().next().ok_or_else(|| {
                IbError::Management(format!(
                    "{} has no LID for destination-routed SMPs",
                    subnet.name_of(switch)
                ))
            })?;
            Ok(SmpRouting::Destination(lid))
        }
    }
}

/// Link traversals an SMP takes from the SM to the switch.
pub fn hops_of(
    subnet: &Subnet,
    sm_node: NodeId,
    switch: NodeId,
    routing: &SmpRouting,
) -> IbResult<usize> {
    match routing {
        SmpRouting::Directed(r) => Ok(r.hop_count()),
        SmpRouting::Destination(_) => DirectedRoute::compute(subnet, sm_node, switch)
            .map(|r| r.hop_count())
            .ok_or_else(|| IbError::Topology("switch unreachable".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_routing::testutil::assign_lids;
    use ib_routing::EngineKind;
    use ib_subnet::topology::fattree::two_level;
    use ib_types::Lid;

    fn setup() -> (ib_subnet::topology::BuiltTopology, RoutingTables) {
        let mut t = two_level(2, 3, 2);
        assign_lids(&mut t);
        let tables = EngineKind::MinHop.build().compute(&t.subnet).unwrap();
        (t, tables)
    }

    #[test]
    fn virgin_fabric_pays_n_times_m() {
        let (mut t, tables) = setup();
        let mut ledger = SmpLedger::new();
        let report = distribute(
            &mut t.subnet,
            t.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut ledger,
        )
        .unwrap();
        // 10 LIDs -> topmost 10 -> 1 block; 4 switches -> 4 SMPs.
        assert_eq!(report.lft_smps, 4);
        assert_eq!(report.switches_updated, 4);
        assert_eq!(report.max_blocks_per_switch, 1);
        assert_eq!(ledger.lft_updates(), 4);
    }

    #[test]
    fn redistribution_is_free_when_nothing_changed() {
        let (mut t, tables) = setup();
        let mut ledger = SmpLedger::new();
        distribute(
            &mut t.subnet,
            t.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut ledger,
        )
        .unwrap();
        let again = distribute(
            &mut t.subnet,
            t.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut ledger,
        )
        .unwrap();
        assert_eq!(again.lft_smps, 0);
        assert_eq!(again.switches_updated, 0);
    }

    #[test]
    fn installed_lfts_route_traffic() {
        let (mut t, tables) = setup();
        let mut ledger = SmpLedger::new();
        distribute(
            &mut t.subnet,
            t.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut ledger,
        )
        .unwrap();
        // After distribution the *subnet* LFTs (not just the tables) must
        // deliver packets between the first and last hosts.
        let last = t.hosts[5];
        let lid = t.subnet.node(last).ports[1].lid.unwrap();
        let path = t.subnet.trace_route(t.hosts[0], lid, 16).unwrap();
        assert_eq!(*path.last().unwrap(), last);
    }

    #[test]
    fn destination_mode_needs_switch_lids() {
        let (mut t, tables) = setup();
        let mut ledger = SmpLedger::new();
        let report = distribute(
            &mut t.subnet,
            t.hosts[0],
            &tables,
            SmpMode::Destination,
            &mut ledger,
        )
        .unwrap();
        assert_eq!(report.lft_smps, 4);
        // None of the recorded SMPs paid the directed-route overhead.
        assert!(ledger.records().iter().all(|r| !r.directed));
    }

    #[test]
    fn distribute_with_perfect_transport_matches_classic() {
        let (mut t, tables) = setup();
        let mut classic = t.subnet.clone();
        let mut ledger_a = SmpLedger::new();
        let report_a = distribute(
            &mut classic,
            t.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut ledger_a,
        )
        .unwrap();

        let mut transport = SmpTransport::perfect(t.hosts[0]);
        let mut ledger_b = SmpLedger::new();
        let (report_b, failed) = distribute_with(
            &mut t.subnet,
            t.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut transport,
            &mut ledger_b,
        )
        .unwrap();
        assert!(failed.is_empty());
        assert_eq!(report_a, report_b);
        // Byte-identical ledgers: the fault-free transport is invisible.
        assert_eq!(ledger_a.records(), ledger_b.records());
        for sw in classic.physical_switches() {
            assert_eq!(sw.lft(), t.subnet.lft(sw.id), "{}", sw.name);
        }
    }

    #[test]
    fn black_hole_transport_fails_every_block_and_applies_none() {
        let (mut t, tables) = setup();
        let before: Vec<_> = t
            .subnet
            .physical_switches()
            .map(|s| (s.id, s.lft().unwrap().clone()))
            .collect();
        let mut transport =
            SmpTransport::with_channel(t.hosts[0], ib_mad::LossyChannel::black_hole());
        let mut ledger = SmpLedger::new();
        let (report, failed) = distribute_with(
            &mut t.subnet,
            t.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut transport,
            &mut ledger,
        )
        .unwrap();
        assert_eq!(report.lft_smps, 0);
        assert_eq!(failed.len(), 4); // 4 switches x 1 block
        assert_eq!(ledger.delivered(), 0);
        for (sw, lft) in before {
            assert_eq!(t.subnet.lft(sw), Some(&lft));
        }
    }

    #[test]
    fn retry_resumes_only_failed_blocks() {
        let (mut t, tables) = setup();
        // ~40% per-hop drop: some blocks fail even with 4 attempts.
        let mut transport = SmpTransport::lossy(t.hosts[0], 0xBAD, 0.4, 0);
        transport.retry.max_attempts = 2;
        let mut ledger = SmpLedger::new();
        let (mut report, mut failed) = distribute_with(
            &mut t.subnet,
            t.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut transport,
            &mut ledger,
        )
        .unwrap();
        // Keep retrying failed blocks until done (the channel is lossy but
        // fair, so this terminates with overwhelming probability).
        let mut passes = 0;
        while !failed.is_empty() && passes < 64 {
            let (r2, f2) = retry_failed_blocks(
                &mut t.subnet,
                t.hosts[0],
                &tables,
                SmpMode::Directed,
                &mut transport,
                &mut ledger,
                &failed,
            )
            .unwrap();
            report.lft_smps += r2.lft_smps;
            failed = f2;
            passes += 1;
        }
        assert!(failed.is_empty(), "did not converge");
        // Exactly the 4 blocks were eventually applied, once each.
        assert_eq!(report.lft_smps, 4);
        assert_eq!(ledger.lft_updates(), 4);
        assert!(ledger.retries() > 0 || ledger.dropped() > 0);
        // The fabric ends up fully routed.
        let last = t.hosts[5];
        let lid = t.subnet.node(last).ports[1].lid.unwrap();
        let path = t.subnet.trace_route(t.hosts[0], lid, 16).unwrap();
        assert_eq!(*path.last().unwrap(), last);
    }

    #[test]
    fn topmost_lid_rules_block_count() {
        // §VII-C: a single node holding the topmost unicast LID forces the
        // full 768-block LFT onto every switch.
        let (mut t, _) = setup();
        t.subnet.clear_lid(Lid::from_raw(10)).unwrap();
        t.subnet
            .assign_port_lid(t.hosts[5], ib_types::PortNum::new(1), Lid::from_raw(0xBFFF))
            .unwrap();
        let tables = EngineKind::MinHop.build().compute(&t.subnet).unwrap();
        let mut ledger = SmpLedger::new();
        let report = distribute(
            &mut t.subnet,
            t.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut ledger,
        )
        .unwrap();
        assert_eq!(report.max_blocks_per_switch, 768);
    }
}
