//! LFT distribution: pushing computed tables to switches, block by block.
//!
//! Per switch, the dirty 64-entry blocks between the installed LFT and the
//! target LFT each cost one `SubnSet(LinearForwardingTable)` SMP. On a
//! virgin fabric *every* covered block is dirty, giving the
//! `n · m` SMP total of the paper's equation 2 and Table I's "Min SMPs Full
//! RC" column.
//!
//! Distribution runs in two phases. **Planning** is read-only over the
//! subnet: per switch, compute SMP addressing and diff the installed LFT
//! against a borrowed padded view of the target ([`PaddedLftView`]),
//! materializing one payload per dirty block. Planning fans out across
//! scoped worker threads when [`SweepOptions::workers`] asks for it and the
//! per-chunk results are merged back in ascending switch order.
//! **Applying** is serial and deterministic: the merged plans emit the SMP
//! stream (ledger records, transport sends, installed-LFT writes) in
//! exactly the order the sequential implementation used, so ledgers and
//! installed tables are byte-identical for any worker count.

use ib_mad::fault::{SmpChannel, SmpTransport};
use ib_mad::{DirectedRoute, Smp, SmpAttribute, SmpLedger, SmpMethod, SmpRouting};
use ib_observe::Observer;
use ib_routing::RoutingTables;
use ib_subnet::{Lft, NodeId, Subnet};
use ib_types::{IbError, IbResult, Lid, PortNum, LFT_BLOCK_SIZE};
use rustc_hash::FxHashMap;

use crate::report::DistributionReport;
use crate::sm::{SmpMode, SweepOptions};

/// A dirty LFT block whose `Set` SMP could not be delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailedBlock {
    /// The switch the block was destined for.
    pub switch: NodeId,
    /// The 64-entry block index.
    pub block: usize,
}

/// One switch's fully computed update: SMP addressing plus every dirty
/// block's payload. Produced read-only, applied serially.
struct SwitchPlan {
    switch: NodeId,
    routing: SmpRouting,
    hops: usize,
    blocks: Vec<(usize, [Option<PortNum>; LFT_BLOCK_SIZE])>,
}

/// What planning decided for one switch.
enum PlanOutcome {
    /// Nothing dirty (or nothing dirty within the restrict set).
    Clean,
    /// Dirty blocks with a live route to the switch.
    Update(SwitchPlan),
    /// Dirty blocks, but no SMP addressing reaches the switch right now;
    /// they all fail without consuming transport attempts.
    Unreachable {
        /// The unreachable switch.
        switch: NodeId,
        /// Its dirty block indices.
        blocks: Vec<usize>,
    },
}

/// Plans one switch: diff, filter by `restrict`, resolve addressing.
///
/// Returns `Err` only for a structural problem (the node is not a switch);
/// unreachable switches come back as [`PlanOutcome::Unreachable`].
fn plan_switch(
    subnet: &Subnet,
    sm_node: NodeId,
    sw: NodeId,
    target: &Lft,
    topmost: Option<Lid>,
    mode: SmpMode,
    restrict: Option<&[FailedBlock]>,
) -> IbResult<PlanOutcome> {
    let current = subnet
        .lft(sw)
        .ok_or_else(|| IbError::Management(format!("{} is not a switch", subnet.name_of(sw))))?;
    let view = target.padded_view(topmost);
    let mut dirty = view.dirty_blocks_against(current);
    if let Some(only) = restrict {
        dirty.retain(|&block| only.contains(&FailedBlock { switch: sw, block }));
    }
    if dirty.is_empty() {
        return Ok(PlanOutcome::Clean);
    }
    let Ok(routing) = routing_for(subnet, sm_node, sw, mode) else {
        return Ok(PlanOutcome::Unreachable {
            switch: sw,
            blocks: dirty,
        });
    };
    let Ok(hops) = hops_of(subnet, sm_node, sw, &routing) else {
        return Ok(PlanOutcome::Unreachable {
            switch: sw,
            blocks: dirty,
        });
    };
    let blocks = dirty
        .into_iter()
        .map(|block| {
            let mut payload = [None; LFT_BLOCK_SIZE];
            view.copy_block_into(block, &mut payload);
            (block, payload)
        })
        .collect();
    Ok(PlanOutcome::Update(SwitchPlan {
        switch: sw,
        routing,
        hops,
        blocks,
    }))
}

/// Plans every switch of `tables`, in ascending switch order, fanning the
/// work across `opts` worker threads. The returned vector is ordered and
/// complete regardless of the worker count.
fn plan_all(
    subnet: &Subnet,
    sm_node: NodeId,
    tables: &RoutingTables,
    mode: SmpMode,
    restrict: Option<&[FailedBlock]>,
    opts: SweepOptions,
    observer: &Observer,
) -> IbResult<Vec<PlanOutcome>> {
    let _span = observer.span("sweep.plan");
    let mut targets: Vec<(&NodeId, &Lft)> = tables.lfts.iter().collect();
    targets.sort_unstable_by_key(|(id, _)| id.index());

    // OpenSM populates every LFT entry up to the topmost assigned LID
    // (unreachable ones to the drop port) and pushes all covered blocks —
    // the `m` of equation 2 is set by the topmost LID, not by how many
    // entries actually route anywhere.
    let topmost = subnet.topmost_lid();

    let workers = opts.effective_workers(targets.len());
    if observer.is_enabled() {
        observer.add("planner.jobs", targets.len() as u64);
        observer.record("planner.workers", workers as u64);
    }
    if workers <= 1 {
        return targets
            .iter()
            .map(|&(&sw, target)| plan_switch(subnet, sm_node, sw, target, topmost, mode, restrict))
            .collect();
    }

    // Contiguous chunks keep the merge a plain concatenation: chunk `i`
    // holds the plans for the `i`-th slice of the sorted switch list.
    let chunk_len = targets.len().div_ceil(workers);
    let chunks: Vec<&[(&NodeId, &Lft)]> = targets.chunks(chunk_len).collect();
    let per_chunk: Vec<IbResult<Vec<PlanOutcome>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let worker_obs = observer.clone();
                scope.spawn(move || {
                    let started_ns = worker_obs.now_ns();
                    let plans: IbResult<Vec<PlanOutcome>> = chunk
                        .iter()
                        .map(|&(&sw, target)| {
                            plan_switch(subnet, sm_node, sw, target, topmost, mode, restrict)
                        })
                        .collect();
                    if worker_obs.is_enabled() {
                        worker_obs.record("planner.chunk_switches", chunk.len() as u64);
                        worker_obs.record(
                            "planner.worker_busy_ns",
                            worker_obs.now_ns().saturating_sub(started_ns),
                        );
                    }
                    plans
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(plans) => plans,
                // A worker panic is a bug in the planner itself, not a
                // degraded-fabric condition; surface it on this thread.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut plans = Vec::with_capacity(targets.len());
    for chunk in per_chunk {
        plans.extend(chunk?);
    }
    Ok(plans)
}

/// A reusable `SubnSet(LinearForwardingTable)` SMP: the routing is cloned
/// once per switch and the payload buffer is recycled across blocks, so the
/// per-block inner loop allocates nothing new.
fn lft_smp_for(plan: &SwitchPlan) -> Smp {
    Smp {
        method: SmpMethod::Set,
        attribute: SmpAttribute::LftBlock {
            block: 0,
            payload: vec![None; LFT_BLOCK_SIZE],
        },
        routing: plan.routing.clone(),
        target: plan.switch,
    }
}

/// Points the reusable SMP at one dirty block.
fn retarget_lft_smp(smp: &mut Smp, block: usize, data: &[Option<PortNum>; LFT_BLOCK_SIZE]) {
    match &mut smp.attribute {
        SmpAttribute::LftBlock {
            block: b, payload, ..
        } => {
            *b = block;
            payload.copy_from_slice(data);
        }
        _ => unreachable!("reusable distribution SMP is always an LFT block"),
    }
}

/// Distributes `tables` into the subnet, sending one SMP per dirty block
/// per switch, and applying each block to the switch's installed LFT.
pub fn distribute(
    subnet: &mut Subnet,
    sm_node: NodeId,
    tables: &RoutingTables,
    mode: SmpMode,
    ledger: &mut SmpLedger,
) -> IbResult<DistributionReport> {
    distribute_opts(
        subnet,
        sm_node,
        tables,
        mode,
        ledger,
        SweepOptions::default(),
    )
}

/// [`distribute`] with explicit [`SweepOptions`]: planning fans out across
/// worker threads, the SMP stream stays byte-identical to the sequential
/// path.
pub fn distribute_opts(
    subnet: &mut Subnet,
    sm_node: NodeId,
    tables: &RoutingTables,
    mode: SmpMode,
    ledger: &mut SmpLedger,
    opts: SweepOptions,
) -> IbResult<DistributionReport> {
    ledger.begin_phase("lft-distribution");
    let observer = ledger.observer().clone();
    let plans = plan_all(subnet, sm_node, tables, mode, None, opts, &observer)?;
    let _apply_span = observer.span("sweep.apply");
    let mut report = DistributionReport::default();
    for outcome in plans {
        let plan = match outcome {
            PlanOutcome::Clean => continue,
            PlanOutcome::Unreachable { switch, .. } => {
                // The classic path has no resume story: an unaddressable
                // switch is an error, exactly as before the plan/apply split.
                let routing = routing_for(subnet, sm_node, switch, mode)?;
                hops_of(subnet, sm_node, switch, &routing)?;
                return Err(IbError::Topology(format!(
                    "{} unreachable from SM",
                    subnet.name_of(switch)
                )));
            }
            PlanOutcome::Update(plan) => plan,
        };
        let mut smp = lft_smp_for(&plan);
        for (block, payload) in &plan.blocks {
            retarget_lft_smp(&mut smp, *block, payload);
            ledger.record(&smp, plan.hops);
            // Apply the block to the installed LFT (the "switch firmware"
            // side of the Set).
            lft_mut_checked(subnet, plan.switch)?.write_block(*block, payload);
        }
        if observer.is_enabled() {
            observer.add("sweep.dirty_blocks", plan.blocks.len() as u64);
            observer.incr("sweep.switches_updated");
        }
        report.lft_smps += plan.blocks.len();
        report.switches_updated += 1;
        report.max_blocks_per_switch = report.max_blocks_per_switch.max(plan.blocks.len());
    }
    Ok(report)
}

/// The installed LFT of a planned switch. Planning only emits updates for
/// nodes that had an LFT, so a miss here means the fabric degraded between
/// plan and apply — an error, not a panic.
fn lft_mut_checked(subnet: &mut Subnet, switch: NodeId) -> IbResult<&mut Lft> {
    let name = subnet.name_of(switch).to_string();
    subnet.lft_mut(switch).ok_or(IbError::Management(format!(
        "{name} lost its LFT mid-sweep"
    )))
}

/// Like [`distribute`], but every `Set` goes through a fault-aware
/// [`SmpTransport`]. Blocks whose SMP exhausts its retries are *not*
/// applied to the installed LFT; they are returned as [`FailedBlock`]s so
/// the caller can resume with [`retry_failed_blocks`] instead of resending
/// everything. A switch that is currently unreachable (no directed route,
/// no LID route) fails all of its dirty blocks without consuming attempts.
pub fn distribute_with<C: SmpChannel>(
    subnet: &mut Subnet,
    sm_node: NodeId,
    tables: &RoutingTables,
    mode: SmpMode,
    transport: &mut SmpTransport<C>,
    ledger: &mut SmpLedger,
) -> IbResult<(DistributionReport, Vec<FailedBlock>)> {
    distribute_with_opts(
        subnet,
        sm_node,
        tables,
        mode,
        transport,
        ledger,
        SweepOptions::default(),
    )
}

/// [`distribute_with`] with explicit [`SweepOptions`].
pub fn distribute_with_opts<C: SmpChannel>(
    subnet: &mut Subnet,
    sm_node: NodeId,
    tables: &RoutingTables,
    mode: SmpMode,
    transport: &mut SmpTransport<C>,
    ledger: &mut SmpLedger,
    opts: SweepOptions,
) -> IbResult<(DistributionReport, Vec<FailedBlock>)> {
    ledger.begin_phase("lft-distribution");
    let (acct, failed) = push_blocks(subnet, sm_node, tables, mode, transport, ledger, None, opts)?;
    Ok((acct.report(), failed))
}

/// Resumes an interrupted distribution: only the listed failed blocks are
/// re-derived from `tables` and resent. Blocks that became clean in the
/// meantime (installed LFT already matches the target) cost nothing. The
/// returned report counts exactly the blocks this call applied, so summing
/// it into the original report via [`ResumeAccounting`] reproduces the
/// fault-free totals once everything has landed.
pub fn retry_failed_blocks<C: SmpChannel>(
    subnet: &mut Subnet,
    sm_node: NodeId,
    tables: &RoutingTables,
    mode: SmpMode,
    transport: &mut SmpTransport<C>,
    ledger: &mut SmpLedger,
    failed: &[FailedBlock],
) -> IbResult<(DistributionReport, Vec<FailedBlock>)> {
    ledger.begin_phase("lft-distribution-retry");
    let (acct, still_failed) = push_blocks(
        subnet,
        sm_node,
        tables,
        mode,
        transport,
        ledger,
        Some(failed),
        SweepOptions::default(),
    )?;
    Ok((acct.report(), still_failed))
}

/// Exact cross-pass accounting for a resumable distribution.
///
/// Per-call [`DistributionReport`]s cannot be summed field-wise: a switch
/// that needed a retry pass would be counted in `switches_updated` once per
/// pass, and `max_blocks_per_switch` would see only each pass's fragment.
/// This accumulator tracks applied blocks *per switch* across the initial
/// [`distribute_with`] and every [`retry_failed_blocks`] pass, so the final
/// report is identical to what a fault-free run would have produced once
/// every block has landed.
#[derive(Clone, Debug, Default)]
pub struct ResumeAccounting {
    applied: FxHashMap<NodeId, usize>,
}

impl ResumeAccounting {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs the blocks applied to `switch` in one pass.
    pub fn add_applied(&mut self, switch: NodeId, blocks: usize) {
        if blocks > 0 {
            *self.applied.entry(switch).or_insert(0) += blocks;
        }
    }

    /// Absorbs another pass's accounting wholesale.
    pub fn merge(&mut self, pass: ResumeAccounting) {
        for (switch, blocks) in pass.applied {
            self.add_applied(switch, blocks);
        }
    }

    /// The exact aggregate over everything absorbed so far.
    #[must_use]
    pub fn report(&self) -> DistributionReport {
        DistributionReport {
            lft_smps: self.applied.values().sum(),
            switches_updated: self.applied.len(),
            max_blocks_per_switch: self.applied.values().copied().max().unwrap_or(0),
        }
    }
}

/// Shared engine behind [`distribute_with`] and [`retry_failed_blocks`]:
/// plans (possibly in parallel), then applies serially through the
/// transport. Returns per-switch accounting for this call only — blocks
/// actually attempted and applied here, never blocks from earlier passes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn push_blocks<C: SmpChannel>(
    subnet: &mut Subnet,
    sm_node: NodeId,
    tables: &RoutingTables,
    mode: SmpMode,
    transport: &mut SmpTransport<C>,
    ledger: &mut SmpLedger,
    restrict: Option<&[FailedBlock]>,
    opts: SweepOptions,
) -> IbResult<(ResumeAccounting, Vec<FailedBlock>)> {
    let observer = ledger.observer().clone();
    let plans = plan_all(subnet, sm_node, tables, mode, restrict, opts, &observer)?;
    let _apply_span = observer.span("sweep.apply");
    let mut acct = ResumeAccounting::new();
    let mut failed = Vec::new();

    for outcome in plans {
        let plan = match outcome {
            PlanOutcome::Clean => continue,
            PlanOutcome::Unreachable { switch, blocks } => {
                if observer.is_enabled() {
                    observer.add("sweep.unreachable_blocks", blocks.len() as u64);
                }
                failed.extend(
                    blocks
                        .into_iter()
                        .map(|block| FailedBlock { switch, block }),
                );
                continue;
            }
            PlanOutcome::Update(plan) => plan,
        };
        let mut smp = lft_smp_for(&plan);
        let mut sent = 0;
        if observer.is_enabled() {
            observer.add("sweep.dirty_blocks", plan.blocks.len() as u64);
        }
        for (block, payload) in &plan.blocks {
            retarget_lft_smp(&mut smp, *block, payload);
            match transport.send(subnet, &smp, plan.hops, ledger) {
                Ok(_) => {
                    lft_mut_checked(subnet, plan.switch)?.write_block(*block, payload);
                    sent += 1;
                }
                Err(IbError::Transport(_)) => {
                    failed.push(FailedBlock {
                        switch: plan.switch,
                        block: *block,
                    });
                }
                Err(e) => return Err(e),
            }
        }
        if sent > 0 && observer.is_enabled() {
            observer.incr("sweep.switches_updated");
        }
        acct.add_applied(plan.switch, sent);
    }
    Ok((acct, failed))
}

/// Chooses SMP addressing for a switch under the given mode.
pub fn routing_for(
    subnet: &Subnet,
    sm_node: NodeId,
    switch: NodeId,
    mode: SmpMode,
) -> IbResult<SmpRouting> {
    match mode {
        SmpMode::Directed => {
            let route = DirectedRoute::compute(subnet, sm_node, switch).ok_or_else(|| {
                IbError::Topology(format!("{} unreachable from SM", subnet.name_of(switch)))
            })?;
            Ok(SmpRouting::Directed(route))
        }
        SmpMode::Destination => {
            let lid = subnet.node(switch).lids().next().ok_or_else(|| {
                IbError::Management(format!(
                    "{} has no LID for destination-routed SMPs",
                    subnet.name_of(switch)
                ))
            })?;
            Ok(SmpRouting::Destination(lid))
        }
    }
}

/// Link traversals an SMP takes from the SM to the switch.
pub fn hops_of(
    subnet: &Subnet,
    sm_node: NodeId,
    switch: NodeId,
    routing: &SmpRouting,
) -> IbResult<usize> {
    match routing {
        SmpRouting::Directed(r) => Ok(r.hop_count()),
        SmpRouting::Destination(_) => DirectedRoute::compute(subnet, sm_node, switch)
            .map(|r| r.hop_count())
            .ok_or_else(|| IbError::Topology("switch unreachable".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_routing::testutil::assign_lids;
    use ib_routing::EngineKind;
    use ib_subnet::topology::fattree::two_level;
    use ib_types::Lid;

    fn setup() -> (ib_subnet::topology::BuiltTopology, RoutingTables) {
        let mut t = two_level(2, 3, 2);
        assign_lids(&mut t);
        let tables = EngineKind::MinHop.build().compute(&t.subnet).unwrap();
        (t, tables)
    }

    #[test]
    fn virgin_fabric_pays_n_times_m() {
        let (mut t, tables) = setup();
        let mut ledger = SmpLedger::new();
        let report = distribute(
            &mut t.subnet,
            t.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut ledger,
        )
        .unwrap();
        // 10 LIDs -> topmost 10 -> 1 block; 4 switches -> 4 SMPs.
        assert_eq!(report.lft_smps, 4);
        assert_eq!(report.switches_updated, 4);
        assert_eq!(report.max_blocks_per_switch, 1);
        assert_eq!(ledger.lft_updates(), 4);
    }

    #[test]
    fn redistribution_is_free_when_nothing_changed() {
        let (mut t, tables) = setup();
        let mut ledger = SmpLedger::new();
        distribute(
            &mut t.subnet,
            t.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut ledger,
        )
        .unwrap();
        let again = distribute(
            &mut t.subnet,
            t.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut ledger,
        )
        .unwrap();
        assert_eq!(again.lft_smps, 0);
        assert_eq!(again.switches_updated, 0);
    }

    #[test]
    fn installed_lfts_route_traffic() {
        let (mut t, tables) = setup();
        let mut ledger = SmpLedger::new();
        distribute(
            &mut t.subnet,
            t.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut ledger,
        )
        .unwrap();
        // After distribution the *subnet* LFTs (not just the tables) must
        // deliver packets between the first and last hosts.
        let last = t.hosts[5];
        let lid = t.subnet.node(last).ports[1].lid.unwrap();
        let path = t.subnet.trace_route(t.hosts[0], lid, 16).unwrap();
        assert_eq!(*path.last().unwrap(), last);
    }

    #[test]
    fn destination_mode_needs_switch_lids() {
        let (mut t, tables) = setup();
        let mut ledger = SmpLedger::new();
        let report = distribute(
            &mut t.subnet,
            t.hosts[0],
            &tables,
            SmpMode::Destination,
            &mut ledger,
        )
        .unwrap();
        assert_eq!(report.lft_smps, 4);
        // None of the recorded SMPs paid the directed-route overhead.
        assert!(ledger.records().iter().all(|r| !r.directed));
    }

    #[test]
    fn distribute_with_perfect_transport_matches_classic() {
        let (mut t, tables) = setup();
        let mut classic = t.subnet.clone();
        let mut ledger_a = SmpLedger::new();
        let report_a = distribute(
            &mut classic,
            t.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut ledger_a,
        )
        .unwrap();

        let mut transport = SmpTransport::perfect(t.hosts[0]);
        let mut ledger_b = SmpLedger::new();
        let (report_b, failed) = distribute_with(
            &mut t.subnet,
            t.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut transport,
            &mut ledger_b,
        )
        .unwrap();
        assert!(failed.is_empty());
        assert_eq!(report_a, report_b);
        // Byte-identical ledgers: the fault-free transport is invisible.
        assert_eq!(ledger_a.records(), ledger_b.records());
        for sw in classic.physical_switches() {
            assert_eq!(sw.lft(), t.subnet.lft(sw.id), "{}", sw.name);
        }
    }

    #[test]
    fn black_hole_transport_fails_every_block_and_applies_none() {
        let (mut t, tables) = setup();
        let before: Vec<_> = t
            .subnet
            .physical_switches()
            .map(|s| (s.id, s.lft().unwrap().clone()))
            .collect();
        let mut transport =
            SmpTransport::with_channel(t.hosts[0], ib_mad::LossyChannel::black_hole());
        let mut ledger = SmpLedger::new();
        let (report, failed) = distribute_with(
            &mut t.subnet,
            t.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut transport,
            &mut ledger,
        )
        .unwrap();
        assert_eq!(report.lft_smps, 0);
        assert_eq!(report.switches_updated, 0);
        assert_eq!(failed.len(), 4); // 4 switches x 1 block
        assert_eq!(ledger.delivered(), 0);
        for (sw, lft) in before {
            assert_eq!(t.subnet.lft(sw), Some(&lft));
        }
    }

    #[test]
    fn retry_resumes_only_failed_blocks() {
        let (mut t, tables) = setup();
        // ~40% per-hop drop: some blocks fail even with 4 attempts.
        let mut transport = SmpTransport::lossy(t.hosts[0], 0xBAD, 0.4, 0);
        transport.retry.max_attempts = 2;
        let mut ledger = SmpLedger::new();
        let (mut report, mut failed) = distribute_with(
            &mut t.subnet,
            t.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut transport,
            &mut ledger,
        )
        .unwrap();
        // Keep retrying failed blocks until done (the channel is lossy but
        // fair, so this terminates with overwhelming probability).
        let mut passes = 0;
        while !failed.is_empty() && passes < 64 {
            let (r2, f2) = retry_failed_blocks(
                &mut t.subnet,
                t.hosts[0],
                &tables,
                SmpMode::Directed,
                &mut transport,
                &mut ledger,
                &failed,
            )
            .unwrap();
            report.lft_smps += r2.lft_smps;
            failed = f2;
            passes += 1;
        }
        assert!(failed.is_empty(), "did not converge");
        // Exactly the 4 blocks were eventually applied, once each.
        assert_eq!(report.lft_smps, 4);
        assert_eq!(ledger.lft_updates(), 4);
        assert!(ledger.retries() > 0 || ledger.dropped() > 0);
        // The fabric ends up fully routed.
        let last = t.hosts[5];
        let lid = t.subnet.node(last).ports[1].lid.unwrap();
        let path = t.subnet.trace_route(t.hosts[0], lid, 16).unwrap();
        assert_eq!(*path.last().unwrap(), last);
    }

    #[test]
    fn topmost_lid_rules_block_count() {
        // §VII-C: a single node holding the topmost unicast LID forces the
        // full 768-block LFT onto every switch.
        let (mut t, _) = setup();
        t.subnet.clear_lid(Lid::from_raw(10)).unwrap();
        t.subnet
            .assign_port_lid(t.hosts[5], ib_types::PortNum::new(1), Lid::from_raw(0xBFFF))
            .unwrap();
        let tables = EngineKind::MinHop.build().compute(&t.subnet).unwrap();
        let mut ledger = SmpLedger::new();
        let report = distribute(
            &mut t.subnet,
            t.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut ledger,
        )
        .unwrap();
        assert_eq!(report.max_blocks_per_switch, 768);
    }

    /// Widens the fabric's LID footprint so every switch has several dirty
    /// blocks — enough for drops to split a switch's blocks across passes.
    fn multi_block_setup() -> (ib_subnet::topology::BuiltTopology, RoutingTables) {
        let mut t = two_level(2, 3, 2);
        assign_lids(&mut t);
        t.subnet.clear_lid(Lid::from_raw(10)).unwrap();
        t.subnet
            .assign_port_lid(t.hosts[5], ib_types::PortNum::new(1), Lid::from_raw(300))
            .unwrap();
        let tables = EngineKind::MinHop.build().compute(&t.subnet).unwrap();
        (t, tables)
    }

    #[test]
    fn parallel_planning_is_byte_identical() {
        let (t0, tables) = multi_block_setup();
        let mut reference: Option<(SmpLedger, Vec<(NodeId, Lft)>)> = None;
        for workers in [1usize, 2, 8] {
            let mut subnet = t0.subnet.clone();
            let mut ledger = SmpLedger::new();
            let report = distribute_opts(
                &mut subnet,
                t0.hosts[0],
                &tables,
                SmpMode::Directed,
                &mut ledger,
                SweepOptions::with_workers(workers),
            )
            .unwrap();
            assert!(report.lft_smps > 0);
            let lfts: Vec<(NodeId, Lft)> = subnet
                .physical_switches()
                .map(|s| (s.id, s.lft().unwrap().clone()))
                .collect();
            match &reference {
                None => reference = Some((ledger, lfts)),
                Some((ref_ledger, ref_lfts)) => {
                    assert_eq!(ref_ledger.records(), ledger.records(), "workers={workers}");
                    assert_eq!(ref_lfts, &lfts, "workers={workers}");
                }
            }
        }
    }

    /// Regression: a `distribute_with` + `retry_failed_blocks` sequence,
    /// merged through [`ResumeAccounting`], reproduces the fault-free
    /// report exactly — per-call reports count only blocks applied in that
    /// call, and switches split across passes are neither double-counted in
    /// `switches_updated` nor undercounted in `max_blocks_per_switch`.
    #[test]
    fn resumable_accounting_sums_to_fault_free() {
        // Fault-free baseline.
        let (mut clean, tables) = multi_block_setup();
        let mut ledger0 = SmpLedger::new();
        let mut perfect = SmpTransport::perfect(clean.hosts[0]);
        let (fault_free, none_failed) = distribute_with(
            &mut clean.subnet,
            clean.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut perfect,
            &mut ledger0,
        )
        .unwrap();
        assert!(none_failed.is_empty());
        assert!(
            fault_free.max_blocks_per_switch >= 4,
            "setup must give each switch several blocks"
        );

        // Injected drops: 2 attempts per SMP, 35% per-hop loss.
        let (mut t, tables) = multi_block_setup();
        let mut transport = SmpTransport::lossy(t.hosts[0], 0xD1CE, 0.35, 0);
        transport.retry.max_attempts = 2;
        let mut ledger = SmpLedger::new();
        let mut acct = ResumeAccounting::new();
        let (acct0, mut failed) = push_blocks(
            &mut t.subnet,
            t.hosts[0],
            &tables,
            SmpMode::Directed,
            &mut transport,
            &mut ledger,
            None,
            SweepOptions::default(),
        )
        .unwrap();
        acct.merge(acct0);
        assert!(!failed.is_empty(), "seed must inject at least one drop");
        let mut passes = 0;
        while !failed.is_empty() && passes < 64 {
            let (more, still) = push_blocks(
                &mut t.subnet,
                t.hosts[0],
                &tables,
                SmpMode::Directed,
                &mut transport,
                &mut ledger,
                Some(&failed),
                SweepOptions::default(),
            )
            .unwrap();
            acct.merge(more);
            failed = still;
            passes += 1;
        }
        assert!(failed.is_empty(), "did not converge");
        assert!(passes > 0, "seed must force at least one retry pass");
        // Exact equality on all three fields — the regression this guards.
        assert_eq!(acct.report(), fault_free);
        // And the ledger agrees block for block.
        assert_eq!(ledger.lft_updates(), fault_free.lft_smps);
    }
}
