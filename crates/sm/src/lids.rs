//! LID assignment.
//!
//! Switches are assigned LIDs first, then HCA ports, in discovery order,
//! densely from the bottom of the unicast space — the layout that makes the
//! paper's regular networks consume exactly `nodes + switches` LIDs and
//! `ceil((topmost+1)/64)` LFT blocks per switch (Table I). Each assignment
//! is a `SubnSet(PortInfo)` SMP.

use ib_mad::{Smp, SmpLedger, SmpRouting};
use ib_subnet::{NodeId, Subnet};
use ib_types::{IbResult, Lid, LidSpace, PortNum};

use crate::discovery::DiscoveryResult;

/// Assigns LIDs to every discovered endpoint that lacks one.
///
/// Returns the number of `SubnSet(PortInfo)` SMPs sent. Nodes that already
/// hold LIDs are skipped (a re-sweep must not renumber a live fabric).
pub fn assign_all(
    subnet: &mut Subnet,
    discovery: &DiscoveryResult,
    space: &mut LidSpace,
    ledger: &mut SmpLedger,
) -> IbResult<usize> {
    ledger.begin_phase("lid-assignment");
    let mut sent = 0;

    // Pre-register LIDs that already exist so the allocator cannot hand
    // them out again (idempotent re-runs, prepopulated vSwitch setups).
    for lid in subnet.lids() {
        if !space.is_allocated(lid) {
            space.claim(lid)?;
        }
    }

    // Switches first ...
    for (i, &id) in discovery.nodes.iter().enumerate() {
        if !subnet.node(id).is_switch() {
            continue;
        }
        if subnet.node(id).lids().next().is_some() || subnet.node(id).is_vswitch() {
            // vSwitches share the PF's LID (§V-A: "the vSwitch does not
            // need to occupy an additional LID as it can share the LID
            // with the PF"), so they get none of their own.
            continue;
        }
        let lid = space.allocate()?;
        subnet.assign_switch_lid(id, lid)?;
        record_set(
            subnet,
            ledger,
            id,
            PortNum::MANAGEMENT,
            lid,
            &discovery.routes[i],
        );
        sent += 1;
    }
    // ... then HCA ports.
    for (i, &id) in discovery.nodes.iter().enumerate() {
        if !subnet.node(id).is_hca() {
            continue;
        }
        let ports: Vec<PortNum> = subnet.node(id).connected_ports().map(|(p, _)| p).collect();
        for port in ports {
            if subnet.node(id).ports[port.raw() as usize].lid.is_some() {
                continue;
            }
            let lid = space.allocate()?;
            subnet.assign_port_lid(id, port, lid)?;
            record_set(subnet, ledger, id, port, lid, &discovery.routes[i]);
            sent += 1;
        }
    }
    Ok(sent)
}

fn record_set(
    _subnet: &Subnet,
    ledger: &mut SmpLedger,
    target: NodeId,
    port: PortNum,
    lid: Lid,
    route: &ib_mad::DirectedRoute,
) {
    let smp = Smp::set_port_lid(target, SmpRouting::Directed(route.clone()), port, Some(lid));
    ledger.record(&smp, route.hop_count());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::sweep;
    use ib_subnet::topology::fattree::two_level;

    #[test]
    fn dense_assignment_matches_table1_layout() {
        let mut t = two_level(2, 3, 2);
        let mut ledger = SmpLedger::new();
        let disc = sweep(&t.subnet, t.hosts[0], &mut ledger).unwrap();
        let mut space = LidSpace::new();
        let sent = assign_all(&mut t.subnet, &disc, &mut space, &mut ledger).unwrap();
        // 4 switches + 6 hosts = 10 LIDs, densely 1..=10.
        assert_eq!(sent, 10);
        assert_eq!(t.subnet.num_lids(), 10);
        assert_eq!(t.subnet.topmost_lid().unwrap().raw(), 10);
        assert_eq!(space.in_use(), 10);
        t.subnet.validate(true).unwrap();
    }

    #[test]
    fn idempotent_on_rerun() {
        let mut t = two_level(2, 3, 2);
        let mut ledger = SmpLedger::new();
        let disc = sweep(&t.subnet, t.hosts[0], &mut ledger).unwrap();
        let mut space = LidSpace::new();
        assign_all(&mut t.subnet, &disc, &mut space, &mut ledger).unwrap();
        let sent = assign_all(&mut t.subnet, &disc, &mut space, &mut ledger).unwrap();
        assert_eq!(sent, 0, "re-running must not renumber anything");
        assert_eq!(t.subnet.num_lids(), 10);
    }

    #[test]
    fn preexisting_lids_respected() {
        let mut t = two_level(2, 3, 2);
        // Pin host 0 to LID 7 before bring-up.
        t.subnet
            .assign_port_lid(t.hosts[0], PortNum::new(1), Lid::from_raw(7))
            .unwrap();
        let mut ledger = SmpLedger::new();
        let disc = sweep(&t.subnet, t.hosts[0], &mut ledger).unwrap();
        let mut space = LidSpace::new();
        assign_all(&mut t.subnet, &disc, &mut space, &mut ledger).unwrap();
        // LID 7 still belongs to host 0; nothing else took it.
        let ep = t.subnet.endpoint_of(Lid::from_raw(7)).unwrap();
        assert_eq!(ep.node, t.hosts[0]);
        assert_eq!(t.subnet.num_lids(), 10);
    }

    #[test]
    fn vswitches_share_pf_lid() {
        // linear(2, 2) leaves port 1 of the first switch free for the
        // vSwitch uplink.
        let mut t = ib_subnet::topology::basic::linear(2, 2);
        let vsw = t.subnet.add_vswitch("hyp-vsw", 4);
        let leaf = t.switch_levels[0][0];
        t.subnet.connect_free(leaf, vsw).unwrap();
        let pf = t.subnet.add_hca("pf");
        t.subnet.connect_free(vsw, pf).unwrap();
        let mut ledger = SmpLedger::new();
        let disc = sweep(&t.subnet, t.hosts[0], &mut ledger).unwrap();
        let mut space = LidSpace::new();
        assign_all(&mut t.subnet, &disc, &mut space, &mut ledger).unwrap();
        // The vSwitch itself holds no LID.
        assert!(t.subnet.node(vsw).lids().next().is_none());
        // The PF behind it does.
        assert!(t.subnet.node(pf).lids().next().is_some());
    }
}
