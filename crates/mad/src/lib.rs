//! # ib-mad
//!
//! The subnet-management packet (SMP) layer: packet and attribute types,
//! directed-route versus destination-based (LID-routed) addressing, and the
//! [`SmpLedger`] that records every management packet a subnet manager
//! sends.
//!
//! The ledger is the measurement instrument behind the paper's Table I and
//! the `n·m·(k+r)` cost model of §VI: SMP counts are *recorded* as the SM
//! and the vSwitch reconfiguration actually emit packets, never estimated
//! on the side, so the analytic model can be validated against ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod fault;
pub mod ledger;
pub mod route;
pub mod smp;

pub use cost::CostModel;
pub use fault::{
    one_way_latency_ns, LossyChannel, PerfectChannel, RetryPolicy, SmpChannel, SmpStatus,
    SmpTransport,
};
pub use ledger::{SmpLedger, SmpRecord};
pub use route::{DirectedRoute, SmpRouting};
pub use smp::{AttributeKind, Smp, SmpAttribute, SmpMethod};
