//! SMP delivery faults: outcome model, retry policy, lossy channels, and a
//! retrying transport.
//!
//! The base repo modeled SMP delivery as infallible — every `Set` the SM
//! emitted was assumed applied. Real subnet management is built around the
//! opposite assumption: SMPs are unacknowledged datagrams on VL15 with no
//! flow control, and OpenSM resends after a response timeout. This module
//! supplies the fault plumbing: an [`SmpStatus`] per attempt, a
//! [`RetryPolicy`] with exponential backoff, pluggable [`SmpChannel`]s
//! (perfect or seeded-lossy), and an [`SmpTransport`] that retries, keeps a
//! virtual clock, and writes per-attempt ground truth into the
//! [`SmpLedger`].
//!
//! The transport also consults the subnet itself: an SMP whose path crosses
//! a downed link or a dead switch is *deterministically* lost, independent
//! of the random drop probability. That is what lets the resilient SM and
//! the transactional migration observe mid-operation topology failures.

use ib_subnet::{NodeId, Subnet};
use ib_types::{IbError, IbResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ledger::SmpLedger;
use crate::route::SmpRouting;
use crate::smp::Smp;

/// Ground-truth outcome of one SMP attempt.
///
/// The SM itself cannot distinguish the non-delivered cases — it only ever
/// observes a response timeout — but the simulator records what actually
/// happened so experiments can attribute loss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SmpStatus {
    /// Request delivered and response returned.
    Delivered,
    /// Request lost on the forward path after `hop` link traversals
    /// (either randomly or because the link/switch there is dead).
    Dropped {
        /// Zero-based index of the link where the packet died.
        hop: usize,
    },
    /// Request delivered but the response was lost; the SM times out.
    TimedOut,
}

impl SmpStatus {
    /// Whether the SM got its response.
    #[must_use]
    pub fn is_delivered(self) -> bool {
        matches!(self, Self::Delivered)
    }
}

/// Retry discipline for unacknowledged SMPs: a bounded number of attempts
/// with exponential backoff on the response timeout, mirroring OpenSM's
/// `transaction_timeout` / `transaction_retries` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try + retries). Must be at least 1.
    pub max_attempts: u32,
    /// Response timeout for the first attempt, in nanoseconds of simulated
    /// time.
    pub base_timeout_ns: u64,
    /// Timeout multiplier per retry (1 = constant, 2 = doubling).
    pub backoff: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // 100 µs base timeout — an order of magnitude above the worst-case
        // RTT of the latency model defaults — doubled per retry, 4 tries.
        Self {
            max_attempts: 4,
            base_timeout_ns: 100_000,
            backoff: 2,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, fail fast).
    #[must_use]
    pub fn no_retry() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// The response timeout charged to attempt number `attempt` (0-based).
    #[must_use]
    pub fn timeout_ns(&self, attempt: u32) -> u64 {
        let factor = u64::from(self.backoff).saturating_pow(attempt);
        self.base_timeout_ns.saturating_mul(factor)
    }
}

/// One-way SMP latency in nanoseconds: `hops` link traversals at `k_hop_ns`
/// each, plus `r_hop_ns` per hop of directed-route header processing. A
/// local delivery (`hops == 0`) still pays one hop of processing.
///
/// This is the single latency formula shared by the transport clock here
/// and the event-driven replay in `ib-sim`, so both agree on timings.
#[must_use]
pub fn one_way_latency_ns(k_hop_ns: u64, r_hop_ns: u64, hops: usize, directed: bool) -> u64 {
    let per_hop = k_hop_ns + if directed { r_hop_ns } else { 0 };
    per_hop.saturating_mul(hops.max(1) as u64)
}

/// Decides the fate of individual SMP attempts.
pub trait SmpChannel {
    /// Outcome of one attempt that would traverse `hops` links (path
    /// liveness has already been checked by the transport).
    fn attempt(&mut self, smp: &Smp, hops: usize) -> SmpStatus;

    /// Extra delivery jitter, in nanoseconds, added to a successful RTT.
    fn jitter_ns(&mut self) -> u64 {
        0
    }
}

/// The fault-free channel: every attempt on a live path is delivered.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfectChannel;

impl SmpChannel for PerfectChannel {
    fn attempt(&mut self, _smp: &Smp, _hops: usize) -> SmpStatus {
        SmpStatus::Delivered
    }
}

/// A seeded lossy channel: each link traversal independently drops the
/// packet with `drop_probability`, on both the request and the response
/// path, and successful round trips pick up uniform delivery jitter.
#[derive(Clone, Debug)]
pub struct LossyChannel {
    /// Per-hop, per-direction drop probability in `[0, 1]`.
    pub drop_probability: f64,
    /// Upper bound (exclusive) on per-delivery jitter; 0 disables jitter.
    pub max_jitter_ns: u64,
    rng: StdRng,
}

impl LossyChannel {
    /// A lossy channel with its own deterministic RNG stream.
    #[must_use]
    pub fn new(seed: u64, drop_probability: f64, max_jitter_ns: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_probability),
            "drop probability {drop_probability} out of [0,1]"
        );
        Self {
            drop_probability,
            max_jitter_ns,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// An always-dropping channel — useful for forcing rollback paths.
    #[must_use]
    pub fn black_hole() -> Self {
        Self::new(0, 1.0, 0)
    }
}

impl SmpChannel for LossyChannel {
    fn attempt(&mut self, _smp: &Smp, hops: usize) -> SmpStatus {
        if self.drop_probability == 0.0 {
            return SmpStatus::Delivered;
        }
        for hop in 0..hops.max(1) {
            if self.rng.gen_bool(self.drop_probability) {
                return SmpStatus::Dropped { hop };
            }
        }
        for _ in 0..hops.max(1) {
            if self.rng.gen_bool(self.drop_probability) {
                return SmpStatus::TimedOut;
            }
        }
        SmpStatus::Delivered
    }

    fn jitter_ns(&mut self) -> u64 {
        if self.max_jitter_ns == 0 {
            0
        } else {
            self.rng.gen_range(0..self.max_jitter_ns)
        }
    }
}

/// A retrying SMP sender with a virtual clock.
///
/// `send` walks the packet's path against the *current* subnet (so downed
/// links and dead switches deterministically kill delivery), asks the
/// channel about random loss, records every attempt in the ledger, and
/// advances the clock by the RTT on success or the response timeout on
/// failure. After `retry.max_attempts` consecutive failures it returns
/// [`IbError::Transport`], which is the signal the resilient SM pipeline
/// and the transactional migration react to.
#[derive(Clone, Debug)]
pub struct SmpTransport<C: SmpChannel = PerfectChannel> {
    /// The node SMPs originate from (the SM's HCA).
    pub source: NodeId,
    /// Fault decision-maker.
    pub channel: C,
    /// Retry discipline.
    pub retry: RetryPolicy,
    /// Link traversal cost, matching `ib-sim`'s latency model.
    pub k_hop_ns: u64,
    /// Directed-route per-hop processing cost.
    pub r_hop_ns: u64,
    clock_ns: u64,
}

impl SmpTransport<PerfectChannel> {
    /// A fault-free transport.
    #[must_use]
    pub fn perfect(source: NodeId) -> Self {
        Self::with_channel(source, PerfectChannel)
    }
}

impl SmpTransport<LossyChannel> {
    /// A lossy transport with a seeded drop/jitter stream.
    #[must_use]
    pub fn lossy(source: NodeId, seed: u64, drop_probability: f64, max_jitter_ns: u64) -> Self {
        Self::with_channel(
            source,
            LossyChannel::new(seed, drop_probability, max_jitter_ns),
        )
    }
}

impl<C: SmpChannel> SmpTransport<C> {
    /// A transport over an arbitrary channel, with default retry policy and
    /// the latency-model default hop costs (1 µs per hop, 0.8 µs directed
    /// processing).
    #[must_use]
    pub fn with_channel(source: NodeId, channel: C) -> Self {
        Self {
            source,
            channel,
            retry: RetryPolicy::default(),
            k_hop_ns: 1_000,
            r_hop_ns: 800,
            clock_ns: 0,
        }
    }

    /// Simulated time consumed by all sends so far, in nanoseconds.
    #[must_use]
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Resets the virtual clock (the channel RNG stream is untouched).
    pub fn reset_clock(&mut self) {
        self.clock_ns = 0;
    }

    /// Where the packet's path is broken by the current topology, if
    /// anywhere: the hop index of the first downed link or dead node.
    fn path_break(&self, subnet: &Subnet, smp: &Smp) -> Option<usize> {
        match &smp.routing {
            SmpRouting::Directed(route) => {
                let mut cur = self.source;
                for (i, &port) in route.hops().iter().enumerate() {
                    match subnet.neighbor(cur, port) {
                        Some(ep) if subnet.is_alive(ep.node) => cur = ep.node,
                        _ => return Some(i),
                    }
                }
                None
            }
            SmpRouting::Destination(lid) => {
                // Destination routing rides the installed LFTs; any break
                // (missing entry, downed link, dead hop) surfaces as a
                // trace failure. The exact hop is not needed upstream.
                match subnet.trace_route(self.source, *lid, 64) {
                    Ok(path) if path.iter().all(|&n| subnet.is_alive(n)) => None,
                    _ => Some(0),
                }
            }
        }
    }

    /// Sends one SMP with retries. Returns the 0-based attempt number that
    /// succeeded, or [`IbError::Transport`] after exhausting the policy.
    /// Every attempt lands in the ledger with its ground-truth status.
    pub fn send(
        &mut self,
        subnet: &Subnet,
        smp: &Smp,
        hops: usize,
        ledger: &mut SmpLedger,
    ) -> IbResult<u32> {
        let attempts = self.retry.max_attempts.max(1);
        let mut last = SmpStatus::TimedOut;
        for attempt in 0..attempts {
            let status = match self.path_break(subnet, smp) {
                Some(hop) => SmpStatus::Dropped { hop },
                None => self.channel.attempt(smp, hops),
            };
            ledger.record_attempt(smp, hops, attempt, status);
            if status.is_delivered() {
                let rtt = 2 * one_way_latency_ns(
                    self.k_hop_ns,
                    self.r_hop_ns,
                    hops,
                    smp.routing.is_directed(),
                );
                let jitter = self.channel.jitter_ns();
                self.clock_ns = self.clock_ns.saturating_add(rtt).saturating_add(jitter);
                let observer = ledger.observer();
                if observer.is_enabled() {
                    observer.incr("transport.sends");
                    observer.record("transport.rtt_ns", rtt.saturating_add(jitter));
                }
                return Ok(attempt);
            }
            let timeout = self.retry.timeout_ns(attempt);
            self.clock_ns = self.clock_ns.saturating_add(timeout);
            ledger.observer().add("transport.timeout_wait_ns", timeout);
            last = status;
        }
        let observer = ledger.observer();
        if observer.is_enabled() {
            observer.incr("transport.sends");
            observer.incr("transport.exhausted");
        }
        Err(IbError::Transport(format!(
            "SMP to {} failed after {attempts} attempts (last outcome: {last:?})",
            subnet.name_of(smp.target),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::DirectedRoute;
    use crate::smp::Smp;
    use ib_subnet::Subnet;
    use ib_types::{Lid, PortNum};

    /// sm(hca) -- sw0 -- sw1, switch LIDs 10/11, LFTs installed.
    fn fabric() -> (Subnet, NodeId, NodeId, NodeId) {
        let mut s = Subnet::new();
        let sw0 = s.add_switch("sw0", 4);
        let sw1 = s.add_switch("sw1", 4);
        let sm = s.add_hca("sm");
        s.connect(sw0, PortNum::new(1), sw1, PortNum::new(1))
            .unwrap();
        s.connect(sw0, PortNum::new(2), sm, PortNum::new(1))
            .unwrap();
        s.assign_switch_lid(sw0, Lid::from_raw(10)).unwrap();
        s.assign_switch_lid(sw1, Lid::from_raw(11)).unwrap();
        for sw in [sw0, sw1] {
            let lft = s.lft_mut(sw).unwrap();
            lft.set(Lid::from_raw(10), PortNum::MANAGEMENT);
            lft.set(Lid::from_raw(11), PortNum::new(1));
        }
        s.lft_mut(sw0)
            .unwrap()
            .set(Lid::from_raw(10), PortNum::MANAGEMENT);
        s.lft_mut(sw1)
            .unwrap()
            .set(Lid::from_raw(11), PortNum::MANAGEMENT);
        (s, sm, sw0, sw1)
    }

    fn directed_smp(target: NodeId, hops: Vec<PortNum>) -> Smp {
        Smp::set_lft_block(
            target,
            SmpRouting::Directed(DirectedRoute::from_hops(hops)),
            0,
            &[None; 64],
        )
    }

    #[test]
    fn perfect_transport_delivers_first_try() {
        let (s, sm, sw0, _) = fabric();
        let mut t = SmpTransport::perfect(sm);
        let mut ledger = SmpLedger::new();
        let smp = directed_smp(sw0, vec![PortNum::new(1)]);
        assert_eq!(t.send(&s, &smp, 1, &mut ledger).unwrap(), 0);
        assert_eq!(ledger.total(), 1);
        assert_eq!(ledger.retries(), 0);
        // Directed RTT over 1 hop: 2 * (1000 + 800).
        assert_eq!(t.clock_ns(), 3_600);
    }

    #[test]
    fn black_hole_exhausts_retries() {
        let (s, sm, sw0, _) = fabric();
        let mut t = SmpTransport::with_channel(sm, LossyChannel::black_hole());
        let mut ledger = SmpLedger::new();
        let smp = directed_smp(sw0, vec![PortNum::new(1)]);
        let err = t.send(&s, &smp, 1, &mut ledger).unwrap_err();
        assert!(matches!(err, IbError::Transport(_)));
        assert_eq!(ledger.total(), 4);
        assert_eq!(ledger.delivered(), 0);
        assert_eq!(ledger.retries(), 3);
        // Backoff: 100 + 200 + 400 + 800 µs.
        assert_eq!(t.clock_ns(), 1_500_000);
    }

    #[test]
    fn downed_link_deterministically_drops() {
        let (mut s, sm, sw0, sw1) = fabric();
        let smp = directed_smp(sw1, vec![PortNum::new(1), PortNum::new(1)]);
        let mut t = SmpTransport::perfect(sm);
        let mut ledger = SmpLedger::new();
        t.send(&s, &smp, 2, &mut ledger).unwrap();
        // Kill the trunk: hop 1 (sw0 -> sw1) now breaks.
        s.set_link_down(sw0, PortNum::new(1)).unwrap();
        let err = t.send(&s, &smp, 2, &mut ledger).unwrap_err();
        assert!(matches!(err, IbError::Transport(_)));
        assert!(ledger
            .records()
            .iter()
            .skip(1)
            .all(|r| r.status == SmpStatus::Dropped { hop: 1 }));
    }

    #[test]
    fn destination_routing_checks_lfts() {
        let (mut s, sm, sw0, sw1) = fabric();
        let smp = Smp::set_lft_block(
            sw1,
            SmpRouting::Destination(Lid::from_raw(11)),
            0,
            &[None; 64],
        );
        let mut t = SmpTransport::perfect(sm);
        let mut ledger = SmpLedger::new();
        assert_eq!(t.send(&s, &smp, 2, &mut ledger).unwrap(), 0);
        s.set_link_down(sw0, PortNum::new(1)).unwrap();
        assert!(t.send(&s, &smp, 2, &mut ledger).is_err());
    }

    #[test]
    fn lossy_channel_is_deterministic_per_seed() {
        let smp = directed_smp(NodeId::from_index(0), vec![PortNum::new(1)]);
        let outcomes = |seed: u64| -> Vec<SmpStatus> {
            let mut c = LossyChannel::new(seed, 0.3, 0);
            (0..64).map(|_| c.attempt(&smp, 3)).collect()
        };
        assert_eq!(outcomes(7), outcomes(7));
        assert_ne!(outcomes(7), outcomes(8));
        assert!(outcomes(7).iter().any(|s| !s.is_delivered()));
        assert!(outcomes(7).iter().any(|s| s.is_delivered()));
    }

    #[test]
    fn zero_probability_channel_never_drops() {
        let smp = directed_smp(NodeId::from_index(0), vec![]);
        let mut c = LossyChannel::new(1, 0.0, 0);
        assert!((0..256).all(|_| c.attempt(&smp, 5).is_delivered()));
    }

    #[test]
    fn retry_policy_backoff() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_timeout_ns: 10,
            backoff: 3,
        };
        assert_eq!(p.timeout_ns(0), 10);
        assert_eq!(p.timeout_ns(1), 30);
        assert_eq!(p.timeout_ns(2), 90);
    }

    #[test]
    fn latency_formula() {
        assert_eq!(one_way_latency_ns(1_000, 800, 3, true), 5_400);
        assert_eq!(one_way_latency_ns(1_000, 800, 3, false), 3_000);
        // Local delivery still pays one hop of processing.
        assert_eq!(one_way_latency_ns(1_000, 800, 0, false), 1_000);
    }
}
