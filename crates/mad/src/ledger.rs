//! The SMP ledger: ground-truth accounting of management traffic.

use ib_observe::Observer;
use ib_subnet::NodeId;
use rustc_hash::FxHashMap;

use crate::cost::CostModel;
use crate::fault::SmpStatus;
use crate::smp::{AttributeKind, Smp, SmpMethod};

/// Stable lowercase label for an attribute kind, used in metric names
/// (`smp.kind.<label>`).
fn kind_label(kind: AttributeKind) -> &'static str {
    match kind {
        AttributeKind::NodeInfo => "node_info",
        AttributeKind::SwitchInfo => "switch_info",
        AttributeKind::PortInfo => "port_info",
        AttributeKind::GuidInfo => "guid_info",
        AttributeKind::LftBlock => "lft_block",
        AttributeKind::PKeyTable => "pkey_table",
    }
}

/// Stable label for a delivery outcome (`smp.outcome.<label>`).
fn status_label(status: SmpStatus) -> &'static str {
    match status {
        SmpStatus::Delivered => "delivered",
        SmpStatus::Dropped { .. } => "dropped",
        SmpStatus::TimedOut => "timed_out",
    }
}

/// One recorded SMP attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmpRecord {
    /// Destination node.
    pub target: NodeId,
    /// Get or Set.
    pub method: SmpMethod,
    /// Attribute discriminant.
    pub attribute: AttributeKind,
    /// Whether the packet was directed-routed.
    pub directed: bool,
    /// Link traversals to reach the target (0 for the local node).
    pub hops: usize,
    /// 0 for the first try of an SMP, 1.. for retries of the same SMP.
    pub attempt: u32,
    /// Ground-truth delivery outcome of this attempt.
    pub status: SmpStatus,
}

/// Records every SMP sent during an operation, with phase markers so one
/// ledger can account an entire bring-up (discovery, LID assignment, LFT
/// distribution) or a single live migration.
#[derive(Clone, Debug, Default)]
pub struct SmpLedger {
    records: Vec<SmpRecord>,
    /// (phase name, index of first record in that phase).
    phases: Vec<(String, usize)>,
    /// Metrics sink. Disabled by default: the ledger stays the ground
    /// truth, the observer is a side channel, and the recorded bytes are
    /// identical either way.
    observer: Observer,
}

impl SmpLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty ledger that mirrors every record into `observer`.
    #[must_use]
    pub fn with_observer(observer: Observer) -> Self {
        Self {
            observer,
            ..Self::default()
        }
    }

    /// The metrics sink (disabled unless one was attached).
    #[must_use]
    pub fn observer(&self) -> &Observer {
        &self.observer
    }

    /// Attaches a metrics sink. Already-recorded SMPs are not replayed.
    pub fn set_observer(&mut self, observer: Observer) {
        self.observer = observer;
    }

    /// Marks the start of a named phase; subsequent records belong to it.
    pub fn begin_phase(&mut self, name: impl Into<String>) {
        self.phases.push((name.into(), self.records.len()));
    }

    /// Records one delivered SMP (the fault-free fast path). Equivalent to
    /// [`SmpLedger::record_attempt`] with attempt 0 and
    /// [`SmpStatus::Delivered`], so ledgers built without a fault channel
    /// are byte-identical to ledgers built through a channel that never
    /// fires.
    pub fn record(&mut self, smp: &Smp, hops: usize) {
        self.record_attempt(smp, hops, 0, SmpStatus::Delivered);
    }

    /// Records one SMP attempt with its ground-truth outcome. `hops` is the
    /// measured link-traversal count.
    pub fn record_attempt(&mut self, smp: &Smp, hops: usize, attempt: u32, status: SmpStatus) {
        let kind = smp.attribute.kind();
        self.records.push(SmpRecord {
            target: smp.target,
            method: smp.method,
            attribute: kind,
            directed: smp.routing.is_directed(),
            hops,
            attempt,
            status,
        });
        if self.observer.is_enabled() {
            self.observer.incr("smp.attempts");
            self.observer
                .incr(&format!("smp.outcome.{}", status_label(status)));
            self.observer
                .incr(&format!("smp.kind.{}", kind_label(kind)));
            if attempt > 0 {
                self.observer.incr("smp.retries");
            }
            self.observer.record("smp.attempt_no", u64::from(attempt));
            self.observer.record("smp.hops", hops as u64);
            if let Some((phase, _)) = self.phases.last() {
                self.observer.incr(&format!("phase.{phase}.smps"));
            }
        }
    }

    /// Total SMP attempts recorded (including failed ones).
    #[must_use]
    pub fn total(&self) -> usize {
        self.records.len()
    }

    /// Attempts that reached their target and returned a response.
    #[must_use]
    pub fn delivered(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.status.is_delivered())
            .count()
    }

    /// Retry attempts (attempt number above 0) — the paper's notion of
    /// "extra" SMPs a fault burns beyond the fault-free count.
    #[must_use]
    pub fn retries(&self) -> usize {
        self.records.iter().filter(|r| r.attempt > 0).count()
    }

    /// Attempts lost on the forward path.
    #[must_use]
    pub fn dropped(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.status, SmpStatus::Dropped { .. }))
            .count()
    }

    /// Attempts whose response was lost (SM saw a timeout).
    #[must_use]
    pub fn timed_out(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.status == SmpStatus::TimedOut)
            .count()
    }

    /// *Delivered* SMPs with a given attribute kind.
    #[must_use]
    pub fn count_attribute(&self, kind: AttributeKind) -> usize {
        self.records
            .iter()
            .filter(|r| r.status.is_delivered() && r.attribute == kind)
            .count()
    }

    /// Delivered `SubnSet(LinearForwardingTable)` SMPs — the quantity
    /// Table I reports. Failed attempts are excluded: an update the fabric
    /// never applied is not an update.
    #[must_use]
    pub fn lft_updates(&self) -> usize {
        self.records
            .iter()
            .filter(|r| {
                r.status.is_delivered()
                    && r.attribute == AttributeKind::LftBlock
                    && r.method == SmpMethod::Set
            })
            .count()
    }

    /// Delivered LFT-update SMPs per target switch.
    #[must_use]
    pub fn lft_updates_per_switch(&self) -> FxHashMap<NodeId, usize> {
        let mut map = FxHashMap::default();
        for r in &self.records {
            if r.status.is_delivered()
                && r.attribute == AttributeKind::LftBlock
                && r.method == SmpMethod::Set
            {
                *map.entry(r.target).or_insert(0) += 1;
            }
        }
        map
    }

    /// Number of distinct switches that received LFT updates — the paper's
    /// `n'` (§VI-B: "there are certain cases that 0 < n' < n switches will
    /// need to be updated").
    #[must_use]
    pub fn switches_updated(&self) -> usize {
        self.lft_updates_per_switch().len()
    }

    /// Records in a named phase (last phase with that name).
    #[must_use]
    pub fn phase_records(&self, name: &str) -> &[SmpRecord] {
        let Some(pos) = self.phases.iter().rposition(|(n, _)| n == name) else {
            return &[];
        };
        let start = self.phases[pos].1;
        let end = self
            .phases
            .get(pos + 1)
            .map_or(self.records.len(), |(_, s)| *s);
        &self.records[start..end]
    }

    /// SMPs in a named phase.
    #[must_use]
    pub fn phase_total(&self, name: &str) -> usize {
        self.phase_records(name).len()
    }

    /// All records.
    #[must_use]
    pub fn records(&self) -> &[SmpRecord] {
        &self.records
    }

    /// Serial cost under the paper's constant-`k` model (equation 2-style):
    /// every SMP pays `k`, directed ones pay `k + r`.
    #[must_use]
    pub fn paper_cost_us(&self, model: &CostModel) -> f64 {
        self.records
            .iter()
            .map(|r| model.per_smp_us(r.directed))
            .sum()
    }

    /// Serial cost with per-hop resolution: each SMP pays `hops · k_hop`,
    /// plus `hops · r_hop` if directed (the finer-grained model `ib-sim`
    /// uses; footnote 4 of the paper notes switches nearer the SM are
    /// cheaper to reach).
    #[must_use]
    pub fn per_hop_cost_us(&self, k_hop_us: f64, r_hop_us: f64) -> f64 {
        self.records
            .iter()
            .map(|r| {
                let hops = r.hops as f64;
                hops * k_hop_us + if r.directed { hops * r_hop_us } else { 0.0 }
            })
            .sum()
    }

    /// Clears records and phases. The attached observer (and its
    /// accumulated metrics) is kept: metrics are cumulative across resets.
    pub fn reset(&mut self) {
        self.records.clear();
        self.phases.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{DirectedRoute, SmpRouting};
    use ib_types::{Lid, PortNum};

    fn lft_smp(target: usize, directed: bool, block: usize) -> Smp {
        let routing = if directed {
            SmpRouting::Directed(DirectedRoute::from_hops(vec![PortNum::new(1)]))
        } else {
            SmpRouting::Destination(Lid::from_raw(1))
        };
        Smp::set_lft_block(NodeId::from_index(target), routing, block, &[None; 64])
    }

    #[test]
    fn counts_by_kind_and_switch() {
        let mut ledger = SmpLedger::new();
        ledger.record(&lft_smp(0, true, 0), 2);
        ledger.record(&lft_smp(0, true, 1), 2);
        ledger.record(&lft_smp(1, false, 0), 3);
        let port_smp = Smp::set_port_lid(
            NodeId::from_index(2),
            SmpRouting::Directed(DirectedRoute::local()),
            PortNum::new(1),
            Some(Lid::from_raw(5)),
        );
        ledger.record(&port_smp, 0);

        assert_eq!(ledger.total(), 4);
        assert_eq!(ledger.lft_updates(), 3);
        assert_eq!(ledger.count_attribute(AttributeKind::PortInfo), 1);
        assert_eq!(ledger.switches_updated(), 2);
        let per = ledger.lft_updates_per_switch();
        assert_eq!(per[&NodeId::from_index(0)], 2);
        assert_eq!(per[&NodeId::from_index(1)], 1);
    }

    #[test]
    fn phases_partition_records() {
        let mut ledger = SmpLedger::new();
        ledger.begin_phase("discovery");
        ledger.record(&lft_smp(0, true, 0), 1);
        ledger.begin_phase("distribution");
        ledger.record(&lft_smp(0, true, 1), 1);
        ledger.record(&lft_smp(1, true, 0), 2);
        assert_eq!(ledger.phase_total("discovery"), 1);
        assert_eq!(ledger.phase_total("distribution"), 2);
        assert_eq!(ledger.phase_total("missing"), 0);
    }

    #[test]
    fn paper_cost_reflects_routing_mode() {
        let model = CostModel {
            k_us: 5.0,
            r_us: 4.0,
        };
        let mut ledger = SmpLedger::new();
        ledger.record(&lft_smp(0, true, 0), 2);
        ledger.record(&lft_smp(1, false, 0), 2);
        assert!((ledger.paper_cost_us(&model) - 14.0).abs() < 1e-9);
        // Per-hop model: directed 2*(1+0.5), destination 2*1.
        assert!((ledger.per_hop_cost_us(1.0, 0.5) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn observer_mirrors_ledger_counts() {
        use ib_observe::{FakeClock, Observer};

        let obs = Observer::with_clock(Box::new(FakeClock::new()));
        let mut ledger = SmpLedger::with_observer(obs.clone());
        ledger.begin_phase("bring-up");
        ledger.record(&lft_smp(0, true, 0), 2);
        ledger.record_attempt(&lft_smp(0, true, 1), 2, 0, SmpStatus::Dropped { hop: 1 });
        ledger.record_attempt(&lft_smp(0, true, 1), 2, 1, SmpStatus::Delivered);

        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.counter("smp.attempts"), ledger.total() as u64);
        assert_eq!(snap.counter("smp.retries"), ledger.retries() as u64);
        assert_eq!(
            snap.counter("smp.outcome.delivered"),
            ledger.delivered() as u64
        );
        assert_eq!(snap.counter("smp.outcome.dropped"), ledger.dropped() as u64);
        assert_eq!(snap.counter("smp.kind.lft_block"), 3);
        assert_eq!(
            snap.counter("phase.bring-up.smps"),
            ledger.phase_total("bring-up") as u64
        );
        let hops = snap.histogram("smp.hops").unwrap();
        assert_eq!(hops.count, 3);
        assert_eq!(hops.sum, 6);
    }

    #[test]
    fn disabled_observer_leaves_records_identical() {
        let mut plain = SmpLedger::new();
        let mut observed = SmpLedger::with_observer(ib_observe::Observer::disabled());
        for ledger in [&mut plain, &mut observed] {
            ledger.begin_phase("p");
            ledger.record(&lft_smp(0, true, 0), 1);
        }
        assert_eq!(plain.records(), observed.records());
        assert!(!observed.observer().is_enabled());
    }

    #[test]
    fn reset_clears_everything() {
        let mut ledger = SmpLedger::new();
        ledger.begin_phase("p");
        ledger.record(&lft_smp(0, true, 0), 1);
        ledger.reset();
        assert_eq!(ledger.total(), 0);
        assert_eq!(ledger.phase_total("p"), 0);
    }
}
