//! The §VI analytic cost model.
//!
//! * Equation 1: `RCt = PCt + LFTDt`
//! * Equation 2: `LFTDt = n · m · (k + r)` (no pipelining)
//! * Equation 3: `RCt = PCt + n · m · (k + r)`
//! * Equation 4: `vSwitch_RCt = n' · m' · (k + r)`
//! * Equation 5: `vSwitch_RCt = n' · m' · k` (destination-routed SMPs)
//!
//! where `n` = switches updated, `m` = LFT blocks per switch, `k` = mean
//! network traversal time per SMP, `r` = mean directed-route processing
//! overhead per SMP.

/// Parameters of the SMP cost model. Times are in microseconds; the paper
/// treats `k` and `r` as topology-averaged constants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Mean time for one SMP to traverse the network to its switch (µs).
    pub k_us: f64,
    /// Mean extra time added per SMP by directed-route processing (µs).
    pub r_us: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Defaults in the ballpark of QDR IB management latencies: a few µs
        // of fabric traversal, and directed routing roughly doubling it.
        Self {
            k_us: 5.0,
            r_us: 4.0,
        }
    }
}

impl CostModel {
    /// Cost of one SMP (µs) under this model.
    #[must_use]
    pub fn per_smp_us(&self, directed: bool) -> f64 {
        if directed {
            self.k_us + self.r_us
        } else {
            self.k_us
        }
    }

    /// Equation 2/3's distribution term `n · m · (k + r)` in µs.
    #[must_use]
    pub fn full_distribution_us(&self, switches: usize, blocks_per_switch: usize) -> f64 {
        (switches * blocks_per_switch) as f64 * self.per_smp_us(true)
    }

    /// Equation 3: full traditional reconfiguration in µs, given a measured
    /// or modeled path-computation time.
    #[must_use]
    pub fn traditional_reconfig_us(
        &self,
        path_computation_us: f64,
        switches: usize,
        blocks_per_switch: usize,
    ) -> f64 {
        path_computation_us + self.full_distribution_us(switches, blocks_per_switch)
    }

    /// Equation 4: vSwitch reconfiguration with directed-routed SMPs, in µs.
    /// `m_prime` is 1 or 2 per §VI-B.
    #[must_use]
    pub fn vswitch_reconfig_directed_us(&self, switches_updated: usize, m_prime: usize) -> f64 {
        debug_assert!(m_prime == 1 || m_prime == 2);
        (switches_updated * m_prime) as f64 * self.per_smp_us(true)
    }

    /// Equation 5: vSwitch reconfiguration with destination-routed SMPs —
    /// `r` eliminated — in µs.
    #[must_use]
    pub fn vswitch_reconfig_destination_us(&self, switches_updated: usize, m_prime: usize) -> f64 {
        debug_assert!(m_prime == 1 || m_prime == 2);
        (switches_updated * m_prime) as f64 * self.per_smp_us(false)
    }

    /// Distribution time when the SM pipelines SMPs `depth`-deep (§VI-B's
    /// closing remark): the serial cost divides by the pipeline depth,
    /// floored at the cost of a single directed SMP — but never above the
    /// serial cost itself, since a distribution cheaper than one model SMP
    /// (e.g. an empty or sub-SMP workload) cannot be made *slower* by
    /// pipelining. A `depth` of 0 is treated as no pipelining (depth 1).
    #[must_use]
    pub fn pipelined_us(&self, serial_us: f64, depth: usize) -> f64 {
        let depth = depth.max(1) as f64;
        (serial_us / depth).max(self.per_smp_us(true).min(serial_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL: CostModel = CostModel {
        k_us: 5.0,
        r_us: 4.0,
    };

    #[test]
    fn per_smp_distinguishes_routing() {
        assert_eq!(MODEL.per_smp_us(true), 9.0);
        assert_eq!(MODEL.per_smp_us(false), 5.0);
    }

    #[test]
    fn equation3_sums_terms() {
        // 36 switches * 6 blocks * 9 µs + PCt.
        let rc = MODEL.traditional_reconfig_us(12_000.0, 36, 6);
        assert!((rc - (12_000.0 + 216.0 * 9.0)).abs() < 1e-9);
    }

    #[test]
    fn equation4_vs_equation5() {
        let e4 = MODEL.vswitch_reconfig_directed_us(10, 2);
        let e5 = MODEL.vswitch_reconfig_destination_us(10, 2);
        assert!(e5 < e4);
        assert!((e4 - 180.0).abs() < 1e-9);
        assert!((e5 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn vswitch_always_beats_full_distribution() {
        // For any subnet with >= 1 block per switch, n'·m'·k <= n·m·(k+r).
        for n in [1usize, 36, 1620] {
            for m in [1usize, 6, 208] {
                let full = MODEL.full_distribution_us(n, m);
                let vsw = MODEL.vswitch_reconfig_destination_us(n, 2.min(m.max(1)));
                assert!(vsw <= full, "n={n} m={m}");
            }
        }
    }

    #[test]
    fn pipelining_never_below_single_smp() {
        let serial = MODEL.full_distribution_us(36, 6);
        let piped = MODEL.pipelined_us(serial, 1_000_000);
        assert!(piped >= MODEL.per_smp_us(true));
        assert!(MODEL.pipelined_us(serial, 4) < serial);
        assert_eq!(MODEL.pipelined_us(serial, 0), MODEL.pipelined_us(serial, 1));
    }

    #[test]
    fn pipelining_depth_zero_is_no_pipelining() {
        // depth 0 must behave exactly like depth 1 for any workload size.
        for serial in [0.0, 3.0, 9.0, 1944.0] {
            assert_eq!(MODEL.pipelined_us(serial, 0), MODEL.pipelined_us(serial, 1));
            assert_eq!(MODEL.pipelined_us(serial, 1), serial.max(0.0));
        }
    }

    #[test]
    fn pipelining_never_exceeds_serial_cost() {
        // A workload cheaper than one model SMP (serial < k + r = 9 µs)
        // stays at its serial cost: pipelining cannot slow it down to the
        // single-SMP floor.
        let tiny = 3.0;
        assert!(tiny < MODEL.per_smp_us(true));
        for depth in [0usize, 1, 2, 64] {
            assert_eq!(MODEL.pipelined_us(tiny, depth), tiny);
        }
        assert_eq!(MODEL.pipelined_us(0.0, 16), 0.0);
        // At or above one SMP of serial work the floor is per_smp_us(true).
        assert_eq!(MODEL.pipelined_us(9.0, 1_000), MODEL.per_smp_us(true));
    }
}
