//! SMP addressing: directed routes and destination (LID) routing.
//!
//! OpenSM uses directed routing for all SMPs because it must work before any
//! LFT exists (initial discovery) and while routes are in flux. §VI-B of the
//! paper observes that during a vSwitch live migration the *switch* LIDs are
//! untouched, so destination-based routing can address the switches and the
//! per-hop directed-route processing overhead `r` disappears from the cost
//! model (equation 5).

use std::collections::VecDeque;

use ib_subnet::{NodeId, Subnet};
use ib_types::{Lid, PortNum};

/// An explicit hop-by-hop source route: the sequence of output ports taken
/// from the SM's node to the target.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DirectedRoute {
    hops: Vec<PortNum>,
}

impl DirectedRoute {
    /// The empty route (target is the local node).
    #[must_use]
    pub fn local() -> Self {
        Self::default()
    }

    /// A route from an explicit port list.
    #[must_use]
    pub fn from_hops(hops: Vec<PortNum>) -> Self {
        Self { hops }
    }

    /// The output-port sequence.
    #[must_use]
    pub fn hops(&self) -> &[PortNum] {
        &self.hops
    }

    /// Number of link traversals.
    #[must_use]
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// Computes a shortest directed route from `from` to `to` by BFS over
    /// the physical graph. Returns `None` if unreachable.
    #[must_use]
    pub fn compute(subnet: &Subnet, from: NodeId, to: NodeId) -> Option<Self> {
        if from == to {
            return Some(Self::local());
        }
        let mut prev: Vec<Option<(NodeId, PortNum)>> = vec![None; subnet.num_nodes()];
        let mut seen = vec![false; subnet.num_nodes()];
        let mut queue = VecDeque::new();
        seen[from.index()] = true;
        queue.push_back(from);
        while let Some(id) = queue.pop_front() {
            for (out_port, remote) in subnet.node(id).connected_ports() {
                if !seen[remote.node.index()] {
                    seen[remote.node.index()] = true;
                    prev[remote.node.index()] = Some((id, out_port));
                    if remote.node == to {
                        // Reconstruct the port sequence.
                        let mut rev = Vec::new();
                        let mut cur = to;
                        while cur != from {
                            let (p_node, p_port) = prev[cur.index()].expect("BFS parent chain");
                            rev.push(p_port);
                            cur = p_node;
                        }
                        rev.reverse();
                        return Some(Self::from_hops(rev));
                    }
                    queue.push_back(remote.node);
                }
            }
        }
        None
    }

    /// Walks the route from `from` and returns the node it lands on, or
    /// `None` if a hop points at an uncabled port.
    #[must_use]
    pub fn resolve(&self, subnet: &Subnet, from: NodeId) -> Option<NodeId> {
        let mut cur = from;
        for &port in &self.hops {
            cur = subnet.neighbor(cur, port)?.node;
        }
        Some(cur)
    }
}

/// How an SMP is addressed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SmpRouting {
    /// Source-routed hop by hop; every intermediate switch must process and
    /// rewrite the packet header (hop pointer, return path) — the paper's
    /// per-SMP overhead `r`.
    Directed(DirectedRoute),
    /// Destination-routed to a LID through the existing LFTs; forwarded in
    /// the data path with no header rewriting.
    Destination(Lid),
}

impl SmpRouting {
    /// Whether the packet pays the directed-route processing overhead.
    #[must_use]
    pub fn is_directed(&self) -> bool {
        matches!(self, Self::Directed(_))
    }

    /// Link traversals for cost accounting: directed routes know their
    /// length; destination routes are measured against the subnet by the
    /// ledger at record time.
    #[must_use]
    pub fn known_hop_count(&self) -> Option<usize> {
        match self {
            Self::Directed(r) => Some(r.hop_count()),
            Self::Destination(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_subnet::topology::basic::linear;

    #[test]
    fn bfs_route_reaches_target() {
        let t = linear(4, 1);
        let s = &t.subnet;
        let first = t.switch_levels[0][0];
        let last = t.switch_levels[0][3];
        let route = DirectedRoute::compute(s, first, last).unwrap();
        assert_eq!(route.hop_count(), 3);
        assert_eq!(route.resolve(s, first), Some(last));
    }

    #[test]
    fn route_to_self_is_empty() {
        let t = linear(2, 1);
        let sw = t.switch_levels[0][0];
        let route = DirectedRoute::compute(&t.subnet, sw, sw).unwrap();
        assert_eq!(route.hop_count(), 0);
        assert_eq!(route.resolve(&t.subnet, sw), Some(sw));
    }

    #[test]
    fn unreachable_is_none() {
        let mut s = Subnet::new();
        let a = s.add_switch("a", 2);
        let b = s.add_switch("b", 2);
        assert!(DirectedRoute::compute(&s, a, b).is_none());
    }

    #[test]
    fn resolve_rejects_bad_hops() {
        let t = linear(2, 1);
        let sw = t.switch_levels[0][0];
        let bogus = DirectedRoute::from_hops(vec![PortNum::new(7)]);
        assert_eq!(bogus.resolve(&t.subnet, sw), None);
    }

    #[test]
    fn routing_kind_flags() {
        assert!(SmpRouting::Directed(DirectedRoute::local()).is_directed());
        assert!(!SmpRouting::Destination(Lid::from_raw(1)).is_directed());
        assert_eq!(
            SmpRouting::Directed(DirectedRoute::from_hops(vec![PortNum::new(1)])).known_hop_count(),
            Some(1)
        );
        assert_eq!(
            SmpRouting::Destination(Lid::from_raw(1)).known_hop_count(),
            None
        );
    }
}
