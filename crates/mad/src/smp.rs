//! Subnet Management Packets and their attributes.

use ib_subnet::NodeId;
use ib_types::{Guid, Lid, PortNum, LFT_BLOCK_SIZE};

use crate::route::SmpRouting;

/// SMP method: query or mutate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SmpMethod {
    /// `SubnGet` — read an attribute.
    Get,
    /// `SubnSet` — write an attribute.
    Set,
}

/// The management attribute an SMP carries.
///
/// This is the subset of IBA attributes the simulator needs; each variant
/// corresponds to a real `SubnGet`/`SubnSet` attribute and carries exactly
/// the state that attribute moves.
#[derive(Clone, Debug, PartialEq)]
pub enum SmpAttribute {
    /// `NodeInfo` — discovery: node type, GUID, port count.
    NodeInfo,
    /// `SwitchInfo` — discovery: LFT capacity etc.
    SwitchInfo,
    /// `PortInfo` — read port state, or assign a LID on `Set`.
    PortInfo {
        /// LID to assign (for `Set`); `None` on `Get` or to clear.
        lid: Option<Lid>,
        /// The port the attribute addresses.
        port: PortNum,
    },
    /// `GUIDInfo` — read or set virtual GUIDs on an HCA port (the vGUID
    /// migration step of §V-C(a)).
    GuidInfo {
        /// vGUID to install; `None` clears.
        guid: Option<Guid>,
        /// GUID table index.
        index: u8,
    },
    /// `LinearForwardingTable` — one 64-entry LFT block.
    LftBlock {
        /// Block index.
        block: usize,
        /// 64 forwarding entries (`None` = unreachable).
        payload: Vec<Option<PortNum>>,
    },
    /// `P_KeyTable` — the partition keys programmed on an HCA port.
    PKeyTable {
        /// The port the table belongs to.
        port: PortNum,
        /// Keys installed (raw 16-bit values).
        keys: Vec<u16>,
    },
}

impl SmpAttribute {
    /// Builds an LFT-block payload attribute, checking the payload length.
    ///
    /// # Panics
    /// Panics if `payload` is not exactly 64 entries long.
    #[must_use]
    pub fn lft_block(block: usize, payload: &[Option<PortNum>]) -> Self {
        assert_eq!(
            payload.len(),
            LFT_BLOCK_SIZE,
            "an LFT SMP carries exactly one 64-entry block"
        );
        Self::LftBlock {
            block,
            payload: payload.to_vec(),
        }
    }

    /// The discriminant-only kind, for ledger bucketing.
    #[must_use]
    pub fn kind(&self) -> AttributeKind {
        match self {
            Self::NodeInfo => AttributeKind::NodeInfo,
            Self::SwitchInfo => AttributeKind::SwitchInfo,
            Self::PortInfo { .. } => AttributeKind::PortInfo,
            Self::GuidInfo { .. } => AttributeKind::GuidInfo,
            Self::LftBlock { .. } => AttributeKind::LftBlock,
            Self::PKeyTable { .. } => AttributeKind::PKeyTable,
        }
    }
}

/// Attribute discriminants for counting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttributeKind {
    /// `NodeInfo`.
    NodeInfo,
    /// `SwitchInfo`.
    SwitchInfo,
    /// `PortInfo`.
    PortInfo,
    /// `GUIDInfo`.
    GuidInfo,
    /// `LinearForwardingTable`.
    LftBlock,
    /// `P_KeyTable`.
    PKeyTable,
}

/// A subnet management packet.
#[derive(Clone, Debug, PartialEq)]
pub struct Smp {
    /// Get or Set.
    pub method: SmpMethod,
    /// What the packet reads or writes.
    pub attribute: SmpAttribute,
    /// How the packet is addressed (directed-route or LID-routed).
    pub routing: SmpRouting,
    /// The node the packet is destined for (model-level bookkeeping; the
    /// wire carries only the routing information).
    pub target: NodeId,
}

impl Smp {
    /// A `SubnSet(LinearForwardingTable)` update for one block.
    #[must_use]
    pub fn set_lft_block(
        target: NodeId,
        routing: SmpRouting,
        block: usize,
        payload: &[Option<PortNum>],
    ) -> Self {
        Self {
            method: SmpMethod::Set,
            attribute: SmpAttribute::lft_block(block, payload),
            routing,
            target,
        }
    }

    /// A `SubnSet(PortInfo)` LID assignment.
    #[must_use]
    pub fn set_port_lid(
        target: NodeId,
        routing: SmpRouting,
        port: PortNum,
        lid: Option<Lid>,
    ) -> Self {
        Self {
            method: SmpMethod::Set,
            attribute: SmpAttribute::PortInfo { lid, port },
            routing,
            target,
        }
    }

    /// A `SubnSet(GUIDInfo)` vGUID installation.
    #[must_use]
    pub fn set_vguid(target: NodeId, routing: SmpRouting, index: u8, guid: Option<Guid>) -> Self {
        Self {
            method: SmpMethod::Set,
            attribute: SmpAttribute::GuidInfo { guid, index },
            routing,
            target,
        }
    }

    /// A `SubnSet(P_KeyTable)` partition-table install.
    #[must_use]
    pub fn set_pkey_table(
        target: NodeId,
        routing: SmpRouting,
        port: PortNum,
        keys: Vec<u16>,
    ) -> Self {
        Self {
            method: SmpMethod::Set,
            attribute: SmpAttribute::PKeyTable { port, keys },
            routing,
            target,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::DirectedRoute;

    #[test]
    fn lft_block_payload_length_enforced() {
        let payload = vec![None; LFT_BLOCK_SIZE];
        let attr = SmpAttribute::lft_block(3, &payload);
        assert_eq!(attr.kind(), AttributeKind::LftBlock);
    }

    #[test]
    #[should_panic(expected = "64-entry")]
    fn short_payload_panics() {
        let payload = vec![None; 10];
        let _ = SmpAttribute::lft_block(0, &payload);
    }

    #[test]
    fn constructors_fill_fields() {
        let target = NodeId::from_index(4);
        let smp = Smp::set_port_lid(
            target,
            SmpRouting::Directed(DirectedRoute::local()),
            PortNum::new(1),
            Some(Lid::from_raw(9)),
        );
        assert_eq!(smp.method, SmpMethod::Set);
        assert_eq!(smp.attribute.kind(), AttributeKind::PortInfo);
        assert_eq!(smp.target, target);
    }
}
