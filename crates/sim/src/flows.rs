//! Flow-level connectivity checking through installed LFTs.

use ib_subnet::{NodeId, Subnet};
use ib_types::Lid;

/// A set of unidirectional flows `(source node, destination LID)`.
#[derive(Clone, Debug, Default)]
pub struct FlowSet {
    flows: Vec<(NodeId, Lid)>,
}

impl FlowSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one flow.
    pub fn add(&mut self, src: NodeId, dst: Lid) {
        self.flows.push((src, dst));
    }

    /// All-pairs flows between the given endpoints (`src != dst`).
    #[must_use]
    pub fn all_pairs(subnet: &Subnet, endpoints: &[(NodeId, Lid)]) -> Self {
        let mut flows = Vec::new();
        for &(src, _) in endpoints {
            for &(dst_node, dst_lid) in endpoints {
                if src != dst_node {
                    flows.push((src, dst_lid));
                }
            }
        }
        let _ = subnet;
        Self { flows }
    }

    /// Number of flows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether there are no flows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Walks every flow through the subnet's installed LFTs.
    #[must_use]
    pub fn check(&self, subnet: &Subnet) -> FlowReport {
        let mut report = FlowReport::default();
        for &(src, dst) in &self.flows {
            match subnet.trace_route(src, dst, 64) {
                Ok(path) => {
                    let delivered = subnet
                        .endpoint_of(dst)
                        .is_some_and(|ep| path.last().is_some_and(|&terminal| ep.node == terminal));
                    if delivered {
                        report.delivered += 1;
                        report.total_hops += path.len() - 1;
                        report.max_hops = report.max_hops.max(path.len() - 1);
                    } else {
                        report.misdelivered += 1;
                        report.failures.push((src, dst));
                    }
                }
                Err(e) => {
                    if e.to_string().contains("dropped") {
                        report.dropped += 1;
                    } else {
                        report.undeliverable += 1;
                    }
                    report.failures.push((src, dst));
                }
            }
        }
        report
    }
}

/// Outcome of checking a flow set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlowReport {
    /// Flows that reached the right endpoint.
    pub delivered: usize,
    /// Flows that arrived somewhere else.
    pub misdelivered: usize,
    /// Flows discarded at a drop (port 255) entry — the §VI-C
    /// partially-static window.
    pub dropped: usize,
    /// Flows that could not be forwarded (missing entry, loop, uncabled).
    pub undeliverable: usize,
    /// Link traversals summed over delivered flows.
    pub total_hops: usize,
    /// Longest delivered path.
    pub max_hops: usize,
    /// The failing flows.
    pub failures: Vec<(NodeId, Lid)>,
}

impl FlowReport {
    /// Whether every flow was delivered.
    #[must_use]
    pub fn all_delivered(&self) -> bool {
        self.misdelivered == 0 && self.dropped == 0 && self.undeliverable == 0
    }

    /// Mean hop count of delivered flows.
    #[must_use]
    pub fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_sm::{SmConfig, SubnetManager};
    use ib_subnet::topology::fattree::two_level;
    use ib_types::PortNum;

    fn fabric() -> ib_subnet::topology::BuiltTopology {
        let mut t = two_level(2, 3, 2);
        let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
        sm.bring_up(&mut t.subnet).unwrap();
        t
    }

    fn endpoints(t: &ib_subnet::topology::BuiltTopology) -> Vec<(NodeId, Lid)> {
        t.hosts
            .iter()
            .map(|&h| (h, t.subnet.node(h).ports[1].lid.unwrap()))
            .collect()
    }

    #[test]
    fn all_pairs_delivered_after_bring_up() {
        let t = fabric();
        let eps = endpoints(&t);
        let flows = FlowSet::all_pairs(&t.subnet, &eps);
        assert_eq!(flows.len(), 30);
        let report = flows.check(&t.subnet);
        assert!(report.all_delivered(), "{report:?}");
        assert!(report.mean_hops() >= 2.0);
        assert!(report.max_hops <= 4);
    }

    #[test]
    fn dropped_flows_classified() {
        let mut t = fabric();
        let eps = endpoints(&t);
        // Drop the first host's LID on both leaves.
        let lid = eps[0].1;
        for leaf in t.switch_levels[0].clone() {
            t.subnet.lft_mut(leaf).unwrap().set(lid, PortNum::DROP);
        }
        let mut flows = FlowSet::new();
        flows.add(eps[5].0, lid);
        let report = flows.check(&t.subnet);
        assert_eq!(report.dropped, 1);
        assert!(!report.all_delivered());
        assert_eq!(report.failures.len(), 1);
    }

    #[test]
    fn missing_entry_is_undeliverable() {
        let mut t = fabric();
        let eps = endpoints(&t);
        let lid = eps[0].1;
        for sw in t
            .subnet
            .physical_switches()
            .map(|n| n.id)
            .collect::<Vec<_>>()
        {
            t.subnet.lft_mut(sw).unwrap().clear(lid);
        }
        let mut flows = FlowSet::new();
        flows.add(eps[3].0, lid);
        let report = flows.check(&t.subnet);
        assert_eq!(report.undeliverable, 1);
    }
}
