//! End-to-end live-migration downtime timelines.
//!
//! §II-A and the Guay et al. references put SR-IOV live-migration downtime
//! in the *seconds* because the VF must be detached before and re-attached
//! after the move, and §VI argues the network reconfiguration term must not
//! add minutes of path recomputation on top. The timeline model composes:
//!
//! ```text
//! downtime = detach + max(resume-side work) + attach
//!            where the resume-side work overlaps the memory copy only
//!            partially: reconfiguration starts when the SM is signalled.
//! ```

use ib_observe::Observer;

use crate::des::SimTime;
use crate::smp_sim::{SmpLatencyModel, SmpReplay};

/// Parameters of the migration timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DowntimeModel {
    /// Detaching the SR-IOV VF from the running VM (driver unbind).
    pub detach: SimTime,
    /// Re-attaching a VF at the destination (driver probe).
    pub attach: SimTime,
    /// Final stop-and-copy round of the live migration.
    pub stop_and_copy: SimTime,
    /// Latency parameters for replaying the reconfiguration SMPs.
    pub smp: SmpLatencyModel,
    /// Path-computation time charged before any SMP can be sent (zero for
    /// the vSwitch method; minutes for a traditional reconfiguration).
    pub path_computation: SimTime,
}

impl Default for DowntimeModel {
    fn default() -> Self {
        Self {
            // §II-A: direct-device-assignment migration downtime is in the
            // order of seconds; the detach/attach pair dominates.
            detach: SimTime::from_us(400_000.0),
            attach: SimTime::from_us(600_000.0),
            stop_and_copy: SimTime::from_us(30_000.0),
            smp: SmpLatencyModel::default(),
            path_computation: SimTime::ZERO,
        }
    }
}

/// A computed migration timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct MigrationTimeline {
    /// Named phases with their durations, in order.
    pub phases: Vec<(String, SimTime)>,
    /// Total VM downtime.
    pub downtime: SimTime,
    /// The network-reconfiguration share of the downtime.
    pub reconfiguration: SimTime,
}

impl MigrationTimeline {
    /// Composes the timeline for a migration whose reconfiguration sent
    /// the given `(hops, directed)` SMPs.
    #[must_use]
    pub fn compose(model: &DowntimeModel, smps: &[(usize, bool)]) -> Self {
        let replay = SmpReplay::run_records(smps, &model.smp);
        let reconfiguration = model.path_computation + replay.makespan;
        let phases = vec![
            ("detach-vf".to_string(), model.detach),
            ("stop-and-copy".to_string(), model.stop_and_copy),
            ("reconfigure-network".to_string(), reconfiguration),
            ("attach-vf".to_string(), model.attach),
        ];
        let downtime = phases.iter().fold(SimTime::ZERO, |acc, (_, d)| acc + *d);
        Self {
            phases,
            downtime,
            reconfiguration,
        }
    }

    /// Like [`Self::compose`], but mirrors every phase duration into
    /// `observer` as `downtime.phase.{name}_ns` histograms, plus the
    /// `downtime.total_ns` and `downtime.reconfiguration_ns` aggregates —
    /// one observation per composed migration, so the histograms read as
    /// per-migration downtime distributions across a whole experiment.
    #[must_use]
    pub fn compose_observed(
        model: &DowntimeModel,
        smps: &[(usize, bool)],
        observer: &Observer,
    ) -> Self {
        let timeline = Self::compose(model, smps);
        if observer.is_enabled() {
            for (name, duration) in &timeline.phases {
                observer.record(&format!("downtime.phase.{name}_ns"), duration.as_ns());
            }
            observer.record("downtime.total_ns", timeline.downtime.as_ns());
            observer.record(
                "downtime.reconfiguration_ns",
                timeline.reconfiguration.as_ns(),
            );
        }
        timeline
    }

    /// The reconfiguration share of total downtime, in `[0, 1]`.
    #[must_use]
    pub fn reconfiguration_share(&self) -> f64 {
        if self.downtime.as_ns() == 0 {
            return 0.0;
        }
        self.reconfiguration.as_ns() as f64 / self.downtime.as_ns() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vswitch_reconfig_is_negligible_share() {
        // One SMP, three hops: the vSwitch best case.
        let model = DowntimeModel::default();
        let timeline = MigrationTimeline::compose(&model, &[(3, false)]);
        assert!(timeline.reconfiguration_share() < 0.001);
        assert_eq!(timeline.phases.len(), 4);
    }

    #[test]
    fn traditional_reconfig_dominates() {
        // Minutes of path computation swamp the timeline (§VI-B: "it would
        // take several minutes to complete").
        let model = DowntimeModel {
            path_computation: SimTime::from_us(60_000_000.0), // 60 s
            ..DowntimeModel::default()
        };
        let smps: Vec<(usize, bool)> = vec![(3, true); 336_960]; // Table I worst row
        let timeline = MigrationTimeline::compose(&model, &smps);
        assert!(timeline.reconfiguration_share() > 0.9);
        assert!(timeline.downtime > SimTime::from_us(60_000_000.0));
    }

    #[test]
    fn observed_compose_matches_plain_and_records_phases() {
        let model = DowntimeModel::default();
        let observer = Observer::with_clock(Box::new(ib_observe::FakeClock::new()));
        let observed = MigrationTimeline::compose_observed(&model, &[(3, false)], &observer);
        let plain = MigrationTimeline::compose(&model, &[(3, false)]);
        assert_eq!(observed, plain, "observation must not change the model");

        let snap = observer.snapshot().unwrap();
        let total = snap.histogram("downtime.total_ns").unwrap();
        assert_eq!(total.count, 1);
        assert_eq!(total.sum, plain.downtime.as_ns());
        let detach = snap.histogram("downtime.phase.detach-vf_ns").unwrap();
        assert_eq!(detach.sum, model.detach.as_ns());
        assert_eq!(
            snap.histogram("downtime.reconfiguration_ns").unwrap().sum,
            plain.reconfiguration.as_ns()
        );
    }

    #[test]
    fn downtime_sums_phases() {
        let model = DowntimeModel::default();
        let t = MigrationTimeline::compose(&model, &[]);
        let sum = t.phases.iter().fold(SimTime::ZERO, |a, (_, d)| a + *d);
        assert_eq!(t.downtime, sum);
    }
}
