//! Deterministic fault injection: timed topology faults plus SMP loss.
//!
//! A [`FaultPlan`] is the experiment description: a seed, a per-hop SMP
//! drop probability, delivery jitter, and a list of timed topology events
//! (link down/up, switch death). Everything derived from the plan — the
//! [`ib_mad::LossyChannel`], the [`ib_mad::SmpTransport`], the
//! [`FaultDriver`] — is a pure function of the plan's fields, so any run is
//! reproducible from `(plan, topology)` alone.
//!
//! The [`FaultDriver`] turns the timed events into subnet mutations as
//! simulated time advances, and hands back the [`ib_sm::Trap`]s a real
//! fabric would have raised, ready to feed
//! [`ib_sm::SubnetManager::handle_trap`].

use ib_mad::fault::{LossyChannel, SmpTransport};
use ib_observe::Observer;
use ib_subnet::{NodeId, Subnet};
use ib_types::{IbResult, PortNum};

use crate::des::{EventQueue, SimTime};

/// One topology fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// A link stops passing traffic (both ends).
    LinkDown {
        /// One end of the link.
        node: NodeId,
        /// The port on that end.
        port: PortNum,
    },
    /// A previously downed link comes back.
    LinkUp {
        /// One end of the link.
        node: NodeId,
        /// The port on that end.
        port: PortNum,
    },
    /// A switch crashes: the node dies and all its links go down.
    SwitchDeath {
        /// The dying switch.
        node: NodeId,
    },
}

impl FaultEvent {
    /// The trap the fabric would raise for this event, if any. A link
    /// coming back up also raises a link-state-change trap.
    #[must_use]
    pub fn as_trap(&self) -> ib_sm::Trap {
        match *self {
            Self::LinkDown { node, port } | Self::LinkUp { node, port } => {
                ib_sm::Trap::LinkStateChange { node, port }
            }
            Self::SwitchDeath { node } => ib_sm::Trap::SwitchDeath { node },
        }
    }
}

/// A fault event pinned to a point in simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimedFault {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub event: FaultEvent,
}

/// A complete, seeded fault-injection scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the SMP loss/jitter stream.
    pub seed: u64,
    /// Per-hop, per-direction SMP drop probability in `[0, 1]`.
    pub drop_probability: f64,
    /// Upper bound (exclusive) on per-delivery jitter in ns; 0 disables.
    pub max_jitter_ns: u64,
    /// Timed topology faults, in any order (the driver sorts by time).
    pub events: Vec<TimedFault>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: no loss, no jitter, no events. Running any pipeline
    /// under this plan is byte-identical to running without a fault layer
    /// at all (the equivalence the property tests pin down).
    #[must_use]
    pub fn none() -> Self {
        Self {
            seed: 0,
            drop_probability: 0.0,
            max_jitter_ns: 0,
            events: Vec::new(),
        }
    }

    /// Pure SMP loss, no topology events.
    #[must_use]
    pub fn lossy(seed: u64, drop_probability: f64) -> Self {
        Self {
            seed,
            drop_probability,
            ..Self::none()
        }
    }

    /// Whether this plan can perturb anything at all.
    #[must_use]
    pub fn is_fault_free(&self) -> bool {
        self.drop_probability == 0.0 && self.max_jitter_ns == 0 && self.events.is_empty()
    }

    /// Adds a timed event (builder style).
    #[must_use]
    pub fn with_event(mut self, at: SimTime, event: FaultEvent) -> Self {
        self.events.push(TimedFault { at, event });
        self
    }

    /// The SMP loss channel this plan prescribes.
    #[must_use]
    pub fn channel(&self) -> LossyChannel {
        LossyChannel::new(self.seed, self.drop_probability, self.max_jitter_ns)
    }

    /// A retrying SMP transport sourced at `sm_node` under this plan's
    /// channel.
    #[must_use]
    pub fn transport(&self, sm_node: NodeId) -> SmpTransport<LossyChannel> {
        SmpTransport::with_channel(sm_node, self.channel())
    }

    /// The driver that applies this plan's timed events.
    #[must_use]
    pub fn driver(&self) -> FaultDriver {
        FaultDriver::new(self)
    }
}

/// Applies a [`FaultPlan`]'s timed events to a subnet as time advances.
#[derive(Debug)]
pub struct FaultDriver {
    queue: EventQueue<FaultEvent>,
}

impl FaultDriver {
    /// A driver with every plan event scheduled.
    #[must_use]
    pub fn new(plan: &FaultPlan) -> Self {
        let mut events = plan.events.clone();
        events.sort_by_key(|e| e.at);
        let mut queue = EventQueue::new();
        for e in events {
            queue.schedule(e.at, e.event);
        }
        Self { queue }
    }

    /// When the next fault fires, if any remain.
    #[must_use]
    pub fn next_fault_at(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Whether all faults have been applied.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.queue.is_empty()
    }

    /// Applies every fault due at or before `now` to `subnet`, returning
    /// the applied events in firing order (convert with
    /// [`FaultEvent::as_trap`] to feed the SM).
    pub fn advance(&mut self, subnet: &mut Subnet, now: SimTime) -> IbResult<Vec<FaultEvent>> {
        self.advance_observed(subnet, now, &Observer::disabled())
    }

    /// Like [`Self::advance`], but counts each applied event into
    /// `observer` as `fault.{link_down,link_up,switch_death}` (plus the
    /// `fault.applied` total), so metrics dumps show what the fabric was
    /// subjected to alongside how the SM coped.
    pub fn advance_observed(
        &mut self,
        subnet: &mut Subnet,
        now: SimTime,
        observer: &Observer,
    ) -> IbResult<Vec<FaultEvent>> {
        let mut fired = Vec::new();
        while self.queue.peek_time().is_some_and(|t| t <= now) {
            let Some((_, event)) = self.queue.pop() else {
                break;
            };
            let label = match event {
                FaultEvent::LinkDown { node, port } => {
                    subnet.set_link_down(node, port)?;
                    "fault.link_down"
                }
                FaultEvent::LinkUp { node, port } => {
                    subnet.set_link_up(node, port)?;
                    "fault.link_up"
                }
                FaultEvent::SwitchDeath { node } => {
                    subnet.remove_node(node)?;
                    "fault.switch_death"
                }
            };
            if observer.is_enabled() {
                observer.incr(label);
                observer.incr("fault.applied");
            }
            fired.push(event);
        }
        Ok(fired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_subnet::topology::fattree::two_level;

    #[test]
    fn empty_plan_is_fault_free() {
        let plan = FaultPlan::none();
        assert!(plan.is_fault_free());
        assert!(plan.driver().is_done());
        assert!(!FaultPlan::lossy(1, 0.05).is_fault_free());
    }

    #[test]
    fn driver_applies_events_in_time_order() {
        let mut t = two_level(2, 2, 2);
        let leaf = t.switch_levels[0][0];
        let (port, _) = t.subnet.node(leaf).connected_ports().next().unwrap();
        let plan = FaultPlan::none()
            .with_event(SimTime(200), FaultEvent::LinkUp { node: leaf, port })
            .with_event(SimTime(100), FaultEvent::LinkDown { node: leaf, port });
        let mut driver = plan.driver();
        assert_eq!(driver.next_fault_at(), Some(SimTime(100)));

        // Nothing due yet.
        assert!(driver
            .advance(&mut t.subnet, SimTime(50))
            .unwrap()
            .is_empty());
        assert!(t.subnet.is_link_up(leaf, port));

        // Both fire by t=500, in order: down then up, net no change.
        let fired = driver.advance(&mut t.subnet, SimTime(500)).unwrap();
        assert_eq!(fired.len(), 2);
        assert!(matches!(fired[0], FaultEvent::LinkDown { .. }));
        assert!(t.subnet.is_link_up(leaf, port));
        assert!(driver.is_done());
    }

    #[test]
    fn observed_advance_counts_applied_events() {
        let mut t = two_level(2, 2, 2);
        let leaf = t.switch_levels[0][0];
        let (port, _) = t.subnet.node(leaf).connected_ports().next().unwrap();
        let plan = FaultPlan::none()
            .with_event(SimTime(100), FaultEvent::LinkDown { node: leaf, port })
            .with_event(SimTime(200), FaultEvent::LinkUp { node: leaf, port });
        let mut driver = plan.driver();
        let observer = Observer::with_clock(Box::new(ib_observe::FakeClock::new()));
        let fired = driver
            .advance_observed(&mut t.subnet, SimTime(500), &observer)
            .unwrap();
        assert_eq!(fired.len(), 2);
        let snap = observer.snapshot().unwrap();
        assert_eq!(snap.counter("fault.applied"), 2);
        assert_eq!(snap.counter("fault.link_down"), 1);
        assert_eq!(snap.counter("fault.link_up"), 1);
        assert_eq!(snap.counter("fault.switch_death"), 0);
    }

    #[test]
    fn switch_death_event_kills_node() {
        let mut t = two_level(2, 2, 2);
        let spine = t.switch_levels[1][0];
        let plan =
            FaultPlan::none().with_event(SimTime(10), FaultEvent::SwitchDeath { node: spine });
        let mut driver = plan.driver();
        let fired = driver.advance(&mut t.subnet, SimTime(10)).unwrap();
        assert_eq!(fired.len(), 1);
        assert!(!t.subnet.is_alive(spine));
        assert_eq!(fired[0].as_trap(), ib_sm::Trap::SwitchDeath { node: spine });
    }

    #[test]
    fn plan_transport_is_deterministic() {
        let t = two_level(2, 2, 2);
        let plan = FaultPlan::lossy(42, 0.3);
        let send_all = || {
            let mut transport = plan.transport(t.hosts[0]);
            let mut ledger = ib_mad::SmpLedger::new();
            let sm = ib_sm::SubnetManager::new(t.hosts[0], ib_sm::SmConfig::default());
            let _ = sm; // transport is independent of the SM instance
            let smp = ib_mad::Smp {
                method: ib_mad::SmpMethod::Get,
                attribute: ib_mad::SmpAttribute::NodeInfo,
                routing: ib_mad::SmpRouting::Directed(ib_mad::DirectedRoute::from_hops(vec![
                    PortNum::new(1),
                ])),
                target: t.switch_levels[0][0],
            };
            for _ in 0..32 {
                let _ = transport.send(&t.subnet, &smp, 1, &mut ledger);
            }
            (transport.clock_ns(), ledger.total(), ledger.delivered())
        };
        assert_eq!(send_all(), send_all());
    }
}
