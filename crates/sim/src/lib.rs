//! # ib-sim
//!
//! Discrete-event simulation on top of the subnet model — the ibsim analog
//! of the reproduction. Three instruments:
//!
//! * [`des`] — a small deterministic event queue with logical time.
//! * [`smp_sim`] — replays an [`ib_mad::SmpLedger`] through a per-hop
//!   latency model (`k` per link, `r` per directed-routed hop) with
//!   configurable SM pipelining, turning SMP *counts* into reconfiguration
//!   *time* (equations 2–5 of the paper, including footnote 4's
//!   switches-nearer-the-SM-are-faster effect).
//! * [`flows`] — walks flow sets through the installed LFTs to verify
//!   connectivity (and count hops / observe drops) before, during, and
//!   after reconfigurations.
//! * [`downtime`] — the end-to-end live-migration timeline (detach, memory
//!   copy, reconfiguration, attach) that lets the three architectures be
//!   compared on VM downtime.
//! * [`faults`] — seeded fault injection: a [`faults::FaultPlan`] describes
//!   SMP loss/jitter plus timed topology faults, and a
//!   [`faults::FaultDriver`] applies them to the subnet as simulated time
//!   advances, emitting the traps a real fabric would raise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod credit;
pub mod des;
pub mod downtime;
pub mod fairness;
pub mod faults;
pub mod flows;
pub mod smp_sim;

pub use credit::{CreditSimConfig, CreditSimReport, Flow};
pub use des::{EventQueue, SimTime};
pub use downtime::{DowntimeModel, MigrationTimeline};
pub use fairness::{max_min_fair, FairFlow, FairnessReport};
pub use faults::{FaultDriver, FaultEvent, FaultPlan, TimedFault};
pub use flows::{FlowReport, FlowSet};
pub use smp_sim::{SmpLatencyModel, SmpReplay};
