//! Max-min fair throughput allocation.
//!
//! §V-A credits the prepopulated-LID architecture with "better traffic
//! balancing" and §V-B concedes that dynamic LID assignment "compromises
//! on the traffic balancing" because every VM rides its hypervisor's PF
//! path. Link-load counts (in `ib_routing::balance`) show the *static*
//! imbalance; this module quantifies what the imbalance costs running
//! traffic: the classic water-filling max-min fair allocation of flow
//! rates over capacity-1 links.
//!
//! The solver is exact: repeatedly find the most-constrained link
//! (capacity / unfrozen flows crossing it), freeze those flows at that
//! fair share, subtract, and continue.

use ib_subnet::{NodeId, Subnet};
use ib_types::{IbError, IbResult, Lid};
use rustc_hash::FxHashMap;

/// A flow for the fairness solver: one source endpoint, one destination
/// LID, demand unbounded (elastic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FairFlow {
    /// Source HCA node.
    pub src: NodeId,
    /// Destination LID.
    pub dst: Lid,
}

/// The allocation result.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FairnessReport {
    /// Rate of each flow, in link-capacity units, in input order.
    pub rates: Vec<f64>,
    /// Sum of rates (aggregate throughput).
    pub aggregate: f64,
    /// Smallest rate (the worst-treated flow).
    pub min_rate: f64,
    /// Largest rate.
    pub max_rate: f64,
}

impl FairnessReport {
    /// Jain's fairness index over the allocated rates, in `(0, 1]`.
    #[must_use]
    pub fn jain_index(&self) -> f64 {
        if self.rates.is_empty() {
            return 1.0;
        }
        let sum: f64 = self.rates.iter().sum();
        let sumsq: f64 = self.rates.iter().map(|r| r * r).sum();
        if sumsq == 0.0 {
            return 1.0;
        }
        (sum * sum) / (self.rates.len() as f64 * sumsq)
    }
}

/// Computes the max-min fair allocation of the flows over the subnet's
/// installed LFTs, with every switch-to-switch link having capacity 1.0
/// in each direction (host links are not the bottleneck of interest and
/// get capacity 1.0 too).
///
/// ```
/// use ib_sim::fairness::{max_min_fair, FairFlow};
/// use ib_sm::{SmConfig, SubnetManager};
/// use ib_subnet::topology::basic::linear;
///
/// let mut t = linear(2, 2);
/// SubnetManager::new(t.hosts[0], SmConfig::default())
///     .bring_up(&mut t.subnet).unwrap();
/// // Two flows sharing the single trunk: 0.5 each.
/// let flows: Vec<FairFlow> = (0..2).map(|i| FairFlow {
///     src: t.hosts[i],
///     dst: t.subnet.node(t.hosts[i + 2]).ports[1].lid.unwrap(),
/// }).collect();
/// let report = max_min_fair(&t.subnet, &flows).unwrap();
/// assert!((report.aggregate - 1.0).abs() < 1e-9);
/// ```
pub fn max_min_fair(subnet: &Subnet, flows: &[FairFlow]) -> IbResult<FairnessReport> {
    // Path of each flow as a list of directed link ids.
    let mut link_ids: FxHashMap<(NodeId, u8), usize> = FxHashMap::default();
    let mut paths: Vec<Vec<usize>> = Vec::with_capacity(flows.len());
    for flow in flows {
        let path = subnet.trace_route(flow.src, flow.dst, 64)?;
        let mut links = Vec::new();
        // Reconstruct the out-ports along the node path.
        for win in path.windows(2) {
            let (u, v) = (win[0], win[1]);
            let port = subnet
                .node(u)
                .connected_ports()
                .find(|(_, r)| r.node == v)
                .map(|(p, _)| p)
                .ok_or_else(|| IbError::Topology("path hop without a cable".into()))?;
            let next = link_ids.len();
            let id = *link_ids.entry((u, port.raw())).or_insert(next);
            links.push(id);
        }
        paths.push(links);
    }

    let num_links = link_ids.len();
    let mut remaining_cap = vec![1.0f64; num_links];
    let mut active_on_link = vec![0usize; num_links];
    for p in &paths {
        for &l in p {
            active_on_link[l] += 1;
        }
    }

    let mut rates = vec![0.0f64; flows.len()];
    let mut frozen = vec![false; flows.len()];
    let mut unfrozen = flows.len();
    // Zero-hop flows (same endpoint / delivered on the entry switch
    // without crossing links) are unconstrained; give them rate 1.
    for (i, p) in paths.iter().enumerate() {
        if p.is_empty() {
            rates[i] = 1.0;
            frozen[i] = true;
            unfrozen -= 1;
        }
    }

    while unfrozen > 0 {
        // The bottleneck link: smallest remaining fair share.
        let mut best: Option<(f64, usize)> = None;
        for l in 0..num_links {
            if active_on_link[l] == 0 {
                continue;
            }
            let share = remaining_cap[l] / active_on_link[l] as f64;
            if best.is_none_or(|(s, _)| share < s) {
                best = Some((share, l));
            }
        }
        let Some((share, bottleneck)) = best else {
            // No constrained links left: remaining flows are free.
            for (i, f) in frozen.iter_mut().enumerate() {
                if !*f {
                    rates[i] = 1.0;
                    *f = true;
                }
            }
            break;
        };
        // Freeze every unfrozen flow crossing the bottleneck at its
        // current rate + share; subtract from all its links.
        for i in 0..flows.len() {
            if frozen[i] || !paths[i].contains(&bottleneck) {
                continue;
            }
            rates[i] += share;
            frozen[i] = true;
            unfrozen -= 1;
            for &l in &paths[i] {
                remaining_cap[l] -= share;
                active_on_link[l] -= 1;
            }
        }
        // Other flows sharing partially-drained links get their share
        // when their own bottleneck freezes them; accumulate the share
        // everyone got so far.
        for i in 0..flows.len() {
            if !frozen[i] {
                rates[i] += share;
                for &l in &paths[i] {
                    remaining_cap[l] -= share;
                }
            }
        }
    }

    let aggregate = rates.iter().sum();
    let min_rate = rates.iter().copied().fold(f64::INFINITY, f64::min);
    let max_rate = rates.iter().copied().fold(0.0, f64::max);
    Ok(FairnessReport {
        rates,
        aggregate,
        min_rate: if min_rate.is_finite() { min_rate } else { 0.0 },
        max_rate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_sm::{SmConfig, SubnetManager};
    use ib_subnet::topology::basic::linear;
    use ib_subnet::topology::fattree::two_level;

    fn managed(mut t: ib_subnet::topology::BuiltTopology) -> ib_subnet::topology::BuiltTopology {
        let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
        sm.bring_up(&mut t.subnet).unwrap();
        t
    }

    fn lid_of(t: &ib_subnet::topology::BuiltTopology, i: usize) -> Lid {
        t.subnet.node(t.hosts[i]).ports[1].lid.unwrap()
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let t = managed(linear(2, 1));
        let flows = vec![FairFlow {
            src: t.hosts[0],
            dst: lid_of(&t, 1),
        }];
        let report = max_min_fair(&t.subnet, &flows).unwrap();
        assert!((report.rates[0] - 1.0).abs() < 1e-9);
        assert!((report.jain_index() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shared_trunk_splits_fairly() {
        // Two flows from switch 0's hosts to switch 1's hosts share the
        // single trunk: 0.5 each.
        let t = managed(linear(2, 2));
        let flows = vec![
            FairFlow {
                src: t.hosts[0],
                dst: lid_of(&t, 2),
            },
            FairFlow {
                src: t.hosts[1],
                dst: lid_of(&t, 3),
            },
        ];
        let report = max_min_fair(&t.subnet, &flows).unwrap();
        assert!((report.rates[0] - 0.5).abs() < 1e-9);
        assert!((report.rates[1] - 0.5).abs() < 1e-9);
        assert!((report.aggregate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_and_free_flows_mix() {
        // Three hosts per switch: two flows share the trunk, one stays
        // local (host -> host on the same switch still crosses its two
        // host links, not the trunk).
        let t = managed(linear(2, 3));
        let flows = vec![
            FairFlow {
                src: t.hosts[0],
                dst: lid_of(&t, 3),
            }, // trunk
            FairFlow {
                src: t.hosts[1],
                dst: lid_of(&t, 4),
            }, // trunk
            FairFlow {
                src: t.hosts[2],
                dst: lid_of(&t, 1),
            }, // local
        ];
        let report = max_min_fair(&t.subnet, &flows).unwrap();
        assert!((report.rates[0] - 0.5).abs() < 1e-9);
        assert!((report.rates[1] - 0.5).abs() < 1e-9);
        assert!((report.rates[2] - 1.0).abs() < 1e-9, "{report:?}");
        assert!(report.jain_index() < 1.0);
    }

    #[test]
    fn balanced_fat_tree_outperforms_single_spine() {
        // All cross-leaf flows: with d-mod-k balancing over 2 spines the
        // aggregate beats forcing everything over one spine.
        let t = managed(two_level(2, 4, 2));
        let flows: Vec<FairFlow> = (0..4)
            .map(|i| FairFlow {
                src: t.hosts[i],
                dst: lid_of(&t, 4 + i),
            })
            .collect();
        let balanced = max_min_fair(&t.subnet, &flows).unwrap();

        // Now force every destination LID on leaf 1 through the same
        // uplink of leaf 0 (the dynamic-assignment worst case: all VMs
        // riding one PF path).
        let mut t2 = t.clone();
        let leaf0 = t2.switch_levels[0][0];
        let forced_port = {
            let lft = t2.subnet.lft(leaf0).unwrap();
            lft.get(lid_of(&t2, 4)).unwrap()
        };
        for i in 4..8 {
            let lid = lid_of(&t2, i);
            t2.subnet.lft_mut(leaf0).unwrap().set(lid, forced_port);
        }
        let skewed = max_min_fair(&t2.subnet, &flows).unwrap();
        assert!(
            balanced.aggregate > skewed.aggregate + 0.5,
            "balanced {} vs skewed {}",
            balanced.aggregate,
            skewed.aggregate
        );
    }

    #[test]
    fn empty_flow_set() {
        let t = managed(linear(2, 1));
        let report = max_min_fair(&t.subnet, &[]).unwrap();
        assert_eq!(report.aggregate, 0.0);
        assert!((report.jain_index() - 1.0).abs() < 1e-9);
    }
}
