//! Credit-based flow-control simulation: making deadlock real.
//!
//! The CDG machinery in `ib-routing` proves deadlock *possibility*
//! (a cycle exists); this module demonstrates deadlock *occurrence*: a
//! round-based simulation of lossless, credit-gated forwarding in which
//! packets hold buffer slots while waiting for the next channel's credit —
//! precisely the hold-and-wait that turns a CDG cycle into a standstill.
//!
//! §VI-C of the paper accepts that its LID-swapping reconfiguration can
//! transiently create such cycles and argues "they will be resolved by IB
//! timeouts". The simulator reproduces both halves: with `timeout_rounds =
//! None` a cyclic workload stalls forever (deadlock detected and
//! reported); with a timeout, aged packets are discarded, buffers free up,
//! and the fabric drains — at the price of dropped packets, exactly the
//! trade the paper describes.

use ib_routing::tables::VlAssignment;
use ib_subnet::{NodeId, Subnet};
use ib_types::{IbError, IbResult, Lid};
use rustc_hash::FxHashMap;
use std::collections::VecDeque;

/// One traffic flow: `packets` packets from `src` (an HCA) to `dst`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Flow {
    /// Source HCA node.
    pub src: NodeId,
    /// Destination LID.
    pub dst: Lid,
    /// Packets to inject.
    pub packets: u64,
}

/// Simulation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CreditSimConfig {
    /// Buffer slots per (channel, VL).
    pub credits_per_channel: usize,
    /// Rounds of zero progress before declaring deadlock.
    pub stall_threshold: u32,
    /// If set, packets older than this many rounds are dropped (the IB
    /// timeout of §VI-C); if `None`, a deadlock is terminal.
    pub timeout_rounds: Option<u32>,
    /// Hard round cap.
    pub max_rounds: u32,
}

impl Default for CreditSimConfig {
    fn default() -> Self {
        Self {
            credits_per_channel: 2,
            stall_threshold: 8,
            timeout_rounds: None,
            max_rounds: 100_000,
        }
    }
}

/// What the run did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CreditSimReport {
    /// Packets delivered to their destination.
    pub delivered: u64,
    /// Packets discarded by the IB timeout.
    pub dropped: u64,
    /// Rounds simulated.
    pub rounds: u32,
    /// Whether a zero-progress standstill (deadlock) was observed.
    pub deadlocked: bool,
    /// Whether the fabric fully drained.
    pub drained: bool,
}

#[derive(Clone, Debug)]
struct Packet {
    dst: Lid,
    age: u32,
}

/// Runs the simulation over the subnet's installed LFTs.
///
/// `vls` selects the lane each flow travels on (per the routing engine's
/// assignment); lanes have independent credit pools, which is how DFSSSP
/// and LASH turn a cyclic single-lane CDG into acyclic layers.
pub fn run(
    subnet: &Subnet,
    flows: &[Flow],
    vls: &VlAssignment,
    config: &CreditSimConfig,
) -> IbResult<CreditSimReport> {
    // Channel queues keyed (switch index-ish node id, out port, vl).
    let mut queues: FxHashMap<(NodeId, u8, u8), VecDeque<Packet>> = FxHashMap::default();
    let mut report = CreditSimReport::default();

    // Pending injections: (flow, remaining).
    let mut pending: Vec<(usize, u64)> = flows
        .iter()
        .enumerate()
        .map(|(i, f)| (i, f.packets))
        .collect();

    // Resolve each flow's entry switch and lane once. Pair-keyed VL
    // assignments (LASH, DFSSSP) are keyed by SwitchGraph indices, so map
    // through the graph rather than using arena indices.
    let g = ib_routing::graph::SwitchGraph::build(subnet)?;
    struct Entry {
        first_switch: NodeId,
        vl: u8,
    }
    let mut entries = Vec::with_capacity(flows.len());
    for flow in flows {
        let (_, remote) = subnet
            .node(flow.src)
            .connected_ports()
            .next()
            .ok_or_else(|| IbError::Topology("flow source is uncabled".into()))?;
        let dst_ep = subnet
            .endpoint_of(flow.dst)
            .ok_or_else(|| IbError::Management(format!("flow dst LID {} unknown", flow.dst)))?;
        let src_idx = g
            .index(remote.node)
            .ok_or_else(|| IbError::Topology("flow source not behind a switch".into()))?;
        // Destination may terminate at a switch (its own LID) or hang off
        // one; resolve the delivery switch either way.
        let dst_idx = match g.index(dst_ep.node) {
            Some(i) => i,
            None => {
                let (_, r) = subnet
                    .node(dst_ep.node)
                    .connected_ports()
                    .next()
                    .ok_or_else(|| IbError::Topology("flow destination uncabled".into()))?;
                g.index(r.node)
                    .ok_or_else(|| IbError::Topology("destination not behind a switch".into()))?
            }
        };
        let vl = vls.lane_for(src_idx as u32, dst_idx as u32, flow.dst).raw();
        entries.push(Entry {
            first_switch: remote.node,
            vl,
        });
    }

    let mut stall = 0u32;
    for round in 0..config.max_rounds {
        report.rounds = round + 1;
        let mut progress = 0u64;

        // 1. Advance queued packets, channels in deterministic order.
        let mut keys: Vec<(NodeId, u8, u8)> = queues
            .keys()
            .copied()
            .filter(|k| !queues[k].is_empty())
            .collect();
        keys.sort_unstable_by_key(|&(n, p, v)| (n.index(), p, v));
        for key in keys {
            let (u, p, vl) = key;
            // Head packet of (u, p) has been transmitted towards the far
            // end of the cable; see where it must go next.
            let Some(head) = queues.get(&key).and_then(|q| q.front().cloned()) else {
                continue;
            };
            let Some(remote) = subnet.neighbor(u, ib_types::PortNum::new(p)) else {
                continue;
            };
            let v = remote.node;
            if subnet.node(v).is_hca() {
                // Delivered straight into the HCA.
                if let Some(q) = queues.get_mut(&key) {
                    q.pop_front();
                }
                report.delivered += 1;
                progress += 1;
                continue;
            }
            let lft = subnet
                .node(v)
                .lft()
                .ok_or_else(|| IbError::Topology("packet reached a non-switch non-HCA".into()))?;
            let Some(out) = lft.get(head.dst) else {
                // Unroutable: count as a drop so the sim cannot wedge on
                // misconfiguration.
                if let Some(q) = queues.get_mut(&key) {
                    q.pop_front();
                }
                report.dropped += 1;
                progress += 1;
                continue;
            };
            let next_is_endpoint = subnet
                .neighbor(v, out)
                .map(|r| subnet.node(r.node).is_hca())
                .unwrap_or(false);
            let next_key = (v, out.raw(), vl);
            let has_room = next_is_endpoint
                || queues
                    .get(&next_key)
                    .is_none_or(|q| q.len() < config.credits_per_channel);
            if has_room {
                // The head was cloned from this queue above, so it is
                // non-empty; an emptied queue just skips the move.
                let Some(pkt) = queues
                    .get_mut(&key)
                    .and_then(std::collections::VecDeque::pop_front)
                else {
                    continue;
                };
                if next_is_endpoint {
                    report.delivered += 1;
                } else {
                    queues.entry(next_key).or_default().push_back(pkt);
                }
                progress += 1;
            }
        }

        // 2. Inject new packets where the first channel has room.
        for (fi, remaining) in &mut pending {
            if *remaining == 0 {
                continue;
            }
            let flow = &flows[*fi];
            let entry = &entries[*fi];
            let s = entry.first_switch;
            let lft = subnet
                .node(s)
                .lft()
                .ok_or_else(|| IbError::Topology("entry switch has no LFT".into()))?;
            let Some(out) = lft.get(flow.dst) else {
                continue;
            };
            // Destination on the entry switch: immediate delivery.
            let to_hca = subnet
                .neighbor(s, out)
                .map(|r| subnet.node(r.node).is_hca())
                .unwrap_or(false);
            if to_hca {
                *remaining -= 1;
                report.delivered += 1;
                progress += 1;
                continue;
            }
            let key = (s, out.raw(), entry.vl);
            let room = queues
                .get(&key)
                .is_none_or(|q| q.len() < config.credits_per_channel);
            if room {
                queues.entry(key).or_default().push_back(Packet {
                    dst: flow.dst,
                    age: 0,
                });
                *remaining -= 1;
                progress += 1;
            }
        }

        // 3. Age packets; apply the IB timeout if configured. Timers are
        // per-QP and fire staggered in a real fabric, so at most one
        // packet — the globally oldest over-age one — is discarded per
        // round; that single freed buffer is enough to let a deadlocked
        // ring creep forward between drops.
        let mut in_network = 0usize;
        for q in queues.values_mut() {
            for pkt in q.iter_mut() {
                pkt.age += 1;
            }
            in_network += q.len();
        }
        if let Some(timeout) = config.timeout_rounds {
            // FIFO queues age monotonically, so the oldest packet of each
            // queue is its head.
            let mut oldest: Option<((NodeId, u8, u8), u32)> = None;
            let mut keys: Vec<(NodeId, u8, u8)> = queues
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .map(|(k, _)| *k)
                .collect();
            keys.sort_unstable_by_key(|&(n, p, v)| (n.index(), p, v));
            for key in keys {
                let Some(age) = queues.get(&key).and_then(|q| q.front()).map(|p| p.age) else {
                    continue;
                };
                if age > timeout && oldest.is_none_or(|(_, a)| age > a) {
                    oldest = Some((key, age));
                }
            }
            if let Some((key, _)) = oldest {
                if queues.get_mut(&key).and_then(|q| q.pop_front()).is_some() {
                    report.dropped += 1;
                    in_network -= 1;
                }
            }
        }
        let all_injected = pending.iter().all(|&(_, r)| r == 0);

        if in_network == 0 && all_injected {
            report.drained = true;
            return Ok(report);
        }
        if progress == 0 {
            stall += 1;
            if stall >= config.stall_threshold {
                report.deadlocked = true;
                if config.timeout_rounds.is_none() {
                    // Terminal: nothing will ever move again.
                    return Ok(report);
                }
                // With timeouts, aging (step 3) will eventually clear the
                // standstill; keep simulating.
            }
        } else {
            stall = 0;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_routing::EngineKind;
    use ib_sm::{SmConfig, SubnetManager};
    use ib_subnet::topology::fattree::two_level;
    use ib_subnet::Subnet;
    use ib_types::PortNum;

    /// A 4-switch ring with one host each, manually routed so that every
    /// LID travels clockwise — the textbook credit deadlock.
    fn clockwise_ring() -> (Subnet, Vec<NodeId>, Vec<Lid>) {
        let mut s = Subnet::new();
        let sw: Vec<NodeId> = (0..4).map(|i| s.add_switch(format!("r{i}"), 4)).collect();
        let hosts: Vec<NodeId> = (0..4).map(|i| s.add_hca(format!("h{i}"))).collect();
        for i in 0..4 {
            s.connect(sw[i], PortNum::new(1), sw[(i + 1) % 4], PortNum::new(2))
                .unwrap();
            s.connect(sw[i], PortNum::new(3), hosts[i], PortNum::new(1))
                .unwrap();
        }
        let lids: Vec<Lid> = (0..4).map(|i| Lid::from_raw(i as u16 + 1)).collect();
        for (i, &h) in hosts.iter().enumerate() {
            s.assign_port_lid(h, PortNum::new(1), lids[i]).unwrap();
        }
        let cw = PortNum::new(1);
        let host_port = PortNum::new(3);
        for (i, &lid) in lids.iter().enumerate() {
            for (j, &node) in sw.iter().enumerate() {
                let lft = s.lft_mut(node).unwrap();
                lft.set(lid, if j == i { host_port } else { cw });
            }
        }
        (s, hosts, lids)
    }

    /// Each host sends to the host two hops clockwise: all four ring
    /// channels are held and wanted simultaneously.
    fn ring_flows(hosts: &[NodeId], lids: &[Lid], packets: u64) -> Vec<Flow> {
        (0..4)
            .map(|i| Flow {
                src: hosts[i],
                dst: lids[(i + 2) % 4],
                packets,
            })
            .collect()
    }

    #[test]
    fn clockwise_ring_deadlocks_without_timeout() {
        let (s, hosts, lids) = clockwise_ring();
        let flows = ring_flows(&hosts, &lids, 50);
        let config = CreditSimConfig {
            credits_per_channel: 1,
            ..CreditSimConfig::default()
        };
        let report = run(&s, &flows, &VlAssignment::SingleVl, &config).unwrap();
        assert!(report.deadlocked, "{report:?}");
        assert!(!report.drained);
    }

    #[test]
    fn ib_timeout_resolves_the_deadlock_with_drops() {
        // §VI-C: "deadlocks could possibly occur ... and they will be
        // resolved by IB timeouts".
        let (s, hosts, lids) = clockwise_ring();
        let flows = ring_flows(&hosts, &lids, 50);
        let config = CreditSimConfig {
            credits_per_channel: 1,
            timeout_rounds: Some(32),
            max_rounds: 200_000,
            ..CreditSimConfig::default()
        };
        let report = run(&s, &flows, &VlAssignment::SingleVl, &config).unwrap();
        assert!(report.drained, "{report:?}");
        assert!(report.dropped > 0, "recovery costs packets");
        assert!(report.delivered > 0, "but traffic still flows");
        assert_eq!(report.delivered + report.dropped, 200);
    }

    #[test]
    fn vl_separation_prevents_the_deadlock() {
        // Put opposing half-rings on different lanes: each lane's CDG is
        // an open chain, so no standstill can form.
        let (s, hosts, lids) = clockwise_ring();
        let flows = ring_flows(&hosts, &lids, 50);
        let mut map = rustc_hash::FxHashMap::default();
        for (i, lid) in lids.iter().enumerate() {
            map.insert(
                lid.raw(),
                ib_types::VirtualLane::new((i % 2) as u8).unwrap(),
            );
        }
        let config = CreditSimConfig {
            credits_per_channel: 1,
            ..CreditSimConfig::default()
        };
        let report = run(&s, &flows, &VlAssignment::PerDestination(map), &config).unwrap();
        assert!(report.drained, "{report:?}");
        assert!(!report.deadlocked);
        assert_eq!(report.delivered, 200);
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn fat_tree_all_to_all_drains_cleanly() {
        let mut t = two_level(2, 3, 2);
        let mut sm = SubnetManager::new(t.hosts[0], SmConfig::default());
        sm.bring_up(&mut t.subnet).unwrap();
        let tables = EngineKind::MinHop.build().compute(&t.subnet).unwrap();
        let mut flows = Vec::new();
        for &a in &t.hosts {
            for &b in &t.hosts {
                if a != b {
                    flows.push(Flow {
                        src: a,
                        dst: t.subnet.node(b).ports[1].lid.unwrap(),
                        packets: 5,
                    });
                }
            }
        }
        let report = run(&t.subnet, &flows, &tables.vls, &CreditSimConfig::default()).unwrap();
        assert!(report.drained);
        assert!(!report.deadlocked);
        assert_eq!(report.delivered, 150);
    }

    #[test]
    fn unroutable_packets_are_dropped_not_wedged() {
        let (mut s, hosts, lids) = clockwise_ring();
        // Remove LID 3's rows everywhere: its packets become unroutable.
        let switches: Vec<NodeId> = s.physical_switches().map(|n| n.id).collect();
        for sw in switches {
            s.lft_mut(sw).unwrap().clear(lids[2]);
        }
        let flows = vec![Flow {
            src: hosts[0],
            dst: lids[2],
            packets: 3,
        }];
        let report = run(
            &s,
            &flows,
            &VlAssignment::SingleVl,
            &CreditSimConfig::default(),
        );
        // Either dropped (entered the ring then hit the missing row) or
        // stuck at injection: both must terminate without panic.
        let report = report.unwrap();
        assert!(report.rounds > 0);
    }
}
