//! Replaying an SMP ledger through a per-hop latency model.
//!
//! The paper's `k` and `r` are subnet-wide averages; the replay refines
//! them to per-hop quantities (footnote 4: "switches closer to the SM can
//! be reached faster"), and models the SM's transmit window: with
//! `pipeline_depth = 1` the replay reproduces the serial `Σ (k + r)` model
//! of equations 2–4, and with deeper pipelines it shows the §VI-B remark
//! that OpenSM's pipelining shrinks `LFTDt` further.

use ib_mad::SmpLedger;

use crate::des::{EventQueue, SimTime};

/// Per-hop latency parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SmpLatencyModel {
    /// Wire+switch traversal per hop (ns).
    pub k_hop_ns: u64,
    /// Extra directed-route header processing per hop (ns).
    pub r_hop_ns: u64,
    /// How many SMPs the SM keeps in flight (1 = strictly serial).
    pub pipeline_depth: usize,
}

impl Default for SmpLatencyModel {
    fn default() -> Self {
        // QDR-era ballpark: ~1 µs per hop round-trip share, directed
        // processing roughly doubling per-hop cost; serial by default.
        Self {
            k_hop_ns: 1_000,
            r_hop_ns: 800,
            pipeline_depth: 1,
        }
    }
}

impl SmpLatencyModel {
    /// One-way latency of a single SMP with `hops` link traversals.
    ///
    /// Delegates to [`ib_mad::one_way_latency_ns`] — the same formula the
    /// fault transport's virtual clock uses — so replayed timings and
    /// transport timings always agree.
    #[must_use]
    pub fn smp_latency(&self, hops: usize, directed: bool) -> SimTime {
        SimTime(ib_mad::one_way_latency_ns(
            self.k_hop_ns,
            self.r_hop_ns,
            hops,
            directed,
        ))
    }
}

/// Result of replaying a ledger.
#[derive(Clone, Debug, PartialEq)]
pub struct SmpReplay {
    /// Completion time of the last acknowledgement.
    pub makespan: SimTime,
    /// Number of SMPs replayed.
    pub smps: usize,
    /// Completion time of each SMP, in ledger order.
    pub completions: Vec<SimTime>,
}

impl SmpReplay {
    /// Replays `ledger` (optionally a single named phase) under `model`.
    ///
    /// Each SMP occupies a transmit credit from issue until its ack
    /// returns (round trip = 2x one-way latency); the SM has
    /// `pipeline_depth` credits.
    #[must_use]
    pub fn run(ledger: &SmpLedger, phase: Option<&str>, model: &SmpLatencyModel) -> Self {
        let records: Vec<(usize, bool)> = match phase {
            Some(p) => ledger
                .phase_records(p)
                .iter()
                .map(|r| (r.hops, r.directed))
                .collect(),
            None => ledger
                .records()
                .iter()
                .map(|r| (r.hops, r.directed))
                .collect(),
        };
        Self::run_records(&records, model)
    }

    /// Replays raw `(hops, directed)` pairs.
    #[must_use]
    pub fn run_records(records: &[(usize, bool)], model: &SmpLatencyModel) -> Self {
        let costs: Vec<SimTime> = records
            .iter()
            .map(|&(hops, directed)| SimTime(2 * model.smp_latency(hops, directed).as_ns()))
            .collect();
        Self::run_costs(&costs, model.pipeline_depth)
    }

    /// Outcome-aware replay of a ledger that went through a fault channel:
    /// a delivered attempt occupies its credit for the round trip, a failed
    /// attempt occupies it until the SM's response timeout for that attempt
    /// number expires. This is how "extra SMPs" become "extra time".
    #[must_use]
    pub fn run_with_faults(
        ledger: &SmpLedger,
        phase: Option<&str>,
        model: &SmpLatencyModel,
        retry: &ib_mad::RetryPolicy,
    ) -> Self {
        let records = match phase {
            Some(p) => ledger.phase_records(p),
            None => ledger.records(),
        };
        let costs: Vec<SimTime> = records
            .iter()
            .map(|r| {
                if r.status.is_delivered() {
                    SimTime(2 * model.smp_latency(r.hops, r.directed).as_ns())
                } else {
                    SimTime(retry.timeout_ns(r.attempt))
                }
            })
            .collect();
        Self::run_costs(&costs, model.pipeline_depth)
    }

    /// The credit-window engine: each entry of `costs` occupies one of
    /// `depth` transmit credits for its duration.
    fn run_costs(costs: &[SimTime], depth: usize) -> Self {
        #[derive(Debug)]
        enum Ev {
            Ack { index: usize },
        }
        let depth = depth.max(1);
        let mut q: EventQueue<Ev> = EventQueue::new();
        let mut completions = vec![SimTime::ZERO; costs.len()];
        let mut next = 0usize;

        // Prime the window.
        while next < costs.len() && next < depth {
            q.schedule_in(costs[next], Ev::Ack { index: next });
            next += 1;
        }
        // Each ack returns exactly one credit; spend it on the next SMP.
        while let Some((at, Ev::Ack { index })) = q.pop() {
            completions[index] = at;
            if next < costs.len() {
                q.schedule_in(costs[next], Ev::Ack { index: next });
                next += 1;
            }
        }
        Self {
            makespan: completions.iter().copied().max().unwrap_or(SimTime::ZERO),
            smps: costs.len(),
            completions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL: SmpLatencyModel = SmpLatencyModel {
        k_hop_ns: 1_000,
        r_hop_ns: 1_000,
        pipeline_depth: 1,
    };

    #[test]
    fn serial_replay_sums_round_trips() {
        // Three directed SMPs, 2 hops each: rtt = 2*2*(1+1) us = 8 us each.
        let records = vec![(2, true); 3];
        let replay = SmpReplay::run_records(&records, &MODEL);
        assert_eq!(replay.makespan, SimTime(24_000));
        assert_eq!(replay.smps, 3);
    }

    #[test]
    fn destination_routing_is_cheaper() {
        let directed = SmpReplay::run_records(&[(3, true); 10], &MODEL);
        let destination = SmpReplay::run_records(&[(3, false); 10], &MODEL);
        assert!(destination.makespan < directed.makespan);
        // Exactly the k/(k+r) ratio.
        assert_eq!(destination.makespan.as_ns() * 2, directed.makespan.as_ns());
    }

    #[test]
    fn pipelining_divides_makespan() {
        let records = vec![(2, true); 8];
        let serial = SmpReplay::run_records(&records, &MODEL);
        let piped = SmpReplay::run_records(
            &records,
            &SmpLatencyModel {
                pipeline_depth: 4,
                ..MODEL
            },
        );
        assert_eq!(piped.makespan.as_ns() * 4, serial.makespan.as_ns());
    }

    #[test]
    fn nearer_switches_complete_sooner() {
        // Footnote 4: an SMP to a 1-hop switch finishes before a 5-hop one.
        let replay = SmpReplay::run_records(
            &[(1, true), (5, true)],
            &SmpLatencyModel {
                pipeline_depth: 2,
                ..MODEL
            },
        );
        assert!(replay.completions[0] < replay.completions[1]);
    }

    #[test]
    fn zero_hop_smp_still_costs_something() {
        let replay = SmpReplay::run_records(&[(0, false)], &MODEL);
        assert!(replay.makespan > SimTime::ZERO);
    }

    #[test]
    fn empty_ledger_is_instant() {
        let ledger = SmpLedger::new();
        let replay = SmpReplay::run(&ledger, None, &MODEL);
        assert_eq!(replay.makespan, SimTime::ZERO);
        assert_eq!(replay.smps, 0);
    }
}
