//! A minimal deterministic discrete-event core.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Logical simulation time in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From microseconds.
    #[must_use]
    pub fn from_us(us: f64) -> Self {
        Self((us * 1000.0).round() as u64)
    }

    /// As microseconds.
    #[must_use]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// As nanoseconds.
    #[must_use]
    pub const fn as_ns(self) -> u64 {
        self.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

/// A deterministic time-ordered event queue. Ties break by insertion order,
/// so identical runs replay identically.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    payloads: std::collections::HashMap<u64, E>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            payloads: std::collections::HashMap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time (the timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — events cannot rewrite history.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        let id = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, id)));
        self.payloads.insert(id, event);
    }

    /// Schedules `event` `delay` after now.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Timestamp of the next pending event without popping it (the clock
    /// does not advance).
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((at, _))| *at)
    }

    /// Pops the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((at, id)) = self.heap.pop()?;
        self.now = at;
        // Heap ids and payload keys are inserted in lockstep, so the
        // payload is present; a desynced queue drops the slot instead of
        // panicking mid-simulation.
        let payload = self.payloads.remove(&id)?;
        Some((at, payload))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime(30));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), 1);
        q.schedule(SimTime(5), 2);
        q.schedule(SimTime(5), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }

    #[test]
    fn relative_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), "first");
        q.pop();
        q.schedule_in(SimTime(7), "second");
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, SimTime(17));
    }

    #[test]
    fn time_conversions() {
        let t = SimTime::from_us(2.5);
        assert_eq!(t.as_ns(), 2500);
        assert!((t.as_us() - 2.5).abs() < 1e-9);
        assert_eq!((SimTime(10) - SimTime(20)).as_ns(), 0, "saturating");
    }
}
