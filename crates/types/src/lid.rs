//! Local Identifiers (LIDs) and the subnet-wide LID space allocator.

use std::fmt;

use crate::error::AddressError;

/// Highest LID usable as a unicast destination (`0xBFFF` = 49151).
///
/// LIDs `0xC000..=0xFFFE` are multicast, `0xFFFF` is the permissive LID and
/// `0x0000` is reserved, so an InfiniBand subnet can never hold more than
/// 49151 addressable unicast endpoints — the hard scalability wall the
/// paper's §V discusses for the prepopulated-LID vSwitch.
pub const MAX_UNICAST_LID: u16 = 0xBFFF;

/// First multicast LID (`0xC000`).
pub const MULTICAST_LID_BASE: u16 = 0xC000;

/// A 16-bit InfiniBand Local Identifier.
///
/// The newtype guarantees the contained value is a *valid unicast* LID
/// (`1..=0xBFFF`); multicast and reserved values are rejected at
/// construction. LIDs order and hash as their integer value, so they can be
/// used directly as dense table indices via [`Lid::index`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lid(u16);

impl Lid {
    /// Creates a unicast LID, rejecting `0` and multicast/permissive values.
    pub fn new(raw: u16) -> Result<Self, AddressError> {
        if raw == 0 {
            Err(AddressError::ReservedLid)
        } else if raw > MAX_UNICAST_LID {
            Err(AddressError::NotUnicast(raw))
        } else {
            Ok(Self(raw))
        }
    }

    /// Creates a LID from a value already known to be valid.
    ///
    /// # Panics
    /// Panics if `raw` is zero or above [`MAX_UNICAST_LID`]. Use this for
    /// literals and trusted allocator output; use [`Lid::new`] for input.
    #[must_use]
    pub fn from_raw(raw: u16) -> Self {
        Self::new(raw).expect("raw LID must be valid unicast")
    }

    /// The raw 16-bit wire value.
    #[must_use]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Zero-based dense index (`lid - 1`), suitable for `Vec` indexing.
    #[must_use]
    pub const fn index(self) -> usize {
        (self.0 - 1) as usize
    }

    /// Index of the 64-entry LFT block containing this LID.
    ///
    /// Block boundaries are aligned at multiples of 64 of the *raw* value
    /// (LID 0 belongs to block 0), matching OpenSM's block layout: LIDs 2 and
    /// 12 share block 0, while LID 64 starts block 1.
    #[must_use]
    pub const fn lft_block(self) -> usize {
        (self.0 as usize) / crate::LFT_BLOCK_SIZE
    }

    /// Offset of this LID within its LFT block.
    #[must_use]
    pub const fn lft_offset(self) -> usize {
        (self.0 as usize) % crate::LFT_BLOCK_SIZE
    }

    /// Whether `self` and `other` live in the same LFT block.
    ///
    /// Determines whether a LID swap costs one SMP (same block) or two
    /// (different blocks) on each switch that must be updated (§V-C1).
    #[must_use]
    pub const fn same_block(self, other: Lid) -> bool {
        self.lft_block() == other.lft_block()
    }
}

impl fmt::Debug for Lid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lid({})", self.0)
    }
}

impl fmt::Display for Lid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<u16> for Lid {
    type Error = AddressError;

    fn try_from(raw: u16) -> Result<Self, Self::Error> {
        Self::new(raw)
    }
}

impl From<Lid> for u16 {
    fn from(lid: Lid) -> u16 {
        lid.raw()
    }
}

/// LID Mask Control: the low `lmc` bits of a LID address a single port,
/// giving `2^lmc` consecutive LIDs (and thus up to `2^lmc` distinct paths)
/// per endpoint.
///
/// §V-A notes that prepopulated vSwitch LIDs *imitate* LMC — multiple paths
/// to one physical machine — without LMC's requirement that the LIDs be
/// sequential.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Lmc(u8);

impl Lmc {
    /// Creates an LMC value; IBA allows 0..=7.
    pub fn new(bits: u8) -> Result<Self, AddressError> {
        if bits <= 7 {
            Ok(Self(bits))
        } else {
            Err(AddressError::InvalidLmc(bits))
        }
    }

    /// LMC of zero: one LID per port.
    #[must_use]
    pub const fn zero() -> Self {
        Self(0)
    }

    /// Raw bit count.
    #[must_use]
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Number of LIDs covered (`2^lmc`).
    #[must_use]
    pub const fn lid_count(self) -> u16 {
        1 << self.0
    }

    /// The base LID of the range containing `lid` under this mask.
    #[must_use]
    pub fn base_of(self, lid: Lid) -> Lid {
        let mask = !(self.lid_count() - 1);
        Lid::from_raw((lid.raw() & mask).max(1))
    }
}

/// Sequential allocator over the unicast LID space.
///
/// The subnet manager owns exactly one of these. Freed LIDs are recycled in
/// ascending order, matching the paper's "next available LID" policy for the
/// dynamic-LID-assignment vSwitch (§V-B), which naturally produces the
/// *spread* (non-sequential) VM LIDs of Fig. 4 once VMs churn.
#[derive(Clone, Debug, Default)]
pub struct LidSpace {
    /// Bitmap of allocated LIDs, indexed by `Lid::index()`.
    allocated: Vec<bool>,
    /// Lowest raw value that *might* be free; everything below is allocated.
    next_hint: u16,
    /// Number of LIDs currently allocated.
    in_use: usize,
}

impl LidSpace {
    /// An empty LID space with nothing allocated.
    #[must_use]
    pub fn new() -> Self {
        Self {
            allocated: vec![false; MAX_UNICAST_LID as usize],
            next_hint: 1,
            in_use: 0,
        }
    }

    /// Number of LIDs currently allocated.
    #[must_use]
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Number of unicast LIDs still free.
    #[must_use]
    pub fn free(&self) -> usize {
        MAX_UNICAST_LID as usize - self.in_use
    }

    /// Whether a specific LID is allocated.
    #[must_use]
    pub fn is_allocated(&self, lid: Lid) -> bool {
        self.allocated[lid.index()]
    }

    /// Allocates the lowest free LID.
    pub fn allocate(&mut self) -> Result<Lid, AddressError> {
        let start = self.next_hint.max(1);
        for raw in start..=MAX_UNICAST_LID {
            let idx = (raw - 1) as usize;
            if !self.allocated[idx] {
                self.allocated[idx] = true;
                self.in_use += 1;
                self.next_hint = raw + 1;
                return Ok(Lid::from_raw(raw));
            }
        }
        Err(AddressError::LidSpaceExhausted)
    }

    /// Claims a specific LID (used when prepopulating VF LIDs, §V-A).
    pub fn claim(&mut self, lid: Lid) -> Result<(), AddressError> {
        if self.allocated[lid.index()] {
            return Err(AddressError::LidInUse(lid.raw()));
        }
        self.allocated[lid.index()] = true;
        self.in_use += 1;
        Ok(())
    }

    /// Releases a LID back to the pool.
    pub fn release(&mut self, lid: Lid) -> Result<(), AddressError> {
        if !self.allocated[lid.index()] {
            return Err(AddressError::LidNotAllocated(lid.raw()));
        }
        self.allocated[lid.index()] = false;
        self.in_use -= 1;
        if lid.raw() < self.next_hint {
            self.next_hint = lid.raw();
        }
        Ok(())
    }

    /// The highest allocated LID, if any — the "topmost" LID that dictates
    /// how many LFT blocks every switch must populate (§VII-C's example of a
    /// node using LID 49151 forcing 768 blocks).
    #[must_use]
    pub fn topmost(&self) -> Option<Lid> {
        self.allocated
            .iter()
            .rposition(|&a| a)
            .map(|idx| Lid::from_raw(idx as u16 + 1))
    }

    /// Iterator over every allocated LID in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Lid> + '_ {
        self.allocated
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(idx, _)| Lid::from_raw(idx as u16 + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_and_multicast() {
        assert_eq!(Lid::new(0), Err(AddressError::ReservedLid));
        assert_eq!(Lid::new(0xC000), Err(AddressError::NotUnicast(0xC000)));
        assert_eq!(Lid::new(0xFFFF), Err(AddressError::NotUnicast(0xFFFF)));
        assert!(Lid::new(1).is_ok());
        assert!(Lid::new(MAX_UNICAST_LID).is_ok());
    }

    #[test]
    fn block_math_matches_paper_example() {
        // §V-C1: LIDs 2 and 12 share the block covering 0-63, so swapping
        // them costs a single SMP per switch.
        let a = Lid::from_raw(2);
        let b = Lid::from_raw(12);
        assert!(a.same_block(b));
        assert_eq!(a.lft_block(), 0);
        // A LID of 64 or greater falls in the next block: two SMPs.
        let c = Lid::from_raw(64);
        assert!(!a.same_block(c));
        assert_eq!(c.lft_block(), 1);
        assert_eq!(c.lft_offset(), 0);
    }

    #[test]
    fn topmost_unicast_needs_768_blocks() {
        // §VII-C: a subnet whose topmost LID is 49151 forces the full LFT,
        // 768 blocks, onto every switch.
        let top = Lid::from_raw(MAX_UNICAST_LID);
        assert_eq!(top.lft_block(), 767);
    }

    #[test]
    fn allocator_is_lowest_first_and_recycles() {
        let mut space = LidSpace::new();
        let a = space.allocate().unwrap();
        let b = space.allocate().unwrap();
        assert_eq!(a.raw(), 1);
        assert_eq!(b.raw(), 2);
        space.release(a).unwrap();
        let c = space.allocate().unwrap();
        assert_eq!(c.raw(), 1, "freed LIDs are reused lowest-first");
        assert_eq!(space.in_use(), 2);
    }

    #[test]
    fn claim_conflicts_detected() {
        let mut space = LidSpace::new();
        space.claim(Lid::from_raw(10)).unwrap();
        assert_eq!(
            space.claim(Lid::from_raw(10)),
            Err(AddressError::LidInUse(10))
        );
        assert_eq!(
            space.release(Lid::from_raw(11)),
            Err(AddressError::LidNotAllocated(11))
        );
    }

    #[test]
    fn allocate_skips_claimed() {
        let mut space = LidSpace::new();
        space.claim(Lid::from_raw(1)).unwrap();
        space.claim(Lid::from_raw(2)).unwrap();
        assert_eq!(space.allocate().unwrap().raw(), 3);
    }

    #[test]
    fn topmost_tracks_highest() {
        let mut space = LidSpace::new();
        assert_eq!(space.topmost(), None);
        space.claim(Lid::from_raw(5)).unwrap();
        space.claim(Lid::from_raw(100)).unwrap();
        assert_eq!(space.topmost().unwrap().raw(), 100);
        space.release(Lid::from_raw(100)).unwrap();
        assert_eq!(space.topmost().unwrap().raw(), 5);
    }

    #[test]
    fn exhaustion_reported() {
        let mut space = LidSpace::new();
        for _ in 0..MAX_UNICAST_LID {
            space.allocate().unwrap();
        }
        assert_eq!(space.allocate(), Err(AddressError::LidSpaceExhausted));
        assert_eq!(space.free(), 0);
    }

    #[test]
    fn lmc_ranges() {
        let lmc = Lmc::new(2).unwrap();
        assert_eq!(lmc.lid_count(), 4);
        assert_eq!(lmc.base_of(Lid::from_raw(7)).raw(), 4);
        assert!(Lmc::new(8).is_err());
        assert_eq!(Lmc::zero().lid_count(), 1);
    }

    #[test]
    fn iter_yields_sorted_allocated() {
        let mut space = LidSpace::new();
        for raw in [30u16, 10, 20] {
            space.claim(Lid::from_raw(raw)).unwrap();
        }
        let got: Vec<u16> = space.iter().map(Lid::raw).collect();
        assert_eq!(got, vec![10, 20, 30]);
    }
}
