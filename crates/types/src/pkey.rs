//! Partition keys.
//!
//! InfiniBand isolates tenants with 16-bit partition keys: the low 15 bits
//! name the partition, the top bit distinguishes *full* members (may talk
//! to anyone in the partition) from *limited* members (may talk only to
//! full members — the classic shared-storage pattern). Every packet
//! carries a P_Key and every HCA port holds a P_Key table programmed by
//! the SM.

use std::fmt;

use crate::error::AddressError;

/// A partition key: 15-bit partition number plus the membership bit.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PKey(u16);

/// The default partition every port implicitly belongs to.
pub const DEFAULT_PKEY: PKey = PKey(0xFFFF);

impl PKey {
    /// Builds a key for partition `number` (15 bits) with `full`
    /// membership.
    pub fn new(number: u16, full: bool) -> Result<Self, AddressError> {
        if number > 0x7FFF {
            return Err(AddressError::InvalidPartition(number));
        }
        if number == 0x7FFF && !full {
            // 0x7FFF limited (raw 0x7FFF) is reserved alongside 0xFFFF.
            return Err(AddressError::InvalidPartition(number));
        }
        Ok(Self(number | if full { 0x8000 } else { 0 }))
    }

    /// The raw wire value.
    #[must_use]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// The 15-bit partition number.
    #[must_use]
    pub const fn number(self) -> u16 {
        self.0 & 0x7FFF
    }

    /// Whether this key grants full membership.
    #[must_use]
    pub const fn is_full(self) -> bool {
        self.0 & 0x8000 != 0
    }

    /// Whether two keys permit communication: same partition number, and
    /// at least one side a full member.
    #[must_use]
    pub const fn matches(self, other: PKey) -> bool {
        self.number() == other.number() && (self.is_full() || other.is_full())
    }
}

impl fmt::Debug for PKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PKey({:#06x}:{})",
            self.number(),
            if self.is_full() { "full" } else { "limited" }
        )
    }
}

impl fmt::Display for PKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#06x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_bit() {
        let full = PKey::new(0x12, true).unwrap();
        let lim = PKey::new(0x12, false).unwrap();
        assert!(full.is_full());
        assert!(!lim.is_full());
        assert_eq!(full.number(), 0x12);
        assert_eq!(lim.number(), 0x12);
        assert_eq!(full.raw(), 0x8012);
        assert_eq!(lim.raw(), 0x0012);
    }

    #[test]
    fn matching_rules() {
        let full = PKey::new(7, true).unwrap();
        let lim_a = PKey::new(7, false).unwrap();
        let other = PKey::new(8, true).unwrap();
        assert!(full.matches(full));
        assert!(full.matches(lim_a));
        assert!(lim_a.matches(full));
        assert!(!lim_a.matches(lim_a), "two limited members cannot talk");
        assert!(!full.matches(other), "different partitions never match");
    }

    #[test]
    fn reserved_values_rejected() {
        assert!(PKey::new(0x8000, true).is_err());
        assert!(PKey::new(0x7FFF, false).is_err());
        assert!(PKey::new(0x7FFF, true).is_ok(), "0xFFFF is the default");
        assert_eq!(DEFAULT_PKEY.raw(), 0xFFFF);
        assert!(DEFAULT_PKEY.is_full());
    }
}
