//! Global Identifiers (GIDs): 128-bit, IPv6-compatible addresses formed from
//! a subnet prefix and a GUID.

use std::fmt;
use std::net::Ipv6Addr;

use crate::guid::Guid;

/// Default subnet prefix used by IB fabrics that have not been assigned a
/// globally unique one (`fe80::/64`, the link-local prefix).
pub const DEFAULT_SUBNET_PREFIX: u64 = 0xfe80_0000_0000_0000;

/// A 128-bit InfiniBand Global Identifier.
///
/// `GID = subnet_prefix (64 bits) || GUID (64 bits)`. The GID of a virtual
/// function is derived from its vGUID, so when a VM migrates with its vGUID
/// the GID follows automatically — the paper's §V-C notes this is why GID
/// migration "does not pose a significant burden".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gid {
    prefix: u64,
    guid: Guid,
}

impl Gid {
    /// Forms a GID from a subnet prefix and a GUID.
    #[must_use]
    pub const fn new(prefix: u64, guid: Guid) -> Self {
        Self { prefix, guid }
    }

    /// Forms a GID under the default (link-local) subnet prefix.
    #[must_use]
    pub const fn link_local(guid: Guid) -> Self {
        Self::new(DEFAULT_SUBNET_PREFIX, guid)
    }

    /// The 64-bit subnet prefix.
    #[must_use]
    pub const fn prefix(self) -> u64 {
        self.prefix
    }

    /// The interface identifier half — the GUID.
    #[must_use]
    pub const fn guid(self) -> Guid {
        self.guid
    }

    /// The GID as a 128-bit integer.
    #[must_use]
    pub const fn as_u128(self) -> u128 {
        ((self.prefix as u128) << 64) | self.guid.raw() as u128
    }

    /// The GID rendered as the IPv6 address it is defined to be.
    #[must_use]
    pub fn to_ipv6(self) -> Ipv6Addr {
        Ipv6Addr::from(self.as_u128())
    }
}

impl fmt::Debug for Gid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gid({})", self.to_ipv6())
    }
}

impl fmt::Display for Gid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ipv6())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gid_is_prefix_plus_guid() {
        let guid = Guid::from_raw(0x0002_c903_00a1_b2c3);
        let gid = Gid::link_local(guid);
        assert_eq!(gid.prefix(), DEFAULT_SUBNET_PREFIX);
        assert_eq!(gid.guid(), guid);
        assert_eq!(gid.as_u128(), 0xfe80_0000_0000_0000_0002_c903_00a1_b2c3u128);
    }

    #[test]
    fn gid_renders_as_ipv6() {
        let guid = Guid::from_raw(0x0002_c903_00a1_b2c3);
        let gid = Gid::link_local(guid);
        assert_eq!(gid.to_string(), "fe80::2:c903:a1:b2c3");
    }

    #[test]
    fn same_guid_different_prefix_differs() {
        let guid = Guid::from_raw(42);
        let a = Gid::new(0x1111_0000_0000_0000, guid);
        let b = Gid::link_local(guid);
        assert_ne!(a, b);
        assert_eq!(a.guid(), b.guid());
    }
}
