//! Error types shared across the workspace.

use std::fmt;

/// Result alias over [`IbError`].
pub type IbResult<T> = Result<T, IbError>;

/// Errors arising from address construction and allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AddressError {
    /// LID 0 is reserved.
    ReservedLid,
    /// The value is outside the unicast LID range.
    NotUnicast(u16),
    /// All 49151 unicast LIDs are allocated.
    LidSpaceExhausted,
    /// The LID is already allocated.
    LidInUse(u16),
    /// The LID is not currently allocated.
    LidNotAllocated(u16),
    /// GUID 0 is reserved.
    ReservedGuid,
    /// LMC above 7.
    InvalidLmc(u8),
    /// Data VL above 14.
    InvalidVl(u8),
    /// Partition number outside the 15-bit space (or reserved).
    InvalidPartition(u16),
}

impl fmt::Display for AddressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ReservedLid => write!(f, "LID 0 is reserved"),
            Self::NotUnicast(raw) => write!(f, "LID {raw:#06x} is not unicast"),
            Self::LidSpaceExhausted => write!(f, "unicast LID space exhausted (49151 in use)"),
            Self::LidInUse(raw) => write!(f, "LID {raw} is already allocated"),
            Self::LidNotAllocated(raw) => write!(f, "LID {raw} is not allocated"),
            Self::ReservedGuid => write!(f, "GUID 0 is reserved"),
            Self::InvalidLmc(bits) => write!(f, "LMC {bits} exceeds the maximum of 7"),
            Self::InvalidVl(raw) => write!(f, "VL{raw} is not a data virtual lane"),
            Self::InvalidPartition(n) => {
                write!(f, "partition number {n:#06x} is reserved or out of range")
            }
        }
    }
}

impl std::error::Error for AddressError {}

/// Top-level error type for subnet, management, and virtualization
/// operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IbError {
    /// An addressing failure.
    Address(AddressError),
    /// A topology inconsistency (dangling link, port out of range, ...).
    Topology(String),
    /// A management operation was attempted against missing state.
    Management(String),
    /// A virtualization operation failed (no free VF, VM not found, ...).
    Virtualization(String),
    /// The operation would violate a capacity limit.
    Capacity(String),
    /// A management packet could not be delivered despite retries (link
    /// failure, switch death, or persistent loss).
    Transport(String),
}

impl fmt::Display for IbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Address(e) => write!(f, "address error: {e}"),
            Self::Topology(msg) => write!(f, "topology error: {msg}"),
            Self::Management(msg) => write!(f, "management error: {msg}"),
            Self::Virtualization(msg) => write!(f, "virtualization error: {msg}"),
            Self::Capacity(msg) => write!(f, "capacity error: {msg}"),
            Self::Transport(msg) => write!(f, "transport error: {msg}"),
        }
    }
}

impl std::error::Error for IbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Address(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AddressError> for IbError {
    fn from(e: AddressError) -> Self {
        Self::Address(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = IbError::from(AddressError::LidInUse(7));
        assert_eq!(e.to_string(), "address error: LID 7 is already allocated");
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e = IbError::from(AddressError::ReservedLid);
        assert!(e.source().is_some());
        assert!(IbError::Topology("x".into()).source().is_none());
    }
}
