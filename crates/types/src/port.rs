//! Port numbering.

use std::fmt;

/// A port number on a switch or HCA.
///
/// Switch port 0 is the management port (the switch's own endpoint — it is
/// where the switch's LID terminates); external ports are numbered from 1.
/// Port 255 is the IBA "drop" value used by the paper's partially-static
/// reconfiguration variant (§VI-C).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortNum(u8);

impl PortNum {
    /// The switch management port (port 0).
    pub const MANAGEMENT: PortNum = PortNum(0);
    /// The packet-dropping pseudo-port (port 255).
    pub const DROP: PortNum = PortNum(crate::DROP_PORT);

    /// Creates a port number.
    #[must_use]
    pub const fn new(raw: u8) -> Self {
        Self(raw)
    }

    /// Raw value.
    #[must_use]
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// Whether this is the management port.
    #[must_use]
    pub const fn is_management(self) -> bool {
        self.0 == 0
    }

    /// Whether this is the drop pseudo-port.
    #[must_use]
    pub const fn is_drop(self) -> bool {
        self.0 == crate::DROP_PORT
    }

    /// Whether this is a usable external (cable-bearing) port.
    #[must_use]
    pub const fn is_external(self) -> bool {
        !self.is_management() && !self.is_drop()
    }
}

impl fmt::Debug for PortNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for PortNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u8> for PortNum {
    fn from(raw: u8) -> Self {
        Self(raw)
    }
}

impl From<PortNum> for u8 {
    fn from(p: PortNum) -> u8 {
        p.raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(PortNum::MANAGEMENT.is_management());
        assert!(PortNum::DROP.is_drop());
        assert!(PortNum::new(1).is_external());
        assert!(PortNum::new(36).is_external());
        assert!(!PortNum::new(0).is_external());
        assert!(!PortNum::new(255).is_external());
    }

    #[test]
    fn ordering_by_number() {
        assert!(PortNum::new(2) < PortNum::new(4));
    }
}
