//! # ib-types
//!
//! Fundamental InfiniBand addressing and identification types shared by every
//! crate in the `ib-vswitch` workspace.
//!
//! InfiniBand names every endpoint with three addresses (IB Architecture
//! Specification 1.2.1, and §II-B of *Towards the InfiniBand SR-IOV vSwitch
//! Architecture*, CLUSTER 2015):
//!
//! * [`Lid`] — the 16-bit **Local Identifier** used for intra-subnet routing.
//!   Only `0x0001..=0xBFFF` (49151 values) are unicast; the unicast LID space
//!   bounds the size of a subnet.
//! * [`Guid`] — the 64-bit **Global Unique Identifier** burned in by the
//!   manufacturer (and additional *virtual* GUIDs assigned by the subnet
//!   manager for SR-IOV virtual functions).
//! * [`Gid`] — the 128-bit **Global Identifier**, formed from a 64-bit subnet
//!   prefix plus a GUID; a valid IPv6 address.
//!
//! The crate is dependency-light by design: every other crate in the
//! workspace builds on these newtypes, so they must stay small, `Copy`, and
//! cheap to hash.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod gid;
pub mod guid;
pub mod lid;
pub mod pkey;
pub mod port;
pub mod vl;

pub use error::{AddressError, IbError, IbResult};
pub use gid::Gid;
pub use guid::Guid;
pub use lid::{Lid, LidSpace, Lmc, MAX_UNICAST_LID, MULTICAST_LID_BASE};
pub use pkey::{PKey, DEFAULT_PKEY};
pub use port::PortNum;
pub use vl::VirtualLane;

/// Number of LID entries covered by one Linear Forwarding Table block.
///
/// LFTs are read and written over the management interface in blocks of 64
/// entries (one `SubnSet(LinearForwardingTable)` SMP carries exactly one
/// block). The block granularity is what makes the paper's LID-swap
/// reconfiguration cost either one or two SMPs per switch: one if both LIDs
/// fall in the same block, two otherwise.
pub const LFT_BLOCK_SIZE: usize = 64;

/// The port value that causes a switch to drop packets for a LID.
///
/// §VI-C of the paper proposes forwarding a migrating VM's LID through port
/// 255 to implement a partially-static reconfiguration that drops traffic
/// only towards the moving node.
pub const DROP_PORT: u8 = 255;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lft_block_size_matches_iba() {
        assert_eq!(LFT_BLOCK_SIZE, 64);
    }

    #[test]
    fn drop_port_is_255() {
        assert_eq!(DROP_PORT, 255);
    }
}
