//! Global Unique Identifiers (GUIDs) and the subnet manager's virtual-GUID
//! allocator.

use std::fmt;

use crate::error::AddressError;

/// A 64-bit InfiniBand Global Unique Identifier.
///
/// Physical GUIDs are assigned by the manufacturer to each device and HCA
/// port; *virtual* GUIDs (vGUIDs) are assigned by the subnet manager to
/// SR-IOV virtual functions and — crucially for the paper — migrate together
/// with the VM that owns them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Guid(u64);

impl Guid {
    /// Creates a GUID from its raw 64-bit value. Zero is reserved/invalid.
    pub fn new(raw: u64) -> Result<Self, AddressError> {
        if raw == 0 {
            Err(AddressError::ReservedGuid)
        } else {
            Ok(Self(raw))
        }
    }

    /// Creates a GUID from a trusted non-zero value.
    ///
    /// # Panics
    /// Panics on zero.
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        Self::new(raw).expect("GUID must be non-zero")
    }

    /// The raw 64-bit value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Guid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Guid({:#018x})", self.0)
    }
}

impl fmt::Display for Guid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Conventional IB GUID rendering: four colon-separated 16-bit groups.
        write!(
            f,
            "{:04x}:{:04x}:{:04x}:{:04x}",
            (self.0 >> 48) & 0xffff,
            (self.0 >> 32) & 0xffff,
            (self.0 >> 16) & 0xffff,
            self.0 & 0xffff
        )
    }
}

/// Deterministic GUID factory.
///
/// Real fabrics get GUIDs from manufacturer OUI blocks; the simulator instead
/// derives them from a namespace byte plus a counter so that tests and
/// benchmarks are reproducible. Separate namespaces keep switch GUIDs, HCA
/// GUIDs, and vGUIDs visually and numerically disjoint.
#[derive(Clone, Debug)]
pub struct GuidFactory {
    namespace: u8,
    next: u64,
}

/// Namespace for physical switch GUIDs.
pub const NAMESPACE_SWITCH: u8 = 0x01;
/// Namespace for physical HCA/PF GUIDs.
pub const NAMESPACE_HCA: u8 = 0x02;
/// Namespace for virtual (SR-IOV VF / VM) GUIDs.
pub const NAMESPACE_VGUID: u8 = 0x0f;

impl GuidFactory {
    /// A factory minting GUIDs in `namespace`.
    #[must_use]
    pub fn new(namespace: u8) -> Self {
        Self { namespace, next: 1 }
    }

    /// Mints the next GUID.
    pub fn mint(&mut self) -> Guid {
        let raw = (u64::from(self.namespace) << 56) | self.next;
        self.next += 1;
        Guid::from_raw(raw)
    }

    /// How many GUIDs have been minted.
    #[must_use]
    pub fn minted(&self) -> u64 {
        self.next - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_guid_rejected() {
        assert_eq!(Guid::new(0), Err(AddressError::ReservedGuid));
        assert!(Guid::new(1).is_ok());
    }

    #[test]
    fn display_formats_groups() {
        let g = Guid::from_raw(0x0002_c903_00a1_b2c3);
        assert_eq!(g.to_string(), "0002:c903:00a1:b2c3");
    }

    #[test]
    fn factory_is_deterministic_and_namespaced() {
        let mut sw = GuidFactory::new(NAMESPACE_SWITCH);
        let mut hca = GuidFactory::new(NAMESPACE_HCA);
        let a = sw.mint();
        let b = sw.mint();
        let c = hca.mint();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.raw() >> 56, u64::from(NAMESPACE_SWITCH));
        assert_eq!(c.raw() >> 56, u64::from(NAMESPACE_HCA));
        assert_eq!(sw.minted(), 2);
    }
}
