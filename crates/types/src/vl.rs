//! Virtual lanes.

use std::fmt;

use crate::error::AddressError;

/// Maximum number of data virtual lanes supported by IBA (VL0–VL14; VL15 is
/// reserved for subnet management traffic).
pub const MAX_DATA_VLS: u8 = 15;

/// A data virtual lane.
///
/// Layered deadlock-free routing engines (LASH, DFSSSP) escape cyclic channel
/// dependencies by assigning conflicting flows to different VLs; the Double
/// Scheme reconfiguration separates old and new routing functions the same
/// way. We model VL0–VL14 as data lanes and keep VL15 implicit (SMPs always
/// travel on VL15 and can never deadlock against data traffic).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualLane(u8);

impl VirtualLane {
    /// VL0, the default data lane.
    pub const VL0: VirtualLane = VirtualLane(0);

    /// VL1, the first escape lane — used by the minimal engines to
    /// isolate switch-destined traffic from the host lane.
    pub const VL1: VirtualLane = VirtualLane(1);

    /// Creates a data VL (0..=14).
    pub fn new(raw: u8) -> Result<Self, AddressError> {
        if raw < MAX_DATA_VLS {
            Ok(Self(raw))
        } else {
            Err(AddressError::InvalidVl(raw))
        }
    }

    /// Raw lane number.
    #[must_use]
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// The next-higher lane, if one exists — used by DFSSSP when lifting a
    /// deadlocking flow out of a cyclic layer.
    #[must_use]
    pub fn next(self) -> Option<Self> {
        Self::new(self.0 + 1).ok()
    }
}

impl fmt::Debug for VirtualLane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VL{}", self.0)
    }
}

impl fmt::Display for VirtualLane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VL{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vl15_is_not_a_data_lane() {
        assert!(VirtualLane::new(14).is_ok());
        assert_eq!(VirtualLane::new(15), Err(AddressError::InvalidVl(15)));
    }

    #[test]
    fn next_saturates_at_vl14() {
        assert_eq!(VirtualLane::VL0.next().unwrap().raw(), 1);
        assert_eq!(VirtualLane::new(14).unwrap().next(), None);
    }
}
