//! The reverse route index: per-(switch, port) destination sets.
//!
//! [`affected_destinations`](crate::affected_destinations) answers "which
//! destination columns cross this link?" with a two-row scan over every
//! registered LID — O(LIDs) per fault, re-done from scratch on every trap.
//! On large fabrics the scan, not the column re-route, dominates a repair's
//! latency. The [`ReverseRouteIndex`] inverts the installed tables once —
//! `(switch, out-port) -> { destination LIDs forwarded there }` — so a
//! link-down trap reads its dirty set off two hash-set lookups, O(dirty),
//! and the index is maintained incrementally as repair sweeps splice dirty
//! columns.
//!
//! The index is *derived* state and therefore distrusted by construction:
//! [`ReverseRouteIndex::affected`] is debug-asserted against the two-row
//! scan at every repair, and [`ReverseRouteIndex::mismatches`] rebuilds the
//! index from the installed tables and reports any divergence — the
//! soak harness runs that check after every event.

use ib_routing::RoutingTables;
use ib_subnet::{NodeId, Subnet};
use ib_types::{Lid, PortNum};
use rustc_hash::{FxHashMap, FxHashSet};

/// Per-switch, per-out-port sets of destination LIDs, mirroring a set of
/// forwarding tables row-for-row. See the module docs for the contract.
#[derive(Clone, Debug, Default)]
pub struct ReverseRouteIndex {
    /// `ports[switch][port.raw()]` = destinations whose row at `switch`
    /// forwards out `port`. The vector is grown on demand; absent entries
    /// mean an empty set.
    ports: FxHashMap<NodeId, Vec<FxHashSet<Lid>>>,
}

impl ReverseRouteIndex {
    /// Builds the index from the LFTs *installed* in the subnet — every
    /// node that holds a table, alive or not, exactly the rows the two-row
    /// scan would read.
    #[must_use]
    pub fn from_installed(subnet: &Subnet) -> Self {
        let mut idx = Self::default();
        for node in subnet.nodes() {
            if let Some(lft) = node.lft() {
                for (lid, port) in lft.iter() {
                    idx.insert(node.id, port, lid);
                }
            }
        }
        idx
    }

    /// Builds the index from a routing engine's computed tables — the view
    /// the SM keeps in sync with its splice baseline (`last_tables`).
    #[must_use]
    pub fn from_tables(tables: &RoutingTables) -> Self {
        let mut idx = Self::default();
        for (&sw, lft) in &tables.lfts {
            for (lid, port) in lft.iter() {
                idx.insert(sw, port, lid);
            }
        }
        idx
    }

    fn insert(&mut self, sw: NodeId, port: PortNum, lid: Lid) {
        let sets = self.ports.entry(sw).or_default();
        let slot = port.raw() as usize;
        if sets.len() <= slot {
            sets.resize_with(slot + 1, FxHashSet::default);
        }
        sets[slot].insert(lid);
    }

    fn remove(&mut self, sw: NodeId, port: PortNum, lid: Lid) {
        if let Some(sets) = self.ports.get_mut(&sw) {
            if let Some(set) = sets.get_mut(port.raw() as usize) {
                set.remove(&lid);
            }
        }
    }

    /// The destinations whose row at `sw` forwards out `port` (one side of
    /// a link only — [`ReverseRouteIndex::affected`] unions both ends).
    #[must_use]
    pub fn destinations_via(&self, sw: NodeId, port: PortNum) -> Option<&FxHashSet<Lid>> {
        self.ports.get(&sw)?.get(port.raw() as usize)
    }

    /// The dirty destination set of a link fault at `(node, port)`:
    /// registered LIDs routed across the link in either direction, sorted
    /// ascending — the O(dirty) answer to the same question
    /// [`affected_destinations`](crate::affected_destinations) scans for.
    ///
    /// Like the scan, this follows the *cabling* (`remote`), not the live
    /// link state, so it works on downed links; and it filters to LIDs
    /// still registered, so rows left behind for released LIDs never
    /// resurrect them.
    #[must_use]
    pub fn affected(&self, subnet: &Subnet, node: NodeId, port: PortNum) -> Vec<Lid> {
        let mut ends: Vec<(NodeId, PortNum)> = vec![(node, port)];
        if let Some(remote) = subnet
            .node(node)
            .ports
            .get(port.raw() as usize)
            .and_then(|p| p.remote)
        {
            ends.push((remote.node, remote.port));
        }
        let mut out: Vec<Lid> = Vec::new();
        for (n, p) in ends {
            if let Some(set) = self.destinations_via(n, p) {
                out.extend(
                    set.iter()
                        .copied()
                        .filter(|&lid| subnet.endpoint_of(lid).is_some()),
                );
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Incremental maintenance for one spliced destination column: for
    /// every switch, moves `lid` from its `before` out-port set to its
    /// `after` out-port set. Called once per dirty column when a repair
    /// splices re-routed columns into the baseline — O(switches) per
    /// column, the same order as the splice itself.
    pub fn apply_column_update(&mut self, lid: Lid, before: &RoutingTables, after: &RoutingTables) {
        for (&sw, lft) in &after.lfts {
            let old = before.lfts.get(&sw).and_then(|l| l.get(lid));
            let new = lft.get(lid);
            if old == new {
                continue;
            }
            if let Some(p) = old {
                self.remove(sw, p, lid);
            }
            if let Some(p) = new {
                self.insert(sw, p, lid);
            }
        }
    }

    /// Re-derives one destination column from the *installed* tables:
    /// purges `lid` everywhere, then re-inserts it per the rows currently
    /// on the switches. The hook for mutations that bypass the SM's sweep
    /// pipeline — an Algorithm-1 LID swap/copy rewrites a couple of
    /// columns with direct SMPs, and the SM is told via
    /// `note_columns_changed` which calls this.
    pub fn refresh_column_from_installed(&mut self, subnet: &Subnet, lid: Lid) {
        for sets in self.ports.values_mut() {
            for set in sets.iter_mut() {
                set.remove(&lid);
            }
        }
        for node in subnet.nodes() {
            if let Some(p) = node.lft().and_then(|l| l.get(lid)) {
                self.insert(node.id, p, lid);
            }
        }
    }

    /// The equivalence audit: rebuilds a fresh index from the installed
    /// tables and reports every `(switch, port)` whose destination set
    /// disagrees — empty iff this index answers every possible
    /// [`ReverseRouteIndex::affected`] query exactly like the two-row scan
    /// would. The chaos soak runs this after every event.
    #[must_use]
    pub fn mismatches(&self, subnet: &Subnet) -> Vec<String> {
        let fresh = Self::from_installed(subnet);
        let mut out = Vec::new();
        let mut switches: Vec<NodeId> = self
            .ports
            .keys()
            .chain(fresh.ports.keys())
            .copied()
            .collect();
        switches.sort_unstable();
        switches.dedup();
        static EMPTY: &[FxHashSet<Lid>] = &[];
        for sw in switches {
            let a = self.ports.get(&sw).map_or(EMPTY, Vec::as_slice);
            let b = fresh.ports.get(&sw).map_or(EMPTY, Vec::as_slice);
            for p in 0..a.len().max(b.len()) {
                let empty = FxHashSet::default();
                let ia = a.get(p).unwrap_or(&empty);
                let ib = b.get(p).unwrap_or(&empty);
                if ia != ib {
                    out.push(format!(
                        "reverse index stale at ({sw:?}, port {p}): index has {} dest(s), installed rows have {}",
                        ia.len(),
                        ib.len()
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affected_destinations;
    use ib_routing::testutil::assign_lids;
    use ib_routing::EngineKind;
    use ib_subnet::topology::fattree::two_level;
    use ib_subnet::topology::torus::torus_2d;

    fn installed(engine: EngineKind) -> (ib_subnet::topology::BuiltTopology, RoutingTables) {
        let mut t = two_level(3, 3, 2);
        assign_lids(&mut t);
        let tables = engine.build().compute(&t.subnet).unwrap();
        tables.install(&mut t.subnet).unwrap();
        (t, tables)
    }

    /// The index must answer every (switch, port) exactly like the scan.
    fn assert_agrees(idx: &ReverseRouteIndex, subnet: &Subnet) {
        for sw in subnet.switches().map(|n| n.id).collect::<Vec<_>>() {
            let ports = subnet.node(sw).ports.len();
            for p in 1..ports {
                let port = PortNum::new(p as u8);
                assert_eq!(
                    idx.affected(subnet, sw, port),
                    affected_destinations(subnet, sw, port),
                    "({sw:?}, {port})"
                );
            }
        }
    }

    #[test]
    fn fresh_index_equals_the_scan_on_a_fat_tree() {
        let (t, tables) = installed(EngineKind::MinHop);
        assert_agrees(&ReverseRouteIndex::from_installed(&t.subnet), &t.subnet);
        let from_tables = ReverseRouteIndex::from_tables(&tables);
        assert_agrees(&from_tables, &t.subnet);
        assert!(from_tables.mismatches(&t.subnet).is_empty());
    }

    #[test]
    fn fresh_index_equals_the_scan_on_a_torus() {
        let mut t = torus_2d(3, 3, 1, true);
        assign_lids(&mut t);
        let tables = EngineKind::Dfsssp.build().compute(&t.subnet).unwrap();
        tables.install(&mut t.subnet).unwrap();
        assert_agrees(&ReverseRouteIndex::from_installed(&t.subnet), &t.subnet);
    }

    #[test]
    fn column_splice_keeps_the_index_in_sync() {
        let (mut t, before) = installed(EngineKind::MinHop);
        let mut idx = ReverseRouteIndex::from_tables(&before);
        // Re-route one destination column with a degraded recompute and
        // splice it, updating the index incrementally.
        let (node, port) = t
            .subnet
            .switches()
            .flat_map(|n| n.connected_ports().map(move |(p, ep)| (n.id, p, ep.node)))
            .find(|&(_, _, peer)| t.subnet.node(peer).is_switch())
            .map(|(n, p, _)| (n, p))
            .unwrap();
        let dirty = affected_destinations(&t.subnet, node, port);
        assert!(!dirty.is_empty());
        t.subnet.set_link_down(node, port).unwrap();
        let after = EngineKind::MinHop
            .build()
            .repair_with(
                &t.subnet,
                ib_routing::RoutingOptions::default(),
                &before,
                &dirty,
                &ib_observe::Observer::disabled(),
            )
            .unwrap();
        after.install(&mut t.subnet).unwrap();
        for &lid in &dirty {
            idx.apply_column_update(lid, &before, &after);
        }
        assert!(idx.mismatches(&t.subnet).is_empty());
        assert_agrees(&idx, &t.subnet);
    }

    #[test]
    fn refresh_column_follows_out_of_band_row_edits() {
        let (mut t, tables) = installed(EngineKind::MinHop);
        let mut idx = ReverseRouteIndex::from_tables(&tables);
        // Mutate one row behind the index's back (what a migration's
        // direct LFT SMPs do), then refresh just that column.
        let lid = t.subnet.lids()[0];
        let sw = t.subnet.switches().next().unwrap().id;
        let old = t.subnet.lft(sw).unwrap().get(lid).unwrap();
        let other = (1..t.subnet.node(sw).ports.len() as u8)
            .map(PortNum::new)
            .find(|&p| p != old)
            .unwrap();
        t.subnet.lft_mut(sw).unwrap().set(lid, other);
        assert!(!idx.mismatches(&t.subnet).is_empty(), "index is now stale");
        idx.refresh_column_from_installed(&t.subnet, lid);
        assert!(idx.mismatches(&t.subnet).is_empty());
        assert_agrees(&idx, &t.subnet);
    }

    #[test]
    fn released_lids_never_resurface_in_affected_sets() {
        let (mut t, tables) = installed(EngineKind::MinHop);
        let idx = ReverseRouteIndex::from_tables(&tables);
        // Deregister a LID while its rows are still installed: the scan
        // skips it (it only walks registered LIDs), so the index must too.
        let lid = t.subnet.lids()[0];
        t.subnet.clear_lid(lid).unwrap();
        assert_agrees(&idx, &t.subnet);
    }
}
