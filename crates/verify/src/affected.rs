//! The affected-destination set of a link fault.
//!
//! Incremental repair (the SM's delta-routing sweep) needs to know exactly
//! which destination LIDs had an installed path across a failed link —
//! those columns must be re-routed, everything else can stay byte-
//! identical.
//!
//! **Why a two-row scan equals the full table walk.** The verifier walks
//! every `(source switch, destination)` pair hop by hop; a link
//! `(u, p) <-> (v, q)` lies on some installed walk for destination `d` iff
//! a walk reaches `u` and forwards out `p`, or reaches `v` and forwards
//! out `q`. But LFT forwarding is memoryless — *every* walk that passes
//! through `u` continues with the single row `lft(u)[d]` — and `u` is
//! itself a walk source (the verifier audits every switch as a source).
//! So "some walk for `d` crosses the link" collapses to
//! `lft(u)[d] == p || lft(v)[d] == q`: two row reads per LID instead of a
//! fabric-wide traversal. The equivalence is pinned against a
//! brute-force walk in this module's tests.

use ib_subnet::{NodeId, Subnet};
use ib_types::{Lid, PortNum};

/// Destination LIDs whose installed paths traverse the link at
/// `(node, port)` — in either direction — sorted ascending.
///
/// Works on downed links too: ports keep their cabling (`remote`) when a
/// link goes down, so the far end is still recoverable. Non-switch
/// endpoints (an HCA side of an uplink) have no LFT and contribute
/// nothing; a completely uncabled `(node, port)` yields whatever the
/// near-end rows still claim to forward there.
#[must_use]
pub fn affected_destinations(subnet: &Subnet, node: NodeId, port: PortNum) -> Vec<Lid> {
    let mut ends: Vec<(NodeId, PortNum)> = vec![(node, port)];
    if let Some(remote) = subnet
        .node(node)
        .ports
        .get(port.raw() as usize)
        .and_then(|p| p.remote)
    {
        ends.push((remote.node, remote.port));
    }
    subnet
        .lids()
        .into_iter()
        .filter(|&lid| {
            ends.iter()
                .any(|&(n, p)| subnet.lft(n).is_some_and(|lft| lft.get(lid) == Some(p)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_routing::testutil::assign_lids;
    use ib_routing::EngineKind;
    use ib_subnet::topology::fattree::two_level;
    use ib_subnet::topology::torus::torus_2d;
    use ib_subnet::Endpoint;

    /// Brute force: walk every (switch, lid) pair through the installed
    /// tables and collect the LIDs whose walks traverse the given link in
    /// either direction.
    fn by_walking(subnet: &Subnet, node: NodeId, port: PortNum) -> Vec<Lid> {
        let far = subnet
            .node(node)
            .ports
            .get(port.raw() as usize)
            .and_then(|p| p.remote);
        let switches: Vec<NodeId> = subnet.switches().map(|n| n.id).collect();
        let crosses = |cur: NodeId, out: PortNum| {
            (cur == node && out == port)
                || far.is_some_and(|f: Endpoint| cur == f.node && out == f.port)
        };
        subnet
            .lids()
            .into_iter()
            .filter(|&lid| {
                let Some(target) = subnet.endpoint_of(lid) else {
                    return false;
                };
                switches.iter().any(|&start| {
                    let mut cur = start;
                    for _ in 0..64 {
                        if cur == target.node {
                            return false;
                        }
                        let Some(out) = subnet.lft(cur).and_then(|l| l.get(lid)) else {
                            return false;
                        };
                        if out.is_management() {
                            return false;
                        }
                        if crosses(cur, out) {
                            return true;
                        }
                        let Some(next) = subnet.neighbor(cur, out) else {
                            return false;
                        };
                        cur = next.node;
                    }
                    false
                })
            })
            .collect()
    }

    fn installed(engine: EngineKind) -> ib_subnet::topology::BuiltTopology {
        let mut t = two_level(3, 3, 2);
        assign_lids(&mut t);
        let tables = engine.build().compute(&t.subnet).unwrap();
        tables.install(&mut t.subnet).unwrap();
        t
    }

    #[test]
    fn row_scan_equals_table_walk_on_fat_tree() {
        let t = installed(EngineKind::MinHop);
        // Every switch-to-switch link, from both endpoints.
        for sw in t.subnet.switches().map(|n| n.id).collect::<Vec<_>>() {
            let ports = t.subnet.node(sw).ports.len();
            for p in 1..ports {
                let port = PortNum::new(p as u8);
                assert_eq!(
                    affected_destinations(&t.subnet, sw, port),
                    by_walking(&t.subnet, sw, port),
                    "link ({sw:?}, {port})"
                );
            }
        }
    }

    #[test]
    fn row_scan_equals_table_walk_on_torus() {
        let mut t = torus_2d(3, 3, 1, true);
        assign_lids(&mut t);
        let tables = EngineKind::Dfsssp.build().compute(&t.subnet).unwrap();
        tables.install(&mut t.subnet).unwrap();
        for sw in t.subnet.switches().map(|n| n.id).collect::<Vec<_>>() {
            let ports = t.subnet.node(sw).ports.len();
            for p in 1..ports {
                let port = PortNum::new(p as u8);
                assert_eq!(
                    affected_destinations(&t.subnet, sw, port),
                    by_walking(&t.subnet, sw, port),
                    "link ({sw:?}, {port})"
                );
            }
        }
    }

    #[test]
    fn downed_link_keeps_its_affected_set() {
        let mut t = installed(EngineKind::MinHop);
        // Pick a leaf uplink: its affected set must be non-empty before
        // and unchanged right after the link drops (cabling persists).
        let leaf = t.switch_levels[0][0];
        let ports = t.subnet.node(leaf).ports.len();
        let uplink = (1..ports)
            .map(|p| PortNum::new(p as u8))
            .find(|&p| {
                t.subnet
                    .neighbor(leaf, p)
                    .is_some_and(|e| t.subnet.node(e.node).is_switch())
            })
            .unwrap();
        let before = affected_destinations(&t.subnet, leaf, uplink);
        assert!(!before.is_empty(), "an installed uplink carries traffic");
        t.subnet.set_link_down(leaf, uplink).unwrap();
        assert_eq!(affected_destinations(&t.subnet, leaf, uplink), before);
    }
}
