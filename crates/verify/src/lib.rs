//! # ib-verify
//!
//! End-to-end fabric invariant verification over **installed** LFTs.
//!
//! The paper's claim (§V-C, Table I) is that vSwitch reconfiguration stays
//! *correct* while sending orders of magnitude fewer SMPs. The rest of the
//! workspace accounts for the SMPs; this crate proves the correctness half:
//! given a subnet with its forwarding tables actually installed — after a
//! bring-up, a trap-driven re-sweep, or an Algorithm-1 LID swap/copy — the
//! [`FabricVerifier`] checks the four invariants that define a healthy
//! fabric:
//!
//! 1. **No black holes** — every active LID is reachable from every switch
//!    by following LFT entries to its endpoint;
//! 2. **Loop-freedom** — no LFT forwarding cycle exists for any
//!    destination LID;
//! 3. **Deadlock-freedom** — the channel dependency graph induced by the
//!    installed tables (per virtual lane, when the engine layered them) is
//!    acyclic, reusing the `ib-routing` CDG machinery;
//! 4. **vSwitch addressing** — no LID is owned by two endpoints, every
//!    registered LID resolves to a live port, and (via [`LftSnapshot`])
//!    a swap/copy touches only the rows of the LIDs it was asked to move.
//!
//! Verification is read-only and deterministic: the same subnet state
//! produces the same [`VerifyReport`], byte for byte, regardless of worker
//! counts anywhere else in the pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The verifier runs on degraded fabrics by design: it must report, never
// panic (tests may still unwrap).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod affected;
mod rindex;
mod snapshot;
mod verifier;

pub use affected::affected_destinations;
pub use rindex::ReverseRouteIndex;
pub use snapshot::LftSnapshot;
pub use verifier::{FabricVerifier, InvariantClass, VerifyReport, Violation};
