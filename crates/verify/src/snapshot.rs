//! Per-destination LFT fingerprints: the Algorithm-1 "uninvolved paths are
//! untouched" check.
//!
//! §V-C argues that a LID swap/copy reconfigures migration in `O(switches)`
//! SMPs precisely because *only* the rows of the LIDs being moved change.
//! [`LftSnapshot`] makes that claim checkable: capture before the operation,
//! diff after, and any destination outside the allowed set whose forwarding
//! column changed anywhere in the fabric is a violation.

use ib_subnet::Subnet;
use ib_types::Lid;
use rustc_hash::{FxHashMap, FxHashSet};

use crate::verifier::{InvariantClass, Violation};

/// A fingerprint of every destination LID's forwarding column across all
/// switch LFTs, cheap to capture and compare.
///
/// For each registered LID, the snapshot hashes the sequence of
/// `(switch, out-port)` rows in a stable switch order (FNV-1a over the raw
/// bytes). Two snapshots assign a LID equal fingerprints iff every switch
/// forwards that LID identically in both.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LftSnapshot {
    /// Raw LID -> column fingerprint.
    columns: FxHashMap<u16, u64>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, byte: u8) {
    *hash ^= u64::from(byte);
    *hash = hash.wrapping_mul(FNV_PRIME);
}

impl LftSnapshot {
    /// Fingerprints the installed tables of `subnet`.
    ///
    /// Switch order is the subnet's own (deterministic) iteration order;
    /// a switch with no installed LFT contributes a distinct marker so
    /// "table dropped entirely" also shows up as a change.
    #[must_use]
    pub fn capture(subnet: &Subnet) -> Self {
        let lids = subnet.lids();
        let mut columns: FxHashMap<u16, u64> = lids.iter().map(|l| (l.raw(), FNV_OFFSET)).collect();
        for node in subnet.switches() {
            let lft = subnet.lft(node.id);
            for &lid in &lids {
                let Some(hash) = columns.get_mut(&lid.raw()) else {
                    continue;
                };
                // Fold in the switch id so identical rows on different
                // switches don't collide when tables move wholesale.
                for b in (node.id.index() as u32).to_le_bytes() {
                    fnv1a(hash, b);
                }
                match lft.and_then(|t| t.get(lid)) {
                    Some(port) => {
                        fnv1a(hash, 1);
                        fnv1a(hash, port.raw());
                    }
                    None => fnv1a(hash, 0),
                }
            }
        }
        Self { columns }
    }

    /// Number of fingerprinted destinations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the snapshot covers no destinations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Raw LIDs whose forwarding columns differ between the two snapshots
    /// (including LIDs present in only one), in ascending order.
    #[must_use]
    pub fn diff(&self, after: &Self) -> Vec<u16> {
        let mut changed: Vec<u16> = self
            .columns
            .iter()
            .filter(|(lid, hash)| after.columns.get(lid) != Some(hash))
            .map(|(&lid, _)| lid)
            .collect();
        for &lid in after.columns.keys() {
            if !self.columns.contains_key(&lid) {
                changed.push(lid);
            }
        }
        changed.sort_unstable();
        changed.dedup();
        changed
    }

    /// Checks that between `self` (before) and `after`, only the columns of
    /// `allowed` LIDs changed. Every other change is an [`InvariantClass::
    /// Addressing`] violation — the swap/copy touched a path it had no
    /// business touching.
    #[must_use]
    pub fn verify_preserved(&self, after: &Self, allowed: &[Lid]) -> Vec<Violation> {
        let allowed: FxHashSet<u16> = allowed.iter().map(|l| l.raw()).collect();
        self.diff(after)
            .into_iter()
            .filter(|lid| !allowed.contains(lid))
            .map(|lid| Violation {
                class: InvariantClass::Addressing,
                detail: format!("forwarding column of uninvolved LID {lid} changed"),
                lid: Some(Lid::from_raw(lid)),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_routing::testutil::{assign_lids, host_lid};
    use ib_routing::EngineKind;
    use ib_subnet::topology::fattree::two_level;
    use ib_types::PortNum;

    fn fabric() -> ib_subnet::topology::BuiltTopology {
        let mut t = two_level(3, 2, 2);
        assign_lids(&mut t);
        let tables = EngineKind::MinHop.build().compute(&t.subnet).unwrap();
        tables.install(&mut t.subnet).unwrap();
        t
    }

    #[test]
    fn identical_fabric_has_empty_diff() {
        let t = fabric();
        let a = LftSnapshot::capture(&t.subnet);
        let b = LftSnapshot::capture(&t.subnet);
        assert_eq!(a, b);
        assert!(a.diff(&b).is_empty());
        assert!(!a.is_empty());
    }

    #[test]
    fn row_change_shows_up_only_for_that_lid() {
        let mut t = fabric();
        let before = LftSnapshot::capture(&t.subnet);
        let victim = host_lid(&t, 3);
        let leaf = t.switch_levels[0][0];
        t.subnet.lft_mut(leaf).unwrap().set(victim, PortNum::DROP);
        let after = LftSnapshot::capture(&t.subnet);
        assert_eq!(before.diff(&after), vec![victim.raw()]);
        // Allowed when declared, a violation when not.
        assert!(before.verify_preserved(&after, &[victim]).is_empty());
        let violations = before.verify_preserved(&after, &[]);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].class, InvariantClass::Addressing);
    }

    #[test]
    fn dropped_table_changes_every_column() {
        let mut t = fabric();
        let before = LftSnapshot::capture(&t.subnet);
        let leaf = t.switch_levels[0][0];
        *t.subnet.lft_mut(leaf).unwrap() = ib_subnet::Lft::new();
        let after = LftSnapshot::capture(&t.subnet);
        assert_eq!(before.diff(&after).len(), before.len());
    }
}
