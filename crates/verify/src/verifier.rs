//! The [`FabricVerifier`]: the four fabric invariants checked against
//! installed LFTs.

use ib_observe::Observer;
use ib_routing::cdg::Cdg;
use ib_routing::{RoutingTables, SwitchGraph, VlAssignment};
use ib_subnet::{NodeId, Subnet};
use ib_types::{IbResult, Lid};
use rustc_hash::{FxHashMap, FxHashSet};

/// Which invariant a violation breaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InvariantClass {
    /// A LID unreachable from some switch: the packet is dropped, delivered
    /// to the wrong endpoint, or dead-ends in a missing/downed row.
    BlackHole,
    /// Following LFT entries for one destination revisits a switch.
    ForwardingLoop,
    /// The channel dependency graph of the installed tables has a cycle on
    /// some virtual lane (Duato's condition violated).
    DeadlockCycle,
    /// vSwitch addressing broken: duplicate LID ownership, or a registered
    /// LID that does not resolve to a live owning endpoint.
    Addressing,
    /// A switch still holds an LFT row toward a destination it cannot
    /// reach (the fabric is split and the row points into the lost
    /// component). The legal degraded states are an *empty* row or an
    /// explicit drop — distribution pads cleared rows to the drop port,
    /// OpenSM-style — so a row toward a real port is stale routing state
    /// that was never cleared.
    StaleRoute,
}

impl InvariantClass {
    /// Stable kebab-case name, used in reports and metrics.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::BlackHole => "black-hole",
            Self::ForwardingLoop => "forwarding-loop",
            Self::DeadlockCycle => "deadlock-cycle",
            Self::Addressing => "addressing",
            Self::StaleRoute => "stale-route",
        }
    }
}

impl std::fmt::Display for InvariantClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One broken invariant, with a human-readable witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The invariant class.
    pub class: InvariantClass,
    /// What exactly is wrong, naming switches/LIDs involved.
    pub detail: String,
    /// The destination column this violation is attributable to, when the
    /// check walks per-destination state (forwarding walks, snapshot
    /// diffs). `None` for fabric-global findings — LID ownership clashes
    /// and deadlock cycles — which no single column owns. Repair gates use
    /// this to distinguish damage on the columns a repair touched from
    /// pre-existing damage belonging to faults not yet handled.
    pub lid: Option<Lid>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.class, self.detail)
    }
}

/// The outcome of one verification pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyReport {
    /// Switches whose tables were walked.
    pub switches: usize,
    /// Destination LIDs checked.
    pub lids: usize,
    /// Every invariant violation found, in deterministic order.
    pub violations: Vec<Violation>,
}

impl VerifyReport {
    /// True when every invariant holds.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations of one class.
    #[must_use]
    pub fn count(&self, class: InvariantClass) -> usize {
        self.violations.iter().filter(|v| v.class == class).count()
    }

    /// A deterministic one-line verdict: `clean` or the leading violations.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return format!("clean ({} lids x {} switches)", self.lids, self.switches);
        }
        let shown: Vec<String> = self
            .violations
            .iter()
            .take(3)
            .map(Violation::to_string)
            .collect();
        let suffix = if self.violations.len() > 3 {
            format!(" (+{} more)", self.violations.len() - 3)
        } else {
            String::new()
        };
        format!(
            "{} violation(s): {}{}",
            self.violations.len(),
            shown.join("; "),
            suffix
        )
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Where one switch's LFT sends a packet for one destination.
enum NextHop {
    /// Arrives at the destination endpoint.
    Deliver,
    /// Forwards to another switch (by dense index).
    To(usize),
    /// Terminal failure, with the reason.
    Dead(String),
}

/// Checks the four fabric invariants against a subnet's *installed* LFTs.
///
/// Construction is free; every check is read-only. The verifier is
/// deliberately independent of `ib-sm` so it can audit any subnet state —
/// planned, installed, or corrupted by a chaos schedule.
#[derive(Clone, Copy, Debug)]
pub struct FabricVerifier {
    /// Hop budget per (switch, destination) walk; beyond it the walk is a
    /// loop by definition. Defaults to 64 (matches `trace_route` callers).
    pub max_hops: usize,
    /// Whether to run the CDG deadlock check (invariant 3). On by default;
    /// callers verifying a fabric whose VL layering is unknown (e.g. a
    /// torus routed by an engine that relies on lanes they cannot supply)
    /// may disable it rather than report false cycles.
    pub deadlock: bool,
    /// Restrict forwarding checks to the connected component this node
    /// belongs to. A subnet manager that lost part of the fabric can only
    /// govern (and only answer for) its own component: switches beyond the
    /// split keep whatever tables they had, and judging them would drown
    /// the report in violations no SMP can fix. `None` (the default)
    /// verifies every component.
    pub viewpoint: Option<NodeId>,
}

impl Default for FabricVerifier {
    fn default() -> Self {
        Self {
            max_hops: 64,
            deadlock: true,
            viewpoint: None,
        }
    }
}

impl FabricVerifier {
    /// A verifier with default bounds.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style hop budget override.
    #[must_use]
    pub fn with_max_hops(mut self, max_hops: usize) -> Self {
        self.max_hops = max_hops;
        self
    }

    /// Builder-style deadlock-check toggle.
    #[must_use]
    pub fn with_deadlock(mut self, deadlock: bool) -> Self {
        self.deadlock = deadlock;
        self
    }

    /// Builder-style viewpoint: verify only the component `node` sits in
    /// (the component a subnet manager on that node can actually govern).
    #[must_use]
    pub fn with_viewpoint(mut self, node: NodeId) -> Self {
        self.viewpoint = Some(node);
        self
    }

    /// Verifies all invariants assuming a single virtual lane (correct for
    /// fat-tree / Up*/Down* / Min-Hop tables on tree-like fabrics).
    pub fn verify(&self, subnet: &Subnet) -> IbResult<VerifyReport> {
        self.verify_with_vls(subnet, &VlAssignment::SingleVl)
    }

    /// Verifies all invariants with the virtual-lane layering the routing
    /// engine produced (DFSSSP / LASH tables are only deadlock-free *per
    /// lane*).
    pub fn verify_with_vls(&self, subnet: &Subnet, vls: &VlAssignment) -> IbResult<VerifyReport> {
        self.verify_observed(subnet, vls, &Observer::disabled())
    }

    /// Like [`Self::verify_with_vls`], emitting `verify.*` counters and a
    /// `verify.run` span into `observer`.
    pub fn verify_observed(
        &self,
        subnet: &Subnet,
        vls: &VlAssignment,
        observer: &Observer,
    ) -> IbResult<VerifyReport> {
        let _span = observer.span("verify.run");
        let switches: Vec<NodeId> = subnet.switches().map(|n| n.id).collect();
        let index_of: FxHashMap<NodeId, usize> = switches
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        let lids = subnet.lids();

        // Reachability awareness: label the live switch components once,
        // so a missing LFT row can be judged legal (the destination is
        // genuinely beyond a split) or a violation (it is reachable and
        // the row should exist) — and a *present* row toward an
        // unreachable destination becomes a stale-route finding.
        let comp = switch_components(subnet, &switches, &index_of);
        let scope = self
            .viewpoint
            .and_then(|vp| component_of(subnet, vp, &index_of, &comp));

        let mut violations = Vec::new();
        self.check_addressing(subnet, &mut violations);
        for &lid in &lids {
            self.check_forwarding(
                subnet,
                &switches,
                &index_of,
                &comp,
                scope,
                lid,
                &mut violations,
            );
        }
        if self.deadlock {
            self.check_deadlock(subnet, vls, &mut violations)?;
        }

        let report = VerifyReport {
            switches: switches.len(),
            lids: lids.len(),
            violations,
        };
        if observer.is_enabled() {
            observer.incr("verify.runs");
            observer.add("verify.violations", report.violations.len() as u64);
            observer.add(
                "verify.black_holes",
                report.count(InvariantClass::BlackHole) as u64,
            );
            observer.add(
                "verify.loops",
                report.count(InvariantClass::ForwardingLoop) as u64,
            );
            observer.add(
                "verify.deadlock_cycles",
                report.count(InvariantClass::DeadlockCycle) as u64,
            );
            observer.add(
                "verify.addressing",
                report.count(InvariantClass::Addressing) as u64,
            );
            observer.add(
                "verify.stale_routes",
                report.count(InvariantClass::StaleRoute) as u64,
            );
            if report.is_clean() {
                observer.incr("verify.clean");
            }
        }
        Ok(report)
    }

    /// Invariant 4: LID ownership. Every LID is held by exactly one node,
    /// the registry resolves it to that node, and the owner is alive.
    fn check_addressing(&self, subnet: &Subnet, out: &mut Vec<Violation>) {
        // Ownership scan over every node (dead ones included: a dead node
        // still holding a LID is exactly the corruption we want to catch).
        let mut owners: FxHashMap<u16, Vec<NodeId>> = FxHashMap::default();
        for node in subnet.nodes() {
            for lid in node.lids() {
                owners.entry(lid.raw()).or_default().push(node.id);
            }
        }
        let mut owned: Vec<(u16, Vec<NodeId>)> = owners.into_iter().collect();
        owned.sort_unstable_by_key(|&(raw, _)| raw);
        for (raw, who) in &owned {
            if who.len() > 1 {
                let names: Vec<&str> = who.iter().map(|&n| subnet.name_of(n)).collect();
                out.push(Violation {
                    class: InvariantClass::Addressing,
                    detail: format!(
                        "LID {raw} owned by {} nodes: {}",
                        who.len(),
                        names.join(", ")
                    ),
                    lid: None,
                });
            }
            // Every held LID must be registered back to its holder.
            match subnet.endpoint_of(Lid::from_raw(*raw)) {
                None => out.push(Violation {
                    class: InvariantClass::Addressing,
                    detail: format!(
                        "LID {raw} held by {} but absent from the registry",
                        subnet.name_of(who[0])
                    ),
                    lid: None,
                }),
                Some(ep) if who.len() == 1 && ep.node != who[0] => out.push(Violation {
                    class: InvariantClass::Addressing,
                    detail: format!(
                        "LID {raw} held by {} but registered to {}",
                        subnet.name_of(who[0]),
                        subnet.name_of(ep.node)
                    ),
                    lid: None,
                }),
                Some(_) => {}
            }
        }
        // Every registered LID must resolve to a live owner.
        for lid in subnet.lids() {
            match subnet.endpoint_of(lid) {
                None => out.push(Violation {
                    class: InvariantClass::Addressing,
                    detail: format!("LID {lid} registered but unresolvable"),
                    lid: None,
                }),
                Some(ep) if !subnet.is_alive(ep.node) => out.push(Violation {
                    class: InvariantClass::Addressing,
                    detail: format!(
                        "LID {lid} registered to dead node {}",
                        subnet.name_of(ep.node)
                    ),
                    lid: None,
                }),
                Some(_) => {}
            }
        }
    }

    /// Invariants 1 + 2 for one destination: every switch that can still
    /// reach the LID's endpoint must deliver without revisiting a switch;
    /// every switch that *cannot* (the fabric is split) must hold an
    /// **empty or drop** row — one toward a real port is a stale route
    /// into the lost component.
    #[allow(clippy::too_many_arguments)]
    fn check_forwarding(
        &self,
        subnet: &Subnet,
        switches: &[NodeId],
        index_of: &FxHashMap<NodeId, usize>,
        comp: &[u32],
        scope: Option<u32>,
        lid: Lid,
        out: &mut Vec<Violation>,
    ) {
        let Some(target) = subnet.endpoint_of(lid) else {
            return; // Already reported by the addressing check.
        };
        // The component the destination is delivered in; `None` when no
        // live delivery switch exists (the endpoint itself is gone), which
        // makes the LID unreachable from everywhere.
        let dest_comp = component_of(subnet, target.node, index_of, comp);
        // One bounded table walk per switch, memoized through `outcome` so
        // shared suffixes are walked once; terminal failures and loops are
        // reported once per destination, not once per upstream switch.
        let next: Vec<NextHop> = switches
            .iter()
            .map(|&sw| self.next_hop(subnet, index_of, sw, lid, target.node))
            .collect();

        const UNKNOWN: u8 = 0;
        const ON_PATH: u8 = 1;
        const OK: u8 = 2;
        const BAD: u8 = 3;
        let mut outcome = vec![UNKNOWN; switches.len()];
        let mut reported: FxHashSet<usize> = FxHashSet::default();

        for start in 0..switches.len() {
            if scope.is_some_and(|sc| comp[start] != sc) {
                // Beyond the viewpoint's split: not governable, not judged.
                continue;
            }
            if dest_comp != Some(comp[start]) {
                // The destination is unreachable from this switch: the
                // legal degraded states are an empty row or an explicit
                // drop (distribution pads cleared rows to the drop port,
                // OpenSM-style). A row toward a *port* points into the
                // lost component and is stale.
                if subnet
                    .lft(switches[start])
                    .and_then(|lft| lft.get(lid))
                    .is_some_and(|p| !p.is_drop())
                {
                    out.push(Violation {
                        class: InvariantClass::StaleRoute,
                        detail: format!(
                            "LID {lid} at {}: stale route toward an unreachable destination",
                            subnet.name_of(switches[start])
                        ),
                        lid: Some(lid),
                    });
                }
                continue;
            }
            if outcome[start] != UNKNOWN {
                continue;
            }
            let mut path = vec![start];
            outcome[start] = ON_PATH;
            let verdict = loop {
                let cur = *path.last().unwrap_or(&start);
                match &next[cur] {
                    NextHop::Deliver => break OK,
                    NextHop::Dead(reason) => {
                        if reported.insert(cur) {
                            out.push(Violation {
                                class: InvariantClass::BlackHole,
                                detail: format!(
                                    "LID {lid} at {}: {reason}",
                                    subnet.name_of(switches[cur])
                                ),
                                lid: Some(lid),
                            });
                        }
                        break BAD;
                    }
                    &NextHop::To(v) => match outcome[v] {
                        OK => break OK,
                        BAD => break BAD,
                        ON_PATH => {
                            // The walk re-entered its own path: a cycle.
                            let from = path.iter().position(|&s| s == v).unwrap_or(0);
                            if reported.insert(v) {
                                let names: Vec<&str> = path[from..]
                                    .iter()
                                    .map(|&s| subnet.name_of(switches[s]))
                                    .collect();
                                out.push(Violation {
                                    class: InvariantClass::ForwardingLoop,
                                    detail: format!(
                                        "LID {lid} loops through {}",
                                        names.join(" -> ")
                                    ),
                                    lid: Some(lid),
                                });
                            }
                            break BAD;
                        }
                        _ => {
                            if path.len() > self.max_hops {
                                if reported.insert(cur) {
                                    out.push(Violation {
                                        class: InvariantClass::ForwardingLoop,
                                        detail: format!(
                                            "LID {lid}: walk from {} exceeded {} hops",
                                            subnet.name_of(switches[start]),
                                            self.max_hops
                                        ),
                                        lid: Some(lid),
                                    });
                                }
                                break BAD;
                            }
                            outcome[v] = ON_PATH;
                            path.push(v);
                        }
                    },
                }
            };
            for s in path {
                outcome[s] = verdict;
            }
        }
    }

    /// Resolves one switch's LFT entry for `lid` into a [`NextHop`].
    fn next_hop(
        &self,
        subnet: &Subnet,
        index_of: &FxHashMap<NodeId, usize>,
        sw: NodeId,
        lid: Lid,
        target: NodeId,
    ) -> NextHop {
        if sw == target {
            return NextHop::Deliver;
        }
        let Some(lft) = subnet.lft(sw) else {
            return NextHop::Dead("no LFT installed".into());
        };
        let Some(port) = lft.get(lid) else {
            return NextHop::Dead("missing LFT row".into());
        };
        if port.is_drop() {
            return NextHop::Dead("row is an explicit drop".into());
        }
        if port.is_management() {
            return NextHop::Dead("row terminates at the wrong switch".into());
        }
        let Some(remote) = subnet.neighbor(sw, port) else {
            return NextHop::Dead(format!("row forwards into downed/uncabled port {port}"));
        };
        if remote.node == target {
            return NextHop::Deliver;
        }
        if subnet.node(remote.node).is_hca() {
            return NextHop::Dead(format!(
                "delivered to wrong endpoint {}",
                subnet.name_of(remote.node)
            ));
        }
        match index_of.get(&remote.node) {
            Some(&j) => NextHop::To(j),
            None => NextHop::Dead(format!(
                "forwards into non-switch {}",
                subnet.name_of(remote.node)
            )),
        }
    }

    /// Invariant 3: the CDG of the installed tables is acyclic per lane.
    fn check_deadlock(
        &self,
        subnet: &Subnet,
        vls: &VlAssignment,
        out: &mut Vec<Violation>,
    ) -> IbResult<()> {
        let g = SwitchGraph::build(subnet)?;
        let tables = RoutingTables::from_installed(subnet);
        match vls {
            VlAssignment::SingleVl => {
                let cdg = Cdg::from_tables(&g, &tables, |_| true);
                Self::report_cdg_cycle(subnet, &g, &cdg, 0, out);
            }
            VlAssignment::PerDestination(map) => {
                let mut lanes: Vec<u8> = map.values().map(|v| v.raw()).collect();
                lanes.push(0);
                lanes.sort_unstable();
                lanes.dedup();
                for lane in lanes {
                    let cdg =
                        Cdg::from_tables(&g, &tables, |d| vls.lane_for(0, 0, d.lid).raw() == lane);
                    Self::report_cdg_cycle(subnet, &g, &cdg, lane, out);
                }
            }
            VlAssignment::PerSwitchPair(_) | VlAssignment::PerSourceDestination(_) => {
                self.check_deadlock_per_path(subnet, &g, &tables, vls, out);
            }
        }
        Ok(())
    }

    /// Per-path CDG construction for path-granular lane assignments: each
    /// (source switch, destination) path contributes its channel chain to
    /// the CDG of *its* lane only.
    fn check_deadlock_per_path(
        &self,
        subnet: &Subnet,
        g: &SwitchGraph,
        tables: &RoutingTables,
        vls: &VlAssignment,
        out: &mut Vec<Violation>,
    ) {
        // Per-switch port -> neighbor-switch map, as in Cdg::absorb_tables.
        let port_to_switch: Vec<FxHashMap<u8, usize>> = (0..g.len())
            .map(|s| {
                g.neighbors(s)
                    .iter()
                    .map(|&(v, p)| (p.raw(), v as usize))
                    .collect()
            })
            .collect();
        let mut lanes: FxHashMap<u8, Cdg> = FxHashMap::default();
        for dest in g.destinations() {
            let mut next: Vec<Option<(u8, usize)>> = vec![None; g.len()];
            for (s, n) in next.iter_mut().enumerate() {
                let Some(lft) = tables.lfts.get(&g.node_id(s)) else {
                    continue;
                };
                if let Some(p) = lft.get(dest.lid) {
                    if !p.is_management() {
                        if let Some(&v) = port_to_switch[s].get(&p.raw()) {
                            *n = Some((p.raw(), v));
                        }
                    }
                }
            }
            for s in 0..g.len() {
                if s == dest.switch {
                    continue;
                }
                let lane = vls.lane_for(s as u32, dest.switch as u32, dest.lid).raw();
                let cdg = lanes.entry(lane).or_default();
                let mut cur = s;
                let mut prev: Option<usize> = None;
                for _ in 0..self.max_hops {
                    let Some((p, v)) = next[cur] else { break };
                    let ch = cdg.intern((cur as u32, p));
                    if let Some(pc) = prev {
                        cdg.add_edge(pc, ch, dest.lid.raw());
                    }
                    prev = Some(ch);
                    cur = v;
                    if cur == dest.switch {
                        break;
                    }
                }
            }
        }
        let mut ordered: Vec<(u8, Cdg)> = lanes.into_iter().collect();
        ordered.sort_unstable_by_key(|&(lane, _)| lane);
        for (lane, cdg) in &ordered {
            Self::report_cdg_cycle(subnet, g, cdg, *lane, out);
        }
    }

    /// Renders one CDG cycle (if any) as a deadlock violation.
    fn report_cdg_cycle(
        subnet: &Subnet,
        g: &SwitchGraph,
        cdg: &Cdg,
        lane: u8,
        out: &mut Vec<Violation>,
    ) {
        if let Some(cycle) = cdg.find_cycle() {
            let chain: Vec<String> = cycle
                .iter()
                .map(|&id| {
                    let (s, p) = cdg.channel(id);
                    format!("{}:p{}", subnet.name_of(g.node_id(s as usize)), p)
                })
                .collect();
            out.push(Violation {
                class: InvariantClass::DeadlockCycle,
                detail: format!("VL{lane} channel dependency cycle: {}", chain.join(" -> ")),
                lid: None,
            });
        }
    }
}

/// Labels the live switch components: BFS over switch-switch cables that
/// are up on both ends, in switch-list order (deterministic labels).
fn switch_components(
    subnet: &Subnet,
    switches: &[NodeId],
    index_of: &FxHashMap<NodeId, usize>,
) -> Vec<u32> {
    let mut label = vec![u32::MAX; switches.len()];
    let mut queue: Vec<usize> = Vec::new();
    let mut count = 0u32;
    for root in 0..switches.len() {
        if label[root] != u32::MAX {
            continue;
        }
        label[root] = count;
        queue.clear();
        queue.push(root);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for (_, remote) in subnet.node(switches[u]).connected_ports() {
                let Some(&v) = index_of.get(&remote.node) else {
                    continue;
                };
                if label[v] == u32::MAX {
                    label[v] = count;
                    queue.push(v);
                }
            }
        }
        count += 1;
    }
    label
}

/// The component a node's traffic is delivered in: a switch's own label,
/// or — for an HCA — the label of its live attached switch. `None` when
/// the node is dead or has no live switch uplink (unreachable from
/// everywhere).
fn component_of(
    subnet: &Subnet,
    node: NodeId,
    index_of: &FxHashMap<NodeId, usize>,
    comp: &[u32],
) -> Option<u32> {
    if !subnet.is_alive(node) {
        return None;
    }
    if let Some(&i) = index_of.get(&node) {
        return Some(comp[i]);
    }
    subnet
        .node(node)
        .connected_ports()
        .find_map(|(_, remote)| index_of.get(&remote.node).map(|&i| comp[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_routing::testutil::{assign_lids, host_lid};
    use ib_routing::EngineKind;
    use ib_subnet::topology::fattree::two_level;
    use ib_subnet::topology::torus::torus_2d;
    use ib_types::PortNum;

    /// Bring a small fat tree to "installed tables" state without ib-sm
    /// (which would be a dependency cycle): assign LIDs densely, compute,
    /// install.
    fn installed(engine: EngineKind) -> (ib_subnet::topology::BuiltTopology, VlAssignment) {
        let mut t = two_level(3, 2, 2);
        assign_lids(&mut t);
        let tables = engine.build().compute(&t.subnet).unwrap();
        tables.install(&mut t.subnet).unwrap();
        (t, tables.vls)
    }

    #[test]
    fn clean_fabric_verifies_clean() {
        let (t, vls) = installed(EngineKind::MinHop);
        let report = FabricVerifier::new()
            .verify_with_vls(&t.subnet, &vls)
            .unwrap();
        assert!(report.is_clean(), "{report}");
        assert!(report.lids > 0 && report.switches > 0);
        assert!(report.summary().starts_with("clean"));
    }

    #[test]
    fn missing_row_is_a_black_hole() {
        let (mut t, _) = installed(EngineKind::MinHop);
        let victim = host_lid(&t, 5);
        let leaf = t.switch_levels[0][0];
        t.subnet.lft_mut(leaf).unwrap().clear(victim);
        let report = FabricVerifier::new().verify(&t.subnet).unwrap();
        assert_eq!(report.count(InvariantClass::BlackHole), 1, "{report}");
    }

    #[test]
    fn misroute_to_wrong_host_is_a_black_hole() {
        let (mut t, _) = installed(EngineKind::MinHop);
        let victim = host_lid(&t, 0);
        // On the victim's own leaf, point its row at its neighbor host.
        let leaf = t.switch_levels[0][0];
        let (wrong_port, _) = t
            .subnet
            .node(leaf)
            .connected_ports()
            .find(|(_, r)| r.node == t.hosts[1])
            .unwrap();
        t.subnet.lft_mut(leaf).unwrap().set(victim, wrong_port);
        let report = FabricVerifier::new().verify(&t.subnet).unwrap();
        assert!(report.count(InvariantClass::BlackHole) >= 1, "{report}");
        assert!(report.summary().contains("wrong endpoint"));
    }

    #[test]
    fn cross_pointing_rows_are_a_forwarding_loop() {
        let (mut t, _) = installed(EngineKind::MinHop);
        let victim = host_lid(&t, 5);
        let leaf0 = t.switch_levels[0][0];
        let spine0 = t.switch_levels[1][0];
        let (to_spine, _) = t
            .subnet
            .node(leaf0)
            .connected_ports()
            .find(|(_, r)| r.node == spine0)
            .unwrap();
        let (to_leaf, _) = t
            .subnet
            .node(spine0)
            .connected_ports()
            .find(|(_, r)| r.node == leaf0)
            .unwrap();
        t.subnet.lft_mut(leaf0).unwrap().set(victim, to_spine);
        t.subnet.lft_mut(spine0).unwrap().set(victim, to_leaf);
        let report = FabricVerifier::new().verify(&t.subnet).unwrap();
        assert!(
            report.count(InvariantClass::ForwardingLoop) >= 1,
            "{report}"
        );
    }

    #[test]
    fn torus_minhop_deadlock_cycle_detected() {
        let mut t = torus_2d(4, 4, 1, true);
        assign_lids(&mut t);
        let tables = EngineKind::MinHop.build().compute(&t.subnet).unwrap();
        tables.install(&mut t.subnet).unwrap();
        let report = FabricVerifier::new().verify(&t.subnet).unwrap();
        assert!(report.count(InvariantClass::DeadlockCycle) >= 1, "{report}");
        // Reachability and loop-freedom still hold: min-hop routes deliver.
        assert_eq!(report.count(InvariantClass::BlackHole), 0);
        assert_eq!(report.count(InvariantClass::ForwardingLoop), 0);
        // And the deadlock check can be disabled for engines that make no
        // VL guarantee on cyclic fabrics.
        let relaxed = FabricVerifier::new()
            .with_deadlock(false)
            .verify(&t.subnet)
            .unwrap();
        assert!(relaxed.is_clean(), "{relaxed}");
    }

    #[test]
    fn torus_dfsssp_clean_per_lane() {
        let mut t = torus_2d(4, 4, 1, true);
        assign_lids(&mut t);
        let tables = EngineKind::Dfsssp.build().compute(&t.subnet).unwrap();
        tables.install(&mut t.subnet).unwrap();
        let report = FabricVerifier::new()
            .verify_with_vls(&t.subnet, &tables.vls)
            .unwrap();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn duplicate_lid_ownership_is_an_addressing_violation() {
        let (mut t, _) = installed(EngineKind::MinHop);
        let stolen = host_lid(&t, 0);
        // Corrupt a second node's port state to claim the same LID without
        // going through the registry.
        let thief = t.hosts[1];
        t.subnet.node_mut(thief).ports[1].lid = Some(stolen);
        let report = FabricVerifier::new().verify(&t.subnet).unwrap();
        assert!(report.count(InvariantClass::Addressing) >= 1, "{report}");
        assert!(report.summary().contains("owned by 2 nodes"));
    }

    /// Isolates leaf 1 (every switch-switch uplink downed) and recomputes
    /// routing on the split fabric. Returns the built topology.
    fn split_installed() -> ib_subnet::topology::BuiltTopology {
        let mut t = two_level(2, 2, 2);
        assign_lids(&mut t);
        let leaf1 = t.switch_levels[0][1];
        let uplinks: Vec<PortNum> = t
            .subnet
            .node(leaf1)
            .connected_ports()
            .filter(|(_, r)| t.subnet.node(r.node).is_switch())
            .map(|(p, _)| p)
            .collect();
        for p in uplinks {
            t.subnet.set_link_down(leaf1, p).unwrap();
        }
        let tables = EngineKind::MinHop.build().compute(&t.subnet).unwrap();
        tables.install(&mut t.subnet).unwrap();
        t
    }

    #[test]
    fn split_fabric_with_cleared_columns_verifies_clean() {
        let t = split_installed();
        let report = FabricVerifier::new().verify(&t.subnet).unwrap();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn stale_route_toward_unreachable_destination_is_caught() {
        let mut t = split_installed();
        // Leaf 0 grows back a row toward a host beyond the split.
        let lost = host_lid(&t, 2);
        let leaf0 = t.switch_levels[0][0];
        t.subnet.lft_mut(leaf0).unwrap().set(lost, PortNum::new(1));
        let report = FabricVerifier::new().verify(&t.subnet).unwrap();
        assert_eq!(report.count(InvariantClass::StaleRoute), 1, "{report}");
        assert_eq!(report.count(InvariantClass::BlackHole), 0, "{report}");
        assert!(report.summary().contains("stale route"));
    }

    #[test]
    fn missing_row_toward_reachable_destination_is_still_a_black_hole() {
        let mut t = split_installed();
        // Clearing a *reachable* destination's row stays a black hole even
        // on the split fabric.
        let local = host_lid(&t, 0);
        let spine0 = t.switch_levels[1][0];
        t.subnet.lft_mut(spine0).unwrap().clear(local);
        let report = FabricVerifier::new().verify(&t.subnet).unwrap();
        assert_eq!(report.count(InvariantClass::BlackHole), 1, "{report}");
    }

    #[test]
    fn viewpoint_scopes_verification_to_the_masters_component() {
        let mut t = split_installed();
        // Stale state on the *lost* side: leaf 1 keeps a row toward a
        // master-side host it can no longer reach.
        let master_host = host_lid(&t, 0);
        let leaf1 = t.switch_levels[0][1];
        t.subnet
            .lft_mut(leaf1)
            .unwrap()
            .set(master_host, PortNum::new(1));
        let unscoped = FabricVerifier::new().verify(&t.subnet).unwrap();
        assert_eq!(unscoped.count(InvariantClass::StaleRoute), 1, "{unscoped}");
        // From the master's viewpoint the lost component is dark: no SMP
        // can reach it, so it is not judged.
        let scoped = FabricVerifier::new()
            .with_viewpoint(t.switch_levels[0][0])
            .verify(&t.subnet)
            .unwrap();
        assert!(scoped.is_clean(), "{scoped}");
    }

    #[test]
    fn observer_counters_reflect_the_report() {
        let (mut t, _) = installed(EngineKind::MinHop);
        let victim = host_lid(&t, 5);
        t.subnet
            .lft_mut(t.switch_levels[0][0])
            .unwrap()
            .set(victim, PortNum::DROP);
        let observer = Observer::metrics();
        let report = FabricVerifier::new()
            .verify_observed(&t.subnet, &VlAssignment::SingleVl, &observer)
            .unwrap();
        assert!(!report.is_clean());
        let snap = observer.snapshot().unwrap();
        assert_eq!(snap.counter("verify.runs"), 1);
        assert_eq!(
            snap.counter("verify.violations"),
            report.violations.len() as u64
        );
        assert_eq!(snap.counter("verify.clean"), 0);
        assert_eq!(
            snap.counter("verify.black_holes"),
            report.count(InvariantClass::BlackHole) as u64
        );
    }
}
