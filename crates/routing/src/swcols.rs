//! Deadlock-safe switch-destined columns for the minimal engines.
//!
//! Min-Hop and the fat-tree engine spread *every* destination across its
//! minimal next hops. For HCA-destined LIDs that is safe on a layered
//! tree: those routes ascend ranks and then descend, so their channel
//! dependencies can never close a cycle. Switch-destined LIDs break the
//! argument — a route from one spine to a sibling spine must descend
//! into a leaf and climb back out (a *valley*), and two valleys through
//! different leaves, stitched together by ordinary switch-to-switch
//! arches, close a credit loop on a single lane. OpenSM documents the
//! same caveat for its ftree engine: switch-to-switch paths are not
//! guaranteed credit-loop-free.
//!
//! The cure is an *inverted* Up*/Down* on a dedicated lane:
//!
//! * every component designates a hub (its highest-index switch — see
//!   [`SwitchColumns::new`] for why highest) and orients itself by BFS
//!   distance to it;
//! * a switch-destined route runs in two phases: *inbound* steps that
//!   strictly decrease the hub distance, then *outbound* steps that
//!   strictly increase it while closing in on the destination's
//!   outbound cone — exactly a valley, which is the natural shape of
//!   switch-to-switch traffic (the classic Up*/Down* shape, with the
//!   root at the bottom);
//! * those LIDs ride a dedicated virtual lane ([`SWITCH_VL`]), so no
//!   dependency can span a valley and a minimal host column.
//!
//! The lane's channel-dependency graph is acyclic on *any* topology:
//! every channel either strictly decreases the hub distance or strictly
//! increases it, a route only ever chains in→in, in→out, or out→out —
//! outbound-cone switches always continue outbound, so no route turns
//! back inbound — and a cycle would need the missing out→in edge.
//!
//! Within the legal candidate sets the picks spread modularly, like the
//! engines' host columns, and the repair path keeps an installed port
//! whenever it is still legal (sticky selection). That division of
//! labor is what lets incremental repair beat a full sweep's block
//! diff: a lost link shrinks candidate sets, so a full recompute
//! reshuffles every modular pick in the affected columns, while the
//! sticky splice rewrites only the entries the fault actually broke.
//!
//! Switch LIDs carry management-plane traffic (SMPs ride VL15 anyway);
//! the valley detour costs nothing the paper's Fig. 7 measures.

use ib_types::{Lid, PortNum, VirtualLane};
use rustc_hash::FxHashMap;

use crate::graph::{parallel_for_each, SwitchGraph};
use crate::tables::VlAssignment;

/// The data lane reserved for switch-destined LIDs (hosts stay on VL0).
const SWITCH_VL: VirtualLane = VirtualLane::VL1;

/// The VL layering that isolates switch-destined LIDs on [`SWITCH_VL`]:
/// `SingleVl` when the fabric registers no switch LIDs at all, the
/// per-destination map otherwise.
#[must_use]
pub(crate) fn switch_dest_vls(g: &SwitchGraph) -> VlAssignment {
    let map: FxHashMap<u16, VirtualLane> = g
        .destinations()
        .iter()
        .filter(|d| d.port == PortNum::MANAGEMENT)
        .map(|d| (d.lid.raw(), SWITCH_VL))
        .collect();
    if map.is_empty() {
        VlAssignment::SingleVl
    } else {
        VlAssignment::PerDestination(map)
    }
}

/// Precomputed valley-legal distances toward every switch-destined
/// delivery switch, shared by the Min-Hop and fat-tree engines.
///
/// One hub BFS per component plus, per delivery switch, one outbound
/// cone sweep and one inbound relaxation — fanned across workers (rows
/// are independent and pure functions of the graph, so the result is
/// byte-identical for any worker count).
pub(crate) struct SwitchColumns {
    /// Delivery switch -> row index into `ddist`/`full`.
    row_of: FxHashMap<usize, usize>,
    /// Row r: length of the shortest strictly-outbound path to delivery
    /// switch r (`u32::MAX` outside its outbound cone).
    ddist: Vec<u32>,
    /// Row r: length of the shortest valley-legal path to delivery
    /// switch r.
    full: Vec<u32>,
    /// BFS distance to the component hub.
    dist: Vec<u32>,
    /// Component label per switch; cross-component picks are `None`.
    comp: Vec<u32>,
    /// Per-switch neighbor lists sorted by port, for deterministic
    /// modular picks without per-destination allocation.
    sorted_adj: Vec<Vec<(u32, PortNum)>>,
    n: usize,
}

impl SwitchColumns {
    /// Builds the valley-legal distance rows for every switch-destined
    /// delivery switch of `g` (deduplicated, in index order). Splits
    /// are not errors: cross-component entries stay `u32::MAX` and
    /// [`Self::pick`] turns them into explicit `None` holes.
    pub fn new(g: &SwitchGraph, workers: usize) -> Self {
        let n = g.len();
        let comps = g.components();
        let comp: Vec<u32> = (0..n).map(|s| comps.label_of(s)).collect();

        // Hub BFS per component. The hub is the component's *highest*
        // switch index: indices are stable across faults (nothing
        // renumbers), and topology builders register leaves before
        // spines, so a spine hub keeps its distance field intact under
        // the leaf-edge faults that dominate — which keeps incremental
        // repair's spliced switch columns byte-identical outside the
        // fault's neighborhood.
        let mut dist = vec![u32::MAX; n];
        let mut queue: Vec<u32> = Vec::with_capacity(n);
        for c in 0..comps.count() as u32 {
            let Some(hub) = (0..n).rev().find(|&s| comp[s] == c) else {
                continue;
            };
            dist[hub] = 0;
            queue.clear();
            queue.push(hub as u32);
            let mut head = 0;
            while head < queue.len() {
                let u = queue[head] as usize;
                head += 1;
                for &(v, _) in g.neighbors(u) {
                    if dist[v as usize] == u32::MAX {
                        dist[v as usize] = dist[u] + 1;
                        queue.push(v);
                    }
                }
            }
        }

        // Inbound relaxation order: hub-closest first, so a switch's
        // inbound neighbors are final before it is processed.
        let order = {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_unstable_by_key(|&s| (dist[s], s));
            order
        };

        let mut dsws: Vec<usize> = g
            .destinations()
            .iter()
            .filter(|d| d.port == PortNum::MANAGEMENT)
            .map(|d| d.switch)
            .collect();
        dsws.sort_unstable();
        dsws.dedup();
        let row_of: FxHashMap<usize, usize> =
            dsws.iter().enumerate().map(|(i, &s)| (s, i)).collect();

        // One work item per delivery switch: its index plus its
        // (cone-distance, full-distance) row slices.
        type Row<'a> = (usize, (&'a mut [u32], &'a mut [u32]));
        let mut ddist = vec![u32::MAX; dsws.len() * n];
        let mut full = vec![u32::MAX; dsws.len() * n];
        let mut rows: Vec<Row> = dsws
            .iter()
            .copied()
            .zip(ddist.chunks_mut(n).zip(full.chunks_mut(n)))
            .collect();
        parallel_for_each(
            &mut rows,
            workers,
            || Vec::<u32>::with_capacity(n),
            |queue, _, (dsw, (ddist, full))| {
                // Outbound cone: reverse BFS from the delivery switch
                // along strictly hub-ward predecessors, so the y..dsw
                // suffix is strictly outbound. The BFS property (every
                // non-hub switch has a neighbor one step closer to the
                // hub) guarantees the cone always reaches the hub.
                ddist[*dsw] = 0;
                queue.clear();
                queue.push(*dsw as u32);
                let mut head = 0;
                while head < queue.len() {
                    let x = queue[head] as usize;
                    head += 1;
                    for &(y, _) in g.neighbors(x) {
                        let y = y as usize;
                        if dist[y].wrapping_add(1) == dist[x] && ddist[y] == u32::MAX {
                            ddist[y] = ddist[x] + 1;
                            queue.push(y as u32);
                        }
                    }
                }
                // Inbound phase: a switch outside the cone heads
                // hub-ward; a switch inside it must stay outbound (an
                // inbound turn there would hand out→in dependencies to
                // routes already descending the cone).
                full.copy_from_slice(ddist);
                for &x in &order {
                    if ddist[x] != u32::MAX {
                        continue;
                    }
                    for &(v, _) in g.neighbors(x) {
                        let v = v as usize;
                        if dist[v].wrapping_add(1) == dist[x] && full[v] != u32::MAX {
                            full[x] = full[x].min(full[v].saturating_add(1));
                        }
                    }
                }
            },
        );

        let sorted_adj: Vec<Vec<(u32, PortNum)>> = (0..n)
            .map(|s| {
                let mut v = g.neighbors(s).to_vec();
                v.sort_unstable_by_key(|&(_, p)| p);
                v
            })
            .collect();
        Self {
            row_of,
            ddist,
            full,
            dist,
            comp,
            sorted_adj,
            n,
        }
    }

    /// Whether the hop `s -> v` legally continues a route toward the
    /// row's delivery switch: outbound (hub distance up, cone distance
    /// down) inside the cone, inbound (hub distance down, staying
    /// minimal) outside it.
    fn legal(&self, ddist: &[u32], full: &[u32], s: usize, v: usize) -> bool {
        if ddist[s] != u32::MAX {
            self.dist[v] == self.dist[s].wrapping_add(1) && ddist[v].wrapping_add(1) == ddist[s]
        } else {
            self.dist[v].wrapping_add(1) == self.dist[s]
                && full[v] != u32::MAX
                && full[v] + 1 == full[s]
        }
    }

    /// The legal egress at `s` toward the switch LID `lid` delivered at
    /// `dsw`: the ((lid + s) mod candidates)-th legal port in port
    /// order — the host columns' modular spread, staggered by source so
    /// uniformly-cabled switches don't all break the same column when
    /// one cable dies. `None` when `s` sits across a split from `dsw`
    /// (an explicit hole). Callers handle the `s == dsw` delivery row
    /// themselves.
    pub fn pick(&self, dsw: usize, lid: Lid, s: usize) -> Option<PortNum> {
        let (ddist, full) = self.row(dsw, s)?;
        let legal = |&&(v, _): &&(u32, PortNum)| self.legal(ddist, full, s, v as usize);
        let count = self.sorted_adj[s].iter().filter(legal).count();
        if count == 0 {
            // Unreachable on a connected component; be defensive — the
            // verifier reports the hole if it ever happens.
            return None;
        }
        let want = (lid.raw() as usize + s) % count;
        self.sorted_adj[s]
            .iter()
            .filter(legal)
            .nth(want)
            .map(|&(_, p)| p)
    }

    /// The repair-path pick: keeps `installed` whenever it is still a
    /// legal candidate on the degraded graph, falling back to
    /// [`Self::pick`] otherwise — so a splice rewrites only the entries
    /// the fault actually broke.
    pub fn sticky_pick(
        &self,
        dsw: usize,
        lid: Lid,
        s: usize,
        installed: Option<PortNum>,
    ) -> Option<PortNum> {
        if let (Some(p), Some((ddist, full))) = (installed, self.row(dsw, s)) {
            if self.sorted_adj[s]
                .iter()
                .any(|&(v, q)| q == p && self.legal(ddist, full, s, v as usize))
            {
                return Some(p);
            }
        }
        self.pick(dsw, lid, s)
    }

    /// The `dsw` row slices, or `None` when `s` cannot reach `dsw` (a
    /// split, or no registered row).
    fn row(&self, dsw: usize, s: usize) -> Option<(&[u32], &[u32])> {
        if self.comp.get(s) != self.comp.get(dsw) {
            return None;
        }
        let gi = *self.row_of.get(&dsw)?;
        let ddist = &self.ddist[gi * self.n..(gi + 1) * self.n];
        let full = &self.full[gi * self.n..(gi + 1) * self.n];
        if full[s] == u32::MAX {
            return None;
        }
        Some((ddist, full))
    }
}
